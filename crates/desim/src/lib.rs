//! `desim` — a small, generic discrete-event simulation kernel.
//!
//! The crate grew out of the `hpcsim` port (see `ARCHITECTURE.md`): the
//! cluster simulator used to advance time by linearly scanning job vectors
//! for the next arrival/completion, which capped trace sizes and PPO
//! rollout throughput. This kernel factors the event-driven core out into
//! a reusable, workload-agnostic library:
//!
//! * [`SimTime`] — simulation clock time: a totally ordered `f64` wrapper
//!   (NaN is rejected at construction), so times can key a priority queue.
//! * [`EventQueue`] — a `BinaryHeap`-backed future-event list with **stable
//!   FIFO tie-breaking**: events scheduled for the same instant execute in
//!   scheduling order, making every schedule deterministic.
//! * [`Event`] / [`SimState`] — the execution contract (desque-style, but
//!   with *typed* event payloads instead of boxed closures: an event enum
//!   per simulation, no per-event allocation).
//! * [`Simulation`] — the run loop: pop, advance the clock, execute;
//!   supports both run-to-completion and stepping, which is what lets a
//!   driver pause at decision points (how `hpcsim` exposes backfilling
//!   opportunities to heuristics and the RL agent).
//! * [`Replicator`] — N independent replications with decorrelated
//!   per-replication seeds, fanned out across OS threads.
//! * [`KernelProbe`] — run-loop instrumentation: `run_with`/`step_with`
//!   report each executed event's time and the heap depth to a probe;
//!   the default [`NoopKernelProbe`] monomorphizes to the plain loop.
//!
//! # Determinism
//!
//! Two properties make kernel schedules reproducible: the queue's total
//! order `(time, insertion sequence)` leaves no tie to platform hash/heap
//! quirks, and [`SimTime`]'s total order admits no NaN. Replications are
//! seeded from a SplitMix64 stream of the master seed, so a replication's
//! result depends only on `(master seed, replication index)` — never on
//! thread scheduling.
//!
//! ```
//! use desim::{Event, EventQueue, SimTime, Simulation};
//!
//! /// Count arrivals in a tiny Poisson-ish process.
//! struct Counter { seen: usize, horizon: SimTime }
//! impl desim::SimState for Counter {
//!     fn is_complete(&self, now: SimTime) -> bool { now > self.horizon }
//! }
//! enum Tick { Arrive }
//! impl Event<Counter> for Tick {
//!     fn execute(self, state: &mut Counter, queue: &mut EventQueue<Self>) {
//!         state.seen += 1;
//!         let next = queue.now() + 1.0;
//!         queue.schedule(next, Tick::Arrive);
//!     }
//! }
//! let mut sim = Simulation::new(Counter { seen: 0, horizon: SimTime::new(10.0) });
//! sim.queue_mut().schedule(SimTime::ZERO, Tick::Arrive);
//! sim.run();
//! assert_eq!(sim.state().seen, 11); // t = 0, 1, …, 10
//! ```

mod probe;
mod queue;
mod replicate;
mod sim;
mod time;

pub use probe::{EventCounter, KernelProbe, NoopKernelProbe};
pub use queue::EventQueue;
pub use replicate::{replication_seed, Replicator};
pub use sim::{Event, SimState, Simulation};
pub use time::SimTime;
