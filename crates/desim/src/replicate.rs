//! Parallel independent replications.
//!
//! Stochastic simulation studies run the same model under N different
//! seeds and aggregate (mean/CI). Replications share nothing, so they
//! parallelize perfectly; this module fans them out over OS threads while
//! keeping results **ordered and deterministic**: replication `i` always
//! receives [`replication_seed`]`(master, i)` and lands at index `i` of
//! the result vector, regardless of thread interleaving.

/// The seed for replication `index` under `master`: one SplitMix64 step,
/// decorrelating consecutive indices (adjacent u64 seeds can correlate in
/// simple generators; the mix destroys that structure).
pub fn replication_seed(master: u64, index: u64) -> u64 {
    let mut z = master
        .wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs N independent replications of a simulation across threads.
#[derive(Debug, Clone)]
pub struct Replicator {
    master_seed: u64,
    threads: usize,
}

impl Replicator {
    /// A replicator deriving every replication seed from `master_seed`,
    /// using one thread per available core.
    pub fn new(master_seed: u64) -> Self {
        Self {
            master_seed,
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// Caps the worker-thread count (1 forces sequential execution).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Runs `count` replications of `body`, handing each `(index, seed)`,
    /// and returns the results in replication order.
    ///
    /// Worker fan-out is capped at the configured thread count (by default
    /// [`std::thread::available_parallelism`]) no matter how large `count`
    /// is: replication indices are split into contiguous **chunks** that
    /// workers claim dynamically from a shared counter, so skewed
    /// replication costs balance across threads instead of following a
    /// static partition. `body` runs concurrently; determinism comes from
    /// the per-index seeds and the index-ordered reassembly, not from
    /// execution order.
    pub fn run<T, F>(&self, count: usize, body: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, u64) -> T + Sync,
    {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;

        let threads = self.threads.min(count).max(1);
        let master = self.master_seed;
        if threads == 1 {
            return (0..count)
                .map(|i| body(i, replication_seed(master, i as u64)))
                .collect();
        }
        // Several chunks per worker: small enough to rebalance skew, large
        // enough that the claim counter and results lock stay cold.
        let chunk = count.div_ceil(threads * 4).max(1);
        let n_chunks = count.div_ceil(chunk);
        let next_chunk = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<Vec<T>>>> = Mutex::new((0..n_chunks).map(|_| None).collect());
        let body = &body;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let c = next_chunk.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    let lo = c * chunk;
                    let hi = ((c + 1) * chunk).min(count);
                    let out: Vec<T> = (lo..hi)
                        .map(|i| body(i, replication_seed(master, i as u64)))
                        .collect();
                    slots.lock().expect("no worker panicked holding the lock")[c] = Some(out);
                });
            }
        });
        slots
            .into_inner()
            .expect("no worker panicked holding the lock")
            .into_iter()
            .flat_map(|chunk| chunk.expect("every chunk was claimed and filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let seeds: Vec<u64> = (0..100).map(|i| replication_seed(42, i)).collect();
        let again: Vec<u64> = (0..100).map(|i| replication_seed(42, i)).collect();
        assert_eq!(seeds, again);
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "seed collision");
        let other: Vec<u64> = (0..100).map(|i| replication_seed(43, i)).collect();
        assert_ne!(seeds, other);
    }

    #[test]
    fn results_arrive_in_replication_order() {
        let r = Replicator::new(7);
        let out = r.run(257, |i, seed| (i, seed));
        for (i, &(idx, seed)) in out.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(seed, replication_seed(7, i as u64));
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let work = |i: usize, seed: u64| {
            // A tiny deterministic "simulation".
            let mut acc = seed;
            for _ in 0..100 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
            }
            acc
        };
        let par = Replicator::new(3).run(64, work);
        let seq = Replicator::new(3).threads(1).run(64, work);
        assert_eq!(par, seq);
    }

    #[test]
    fn zero_replications_is_fine() {
        let out: Vec<u64> = Replicator::new(1).run(0, |_, s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_fanout_stays_capped_under_huge_counts() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        // 10_000 replications on 3 workers must use at most 3 OS threads,
        // and still land every result at its index.
        let ids = Mutex::new(HashSet::new());
        let out = Replicator::new(5).threads(3).run(10_000, |i, seed| {
            ids.lock().unwrap().insert(std::thread::current().id());
            (i, seed)
        });
        assert!(ids.lock().unwrap().len() <= 3, "fan-out exceeded the cap");
        for (i, &(idx, seed)) in out.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(seed, replication_seed(5, i as u64));
        }
    }

    #[test]
    fn skewed_workloads_keep_order() {
        // Early indices are much slower: dynamic chunk claiming reorders
        // execution, the output must stay index-ordered regardless.
        let out = Replicator::new(11).threads(4).run(64, |i, seed| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            (i, seed)
        });
        let seq = Replicator::new(11).threads(1).run(64, |i, seed| (i, seed));
        assert_eq!(out, seq);
    }
}
