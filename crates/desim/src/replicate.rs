//! Parallel independent replications.
//!
//! Stochastic simulation studies run the same model under N different
//! seeds and aggregate (mean/CI). Replications share nothing, so they
//! parallelize perfectly; this module fans them out over OS threads while
//! keeping results **ordered and deterministic**: replication `i` always
//! receives [`replication_seed`]`(master, i)` and lands at index `i` of
//! the result vector, regardless of thread interleaving.

/// The seed for replication `index` under `master`: one SplitMix64 step,
/// decorrelating consecutive indices (adjacent u64 seeds can correlate in
/// simple generators; the mix destroys that structure).
pub fn replication_seed(master: u64, index: u64) -> u64 {
    let mut z = master
        .wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs N independent replications of a simulation across threads.
#[derive(Debug, Clone)]
pub struct Replicator {
    master_seed: u64,
    threads: usize,
}

impl Replicator {
    /// A replicator deriving every replication seed from `master_seed`,
    /// using one thread per available core.
    pub fn new(master_seed: u64) -> Self {
        Self {
            master_seed,
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// Caps the worker-thread count (1 forces sequential execution).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Runs `count` replications of `body`, handing each `(index, seed)`,
    /// and returns the results in replication order.
    ///
    /// `body` runs concurrently on multiple threads; determinism comes
    /// from the per-index seeds, not from execution order.
    pub fn run<T, F>(&self, count: usize, body: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, u64) -> T + Sync,
    {
        let threads = self.threads.min(count).max(1);
        if threads == 1 {
            return (0..count)
                .map(|i| body(i, replication_seed(self.master_seed, i as u64)))
                .collect();
        }
        // Static contiguous partition: replication i goes to thread
        // i / chunk, results are concatenated back in order.
        let chunk = count.div_ceil(threads);
        let body = &body;
        let master = self.master_seed;
        let mut partials: Vec<Vec<T>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    scope.spawn(move || {
                        let lo = t * chunk;
                        let hi = ((t + 1) * chunk).min(count);
                        (lo..hi)
                            .map(|i| body(i, replication_seed(master, i as u64)))
                            .collect::<Vec<T>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("replication worker panicked"))
                .collect()
        });
        let mut out = Vec::with_capacity(count);
        for p in &mut partials {
            out.append(p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let seeds: Vec<u64> = (0..100).map(|i| replication_seed(42, i)).collect();
        let again: Vec<u64> = (0..100).map(|i| replication_seed(42, i)).collect();
        assert_eq!(seeds, again);
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "seed collision");
        let other: Vec<u64> = (0..100).map(|i| replication_seed(43, i)).collect();
        assert_ne!(seeds, other);
    }

    #[test]
    fn results_arrive_in_replication_order() {
        let r = Replicator::new(7);
        let out = r.run(257, |i, seed| (i, seed));
        for (i, &(idx, seed)) in out.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(seed, replication_seed(7, i as u64));
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let work = |i: usize, seed: u64| {
            // A tiny deterministic "simulation".
            let mut acc = seed;
            for _ in 0..100 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
            }
            acc
        };
        let par = Replicator::new(3).run(64, work);
        let seq = Replicator::new(3).threads(1).run(64, work);
        assert_eq!(par, seq);
    }

    #[test]
    fn zero_replications_is_fine() {
        let out: Vec<u64> = Replicator::new(1).run(0, |_, s| s);
        assert!(out.is_empty());
    }
}
