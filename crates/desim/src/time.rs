//! Simulation clock time.

use std::ops::{Add, AddAssign, Sub};

/// A point in simulation time, in seconds.
///
/// A thin `f64` wrapper that restores total ordering so times can key the
/// event heap: construction rejects NaN, and `Ord` is `f64::total_cmp`
/// (which, with NaN excluded, equals numeric order; `-0.0 < +0.0` is the
/// only residual quirk and both compare equal via `PartialEq` semantics of
/// `total_cmp` only to themselves — the kernel never produces `-0.0`).
#[derive(Debug, Clone, Copy, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero — the conventional simulation start.
    pub const ZERO: SimTime = SimTime(0.0);

    /// A time infinitely far in the future (useful as a horizon sentinel).
    pub const INFINITY: SimTime = SimTime(f64::INFINITY);

    /// Wraps a seconds value. Panics on NaN — a NaN time would silently
    /// corrupt the event order.
    pub fn new(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime cannot be NaN");
        SimTime(secs)
    }

    /// The time as seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl PartialEq for SimTime {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0).is_eq()
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for SimTime {
    fn from(secs: f64) -> Self {
        SimTime::new(secs)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;

    fn add(self, dur: f64) -> SimTime {
        SimTime::new(self.0 + dur)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, dur: f64) {
        *self = *self + dur;
    }
}

impl Sub<SimTime> for SimTime {
    /// Elapsed seconds between two times.
    type Output = f64;

    fn sub(self, earlier: SimTime) -> f64 {
        self.0 - earlier.0
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::new(1.0) < SimTime::new(2.0));
        assert!(SimTime::new(-1.0) < SimTime::ZERO);
        assert!(SimTime::new(2.0) <= SimTime::new(2.0));
        assert_eq!(SimTime::new(3.5), SimTime::new(3.5));
        assert!(SimTime::INFINITY > SimTime::new(1e300));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_is_rejected() {
        let _ = SimTime::new(f64::NAN);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::new(10.0) + 2.5;
        assert_eq!(t.as_secs(), 12.5);
        assert_eq!(t - SimTime::new(10.0), 2.5);
        let mut u = SimTime::ZERO;
        u += 4.0;
        assert_eq!(u, SimTime::new(4.0));
        assert_eq!(SimTime::new(1.0).max(SimTime::new(2.0)).as_secs(), 2.0);
        assert_eq!(SimTime::new(1.0).min(SimTime::new(2.0)).as_secs(), 1.0);
    }

    #[test]
    fn sorts_cleanly_in_collections() {
        let mut ts = [
            SimTime::new(5.0),
            SimTime::ZERO,
            SimTime::new(-2.0),
            SimTime::INFINITY,
        ];
        ts.sort();
        assert_eq!(
            ts.iter().map(|t| t.as_secs()).collect::<Vec<_>>(),
            vec![-2.0, 0.0, 5.0, f64::INFINITY]
        );
    }
}
