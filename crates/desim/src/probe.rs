//! Kernel-level instrumentation hook.
//!
//! [`KernelProbe`] observes the run loop itself: one call per executed
//! event, carrying the execution time and the depth of the future-event
//! list *after* the pop. [`Simulation::run_with`] and
//! [`Simulation::step_with`](crate::Simulation::step_with) thread a probe
//! through the loop; the plain `run`/`step` entry points pass
//! [`NoopKernelProbe`], whose empty inline methods monomorphize away — the
//! uninstrumented loop compiles to exactly the pre-probe code.
//!
//! The hook deliberately stays this small: higher-level simulators (the
//! `hpcsim` decision-point engine) own richer probes over their domain
//! events; the kernel only knows times and heap depths.

use crate::time::SimTime;

/// Observer of the kernel run loop. All methods default to empty inline
/// bodies, so an unused hook costs nothing after monomorphization.
pub trait KernelProbe {
    /// Whether this probe records anything. The run loop gates every hook
    /// call on it (`if P::ENABLED { … }`), so a `false` probe's argument
    /// expressions are never even evaluated — the same zero-cost contract
    /// as `hpcsim::observe::Probe::ENABLED`, enforced by simlint's
    /// probe-gating rule.
    const ENABLED: bool = true;

    /// Called after each executed event with its execution time and the
    /// number of events still pending.
    #[inline]
    fn on_execute(&mut self, _time: SimTime, _pending: usize) {}
}

/// The do-nothing probe: `run`/`step` use it, and generic drivers can
/// default to it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopKernelProbe;

impl KernelProbe for NoopKernelProbe {
    const ENABLED: bool = false;
}

/// A minimal recording probe: event count plus peak and cumulative
/// heap depth (mean depth = `depth_sum / events`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounter {
    /// Events executed.
    pub events: u64,
    /// Largest pending-event count observed after any pop.
    pub peak_depth: u64,
    /// Sum of pending-event counts over all pops.
    pub depth_sum: u64,
}

impl EventCounter {
    /// Mean pending-event count per executed event (0 if nothing ran).
    pub fn mean_depth(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.depth_sum as f64 / self.events as f64
        }
    }
}

impl KernelProbe for EventCounter {
    #[inline]
    fn on_execute(&mut self, _time: SimTime, pending: usize) {
        self.events += 1;
        self.peak_depth = self.peak_depth.max(pending as u64);
        self.depth_sum += pending as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::EventQueue;
    use crate::sim::{Event, SimState, Simulation};

    struct Chain(usize);

    impl SimState for Chain {}

    struct Hop;

    impl Event<Chain> for Hop {
        fn execute(self, s: &mut Chain, q: &mut EventQueue<Self>) {
            if s.0 > 0 {
                s.0 -= 1;
                q.schedule_in(1.0, Hop);
            }
        }
    }

    #[test]
    fn counter_sees_every_event_and_tracks_depth() {
        // Three events pre-scheduled, no follow-ups: the probe observes
        // the heap draining 2 → 1 → 0 after the pops.
        let mut sim = Simulation::new(Chain(0));
        for t in [1.0, 2.0, 3.0] {
            sim.queue_mut().schedule(crate::SimTime::new(t), Hop);
        }
        let mut probe = EventCounter::default();
        let executed = sim.run_with(&mut probe);
        assert_eq!(executed, 3);
        assert_eq!(probe.events, 3);
        assert_eq!(probe.peak_depth, 2);
        assert_eq!(probe.depth_sum, 3);
        assert_eq!(probe.mean_depth(), 1.0);
    }

    #[test]
    fn run_with_noop_matches_plain_run() {
        let mut a = Simulation::new(Chain(7));
        a.queue_mut().schedule(crate::SimTime::ZERO, Hop);
        let mut b = Simulation::new(Chain(7));
        b.queue_mut().schedule(crate::SimTime::ZERO, Hop);
        let plain = a.run();
        let probed = b.run_with(&mut NoopKernelProbe);
        assert_eq!(plain, probed);
        assert_eq!(a.now(), b.now());
    }
}
