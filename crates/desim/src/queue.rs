//! The future-event list: a binary heap with stable FIFO tie-breaking.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One scheduled entry. Ordered by `(time, insertion sequence)`, so
/// simultaneous events pop in the order they were scheduled — the property
/// that makes heap-driven schedules deterministic.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// A priority queue of timed events with a monotonic clock.
///
/// The clock (`now`) advances when events are popped; scheduling into the
/// past is a caller bug and panics in debug builds (release builds clamp
/// to `now`, which keeps long optimized runs alive through benign float
/// jitter while still never rewinding the clock).
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    seq: u64,
    now: SimTime,
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::starting_at(SimTime::ZERO)
    }

    /// An empty queue with the clock at `start`.
    pub fn starting_at(start: SimTime) -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: start,
        }
    }

    /// The current clock time (the execution time of the last popped
    /// event, or the start time before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at `time`. Same-time events pop in scheduling
    /// order. Panics in debug builds if `time` is in the past.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        debug_assert!(
            time >= self.now,
            "scheduled an event in the past: {time} < {}",
            self.now
        );
        let time = time.max(self.now);
        self.heap.push(Reverse(Scheduled {
            time,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    /// Schedules `event` after a relative delay from `now`.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        self.schedule(self.now + delay.max(0.0), event);
    }

    /// The execution time of the next event, if any, without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.time)
    }

    /// Pops the next event, advancing the clock to its execution time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(s) = self.heap.pop()?;
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// Pops the next event only if it executes at or before `deadline`
    /// (inclusive). Lets drivers drain "everything due now" — e.g. all
    /// completions within a float-epsilon window — without peek/pop races.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= deadline {
            self.pop()
        } else {
            None
        }
    }

    /// Drops every pending event, keeping the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

impl<E> Clone for EventQueue<E>
where
    E: Clone,
{
    fn clone(&self) -> Self {
        Self {
            heap: self
                .heap
                .iter()
                .map(|Reverse(s)| {
                    Reverse(Scheduled {
                        time: s.time,
                        seq: s.seq,
                        event: s.event.clone(), // simlint: allow(hot-alloc) — replicate/fork path only — hot via `.clone()` name fan-out, never called from the event loop
                    })
                })
                .collect(), // simlint: allow(hot-alloc) — replicate/fork path only — hot via `.clone()` name fan-out, never called from the event loop
            seq: self.seq,
            now: self.now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(5.0), "c");
        q.schedule(SimTime::new(1.0), "a");
        q.schedule(SimTime::new(3.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for label in ["first", "second", "third", "fourth"] {
            q.schedule(SimTime::new(2.0), label);
        }
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["first", "second", "third", "fourth"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(4.0), ());
        q.schedule(SimTime::new(9.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::new(4.0));
        q.pop();
        assert_eq!(q.now(), SimTime::new(9.0));
        assert!(q.pop().is_none());
        assert_eq!(q.now(), SimTime::new(9.0), "clock keeps its final value");
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(1.0), 1);
        q.schedule(SimTime::new(2.0), 2);
        q.schedule(SimTime::new(10.0), 3);
        assert_eq!(q.pop_until(SimTime::new(2.0)), Some((SimTime::new(1.0), 1)));
        assert_eq!(q.pop_until(SimTime::new(2.0)), Some((SimTime::new(2.0), 2)));
        assert_eq!(q.pop_until(SimTime::new(2.0)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::starting_at(SimTime::new(100.0));
        q.schedule_in(5.0, "x");
        assert_eq!(q.peek_time(), Some(SimTime::new(105.0)));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "in the past")]
    fn scheduling_into_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(10.0), ());
        q.pop();
        q.schedule(SimTime::new(1.0), ());
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn scheduling_into_the_past_clamps_in_release() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(10.0), ());
        q.pop();
        q.schedule(SimTime::new(1.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::new(10.0)));
    }

    #[test]
    fn interleaved_scheduling_keeps_global_order() {
        // Schedule-from-within-pop pattern: each popped tick schedules the
        // next; order must stay strictly increasing with FIFO ties.
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 0u32);
        let mut seen = Vec::new();
        while let Some((t, k)) = q.pop() {
            seen.push((t.as_secs(), k));
            if k < 5 {
                q.schedule(t + 1.0, k + 1);
                q.schedule(t + 1.0, 100 + k + 1);
            }
        }
        // At every t ≥ 1 the "k" event was scheduled before the "100+k".
        for w in seen.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        let at_one: Vec<u32> = seen
            .iter()
            .filter(|(t, _)| *t == 1.0)
            .map(|&(_, k)| k)
            .collect();
        assert_eq!(at_one, vec![1, 101]);
    }
}
