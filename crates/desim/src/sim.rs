//! The execution contract and run loop.

use crate::probe::{KernelProbe, NoopKernelProbe};
use crate::queue::EventQueue;
use crate::time::SimTime;

/// Shared state of a simulation, mutated by executing events.
pub trait SimState {
    /// Whether the simulation should stop before executing the next event.
    /// The default never stops early (the queue running dry ends the run).
    fn is_complete(&self, _now: SimTime) -> bool {
        false
    }
}

/// A typed event: the unit of work in a simulation.
///
/// desque-style contract — an event receives exclusive access to the state
/// and to the queue (to schedule follow-up events) — but with a typed
/// payload taken **by value**: simulations define one event enum and pay
/// no boxing or dynamic dispatch per event.
pub trait Event<S: SimState>: Sized {
    /// Executes the event at its scheduled time (`queue.now()`).
    fn execute(self, state: &mut S, queue: &mut EventQueue<Self>);
}

/// A simulation: state plus its future-event list.
///
/// [`Simulation::run`] drives to completion; [`Simulation::step`] executes
/// a single event, which is the hook for drivers that pause between events
/// (e.g. an interactive scheduler exposing decision points, or a debugger
/// single-stepping a model).
#[derive(Debug)]
pub struct Simulation<S: SimState, E: Event<S>> {
    state: S,
    queue: EventQueue<E>,
}

impl<S: SimState, E: Event<S>> Simulation<S, E> {
    /// A simulation over `state` with an empty queue at time zero.
    pub fn new(state: S) -> Self {
        Self::starting_at(state, SimTime::ZERO)
    }

    /// A simulation with the clock initialized to `start`.
    pub fn starting_at(state: S, start: SimTime) -> Self {
        Self {
            state,
            queue: EventQueue::starting_at(start),
        }
    }

    /// The current clock time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Shared access to the state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Exclusive access to the state (initialization / teardown).
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// Exclusive access to the queue (scheduling initial events).
    pub fn queue_mut(&mut self) -> &mut EventQueue<E> {
        &mut self.queue
    }

    /// Shared access to the queue.
    pub fn queue(&self) -> &EventQueue<E> {
        &self.queue
    }

    /// Executes the next event, if any. Returns its execution time.
    pub fn step(&mut self) -> Option<SimTime> {
        self.step_with(&mut NoopKernelProbe)
    }

    /// [`Simulation::step`] with a [`KernelProbe`] observing the pop:
    /// the probe sees the execution time and the pending count after the
    /// pop (before the event schedules follow-ups).
    pub fn step_with<P: KernelProbe>(&mut self, probe: &mut P) -> Option<SimTime> {
        let (time, event) = self.queue.pop()?;
        if P::ENABLED {
            probe.on_execute(time, self.queue.len());
        }
        event.execute(&mut self.state, &mut self.queue);
        Some(time)
    }

    /// Runs until the state reports completion or the queue runs dry.
    /// Returns the number of events executed.
    pub fn run(&mut self) -> usize {
        self.run_with(&mut NoopKernelProbe)
    }

    /// [`Simulation::run`] with a [`KernelProbe`] observing every executed
    /// event. `run` itself passes [`NoopKernelProbe`], whose empty inline
    /// hooks compile away — the plain loop is unchanged.
    pub fn run_with<P: KernelProbe>(&mut self, probe: &mut P) -> usize {
        let mut executed = 0;
        loop {
            if let Some(next) = self.queue.peek_time() {
                if self.state.is_complete(next) {
                    return executed;
                }
            }
            if self.step_with(probe).is_none() {
                return executed;
            }
            executed += 1;
        }
    }

    /// Consumes the simulation, returning the final state.
    pub fn into_state(self) -> S {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An M/D/1-style queue with deterministic interarrival/service times:
    /// arrivals every `gap`, service takes `service`; one server.
    struct Md1 {
        gap: f64,
        service: f64,
        remaining_arrivals: usize,
        in_system: usize,
        served: usize,
        busy: bool,
        total_wait: f64,
        queue_entry_times: Vec<f64>,
    }

    impl SimState for Md1 {}

    enum Md1Event {
        Arrival,
        Departure,
    }

    impl Event<Md1> for Md1Event {
        fn execute(self, s: &mut Md1, q: &mut EventQueue<Self>) {
            let now = q.now();
            match self {
                Md1Event::Arrival => {
                    s.in_system += 1;
                    s.queue_entry_times.push(now.as_secs());
                    if !s.busy {
                        s.busy = true;
                        let entry = s.queue_entry_times.remove(0);
                        s.total_wait += now.as_secs() - entry;
                        q.schedule(now + s.service, Md1Event::Departure);
                    }
                    if s.remaining_arrivals > 0 {
                        s.remaining_arrivals -= 1;
                        q.schedule(now + s.gap, Md1Event::Arrival);
                    }
                }
                Md1Event::Departure => {
                    s.in_system -= 1;
                    s.served += 1;
                    if s.queue_entry_times.is_empty() {
                        s.busy = false;
                    } else {
                        let entry = s.queue_entry_times.remove(0);
                        s.total_wait += now.as_secs() - entry;
                        q.schedule(now + s.service, Md1Event::Departure);
                    }
                }
            }
        }
    }

    fn run_md1(gap: f64, service: f64, arrivals: usize) -> Md1 {
        let mut sim = Simulation::new(Md1 {
            gap,
            service,
            remaining_arrivals: arrivals - 1,
            in_system: 0,
            served: 0,
            busy: false,
            total_wait: 0.0,
            queue_entry_times: Vec::new(),
        });
        sim.queue_mut().schedule(SimTime::ZERO, Md1Event::Arrival);
        sim.run();
        sim.into_state()
    }

    #[test]
    fn underloaded_queue_has_zero_wait() {
        // Service 1s, arrivals every 2s: nobody ever waits.
        let s = run_md1(2.0, 1.0, 50);
        assert_eq!(s.served, 50);
        assert_eq!(s.in_system, 0);
        assert_eq!(s.total_wait, 0.0);
    }

    #[test]
    fn overloaded_queue_accumulates_known_wait() {
        // Service 2s, arrivals every 1s, n arrivals: the k-th arrival waits
        // k seconds (service backlog grows one second per arrival), so the
        // total wait is 0+1+…+(n−1).
        let n = 20;
        let s = run_md1(1.0, 2.0, n);
        assert_eq!(s.served, n);
        let expected: f64 = (0..n).map(|k| k as f64).sum();
        assert_eq!(s.total_wait, expected);
    }

    #[test]
    fn step_allows_pausing_between_events() {
        let mut sim = Simulation::new(Md1 {
            gap: 1.0,
            service: 0.5,
            remaining_arrivals: 3,
            in_system: 0,
            served: 0,
            busy: false,
            total_wait: 0.0,
            queue_entry_times: Vec::new(),
        });
        sim.queue_mut().schedule(SimTime::ZERO, Md1Event::Arrival);
        let mut times = Vec::new();
        while let Some(t) = sim.step() {
            times.push(t.as_secs());
        }
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
        assert_eq!(sim.state().served, 4);
    }

    struct Horizon(f64);

    impl SimState for Horizon {
        fn is_complete(&self, now: SimTime) -> bool {
            now.as_secs() > self.0
        }
    }

    struct Tick;

    impl Event<Horizon> for Tick {
        fn execute(self, _s: &mut Horizon, q: &mut EventQueue<Self>) {
            q.schedule_in(1.0, Tick);
        }
    }

    #[test]
    fn is_complete_stops_an_infinite_model() {
        let mut sim = Simulation::new(Horizon(100.0));
        sim.queue_mut().schedule(SimTime::ZERO, Tick);
        let executed = sim.run();
        assert_eq!(executed, 101, "ticks at t = 0..=100");
        assert!(sim.now().as_secs() <= 100.0);
    }
}
