//! Shared experiment infrastructure for the paper-reproduction binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/`, and
//! since the scenario redesign each binary is the same three steps:
//! **build [`ScenarioSpec`]s → run them → write the reports** (one shared
//! report-writer, [`write_reports`]). This library provides the pieces
//! they share: spec construction helpers bound to the experiment
//! [`Scale`], agent training with on-disk checkpoint caching (so Table 4,
//! Table 5 and the ablations reuse the same trained models), and result
//! emission (pretty table to stdout + JSON under `results/`).

use hpcsim::prelude::*;
use rlbf::prelude::*;
use rlbf::ObsConfig;
use serde::Serialize;
use std::path::{Path, PathBuf};
use swf::{Trace, TracePreset, TraceSource};

pub mod scale;

pub use scale::Scale;

/// The deterministic seed experiments generate traces with.
pub const TRACE_SEED: u64 = 20240914;

/// Generates the evaluation trace for a preset at the experiment scale.
pub fn load_trace(preset: TracePreset, scale: &Scale) -> Trace {
    preset.generate(scale.trace_jobs, TRACE_SEED)
}

/// The [`TraceSource`] equivalent of [`load_trace`]: the same preset ×
/// scale × [`TRACE_SEED`] recipe as serializable spec data.
pub fn preset_source(preset: TracePreset, scale: &Scale) -> TraceSource {
    TraceSource::Preset {
        preset,
        jobs: scale.trace_jobs,
        seed: TRACE_SEED,
    }
}

/// A spec builder for the paper's §4.3 evaluation protocol at this scale:
/// `preset` trace, sampled windows under `eval_seed`.
pub fn eval_builder(preset: TracePreset, scale: &Scale, eval_seed: u64) -> ScenarioBuilder {
    ScenarioSpec::builder(preset_source(preset, scale)).windows(
        scale.eval_samples,
        scale.eval_window,
        eval_seed,
    )
}

/// The shared report-writer: every bench binary emits its grid as a list
/// of uniform [`RunReport`]s under `results/<name>.json`.
pub fn write_reports(name: &str, reports: &[RunReport]) {
    write_json(name, &reports);
}

/// Prints reports as a table: canonical labels as row names (derived from
/// each spec — bins never format their own), one column per selected
/// metric of the first report. Tables are **diagnostics** and go to
/// stderr: stdout is reserved for machine-readable output (`scenario run
/// … --stdout` pipes JSON), so a human-facing row must never interleave
/// with it.
pub fn report_table(title: &str, reports: &[RunReport]) {
    let Some(first) = reports.first() else {
        eprintln!("\n## {title}\n(no rows)");
        return;
    };
    let mut header: Vec<&str> = vec!["scenario", "jobs"];
    header.extend(first.selected.iter().map(|s| s.metric.as_str()));
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            let mut row = vec![r.label.clone(), r.jobs.to_string()];
            row.extend(r.selected.iter().map(|s| format!("{:.2}", s.value)));
            row
        })
        .collect();
    print_table(title, &header, &rows);
}

/// Where experiment outputs (JSON + agent checkpoints) live.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("RLBF_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    std::fs::create_dir_all(dir.join("agents")).expect("can create results dir");
    dir
}

/// Writes a serializable result as pretty JSON under `results/`.
pub fn write_json(name: &str, value: &impl Serialize) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("result serializes");
    std::fs::write(&path, json).expect("can write result file");
    eprintln!("wrote {}", path.display());
}

/// Where [`train_or_load_agent`] caches the checkpoint for this
/// (preset, policy, scale) cell — also the `checkpoint` a spec's agent
/// slot should carry so the committed report names the exact deployed
/// model.
pub fn agent_checkpoint_path(preset: TracePreset, base: Policy, scale: &Scale) -> PathBuf {
    // The feature count is part of the key: a checkpoint trained on a
    // different observation layout cannot be deployed (matrix dims differ).
    let key = format!(
        "rlbf-{}-{}-e{}t{}j{}o{}f{}",
        preset.name().to_ascii_lowercase(),
        base.name().to_ascii_lowercase(),
        scale.epochs,
        scale.traj_per_epoch,
        scale.jobs_per_traj,
        scale.max_obsv_size,
        rlbf::JOB_FEATURES
    );
    results_dir().join("agents").join(format!("{key}.json"))
}

/// Trains (or loads a cached) RLBackfilling agent for `preset` with the
/// given base policy. Checkpoints are keyed by preset, policy and scale so
/// Table 4, Table 5 and the ablations share models instead of retraining.
pub fn train_or_load_agent(preset: TracePreset, base: Policy, scale: &Scale) -> RlbfAgent {
    let path = agent_checkpoint_path(preset, base, scale);
    let key = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    if path.exists() {
        if let Ok(agent) = RlbfAgent::load(&path) {
            eprintln!("loaded cached agent {key}");
            return agent;
        }
    }
    eprintln!("training agent {key} …");
    let trace = load_trace(preset, scale);
    let result = train(&trace, scale.train_config(base));
    let agent = RlbfAgent::from_training(&result, preset.name());
    agent.save(&path).expect("can save agent checkpoint");
    agent
}

/// Renders a row-major table with a header — on stderr, like every other
/// diagnostic (see [`report_table`]).
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    eprintln!("\n## {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    eprintln!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    eprintln!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        eprintln!("{}", fmt_row(row));
    }
}

/// Formats a bsld value the way the paper's tables do.
pub fn fmt_bsld(v: f64) -> String {
    format!("{v:.2}")
}

/// A not-applicable cell (the paper prints `-` for EASY on synthetic
/// traces, which have no user estimates).
pub fn na() -> String {
    "-".to_string()
}

/// Environment/network configs at a given observation size (keeps the two
/// in agreement, which `rlbf::train` asserts).
pub fn obs_configs(max_obsv_size: usize) -> (EnvConfig, NetConfig) {
    let obs = ObsConfig { max_obsv_size };
    (
        EnvConfig {
            obs,
            ..EnvConfig::default()
        },
        NetConfig {
            obs,
            ..NetConfig::default()
        },
    )
}

/// Checks a path exists relative to the workspace (used by smoke tests).
pub fn workspace_file(rel: &str) -> bool {
    Path::new(rel).exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_flags() {
        let s = Scale::from_args(["--quick".to_string()].iter().cloned());
        assert_eq!(s.epochs, Scale::quick().epochs);
        let f = Scale::from_args(["--full".to_string()].iter().cloned());
        assert_eq!(f.epochs, Scale::full().epochs);
        let custom = Scale::from_args(
            [
                "--epochs".to_string(),
                "7".to_string(),
                "--samples".to_string(),
                "3".to_string(),
            ]
            .iter()
            .cloned(),
        );
        assert_eq!(custom.epochs, 7);
        assert_eq!(custom.eval_samples, 3);
    }

    #[test]
    fn obs_configs_agree() {
        let (env, net) = obs_configs(48);
        assert_eq!(env.obs, net.obs);
        assert_eq!(env.obs.max_obsv_size, 48);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_bsld(1.23456), "1.23");
        assert_eq!(na(), "-");
    }
}
