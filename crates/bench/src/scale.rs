//! Experiment scaling: the paper's full protocol vs a laptop-quick default.
//!
//! The paper trains for hundreds of epochs of 100 trajectories × 256 jobs
//! with a 128-slot observation, and evaluates on 10 random windows of 1024
//! jobs. Running *all* experiments at that scale takes hours; the default
//! scale preserves every protocol shape (same windows, same baselines, same
//! pipeline) at a budget that finishes in minutes. `--full` restores the
//! paper's numbers; individual knobs (`--epochs N`, `--traj N`, …)
//! override either.

use hpcsim::Policy;
use rlbf::prelude::*;
use serde::{Deserialize, Serialize};

/// All experiment-scale knobs in one place.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    /// Jobs generated per preset trace (paper: first 10K of each trace).
    pub trace_jobs: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Trajectories per epoch (paper: 100).
    pub traj_per_epoch: usize,
    /// Jobs per trajectory (paper: 256).
    pub jobs_per_traj: usize,
    /// Observation slots (paper: 128).
    pub max_obsv_size: usize,
    /// Evaluation windows (paper: 10).
    pub eval_samples: usize,
    /// Jobs per evaluation window (paper: 1024).
    pub eval_window: usize,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// The default laptop-quick scale.
    pub fn quick() -> Self {
        Self {
            trace_jobs: 4000,
            epochs: 25,
            traj_per_epoch: 24,
            jobs_per_traj: 256,
            max_obsv_size: 64,
            eval_samples: 10,
            eval_window: 1024,
            seed: 1,
        }
    }

    /// The paper's protocol (§4.1.1, §4.3).
    pub fn full() -> Self {
        Self {
            trace_jobs: 10_000,
            epochs: 200,
            traj_per_epoch: 100,
            jobs_per_traj: 256,
            max_obsv_size: 128,
            eval_samples: 10,
            eval_window: 1024,
            seed: 1,
        }
    }

    /// Parses `--quick`, `--full` and per-knob overrides from an argument
    /// stream (typically `std::env::args().skip(1)`).
    pub fn from_args(args: impl Iterator<Item = String>) -> Self {
        let args: Vec<String> = args.collect();
        let mut scale = if args.iter().any(|a| a == "--full") {
            Self::full()
        } else {
            Self::quick()
        };
        let mut i = 0;
        while i < args.len() {
            let take = |i: usize| -> Option<usize> { args.get(i + 1)?.parse().ok() };
            match args[i].as_str() {
                "--epochs" => scale.epochs = take(i).expect("--epochs N"),
                "--traj" => scale.traj_per_epoch = take(i).expect("--traj N"),
                "--jobs-per-traj" => scale.jobs_per_traj = take(i).expect("--jobs-per-traj N"),
                "--obsv" => scale.max_obsv_size = take(i).expect("--obsv N"),
                "--samples" => scale.eval_samples = take(i).expect("--samples N"),
                "--window" => scale.eval_window = take(i).expect("--window N"),
                "--trace-jobs" => scale.trace_jobs = take(i).expect("--trace-jobs N"),
                "--seed" => {
                    scale.seed = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .expect("--seed N")
                }
                _ => {}
            }
            i += 1;
        }
        scale
    }

    /// Parses the process's own CLI arguments.
    pub fn from_env() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// The training configuration this scale implies.
    pub fn train_config(&self, base_policy: Policy) -> TrainConfig {
        let (env, net) = crate::obs_configs(self.max_obsv_size);
        TrainConfig {
            base_policy,
            epochs: self.epochs,
            traj_per_epoch: self.traj_per_epoch,
            jobs_per_traj: self.jobs_per_traj,
            env,
            net,
            seed: self.seed,
            ..TrainConfig::default()
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::quick()
    }
}
