//! **Table 3**: the base schedulers' priority functions — their ranking
//! behaviour on a probe queue, plus the policies scheduling the same
//! Lublin-1 workload under EASY backfilling, expressed as one scenario
//! spec per row.
//!
//! The FCFS row's spec is committed at
//! `examples/scenarios/table3_fcfs.json` (emitted by `scenario examples`)
//! and its report at `results/table3_fcfs.json`; the root test
//! `tests/scenario_reproduce.rs` pins the committed spec to reproduce the
//! committed report **byte-identically**.
//!
//! ```text
//! cargo run -p bench --release --bin table3_policies
//! ```

use bench::{print_table, report_table, write_reports, TRACE_SEED};
use hpcsim::prelude::*;
use swf::{Job, TracePreset, TraceSource};

/// Row count of the scenario section — small enough for the CI smoke
/// step to run in debug mode.
pub const TABLE3_JOBS: usize = 1000;

/// The spec behind one Table 3 row (shared with `scenario examples` via
/// duplication-by-construction: the committed example file must equal
/// this for the FCFS policy — pinned by `tests/scenario_reproduce.rs`).
fn row_spec(policy: Policy) -> ScenarioSpec {
    ScenarioSpec::builder(TraceSource::Preset {
        preset: TracePreset::Lublin1,
        jobs: TABLE3_JOBS,
        seed: TRACE_SEED,
    })
    .policy(policy)
    .backfill(Backfill::Easy(RuntimeEstimator::RequestTime))
    .metrics(vec![
        MetricKind::BoundedSlowdown,
        MetricKind::Wait,
        MetricKind::Utilization,
    ])
    .build()
}

fn main() {
    println!("Table 3 — scheduler priority functions (lower score runs first)");
    println!("  FCFS:  score(t) = st");
    println!("  SJF:   score(t) = rt");
    println!("  WFP3:  score(t) = -(wt/rt)^3 * nt");
    println!("  F1:    score(t) = log10(rt)*nt + 870*log10(st)");

    // A probe queue exercising each dimension: age, length, width.
    let now = 7200.0;
    let queue = [
        ("old small short", Job::new(0, 0.0, 2, 600.0, 600.0)),
        ("old wide long", Job::new(1, 0.0, 64, 36000.0, 36000.0)),
        ("new small short", Job::new(2, 7000.0, 2, 600.0, 600.0)),
        ("new wide short", Job::new(3, 7000.0, 64, 600.0, 600.0)),
        ("mid medium", Job::new(4, 3600.0, 16, 7200.0, 7200.0)),
    ];

    let mut rows = Vec::new();
    for (label, job) in &queue {
        let mut row = vec![
            label.to_string(),
            format!("{:.0}", job.submit),
            format!("{:.0}", job.request_time),
            job.procs.to_string(),
        ];
        for p in Policy::ALL {
            row.push(format!("{:.1}", p.score(job, now)));
        }
        rows.push(row);
    }
    print_table(
        "Policy scores on a probe queue (now = 7200s)",
        &["job", "st", "rt", "nt", "FCFS", "SJF", "WFP3", "F1"],
        &rows,
    );

    for p in Policy::ALL {
        let mut q: Vec<Job> = queue.iter().map(|(_, j)| *j).collect();
        p.sort_queue(&mut q, now);
        let order: Vec<String> = q
            .iter()
            .map(|j| {
                queue
                    .iter()
                    .find(|(_, k)| k.id == j.id)
                    .unwrap()
                    .0
                    .to_string()
            })
            .collect();
        println!("{:<5} runs: {}", p.name(), order.join("  ->  "));
    }

    // The policies as schedulers: one scenario spec per row, EASY
    // backfilling on the Lublin-1 workload.
    let reports: Vec<RunReport> = Policy::ALL
        .iter()
        .map(|&p| hpcsim::scenario::run(&row_spec(p)).expect("heuristic spec runs"))
        .collect();
    report_table(
        &format!("Table 3 — policies scheduling Lublin-1 ({TABLE3_JOBS} jobs, EASY)"),
        &reports,
    );
    write_reports("table3_policies", &reports);
}
