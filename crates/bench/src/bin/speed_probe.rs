//! Kernel-vs-seed throughput probe. Prints a table and writes
//! `results/bench_kernel.json` — the committed speedup numbers referenced
//! by ARCHITECTURE.md and the PR notes.
//!
//! "seed" is the full seed cost model preserved in `hpcsim::reference`:
//! linear-scan engine + naive availability profile + seed pass logic —
//! selected here as `Engine::SeedNaive` in an otherwise identical
//! scenario spec, so each probe row is the *same* spec run on two
//! engines. Both sides realize identical schedules (pinned by the
//! `event_equivalence` suite), so this measures engines, not algorithms.
//!
//! ```text
//! cargo run --release -p bench --bin speed_probe            # quick sizes
//! cargo run --release -p bench --bin speed_probe -- --full  # adds 100k
//! cargo run --release -p bench --bin speed_probe -- --partitions 2,4
//! cargo run --release -p bench --bin speed_probe -- --backfill cons --jobs 1000000
//! cargo run --release -p bench --bin speed_probe -- --migration
//! cargo run --release -p bench --bin speed_probe -- --backfill cons --jobs 10000 --floor 60000
//! ```
//!
//! * `--partitions N[,M…]` adds kernel-only rows for N-partition splits of
//!   the probe cluster (least-loaded routing; the seed engine has no
//!   partitioned mode, so there is no baseline column for those rows).
//! * `--backfill easy|cons` filters the probe (and skips the
//!   `bench_kernel.json` refresh, so a partial probe never clobbers the
//!   committed grid); `--jobs N[,M…]` replaces the size grid — any size
//!   goes, e.g. `--backfill cons --jobs 1000000` is the 1M-job
//!   conservative run the incremental planner makes routine.
//! * `--migration` times the decision-point migration scenarios (the
//!   `migration` bin's 2-/4-partition grid) end-to-end and merges the
//!   rows into `results/bench_migration_perf.json` under `--phase`
//!   (default `pr5-incremental`): rows of *other* phases are preserved,
//!   so the committed file keeps the frozen pre-incremental baseline next
//!   to the refreshed numbers — the perf trajectory in one file.
//! * `--floor J` exits nonzero if any measured kernel row falls below `J`
//!   jobs/sec — the CI perf smoke that keeps quadratic rebuilds from
//!   silently returning.
//! * `--telemetry` threads a [`Recorder`] probe through every timed run
//!   (so `--floor` then gates the *instrumented* throughput — the CI
//!   probe-overhead smoke runs the same floor with and without this
//!   flag), prints the deterministic counters per size, and merges the
//!   rows into `results/telemetry_scale.json` — the heap-depth and
//!   bucket-scan distributions the calendar-queue roadmap item needs.

use bench::{results_dir, write_json, TRACE_SEED};
use hpcsim::prelude::*;
use serde::Serialize;
use std::time::Instant;
use swf::{Trace, TracePreset, TraceSource};

#[derive(Serialize)]
struct Row {
    trace: String,
    jobs: usize,
    backfill: String,
    kernel_ms: f64,
    kernel_jobs_per_sec: f64,
    /// `None` for sizes where the seed cost model is impractically slow.
    seed_ms: Option<f64>,
    seed_jobs_per_sec: Option<f64>,
    speedup: Option<f64>,
}

#[derive(Serialize)]
struct TelemetryRow {
    trace: String,
    jobs: usize,
    backfill: String,
    telemetry: Telemetry,
}

#[derive(Serialize)]
struct MigrationRow {
    phase: String,
    scenario: String,
    parts: usize,
    router: String,
    backfill: String,
    reroute: String,
    jobs: usize,
    migrations: usize,
    wall_ms: f64,
    jobs_per_sec: f64,
}

fn time(reps: usize, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn arg_value<'a>(args: &'a [String], flag: &str) -> Option<&'a String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let migration = args.iter().any(|a| a == "--migration");
    let telemetry = args.iter().any(|a| a == "--telemetry");
    let backfill_filter = arg_value(&args, "--backfill").map(|s| s.to_ascii_lowercase());
    let jobs_override: Option<Vec<usize>> = arg_value(&args, "--jobs").map(|list| {
        list.split(',')
            .map(|v| v.parse().expect("--jobs N[,M…]"))
            .collect()
    });
    let floor: Option<f64> = arg_value(&args, "--floor").map(|v| v.parse().expect("--floor J"));
    let phase = arg_value(&args, "--phase")
        .cloned()
        .unwrap_or_else(|| "pr5-incremental".to_string());
    let partitions: Vec<usize> = arg_value(&args, "--partitions")
        .map(|list| {
            list.split(',')
                .map(|v| v.parse().expect("--partitions N[,M…]"))
                .collect()
        })
        .unwrap_or_default();
    let preset = TracePreset::Lublin1;
    let mut rows = Vec::new();
    let mut telemetry_rows = Vec::new();

    // A backfill-filtered probe never refreshes bench_kernel.json (it
    // would drop the other backfill's committed rows); seed-baseline
    // timing only serves that file, so filtered runs skip it too. A
    // telemetry probe times the *instrumented* kernel path, so its rows
    // must never clobber the committed uninstrumented grid either.
    let filtered = backfill_filter.is_some() || telemetry;
    // A migration-only invocation (no explicit size grid) measures just
    // the migration scenarios: it must not rewrite the committed
    // bench_kernel.json grid with the small default sizes.
    let base_requested = jobs_override.is_some() || full || !partitions.is_empty() || !migration;
    let cases: Vec<(usize, bool)> = match &jobs_override {
        // The seed cost model is cubic-ish in practice: only time it at
        // sizes where a rep finishes in seconds.
        Some(ns) => ns.iter().map(|&n| (n, n <= 10_000)).collect(),
        None if !base_requested => Vec::new(),
        None if full => vec![(1_000, true), (10_000, true), (100_000, false)],
        None => vec![(1_000, true), (10_000, true)],
    };

    let backfills: Vec<(&str, Backfill)> = [
        ("EASY", Backfill::Easy(RuntimeEstimator::RequestTime)),
        (
            "CONS",
            Backfill::Conservative(RuntimeEstimator::RequestTime),
        ),
    ]
    .into_iter()
    .filter(|(label, _)| {
        backfill_filter
            .as_deref()
            .is_none_or(|f| label.eq_ignore_ascii_case(f))
    })
    .collect();
    if backfills.is_empty() {
        eprintln!(
            "--backfill {:?} matches nothing (use easy|cons)",
            backfill_filter.as_deref().unwrap_or("")
        );
        std::process::exit(1);
    }

    for &(n, seed_feasible) in &cases {
        let source = TraceSource::Preset {
            preset,
            jobs: n,
            seed: TRACE_SEED,
        };
        // Materialize once, outside the timed region: the probe measures
        // engines, not trace generation (`scenario::execute` is the
        // engine step over an already-materialized trace).
        let trace = source.materialize().expect("preset sources materialize");
        let reps = (20_000 / n).clamp(1, 20);
        for &(label, bf) in &backfills {
            // The same spec, two engines: only `engine` differs between
            // the kernel row and the seed-baseline row.
            let spec = |engine: Engine| {
                ScenarioSpec::builder(source.clone())
                    .backfill(bf)
                    .engine(engine)
                    .build()
            };
            let kernel_spec = spec(Engine::Kernel);
            let seed_spec = spec(Engine::SeedNaive);
            let k = if telemetry {
                time(reps, || {
                    std::hint::black_box(
                        hpcsim::scenario::execute_recorded(
                            &trace,
                            &kernel_spec,
                            Recorder::default(),
                        )
                        .expect("spec runs"),
                    );
                })
            } else {
                time(reps, || {
                    std::hint::black_box(
                        hpcsim::scenario::execute(&trace, &kernel_spec).expect("spec runs"),
                    );
                })
            };
            if telemetry {
                telemetry_rows.push(collect_telemetry(
                    &trace,
                    &kernel_spec,
                    preset.name(),
                    label,
                ));
            }
            let s = (seed_feasible && !filtered).then(|| {
                time(reps.min(3), || {
                    std::hint::black_box(
                        hpcsim::scenario::execute(&trace, &seed_spec).expect("spec runs"),
                    );
                })
            });
            println!(
                "{n:>7} jobs {label}  kernel {:>9.1} ms ({:>8.0} jobs/s)   seed {}   speedup {}",
                k * 1e3,
                n as f64 / k,
                s.map_or("      (skipped)".into(), |s| format!(
                    "{:>9.1} ms ({:>8.0} jobs/s)",
                    s * 1e3,
                    n as f64 / s
                )),
                s.map_or("    -".into(), |s| format!("{:>5.2}x", s / k)),
            );
            rows.push(Row {
                trace: preset.name().to_string(),
                jobs: n,
                backfill: label.to_string(),
                kernel_ms: k * 1e3,
                kernel_jobs_per_sec: n as f64 / k,
                seed_ms: s.map(|s| s * 1e3),
                seed_jobs_per_sec: s.map(|s| n as f64 / s),
                speedup: s.map(|s| s / k),
            });
        }
    }

    for &parts in &partitions {
        let n = 10_000;
        let source = TraceSource::PartitionedPreset {
            preset,
            parts,
            jobs: n,
            seed: TRACE_SEED,
        };
        let layout = source.layout().expect("partitioned source has a layout");
        let trace = source
            .materialize()
            .expect("partitioned source materializes");
        let jobs = trace.len();
        for &(label, bf) in &backfills {
            let spec = ScenarioSpec::builder(source.clone())
                .platform(Platform::from_layout(&layout, RouterSpec::LeastLoaded))
                .backfill(bf)
                .build();
            let k = time(2, || {
                std::hint::black_box(hpcsim::scenario::execute(&trace, &spec).expect("spec runs"));
            });
            println!(
                "{jobs:>7} jobs {label}  kernel {:>9.1} ms ({:>8.0} jobs/s)   {parts}-partition (no seed baseline)",
                k * 1e3,
                jobs as f64 / k,
            );
            rows.push(Row {
                trace: source.label(),
                jobs,
                backfill: label.to_string(),
                kernel_ms: k * 1e3,
                kernel_jobs_per_sec: jobs as f64 / k,
                seed_ms: None,
                seed_jobs_per_sec: None,
                speedup: None,
            });
        }
    }

    if !filtered && !rows.is_empty() {
        write_json("bench_kernel", &rows);
    } else if filtered && base_requested {
        eprintln!("filtered probe: skipping the bench_kernel.json refresh");
    }

    if !telemetry_rows.is_empty() {
        write_telemetry_rows(&telemetry_rows);
    }

    if migration {
        run_migration_rows(&phase, &backfills);
    }

    if let Some(floor) = floor {
        // An empty measurement set must fail loudly, not pass vacuously —
        // a typo'd filter would otherwise turn the CI gate into a no-op.
        if rows.is_empty() {
            eprintln!("--floor given but no kernel rows were measured (check the filters)");
            std::process::exit(1);
        }
        let worst = rows
            .iter()
            .map(|r| r.kernel_jobs_per_sec)
            .fold(f64::INFINITY, f64::min);
        if !floor_passes(worst, floor) {
            eprintln!("PERF REGRESSION: slowest kernel row {worst:.0} jobs/s < floor {floor:.0}");
            std::process::exit(1);
        }
        println!("perf floor ok: slowest kernel row {worst:.0} jobs/s ≥ floor {floor:.0}");
    }
}

/// The `--floor` acceptance predicate, explicit about its boundary: a row
/// **exactly at** the floor passes (`>=`), and a NaN measurement fails —
/// the negated-`<` formulation this replaces silently passed NaN, which
/// would have turned a broken measurement into a green CI gate.
fn floor_passes(worst_jobs_per_sec: f64, floor: f64) -> bool {
    worst_jobs_per_sec >= floor
}

/// One recorded (counters-only) run of `spec` over `trace`, reduced to a
/// committed-artifact row. The schedule realized under the recorder is
/// bitwise the uninstrumented one; only the telemetry is kept.
fn collect_telemetry(
    trace: &Trace,
    spec: &ScenarioSpec,
    trace_label: &str,
    backfill: &str,
) -> TelemetryRow {
    let (_, rec) = hpcsim::scenario::execute_recorded(trace, spec, Recorder::default())
        .expect("kernel spec runs recorded");
    let t = rec.telemetry().clone();
    eprintln!(
        "{:>7} jobs {backfill}  telemetry: {} events (heap peak {} mean {:.1}), \
         backfill {}/{} hits, {} repairs, {} fit calls / {} buckets",
        trace.len(),
        t.events,
        t.heap_depth_peak,
        t.heap_depth_mean(),
        t.backfill_hits,
        t.backfill_attempts,
        t.plan_repairs.iter().map(|r| r.count).sum::<u64>(),
        t.earliest_fit_calls,
        t.earliest_fit_buckets_scanned,
    );
    TelemetryRow {
        trace: trace_label.to_string(),
        jobs: trace.len(),
        backfill: backfill.to_string(),
        telemetry: t,
    }
}

/// Merges freshly measured telemetry rows into
/// `results/telemetry_scale.json` by (trace, jobs, backfill) key: a
/// partial probe (e.g. the CI 10k smoke) replaces only the cells it
/// re-measured, so the committed 100k/1M distributions survive. The
/// counters are deterministic, so a re-measured cell is byte-identical.
fn write_telemetry_rows(rows: &[TelemetryRow]) {
    fn key(row: &serde_json::Value) -> (String, u64, String) {
        let field = |k: &str| -> serde_json::Value {
            let serde_json::Value::Object(fields) = row else {
                return serde_json::Value::Null;
            };
            fields
                .iter()
                .find(|(name, _)| name == k)
                .map(|(_, v)| v.clone())
                .unwrap_or(serde_json::Value::Null)
        };
        let as_str = |v: serde_json::Value| match v {
            serde_json::Value::String(s) => s,
            other => serde_json::to_string(&other).unwrap_or_default(),
        };
        let jobs = match field("jobs") {
            serde_json::Value::Number(n) => n.as_f64() as u64,
            _ => 0,
        };
        (as_str(field("trace")), jobs, as_str(field("backfill")))
    }
    let path = results_dir().join("telemetry_scale.json");
    let mut merged: Vec<serde_json::Value> = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| serde_json::from_str::<Vec<serde_json::Value>>(&s).ok())
        .unwrap_or_default();
    let fresh: Vec<serde_json::Value> = rows
        .iter()
        .map(|r| {
            let json = serde_json::to_string(r).expect("row serializes");
            serde_json::from_str(&json).expect("row round-trips")
        })
        .collect();
    let fresh_keys: Vec<_> = fresh.iter().map(key).collect();
    merged.retain(|r| !fresh_keys.contains(&key(r)));
    merged.extend(fresh);
    merged.sort_by_key(key);
    write_json("telemetry_scale", &merged);
}

/// Times the decision-point migration scenarios (the `migration` bin's
/// grid, timing-focused) and merges the rows into
/// `results/bench_migration_perf.json` under `phase`, preserving rows of
/// other phases — before/after numbers live in the same file.
fn run_migration_rows(phase: &str, backfills: &[(&str, Backfill)]) {
    const DECISION_POINTS: ReroutePolicy = ReroutePolicy::AtDecisionPoints {
        max_moves_per_job: 3,
        min_gain_secs: 60.0,
    };
    let routers = [
        RouterSpec::LeastLoaded,
        RouterSpec::EarliestStart(RuntimeEstimator::RequestTime),
    ];
    let mut rows: Vec<MigrationRow> = Vec::new();
    for parts in [2usize, 4] {
        let source = TraceSource::PartitionedPreset {
            preset: TracePreset::Lublin1,
            parts,
            jobs: 10_000,
            seed: TRACE_SEED,
        };
        let layout = source.layout().expect("partitioned source has a layout");
        let trace = source
            .materialize()
            .expect("partitioned source materializes");
        for router in routers {
            for &(label, bf) in backfills {
                let spec = ScenarioSpec::builder(source.clone())
                    .platform(Platform::from_layout(&layout, router).rerouted(DECISION_POINTS))
                    .policy(Policy::Fcfs)
                    .backfill(bf)
                    .build();
                let t0 = Instant::now();
                let result = hpcsim::scenario::execute(&trace, &spec).expect("spec runs");
                let wall = t0.elapsed().as_secs_f64();
                println!(
                    "{:>7} jobs {label}  {}p decision-points {:<14} {:>8.1} ms ({:>7.0} jobs/s, {} moves)",
                    trace.len(),
                    parts,
                    router.label(),
                    wall * 1e3,
                    trace.len() as f64 / wall,
                    result.migrations,
                );
                rows.push(MigrationRow {
                    phase: phase.to_string(),
                    scenario: source.label(),
                    parts,
                    router: router.label().to_string(),
                    backfill: label.to_string(),
                    reroute: DECISION_POINTS.label().to_string(),
                    jobs: trace.len(),
                    migrations: result.migrations,
                    wall_ms: wall * 1e3,
                    jobs_per_sec: trace.len() as f64 / wall,
                });
            }
        }
    }
    // Merge with the committed file: keep every row of other phases (the
    // frozen pre-incremental baseline), and replace only the
    // (phase, backfill) cells actually re-measured — a backfill-filtered
    // probe must not drop the other backfill's committed rows.
    fn field_str(row: &serde_json::Value, key: &str) -> String {
        let serde_json::Value::Object(fields) = row else {
            return String::new();
        };
        match fields.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
            Some(serde_json::Value::String(s)) => s.clone(),
            Some(other) => serde_json::to_string(other).unwrap_or_default(),
            None => String::new(),
        }
    }
    let path = results_dir().join("bench_migration_perf.json");
    let mut merged: Vec<serde_json::Value> = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| serde_json::from_str::<Vec<serde_json::Value>>(&s).ok())
        .unwrap_or_default();
    let measured: Vec<&str> = backfills.iter().map(|&(label, _)| label).collect();
    merged.retain(|r| {
        field_str(r, "phase") != phase || !measured.contains(&field_str(r, "backfill").as_str())
    });
    merged.extend(rows.iter().map(|r| {
        let json = serde_json::to_string(r).expect("row serializes");
        serde_json::from_str(&json).expect("row round-trips")
    }));
    merged.sort_by_key(|r| {
        (
            field_str(r, "phase"),
            // Numeric sort: "16" must not order before "2".
            field_str(r, "parts").parse::<u64>().unwrap_or(0),
            field_str(r, "router"),
            field_str(r, "backfill"),
        )
    });
    write_json("bench_migration_perf", &merged);
}

#[cfg(test)]
mod tests {
    use super::floor_passes;

    #[test]
    fn floor_boundary_is_inclusive_and_nan_fails() {
        // Exactly at the floor passes; infinitesimally below fails.
        assert!(floor_passes(60_000.0, 60_000.0));
        assert!(!floor_passes(59_999.9, 60_000.0));
        assert!(floor_passes(60_000.1, 60_000.0));
        // A NaN measurement is a broken probe, never a green gate.
        assert!(!floor_passes(f64::NAN, 60_000.0));
        // Degenerate-but-defined edges.
        assert!(floor_passes(f64::INFINITY, 60_000.0));
        assert!(!floor_passes(f64::NEG_INFINITY, 60_000.0));
    }
}
