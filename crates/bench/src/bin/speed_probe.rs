//! Kernel-vs-seed throughput probe. Prints a table and writes
//! `results/bench_kernel.json` — the committed speedup numbers referenced
//! by ARCHITECTURE.md and the PR notes.
//!
//! "seed" is the full seed cost model preserved in `hpcsim::reference`:
//! linear-scan engine + naive availability profile + seed pass logic —
//! selected here as `Engine::SeedNaive` in an otherwise identical
//! scenario spec, so each probe row is the *same* spec run on two
//! engines. Both sides realize identical schedules (pinned by the
//! `event_equivalence` suite), so this measures engines, not algorithms.
//!
//! ```text
//! cargo run --release -p bench --bin speed_probe            # quick sizes
//! cargo run --release -p bench --bin speed_probe -- --full  # adds 100k
//! cargo run --release -p bench --bin speed_probe -- --partitions 2,4
//! ```
//!
//! `--partitions N[,M…]` adds kernel-only rows for N-partition splits of
//! the probe cluster (least-loaded routing; the seed engine has no
//! partitioned mode, so there is no baseline column for those rows).

use bench::{write_json, TRACE_SEED};
use hpcsim::prelude::*;
use serde::Serialize;
use std::time::Instant;
use swf::{TracePreset, TraceSource};

#[derive(Serialize)]
struct Row {
    trace: String,
    jobs: usize,
    backfill: String,
    kernel_ms: f64,
    kernel_jobs_per_sec: f64,
    /// `None` for sizes where the seed cost model is impractically slow.
    seed_ms: Option<f64>,
    seed_jobs_per_sec: Option<f64>,
    speedup: Option<f64>,
}

fn time(reps: usize, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let partitions: Vec<usize> = args
        .iter()
        .position(|a| a == "--partitions")
        .and_then(|i| args.get(i + 1))
        .map(|list| {
            list.split(',')
                .map(|v| v.parse().expect("--partitions N[,M…]"))
                .collect()
        })
        .unwrap_or_default();
    let preset = TracePreset::Lublin1;
    let mut rows = Vec::new();

    let cases: Vec<(usize, bool)> = if full {
        vec![(1_000, true), (10_000, true), (100_000, false)]
    } else {
        vec![(1_000, true), (10_000, true)]
    };

    let backfills = [
        ("EASY", Backfill::Easy(RuntimeEstimator::RequestTime)),
        (
            "CONS",
            Backfill::Conservative(RuntimeEstimator::RequestTime),
        ),
    ];

    for &(n, seed_feasible) in &cases {
        let source = TraceSource::Preset {
            preset,
            jobs: n,
            seed: TRACE_SEED,
        };
        // Materialize once, outside the timed region: the probe measures
        // engines, not trace generation (`scenario::execute` is the
        // engine step over an already-materialized trace).
        let trace = source.materialize().expect("preset sources materialize");
        let reps = (20_000 / n).clamp(1, 20);
        for (label, bf) in backfills {
            // The same spec, two engines: only `engine` differs between
            // the kernel row and the seed-baseline row.
            let spec = |engine: Engine| {
                ScenarioSpec::builder(source.clone())
                    .backfill(bf)
                    .engine(engine)
                    .build()
            };
            let kernel_spec = spec(Engine::Kernel);
            let seed_spec = spec(Engine::SeedNaive);
            let k = time(reps, || {
                std::hint::black_box(
                    hpcsim::scenario::execute(&trace, &kernel_spec).expect("spec runs"),
                );
            });
            let s = seed_feasible.then(|| {
                time(reps.min(3), || {
                    std::hint::black_box(
                        hpcsim::scenario::execute(&trace, &seed_spec).expect("spec runs"),
                    );
                })
            });
            println!(
                "{n:>7} jobs {label}  kernel {:>9.1} ms ({:>8.0} jobs/s)   seed {}   speedup {}",
                k * 1e3,
                n as f64 / k,
                s.map_or("      (skipped)".into(), |s| format!(
                    "{:>9.1} ms ({:>8.0} jobs/s)",
                    s * 1e3,
                    n as f64 / s
                )),
                s.map_or("    -".into(), |s| format!("{:>5.2}x", s / k)),
            );
            rows.push(Row {
                trace: preset.name().to_string(),
                jobs: n,
                backfill: label.to_string(),
                kernel_ms: k * 1e3,
                kernel_jobs_per_sec: n as f64 / k,
                seed_ms: s.map(|s| s * 1e3),
                seed_jobs_per_sec: s.map(|s| n as f64 / s),
                speedup: s.map(|s| s / k),
            });
        }
    }

    for &parts in &partitions {
        let n = 10_000;
        let source = TraceSource::PartitionedPreset {
            preset,
            parts,
            jobs: n,
            seed: TRACE_SEED,
        };
        let layout = source.layout().expect("partitioned source has a layout");
        let trace = source
            .materialize()
            .expect("partitioned source materializes");
        let jobs = trace.len();
        for (label, bf) in backfills {
            let spec = ScenarioSpec::builder(source.clone())
                .platform(Platform::from_layout(&layout, RouterSpec::LeastLoaded))
                .backfill(bf)
                .build();
            let k = time(2, || {
                std::hint::black_box(hpcsim::scenario::execute(&trace, &spec).expect("spec runs"));
            });
            println!(
                "{jobs:>7} jobs {label}  kernel {:>9.1} ms ({:>8.0} jobs/s)   {parts}-partition (no seed baseline)",
                k * 1e3,
                jobs as f64 / k,
            );
            rows.push(Row {
                trace: source.label(),
                jobs,
                backfill: label.to_string(),
                kernel_ms: k * 1e3,
                kernel_jobs_per_sec: jobs as f64 / k,
                seed_ms: None,
                seed_jobs_per_sec: None,
                speedup: None,
            });
        }
    }
    write_json("bench_kernel", &rows);
}
