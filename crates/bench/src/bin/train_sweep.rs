//! Multi-seed **training** sweep through the scenario API: `rlbf::train`
//! once per seed, fanned out across threads with `desim::Replicator`, and
//! the per-seed `TrainResult`s merged into one report (mean ± std curves,
//! per-seed finals, best seed) — the training-side counterpart of
//! `replicated_eval` and the ROADMAP's open multi-seed-training item.
//!
//! The sweep is one scenario spec: trace source + base policy + agent
//! slot (full `TrainConfig`) + seed list. The best seed's agent is also
//! evaluated under the spec's windows protocol and checkpointed.
//!
//! ```text
//! cargo run --release -p bench --bin train_sweep [-- --seeds N] [--full]
//! ```

use bench::{preset_source, print_table, results_dir, write_json, Scale, TRACE_SEED};
use hpcsim::prelude::*;
use hpcsim::scenario::replication_seeds;
use rlbf::{agent_slot, run_spec_with_agent, train_sweep_spec, RlbfAgent, TrainSweepReport};
use serde::Serialize;
use std::time::Instant;
use swf::TracePreset;

const EVAL_SEED: u64 = 0x5eed;

#[derive(Serialize)]
struct SweepRecord {
    /// The merged sweep report.
    report: TrainSweepReport,
    /// bsld of the best seed's agent under the spec's eval protocol.
    best_eval_bsld: f64,
    /// Wall-clock of the whole sweep, milliseconds.
    wall_ms: f64,
    /// Worker threads available (the fan-out ceiling).
    host_threads: usize,
    /// The spec that regenerates this sweep.
    spec: ScenarioSpec,
}

fn main() {
    let scale = Scale::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n_seeds = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let preset = TracePreset::Lublin2;
    let cfg = scale.train_config(Policy::Fcfs);
    let spec = ScenarioSpec::builder(preset_source(preset, &scale))
        .policy(Policy::Fcfs)
        .agent(agent_slot(&cfg.env, Some(&cfg), None))
        .windows(scale.eval_samples, scale.eval_window, EVAL_SEED)
        .seeds(replication_seeds(TRACE_SEED ^ 0x7a11, n_seeds))
        .build();

    eprintln!(
        "sweeping {} training seeds on {} ({} epochs each, {host_threads} host threads) …",
        n_seeds,
        preset.name(),
        scale.epochs
    );
    let t0 = Instant::now();
    let sweep = train_sweep_spec(&spec, None).expect("agent spec sweeps");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut rows = Vec::new();
    for s in &sweep.report.per_seed {
        rows.push(vec![
            format!("{:#x}", s.seed),
            format!("{:.2}", s.final_bsld),
            format!("{:.2}", s.best_bsld),
            format!("{:+.3}", s.final_return),
            s.final_violations.to_string(),
        ]);
    }
    print_table(
        &format!(
            "Training sweep — {} seeds × {} epochs on {} ({:.1}s)",
            n_seeds,
            sweep.report.epochs,
            preset.name(),
            wall_ms / 1e3
        ),
        &[
            "seed",
            "final bsld",
            "best bsld",
            "final return",
            "violations",
        ],
        &rows,
    );
    println!(
        "\nfinal bsld across seeds: {:.2} ± {:.2} (best seed {:#x})",
        sweep.report.final_mean, sweep.report.final_std, sweep.report.best_seed
    );

    // Deploy + checkpoint the best seed's agent.
    let best = RlbfAgent::from_training(sweep.best(), preset.name());
    let report = run_spec_with_agent(&spec, &best).expect("agent spec runs");
    let best_eval_bsld = report.metrics.mean_bounded_slowdown;
    println!(
        "best seed's agent under the {}x{} eval protocol: bsld {:.2}",
        scale.eval_samples, scale.eval_window, best_eval_bsld
    );
    best.save(results_dir().join("agents").join("train_sweep_best.json"))
        .expect("can save checkpoint");

    write_json(
        "train_sweep",
        &SweepRecord {
            report: sweep.report,
            best_eval_bsld,
            wall_ms,
            host_threads,
            spec,
        },
    );
}
