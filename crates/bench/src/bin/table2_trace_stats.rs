//! **Table 2**: the four job traces and their characteristics
//! (`size`, `it`, `rt`, `nt`), comparing the generated stand-ins against
//! the paper's targets.
//!
//! Each trace is materialized from the declarative [`TraceSource`] the
//! scenario specs of every other binary name — so the statistics printed
//! here describe exactly the workloads those specs run.
//!
//! ```text
//! cargo run -p bench --release --bin table2_trace_stats [--full]
//! ```

use bench::{preset_source, print_table, write_json, Scale};
use serde::Serialize;
use swf::{TracePreset, TraceSource};

#[derive(Serialize)]
struct Table2Row {
    name: String,
    /// The declarative recipe the stats describe (the `trace` slot every
    /// scenario spec uses for this preset at this scale).
    source: TraceSource,
    size: u32,
    it_target: f64,
    it_measured: f64,
    rt_target: f64,
    rt_measured: f64,
    nt_target: f64,
    nt_measured: f64,
    runtime_kind: String,
    offered_load: f64,
}

fn main() {
    let scale = Scale::from_env();
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for preset in TracePreset::ALL {
        let targets = preset.targets();
        let source = preset_source(preset, &scale);
        let trace = source.materialize().expect("preset sources materialize");
        let s = trace.stats();
        let runtime_kind = if targets.has_user_estimates {
            "both"
        } else {
            "AR"
        };
        rows.push(vec![
            preset.name().to_string(),
            s.cluster_procs.to_string(),
            format!(
                "{:.0}/{:.0}",
                s.mean_interarrival, targets.mean_interarrival
            ),
            format!(
                "{:.0}/{:.0}",
                s.mean_request_time, targets.mean_request_time
            ),
            format!("{:.1}/{:.1}", s.mean_procs, targets.mean_procs),
            runtime_kind.to_string(),
            format!("{:.2}", s.offered_load),
        ]);
        records.push(Table2Row {
            name: preset.name().into(),
            source,
            size: s.cluster_procs,
            it_target: targets.mean_interarrival,
            it_measured: s.mean_interarrival,
            rt_target: targets.mean_request_time,
            rt_measured: s.mean_request_time,
            nt_target: targets.mean_procs,
            nt_measured: s.mean_procs,
            runtime_kind: runtime_kind.into(),
            offered_load: s.offered_load,
        });
    }
    print_table(
        "Table 2 — job traces (measured/target)",
        &["name", "size", "it (s)", "rt (s)", "nt", "runtime", "load"],
        &rows,
    );
    println!("\nmeasured/target pairs should agree within the calibration tolerance");
    println!("(±15% for it and rt, ±30% for nt — see swf::preset tests).");
    write_json("table2_trace_stats", &records);
}
