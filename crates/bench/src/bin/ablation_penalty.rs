//! **Ablation**: the violation penalty (paper §3.4's "large negative
//! reward" for delaying the reserved job, magnitude unspecified).
//!
//! Zero penalty lets the agent gamble with the reserved job's start; an
//! enormous one collapses the policy towards never backfilling anything
//! risky. The sweep shows where the useful band lies.
//!
//! Each row is one scenario spec whose agent slot embeds the full
//! `EnvConfig`/`TrainConfig` at that penalty — the RL hyper-parameters
//! live in the spec, not in this binary.
//!
//! ```text
//! cargo run -p bench --release --bin ablation_penalty [--full]
//! ```

use bench::{eval_builder, fmt_bsld, print_table, write_json, Scale};
use hpcsim::prelude::*;
use rlbf::{agent_slot, train_from_spec, RlbfAgent};
use serde::Serialize;
use swf::TracePreset;

#[derive(Serialize)]
struct Row {
    penalty: f64,
    /// The spec that regenerates this row.
    spec: ScenarioSpec,
    eval_bsld: f64,
    final_epoch_violations: usize,
}

fn main() {
    let scale = Scale::from_env();
    let preset = TracePreset::SdscSp2;
    let penalties = [0.0, 0.5, 2.0, 5.0, 20.0];

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for &penalty in &penalties {
        let mut cfg = scale.train_config(Policy::Fcfs);
        cfg.env.violation_penalty = penalty;
        let spec = eval_builder(preset, &scale, 0xab1b)
            .name(format!("penalty-{penalty} · SDSC-SP2 · FCFS+RLBF"))
            .policy(Policy::Fcfs)
            .agent(agent_slot(&cfg.env, Some(&cfg), None))
            .build();

        let result = train_from_spec(&spec).expect("agent spec trains");
        let final_epoch_violations = result.history.last().map(|e| e.violations).unwrap_or(0);
        let agent = RlbfAgent::from_training(&result, preset.name());
        let report = rlbf::run_spec_with_agent(&spec, &agent).expect("agent spec runs");
        let eval_bsld = report.metrics.mean_bounded_slowdown;

        rows.push(vec![
            format!("{penalty}"),
            fmt_bsld(eval_bsld),
            final_epoch_violations.to_string(),
        ]);
        eprintln!("penalty {penalty}: bsld {eval_bsld:.2}, final-epoch violations {final_epoch_violations}");
        records.push(Row {
            penalty,
            spec,
            eval_bsld,
            final_epoch_violations,
        });
    }

    print_table(
        "Ablation — violation penalty (SDSC-SP2, FCFS base)",
        &["penalty", "eval bsld", "final-epoch violations"],
        &rows,
    );
    write_json("ablation_penalty", &records);
}
