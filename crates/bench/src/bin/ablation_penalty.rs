//! **Ablation**: the violation penalty (paper §3.4's "large negative
//! reward" for delaying the reserved job, magnitude unspecified).
//!
//! Zero penalty lets the agent gamble with the reserved job's start; an
//! enormous one collapses the policy towards never backfilling anything
//! risky. The sweep shows where the useful band lies.
//!
//! ```text
//! cargo run -p bench --release --bin ablation_penalty [--full]
//! ```

use bench::{fmt_bsld, load_trace, print_table, write_json, Scale};
use hpcsim::Policy;
use rlbf::prelude::*;
use serde::Serialize;
use swf::TracePreset;

#[derive(Serialize)]
struct Row {
    penalty: f64,
    eval_bsld: f64,
    final_epoch_violations: usize,
}

fn main() {
    let scale = Scale::from_env();
    let preset = TracePreset::SdscSp2;
    let trace = load_trace(preset, &scale);
    let penalties = [0.0, 0.5, 2.0, 5.0, 20.0];

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for &penalty in &penalties {
        let mut cfg = scale.train_config(Policy::Fcfs);
        cfg.env.violation_penalty = penalty;
        let result = train(&trace, cfg);
        let final_epoch_violations = result.history.last().map(|e| e.violations).unwrap_or(0);
        let agent = RlbfAgent::from_training(&result, preset.name());
        let eval_bsld = agent.evaluate(
            &trace,
            Policy::Fcfs,
            scale.eval_samples,
            scale.eval_window,
            0xab1b,
        );
        rows.push(vec![
            format!("{penalty}"),
            fmt_bsld(eval_bsld),
            final_epoch_violations.to_string(),
        ]);
        records.push(Row {
            penalty,
            eval_bsld,
            final_epoch_violations,
        });
        eprintln!("penalty {penalty}: bsld {eval_bsld:.2}, final-epoch violations {final_epoch_violations}");
    }

    print_table(
        "Ablation — violation penalty (SDSC-SP2, FCFS base)",
        &["penalty", "eval bsld", "final-epoch violations"],
        &rows,
    );
    write_json("ablation_penalty", &records);
}
