//! Multi-partition cluster scenarios: EASY and conservative backfilling on
//! heterogeneous 2- and 4-partition machines under each meta-scheduling
//! router, end-to-end on a 10k-job trace by default.
//!
//! The grid is (trace source × router × backfill) scenario specs — the
//! partitioned sources (`PartitionedPreset`, `PartitionedLublin`) carry
//! their own layout, so each spec's platform is derived from its source
//! and the whole Table 5-style cluster-shape study is a loop over specs.
//! Results go to `results/multi_partition.json`.
//!
//! ```text
//! cargo run --release -p bench --bin multi_partition             # 10k jobs
//! cargo run --release -p bench --bin multi_partition -- --jobs 800   # smoke
//! ```

use bench::{fmt_bsld, print_table, write_json, TRACE_SEED};
use hpcsim::prelude::*;
use serde::Serialize;
use std::time::Instant;
use swf::{TracePreset, TraceSource};

#[derive(Serialize)]
struct Row {
    label: String,
    scenario: String,
    partitions: Vec<String>,
    jobs: usize,
    router: String,
    backfill: String,
    bsld: f64,
    mean_wait: f64,
    utilization: f64,
    wall_ms: f64,
    /// The spec that regenerates this row (timing aside).
    spec: ScenarioSpec,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);

    // 2- and 4-partition splits of Lublin-1, plus a Lublin workload
    // generated directly for a heterogeneous 4-partition layout.
    let mut sources: Vec<TraceSource> = Vec::new();
    for parts in [2usize, 4] {
        sources.push(TraceSource::PartitionedPreset {
            preset: TracePreset::Lublin1,
            parts,
            jobs,
            seed: TRACE_SEED,
        });
    }
    sources.push(TraceSource::PartitionedLublin {
        layout: swf::split_cluster(256, 4),
        load: 0.8,
        jobs,
        seed: TRACE_SEED,
    });

    let routers = RouterSpec::ALL;
    let backfills = [
        ("EASY", Backfill::Easy(RuntimeEstimator::RequestTime)),
        (
            "CONS",
            Backfill::Conservative(RuntimeEstimator::RequestTime),
        ),
    ];

    let mut records = Vec::new();
    let mut table = Vec::new();
    for source in &sources {
        let layout = source.layout().expect("partitioned sources carry layouts");
        // Materialize once per source; the router × backfill cells run
        // over the shared trace (`scenario::execute` + `make_report`)
        // instead of regenerating it per cell.
        let trace = source
            .materialize()
            .expect("partitioned sources materialize");
        let routable_jobs = trace.len();
        for router in routers {
            for (bf_name, bf) in backfills {
                let spec = ScenarioSpec::builder(source.clone())
                    .platform(Platform::from_layout(&layout, router))
                    .policy(Policy::Fcfs)
                    .backfill(bf)
                    .metrics(vec![
                        MetricKind::BoundedSlowdown,
                        MetricKind::Wait,
                        MetricKind::Utilization,
                    ])
                    .build();
                let t0 = Instant::now();
                let result = hpcsim::scenario::execute(&trace, &spec).expect("heuristic spec runs");
                let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
                let report = hpcsim::scenario::make_report(
                    &spec,
                    None,
                    result.metrics,
                    result.dropped_jobs,
                    None,
                );
                assert_eq!(
                    report.jobs + report.dropped_jobs,
                    routable_jobs,
                    "jobs lost in {} under {}",
                    source.label(),
                    router.label()
                );
                table.push(vec![
                    source.label(),
                    router.label().to_string(),
                    bf_name.to_string(),
                    fmt_bsld(report.metrics.mean_bounded_slowdown),
                    format!("{:.0}", report.metrics.mean_wait),
                    format!("{:.1}%", 100.0 * report.metrics.utilization),
                    format!("{wall_ms:.0}"),
                ]);
                records.push(Row {
                    label: report.label.clone(),
                    scenario: source.label(),
                    partitions: layout
                        .iter()
                        .map(|p| format!("{}:{}@{:.2}x", p.name, p.procs, p.speed))
                        .collect(),
                    jobs: report.jobs,
                    router: router.label().to_string(),
                    backfill: bf_name.to_string(),
                    bsld: report.metrics.mean_bounded_slowdown,
                    mean_wait: report.metrics.mean_wait,
                    utilization: report.metrics.utilization,
                    wall_ms,
                    spec,
                });
            }
        }
    }

    print_table(
        &format!("Multi-partition scenarios ({jobs} jobs, FCFS base)"),
        &[
            "scenario", "router", "backfill", "bsld", "wait s", "util", "ms",
        ],
        &table,
    );
    write_json("multi_partition", &records);
}
