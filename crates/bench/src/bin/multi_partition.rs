//! Multi-partition cluster scenarios: EASY and conservative backfilling on
//! heterogeneous 2- and 4-partition machines under each meta-scheduling
//! router, end-to-end on a 10k-job trace by default.
//!
//! This is the scenario family the cluster subsystem unlocks: the same
//! Table 2 workloads, re-run on partitioned variants of the machine
//! (`swf::partitioned_preset`) and on a Lublin workload generated for a
//! heterogeneous layout (`swf::lublin_multi_partition`). Results go to
//! `results/multi_partition.json`.
//!
//! ```text
//! cargo run --release -p bench --bin multi_partition             # 10k jobs
//! cargo run --release -p bench --bin multi_partition -- --jobs 800   # smoke
//! ```

use bench::{fmt_bsld, print_table, write_json, TRACE_SEED};
use hpcsim::prelude::*;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;
use swf::TracePreset;

#[derive(Serialize)]
struct Row {
    scenario: String,
    partitions: Vec<String>,
    jobs: usize,
    router: String,
    backfill: String,
    bsld: f64,
    mean_wait: f64,
    utilization: f64,
    wall_ms: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);

    // 2- and 4-partition splits of Lublin-1, plus a Lublin workload
    // generated directly for a heterogeneous 4-partition layout.
    let mut scenarios: Vec<(String, swf::PartitionedWorkload)> = Vec::new();
    for parts in [2usize, 4] {
        let w = swf::partitioned_preset(TracePreset::Lublin1, parts, jobs, TRACE_SEED);
        scenarios.push((w.trace.name().to_string(), w));
    }
    let layout = swf::split_cluster(256, 4);
    let trace = swf::lublin_multi_partition(&layout, 0.8, jobs, TRACE_SEED);
    scenarios.push((
        "lublin-multi/4p".into(),
        swf::PartitionedWorkload { trace, layout },
    ));

    let routers: Vec<(&str, Arc<dyn Router>)> = vec![
        ("affinity", Arc::new(StaticAffinity)),
        ("least-loaded", Arc::new(LeastLoaded)),
        ("earliest-start", Arc::new(EarliestStart::default())),
    ];
    let backfills = [
        ("EASY", Backfill::Easy(RuntimeEstimator::RequestTime)),
        (
            "CONS",
            Backfill::Conservative(RuntimeEstimator::RequestTime),
        ),
    ];

    let mut records = Vec::new();
    let mut table = Vec::new();
    for (name, w) in &scenarios {
        let spec = ClusterSpec::from_layout(&w.layout);
        for (router_name, router) in &routers {
            for (bf_name, bf) in backfills {
                let t0 = Instant::now();
                let r = run_scheduler_on(&w.trace, Policy::Fcfs, bf, &spec, Arc::clone(router));
                let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
                assert_eq!(r.completed.len(), w.trace.len(), "jobs lost in {name}");
                table.push(vec![
                    name.clone(),
                    router_name.to_string(),
                    bf_name.to_string(),
                    fmt_bsld(r.metrics.mean_bounded_slowdown),
                    format!("{:.0}", r.metrics.mean_wait),
                    format!("{:.1}%", 100.0 * r.metrics.utilization),
                    format!("{wall_ms:.0}"),
                ]);
                records.push(Row {
                    scenario: name.clone(),
                    partitions: w
                        .layout
                        .iter()
                        .map(|p| format!("{}:{}@{:.2}x", p.name, p.procs, p.speed))
                        .collect(),
                    jobs: w.trace.len(),
                    router: router_name.to_string(),
                    backfill: bf_name.to_string(),
                    bsld: r.metrics.mean_bounded_slowdown,
                    mean_wait: r.metrics.mean_wait,
                    utilization: r.metrics.utilization,
                    wall_ms,
                });
            }
        }
    }

    print_table(
        &format!("Multi-partition scenarios ({jobs} jobs, FCFS base)"),
        &[
            "scenario", "router", "backfill", "bsld", "wait s", "util", "ms",
        ],
        &table,
    );
    write_json("multi_partition", &records);
}
