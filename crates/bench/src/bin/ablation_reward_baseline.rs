//! **Ablation**: the terminal-reward baseline.
//!
//! The paper normalizes the terminal reward against FCFS + SJF-ordered
//! EASY (§3.4). This sweep compares that choice against normalizing by the
//! episode's own base policy + EASY, and against the raw negative bsld
//! (no baseline — the high-variance option the normalization exists to
//! avoid).
//!
//! Each row is one scenario spec whose agent slot embeds the full
//! `EnvConfig`/`TrainConfig` with that reward definition — the RL
//! hyper-parameters live in the spec, not in this binary.
//!
//! ```text
//! cargo run -p bench --release --bin ablation_reward_baseline [--full]
//! ```

use bench::{eval_builder, fmt_bsld, print_table, write_json, Scale};
use hpcsim::prelude::*;
use rlbf::{agent_slot, train_from_spec, RewardKind, RlbfAgent};
use serde::Serialize;
use swf::TracePreset;

#[derive(Serialize)]
struct Row {
    reward: String,
    /// The spec that regenerates this row.
    spec: ScenarioSpec,
    eval_bsld: f64,
}

fn main() {
    let scale = Scale::from_env();
    let preset = TracePreset::Lublin1;
    let kinds = [
        ("SjfRelative (paper)", RewardKind::SjfRelative),
        ("EasyRelative", RewardKind::EasyRelative),
        ("NegBsld (no baseline)", RewardKind::NegBsld),
    ];

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (label, kind) in kinds {
        let mut cfg = scale.train_config(Policy::Fcfs);
        cfg.env.reward = kind;
        let spec = eval_builder(preset, &scale, 0xab1c)
            .name(format!("{label} · Lublin-1 · FCFS+RLBF"))
            .policy(Policy::Fcfs)
            .agent(agent_slot(&cfg.env, Some(&cfg), None))
            .build();

        let result = train_from_spec(&spec).expect("agent spec trains");
        let agent = RlbfAgent::from_training(&result, preset.name());
        let report = rlbf::run_spec_with_agent(&spec, &agent).expect("agent spec runs");
        let eval_bsld = report.metrics.mean_bounded_slowdown;

        rows.push(vec![label.to_string(), fmt_bsld(eval_bsld)]);
        eprintln!("{label}: bsld {eval_bsld:.2}");
        records.push(Row {
            reward: label.into(),
            spec,
            eval_bsld,
        });
    }

    print_table(
        "Ablation — terminal-reward baseline (Lublin-1, FCFS base)",
        &["reward definition", "eval bsld"],
        &rows,
    );
    write_json("ablation_reward_baseline", &records);
}
