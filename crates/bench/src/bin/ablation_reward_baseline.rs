//! **Ablation**: the terminal-reward baseline.
//!
//! The paper normalizes the terminal reward against FCFS + SJF-ordered
//! EASY (§3.4). This sweep compares that choice against normalizing by the
//! episode's own base policy + EASY, and against the raw negative bsld
//! (no baseline — the high-variance option the normalization exists to
//! avoid).
//!
//! ```text
//! cargo run -p bench --release --bin ablation_reward_baseline [--full]
//! ```

use bench::{fmt_bsld, load_trace, print_table, write_json, Scale};
use hpcsim::Policy;
use rlbf::prelude::*;
use serde::Serialize;
use swf::TracePreset;

#[derive(Serialize)]
struct Row {
    reward: String,
    eval_bsld: f64,
}

fn main() {
    let scale = Scale::from_env();
    let preset = TracePreset::Lublin1;
    let trace = load_trace(preset, &scale);
    let kinds = [
        ("SjfRelative (paper)", RewardKind::SjfRelative),
        ("EasyRelative", RewardKind::EasyRelative),
        ("NegBsld (no baseline)", RewardKind::NegBsld),
    ];

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (label, kind) in kinds {
        let mut cfg = scale.train_config(Policy::Fcfs);
        cfg.env.reward = kind;
        let result = train(&trace, cfg);
        let agent = RlbfAgent::from_training(&result, preset.name());
        let eval_bsld = agent.evaluate(
            &trace,
            Policy::Fcfs,
            scale.eval_samples,
            scale.eval_window,
            0xab1c,
        );
        rows.push(vec![label.to_string(), fmt_bsld(eval_bsld)]);
        records.push(Row {
            reward: label.into(),
            eval_bsld,
        });
        eprintln!("{label}: bsld {eval_bsld:.2}");
    }

    print_table(
        "Ablation — terminal-reward baseline (Lublin-1, FCFS base)",
        &["reward definition", "eval bsld"],
        &rows,
    );
    write_json("ablation_reward_baseline", &records);
}
