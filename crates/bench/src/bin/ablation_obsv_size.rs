//! **Ablation**: observation window size (`MAX_OBSV_SIZE`).
//!
//! The paper fixes 128 slots and notes the value is "a configurable
//! training parameter". This sweep quantifies what the cutoff costs: too
//! few slots hide backfill candidates (the environment then skips
//! decisions entirely), too many mostly pad with zeros and slow training.
//!
//! Each row is one scenario spec whose agent slot embeds the full
//! `EnvConfig`/`TrainConfig` at that observation size — the RL
//! hyper-parameters live in the spec, not in this binary.
//!
//! ```text
//! cargo run -p bench --release --bin ablation_obsv_size [--full]
//! ```

use bench::{eval_builder, fmt_bsld, print_table, write_json, Scale};
use hpcsim::prelude::*;
use rlbf::{agent_slot, train_from_spec, RlbfAgent};
use serde::Serialize;
use swf::TracePreset;

#[derive(Serialize)]
struct Row {
    max_obsv_size: usize,
    /// The spec that regenerates this row (train via
    /// `rlbf::train_from_spec`, then evaluate the trained agent on it).
    spec: ScenarioSpec,
    train_seconds: f64,
    eval_bsld: f64,
}

fn main() {
    let scale = Scale::from_env();
    let preset = TracePreset::Lublin2;
    let sizes = [8, 16, 32, 64, 128];

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for &size in &sizes {
        let mut s = scale;
        s.max_obsv_size = size;
        let cfg = s.train_config(Policy::Fcfs);
        let spec = eval_builder(preset, &scale, 0xab1a)
            .name(format!("obsv-{size} · Lublin-2 · FCFS+RLBF"))
            .policy(Policy::Fcfs)
            .agent(agent_slot(&cfg.env, Some(&cfg), None))
            .build();

        let t0 = std::time::Instant::now();
        let result = train_from_spec(&spec).expect("agent spec trains");
        let train_seconds = t0.elapsed().as_secs_f64();
        let agent = RlbfAgent::from_training(&result, preset.name());
        let report = rlbf::run_spec_with_agent(&spec, &agent).expect("agent spec runs");
        let eval_bsld = report.metrics.mean_bounded_slowdown;

        rows.push(vec![
            size.to_string(),
            format!("{train_seconds:.1}"),
            fmt_bsld(eval_bsld),
        ]);
        eprintln!("obsv {size}: bsld {eval_bsld:.2} ({train_seconds:.1}s)");
        records.push(Row {
            max_obsv_size: size,
            spec,
            train_seconds,
            eval_bsld,
        });
    }

    print_table(
        "Ablation — observation window size (Lublin-2, FCFS base)",
        &["MAX_OBSV_SIZE", "train (s)", "eval bsld"],
        &rows,
    );
    write_json("ablation_obsv_size", &records);
}
