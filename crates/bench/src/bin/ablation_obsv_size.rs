//! **Ablation**: observation window size (`MAX_OBSV_SIZE`).
//!
//! The paper fixes 128 slots and notes the value is "a configurable
//! training parameter". This sweep quantifies what the cutoff costs: too
//! few slots hide backfill candidates (the environment then skips
//! decisions entirely), too many mostly pad with zeros and slow training.
//!
//! ```text
//! cargo run -p bench --release --bin ablation_obsv_size [--full]
//! ```

use bench::{fmt_bsld, load_trace, print_table, write_json, Scale};
use hpcsim::Policy;
use rlbf::prelude::*;
use serde::Serialize;
use swf::TracePreset;

#[derive(Serialize)]
struct Row {
    max_obsv_size: usize,
    train_seconds: f64,
    eval_bsld: f64,
}

fn main() {
    let scale = Scale::from_env();
    let preset = TracePreset::Lublin2;
    let trace = load_trace(preset, &scale);
    let sizes = [8, 16, 32, 64, 128];

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for &size in &sizes {
        let mut s = scale;
        s.max_obsv_size = size;
        let t0 = std::time::Instant::now();
        let result = train(&trace, s.train_config(Policy::Fcfs));
        let train_seconds = t0.elapsed().as_secs_f64();
        let agent = RlbfAgent::from_training(&result, preset.name());
        let eval_bsld = agent.evaluate(
            &trace,
            Policy::Fcfs,
            scale.eval_samples,
            scale.eval_window,
            0xab1a,
        );
        rows.push(vec![
            size.to_string(),
            format!("{train_seconds:.1}"),
            fmt_bsld(eval_bsld),
        ]);
        records.push(Row {
            max_obsv_size: size,
            train_seconds,
            eval_bsld,
        });
        eprintln!("obsv {size}: bsld {eval_bsld:.2} ({train_seconds:.1}s)");
    }

    print_table(
        "Ablation — observation window size (Lublin-2, FCFS base)",
        &["MAX_OBSV_SIZE", "train (s)", "eval bsld"],
        &rows,
    );
    write_json("ablation_obsv_size", &records);
}
