//! **Figure 4**: RLBackfilling training curves (bsld vs epoch) on the four
//! traces, FCFS base policy.
//!
//! The paper observes: all traces converge; the synthetic Lublin traces
//! converge faster (regular arrival patterns), HPC2N is the least stable.
//!
//! Each curve is trained *from a scenario spec*: the trace source and the
//! full `TrainConfig` live in the spec's agent slot
//! (`rlbf::train_from_spec`), so a committed spec file reproduces a curve
//! exactly.
//!
//! ```text
//! cargo run -p bench --release --bin fig4_training_curves [--full] [--from-scratch]
//! ```
//!
//! By default training uses the imitation warm-start (see DESIGN.md), so
//! the curves *start* near EASY-level and the paper's descent shape is
//! compressed; `--from-scratch` disables the warm-start and reproduces the
//! paper's convergence-from-random shape (budget for more epochs there —
//! the paper itself runs hundreds).
//!
//! Warm-started agents are checkpointed under `results/agents/` with the
//! same key Table 4/5 use, so subsequent experiments skip retraining;
//! from-scratch runs do not touch the shared cache.

use bench::{preset_source, print_table, results_dir, write_json, Scale};
use hpcsim::prelude::*;
use rlbf::{agent_slot, train_from_spec, RlbfAgent};
use serde::Serialize;
use swf::TracePreset;

#[derive(Serialize)]
struct Curve {
    trace: String,
    /// The spec that regenerates this curve (`rlbf::train_from_spec`).
    spec: ScenarioSpec,
    epochs: Vec<usize>,
    bsld: Vec<f64>,
    episode_return: Vec<f64>,
    violations: Vec<usize>,
}

fn main() {
    let scale = Scale::from_env();
    let from_scratch = std::env::args().any(|a| a == "--from-scratch");
    let mut curves: Vec<Curve> = Vec::new();

    for preset in TracePreset::ALL {
        let mut cfg = scale.train_config(Policy::Fcfs);
        if from_scratch {
            cfg.pretrain_episodes = 0;
        }
        let spec = ScenarioSpec::builder(preset_source(preset, &scale))
            .policy(Policy::Fcfs)
            .agent(agent_slot(&cfg.env, Some(&cfg), None))
            .build();

        eprintln!(
            "training on {} ({} epochs{}) …",
            preset.name(),
            scale.epochs,
            if from_scratch { ", from scratch" } else { "" }
        );
        let t0 = std::time::Instant::now();
        let result = train_from_spec(&spec).expect("agent spec trains");
        eprintln!("  {:.1}s", t0.elapsed().as_secs_f64());

        if !from_scratch {
            // Cache the warm-started agent for Table 4/5 under the shared key.
            let key = format!(
                "rlbf-{}-fcfs-e{}t{}j{}o{}",
                preset.name().to_ascii_lowercase(),
                scale.epochs,
                scale.traj_per_epoch,
                scale.jobs_per_traj,
                scale.max_obsv_size
            );
            let agent = RlbfAgent::from_training(&result, preset.name());
            agent
                .save(results_dir().join("agents").join(format!("{key}.json")))
                .expect("can save checkpoint");
        }

        curves.push(Curve {
            trace: preset.name().into(),
            spec,
            epochs: result.history.iter().map(|e| e.epoch).collect(),
            bsld: result.history.iter().map(|e| e.mean_bsld).collect(),
            episode_return: result.history.iter().map(|e| e.mean_return).collect(),
            violations: result.history.iter().map(|e| e.violations).collect(),
        });
    }

    // Print the four curves side by side (bsld per epoch).
    let n_epochs = curves.iter().map(|c| c.epochs.len()).max().unwrap_or(0);
    let mut rows = Vec::new();
    for e in 0..n_epochs {
        let mut row = vec![e.to_string()];
        for c in &curves {
            row.push(
                c.bsld
                    .get(e)
                    .map(|v| format!("{v:.2}"))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        rows.push(row);
    }
    print_table(
        "Figure 4 — training curves (train-set bsld per epoch, FCFS base)",
        &["epoch", "SDSC-SP2", "HPC2N", "Lublin-1", "Lublin-2"],
        &rows,
    );

    // Convergence summary: mean bsld over the last quarter vs first quarter.
    println!("\nconvergence (first-quarter mean -> last-quarter mean bsld):");
    for c in &curves {
        let q = (c.bsld.len() / 4).max(1);
        let head: f64 = c.bsld.iter().take(q).sum::<f64>() / q as f64;
        let tail: f64 = c.bsld.iter().rev().take(q).sum::<f64>() / q as f64;
        println!("  {:<9} {head:8.2} -> {tail:8.2}", c.trace);
    }

    write_json("fig4_training_curves", &curves);
}
