//! Robustness sweep for the dynamic-machine fault layer: the 2- and
//! 4-partition Lublin machines from the migration grid, perturbed by a
//! seeded generative failure/repair process at rising failure rates, run
//! under EASY, CONS, and CONS with decision-point migration. Each cell
//! reports the fault layer's own accounting — kills, resubmits, wasted
//! node-seconds — plus the bounded-slowdown degradation against the
//! unperturbed run of the *same* spec (computed by `scenario::run`).
//!
//! A final pair of cells replays an explicit maintenance-drain trace on
//! the express partition and contrasts submit-and-forget binding with
//! decision-point migration: with migration on, jobs queued behind the
//! drain escape to the other partition instead of waiting it out, so the
//! drain's degradation shrinks. Results go to `results/failures.json`.
//!
//! ```text
//! cargo run --release -p bench --bin failure_sweep               # 2k jobs
//! cargo run --release -p bench --bin failure_sweep -- --jobs 400 # smoke
//! ```

use bench::{fmt_bsld, print_table, write_json, TRACE_SEED};
use hpcsim::platform::{FailureProcess, PlatformEvent, PlatformEventSpec};
use hpcsim::prelude::*;
use serde::Serialize;
use swf::{TracePreset, TraceSource};

/// Same decision-point configuration as the committed migration grid.
const DECISION_POINTS: ReroutePolicy = ReroutePolicy::AtDecisionPoints {
    max_moves_per_job: 3,
    min_gain_secs: 60.0,
};

/// Mean time between failures, seconds — ordered from gentle to hostile.
const MTBF_SECS: [f64; 3] = [60_000.0, 20_000.0, 8_000.0];

/// Processors lost per failure and the mean repair time.
const FAIL_PROCS: u32 = 48;
const REPAIR_SECS: f64 = 5_000.0;

#[derive(Serialize)]
struct Row {
    label: String,
    scenario: String,
    sched: String,
    reroute: String,
    /// Human-readable disturbance ("mtbf=20000s" or "drain express").
    disturbance: String,
    jobs: usize,
    dropped_jobs: usize,
    kills: usize,
    resubmits: usize,
    wasted_node_seconds: f64,
    bsld: f64,
    /// `bsld(perturbed) − bsld(same spec, no events)`.
    bsld_degradation: f64,
    /// The spec that regenerates this row.
    spec: ScenarioSpec,
}

fn schedulers() -> Vec<(&'static str, Backfill, ReroutePolicy)> {
    vec![
        (
            "EASY",
            Backfill::Easy(RuntimeEstimator::RequestTime),
            ReroutePolicy::AtSubmission,
        ),
        (
            "CONS",
            Backfill::Conservative(RuntimeEstimator::RequestTime),
            ReroutePolicy::AtSubmission,
        ),
        (
            "CONS+mig",
            Backfill::Conservative(RuntimeEstimator::RequestTime),
            DECISION_POINTS,
        ),
    ]
}

#[derive(Default)]
struct Sweep {
    table: Vec<Vec<String>>,
    records: Vec<Row>,
}

impl Sweep {
    fn run_cell(
        &mut self,
        spec: ScenarioSpec,
        scenario: String,
        sched: &str,
        reroute: ReroutePolicy,
        disturbance: String,
        trace_len: usize,
    ) {
        let report = hpcsim::scenario::run(&spec).expect("perturbed spec runs");
        let rob = report
            .robustness
            .clone()
            .expect("perturbed runs report robustness");
        assert_eq!(
            report.jobs + report.dropped_jobs,
            trace_len,
            "jobs lost in {scenario} / {sched} / {disturbance}"
        );
        let degradation = rob.bsld_degradation.expect("full-trace degradation");
        self.table.push(vec![
            scenario.clone(),
            sched.to_string(),
            disturbance.clone(),
            rob.kills.to_string(),
            rob.resubmits.to_string(),
            format!("{:.0}", rob.wasted_node_seconds),
            report.dropped_jobs.to_string(),
            fmt_bsld(report.metrics.mean_bounded_slowdown),
            format!("{degradation:+.2}"),
        ]);
        self.records.push(Row {
            label: report.label.clone(),
            scenario,
            sched: sched.to_string(),
            reroute: reroute.label().to_string(),
            disturbance,
            jobs: report.jobs,
            dropped_jobs: report.dropped_jobs,
            kills: rob.kills,
            resubmits: rob.resubmits,
            wasted_node_seconds: rob.wasted_node_seconds,
            bsld: report.metrics.mean_bounded_slowdown,
            bsld_degradation: degradation,
            spec,
        });
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);

    let mut sweep = Sweep::default();

    // Part 1: generative failures at rising rates on the 2p/4p machines.
    for parts in [2usize, 4] {
        let source = TraceSource::PartitionedPreset {
            preset: TracePreset::Lublin1,
            parts,
            jobs,
            seed: TRACE_SEED,
        };
        let layout = source.layout().expect("partitioned sources carry layouts");
        let trace = source
            .materialize()
            .expect("partitioned sources materialize");
        // Failures cover the whole arrival window; later failures would
        // hit an already-drained queue and measure nothing.
        let until = trace.jobs().iter().map(|j| j.submit).fold(0.0f64, f64::max);
        for mtbf in MTBF_SECS {
            let events = PlatformEventSpec {
                trace: Vec::new(),
                processes: vec![FailureProcess {
                    seed: TRACE_SEED ^ 0xfa11,
                    until,
                    mtbf_secs: mtbf,
                    repair_secs: REPAIR_SECS,
                    procs: FAIL_PROCS,
                    part: None,
                }],
                failure_policy: FailurePolicy::KillResubmit,
            };
            for (sched, backfill, reroute) in schedulers() {
                let spec = ScenarioSpec::builder(source.clone())
                    .platform(
                        Platform::from_layout(&layout, RouterSpec::LeastLoaded).rerouted(reroute),
                    )
                    .policy(Policy::Fcfs)
                    .backfill(backfill)
                    .events(events.clone())
                    .build();
                sweep.run_cell(
                    spec,
                    source.label(),
                    sched,
                    reroute,
                    format!("mtbf={mtbf:.0}s"),
                    trace.len(),
                );
            }
        }
    }

    // Part 2: an explicit maintenance drain of the express partition over
    // the middle of the arrival window — the cell where decision-point
    // migration should visibly pay for itself.
    let source = TraceSource::PartitionedPreset {
        preset: TracePreset::Lublin1,
        parts: 2,
        jobs,
        seed: TRACE_SEED,
    };
    let layout = source.layout().expect("partitioned sources carry layouts");
    let trace = source
        .materialize()
        .expect("partitioned sources materialize");
    let span = trace.jobs().iter().map(|j| j.submit).fold(0.0f64, f64::max);
    let drain = PlatformEventSpec {
        trace: vec![
            PlatformEvent::DrainStart {
                at: 0.3 * span,
                part: 1,
            },
            PlatformEvent::DrainEnd {
                at: 0.7 * span,
                part: 1,
            },
        ],
        processes: Vec::new(),
        failure_policy: FailurePolicy::KillResubmit,
    };
    let mut drain_degradation = Vec::new();
    for (sched, backfill, reroute) in [
        (
            "CONS",
            Backfill::Conservative(RuntimeEstimator::RequestTime),
            ReroutePolicy::AtSubmission,
        ),
        (
            "CONS+mig",
            Backfill::Conservative(RuntimeEstimator::RequestTime),
            DECISION_POINTS,
        ),
    ] {
        let spec = ScenarioSpec::builder(source.clone())
            .platform(Platform::from_layout(&layout, RouterSpec::LeastLoaded).rerouted(reroute))
            .policy(Policy::Fcfs)
            .backfill(backfill)
            .events(drain.clone())
            .build();
        sweep.run_cell(
            spec,
            source.label(),
            sched,
            reroute,
            "drain express".to_string(),
            trace.len(),
        );
        drain_degradation.push(sweep.records.last().unwrap().bsld_degradation);
    }

    print_table(
        &format!("Fault-layer sweep ({jobs} jobs, FCFS base, least-loaded router)"),
        &[
            "scenario",
            "sched",
            "disturbance",
            "kills",
            "resub",
            "wasted-s",
            "dropped",
            "bsld",
            "Δbsld",
        ],
        &sweep.table,
    );
    if let [at_submission, with_migration] = drain_degradation[..] {
        println!(
            "drain: Δbsld {at_submission:+.2} (submit-and-forget) vs {with_migration:+.2} \
             (decision-point migration)"
        );
    }
    write_json("failures", &sweep.records);
}
