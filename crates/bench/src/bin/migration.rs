//! Decision-point job re-routing (queue migration) scenarios: the same
//! 2-/4-partition machines and heuristics as the `multi_partition` grid,
//! run once with the classic submit-and-forget binding
//! (`ReroutePolicy::AtSubmission`) and once with decision-point migration
//! (`ReroutePolicy::AtDecisionPoints`), so the committed results show
//! exactly what re-routing changes — per cell: migrations performed, jobs
//! whose realized start moved, and the bounded-slowdown delta.
//!
//! The grid is (trace source × router × backfill × reroute) scenario
//! specs over a shared materialized trace per source. Results go to
//! `results/migration.json`.
//!
//! ```text
//! cargo run --release -p bench --bin migration              # 10k jobs
//! cargo run --release -p bench --bin migration -- --jobs 600    # smoke
//! ```

use bench::{fmt_bsld, print_table, write_json, TRACE_SEED};
use hpcsim::prelude::*;
use serde::Serialize;
use std::time::Instant;
use swf::{TracePreset, TraceSource};

/// The decision-point configuration the committed results use: up to 3
/// moves per job, and only for estimated gains of at least a minute (sub-
/// minute wins are noise against request-time estimates).
const DECISION_POINTS: ReroutePolicy = ReroutePolicy::AtDecisionPoints {
    max_moves_per_job: 3,
    min_gain_secs: 60.0,
};

#[derive(Serialize)]
struct Row {
    label: String,
    scenario: String,
    router: String,
    backfill: String,
    reroute: String,
    jobs: usize,
    dropped_jobs: usize,
    /// Queue migrations performed (0 for at-submission rows).
    migrations: usize,
    /// Jobs whose realized start differs from the at-submission run of
    /// the same (scenario, router, backfill) cell.
    changed_starts: usize,
    bsld: f64,
    /// `bsld − bsld(at-submission)` for the same cell (0 by construction
    /// on at-submission rows).
    bsld_delta: f64,
    mean_wait: f64,
    utilization: f64,
    wall_ms: f64,
    /// The spec that regenerates this row (timing aside).
    spec: ScenarioSpec,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);

    let sources: Vec<TraceSource> = [2usize, 4]
        .into_iter()
        .map(|parts| TraceSource::PartitionedPreset {
            preset: TracePreset::Lublin1,
            parts,
            jobs,
            seed: TRACE_SEED,
        })
        .collect();
    let routers = [
        RouterSpec::LeastLoaded,
        RouterSpec::EarliestStart(RuntimeEstimator::RequestTime),
    ];
    let backfills = [
        ("EASY", Backfill::Easy(RuntimeEstimator::RequestTime)),
        (
            "CONS",
            Backfill::Conservative(RuntimeEstimator::RequestTime),
        ),
    ];

    let mut records = Vec::new();
    let mut table = Vec::new();
    for source in &sources {
        let layout = source.layout().expect("partitioned sources carry layouts");
        let trace = source
            .materialize()
            .expect("partitioned sources materialize");
        for router in routers {
            for (bf_name, bf) in backfills {
                // The at-submission run is the pinned baseline of the
                // cell; the decision-point run is diffed against it.
                let mut baseline_starts: Vec<(usize, f64)> = Vec::new();
                let mut baseline_bsld = 0.0;
                for reroute in [ReroutePolicy::AtSubmission, DECISION_POINTS] {
                    let spec = ScenarioSpec::builder(source.clone())
                        .platform(Platform::from_layout(&layout, router).rerouted(reroute))
                        .policy(Policy::Fcfs)
                        .backfill(bf)
                        .metrics(vec![
                            MetricKind::BoundedSlowdown,
                            MetricKind::Wait,
                            MetricKind::Utilization,
                        ])
                        .build();
                    let t0 = Instant::now();
                    let result =
                        hpcsim::scenario::execute(&trace, &spec).expect("heuristic spec runs");
                    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
                    let report = hpcsim::scenario::make_report(
                        &spec,
                        None,
                        result.metrics,
                        result.dropped_jobs,
                        None,
                    );
                    assert_eq!(
                        report.jobs + report.dropped_jobs,
                        trace.len(),
                        "jobs lost in {} under {} / {}",
                        source.label(),
                        router.label(),
                        reroute.label()
                    );
                    let mut starts: Vec<(usize, f64)> = result
                        .completed
                        .iter()
                        .map(|c| (c.job.id, c.start))
                        .collect();
                    starts.sort_by_key(|&(id, _)| id);
                    let (changed_starts, bsld_delta) = if reroute == ReroutePolicy::AtSubmission {
                        baseline_starts = starts;
                        baseline_bsld = report.metrics.mean_bounded_slowdown;
                        (0, 0.0)
                    } else {
                        let changed = starts
                            .iter()
                            .zip(&baseline_starts)
                            .filter(|(a, b)| a != b)
                            .count();
                        (
                            changed,
                            report.metrics.mean_bounded_slowdown - baseline_bsld,
                        )
                    };
                    table.push(vec![
                        source.label(),
                        router.label().to_string(),
                        bf_name.to_string(),
                        reroute.label().to_string(),
                        fmt_bsld(report.metrics.mean_bounded_slowdown),
                        format!("{bsld_delta:+.2}"),
                        result.migrations.to_string(),
                        changed_starts.to_string(),
                        format!("{wall_ms:.0}"),
                    ]);
                    records.push(Row {
                        label: report.label.clone(),
                        scenario: source.label(),
                        router: router.label().to_string(),
                        backfill: bf_name.to_string(),
                        reroute: reroute.label().to_string(),
                        jobs: report.jobs,
                        dropped_jobs: report.dropped_jobs,
                        migrations: result.migrations,
                        changed_starts,
                        bsld: report.metrics.mean_bounded_slowdown,
                        bsld_delta,
                        mean_wait: report.metrics.mean_wait,
                        utilization: report.metrics.utilization,
                        wall_ms,
                        spec,
                    });
                }
            }
        }
    }

    print_table(
        &format!("Queue migration scenarios ({jobs} jobs, FCFS base)"),
        &[
            "scenario", "router", "backfill", "reroute", "bsld", "Δbsld", "moves", "changed", "ms",
        ],
        &table,
    );
    write_json("migration", &records);
}
