//! `scenario` — run any committed experiment spec from the command line.
//!
//! Any cell of the paper's experiment grid is reproducible from a JSON
//! spec file: heuristic specs execute directly, agent specs load their
//! checkpoint through the RL bridge (or, when the slot has no checkpoint
//! but embeds a `TrainConfig`, train first and then deploy — one file is
//! the whole experiment), and specs with a seed list fan out via
//! `desim::Replicator`.
//!
//! ```text
//! cargo run -p bench --bin scenario -- run examples/scenarios/table3_fcfs.json
//! cargo run -p bench --bin scenario -- run spec.json --out my_report
//! cargo run -p bench --bin scenario -- run spec.json --stdout
//! cargo run -p bench --bin scenario -- trace examples/scenarios/trace_demo.json
//! cargo run -p bench --bin scenario -- explain examples/scenarios/audit_demo.json --job 17
//! cargo run -p bench --bin scenario -- audit examples/scenarios/audit_demo.json --out log.json
//! cargo run -p bench --bin scenario -- audit-diff a_audit.json b_audit.json
//! cargo run -p bench --bin scenario -- examples [dir]   # (re)emit example specs
//! ```
//!
//! `run` writes the uniform `RunReport` (or report list, for seeded
//! specs) as pretty JSON under `results/` named after the spec file; the
//! output is fully deterministic, so committed reports can be compared
//! byte-for-byte (see `tests/scenario_reproduce.rs`). Everything
//! human-facing (tables, progress, warnings) goes to **stderr**: with
//! `--stdout`, stdout carries exactly one JSON document and nothing
//! else, so the output can be piped into `jq` or another tool.
//!
//! `trace` executes a kernel spec with the span-tracing recorder and
//! writes the phase spans as Chrome-trace JSON (load it in
//! `chrome://tracing` or Perfetto). Exits nonzero if the run produced no
//! spans — the CI trace smoke treats an empty trace as a broken probe.
//!
//! `explain` executes a kernel spec with the decision-forensics audit
//! probe and prints a human-readable narrative of the run (or of one
//! job's lifecycle with `--job ID`) to stdout. `audit` writes the full
//! audit log — typed per-job records, wait-cause attribution, Gantt
//! timeline — as JSON. `audit-diff` compares two exported logs and
//! reports the **first divergent record** (exit 1), the debugging tool
//! for the sharded-simulation and calendar-queue roadmap items; identical
//! logs exit 0.

use bench::{report_table, write_reports, TRACE_SEED};
use hpcsim::prelude::*;
use swf::{TracePreset, TraceSource};

/// The canonical example specs committed under `examples/scenarios/`.
///
/// `table3_fcfs` must stay identical to the FCFS row of the
/// `table3_policies` binary — the reproduce test pins its report
/// byte-for-byte against `results/table3_fcfs.json`.
fn example_specs() -> Vec<(&'static str, ScenarioSpec)> {
    let table3_fcfs = ScenarioSpec::builder(TraceSource::Preset {
        preset: TracePreset::Lublin1,
        jobs: 1000,
        seed: TRACE_SEED,
    })
    .policy(Policy::Fcfs)
    .backfill(Backfill::Easy(RuntimeEstimator::RequestTime))
    .metrics(vec![
        MetricKind::BoundedSlowdown,
        MetricKind::Wait,
        MetricKind::Utilization,
    ])
    .build();

    let multi_partition_2p = ScenarioSpec::builder(TraceSource::PartitionedPreset {
        preset: TracePreset::Lublin1,
        parts: 2,
        jobs: 800,
        seed: TRACE_SEED,
    })
    .platform(Platform::from_layout(
        &swf::table2_partitions(TracePreset::Lublin1, 2),
        RouterSpec::LeastLoaded,
    ))
    .policy(Policy::Fcfs)
    .backfill(Backfill::Conservative(RuntimeEstimator::RequestTime))
    .metrics(vec![MetricKind::BoundedSlowdown, MetricKind::Utilization])
    .build();

    let replicated_windows = ScenarioSpec::builder(TraceSource::Preset {
        preset: TracePreset::SdscSp2,
        jobs: 2000,
        seed: TRACE_SEED,
    })
    .policy(Policy::Sjf)
    .backfill(Backfill::Easy(RuntimeEstimator::RequestTime))
    .windows(5, 256, TRACE_SEED)
    .seeds(hpcsim::scenario::replication_seeds(TRACE_SEED, 4))
    .build();

    // An RL experiment in the same file format: env + train configs live
    // in the agent slot (train with `rlbf::train_from_spec`, then deploy).
    let rl_cfg = rlbf::TrainConfig::smoke();
    let rl_smoke = ScenarioSpec::builder(TraceSource::Preset {
        preset: TracePreset::Lublin2,
        jobs: 600,
        seed: TRACE_SEED,
    })
    .policy(Policy::Fcfs)
    .agent(rlbf::agent_slot(&rl_cfg.env, Some(&rl_cfg), None))
    .windows(3, 128, TRACE_SEED)
    .build();

    // A spec that exercises every traced simulation phase in one run:
    // conservative backfilling (conservative pass + backfill scan) on a
    // 2-partition cluster with decision-point re-routing (reroute pass),
    // at a size where the phase structure is visible in a profiler.
    let trace_demo = ScenarioSpec::builder(TraceSource::PartitionedPreset {
        preset: TracePreset::Lublin1,
        parts: 2,
        jobs: 10_000,
        seed: TRACE_SEED,
    })
    .platform(
        Platform::from_layout(
            &swf::table2_partitions(TracePreset::Lublin1, 2),
            RouterSpec::LeastLoaded,
        )
        .rerouted(ReroutePolicy::AtDecisionPoints {
            max_moves_per_job: 3,
            min_gain_secs: 60.0,
        }),
    )
    .policy(Policy::Fcfs)
    .backfill(Backfill::Conservative(RuntimeEstimator::RequestTime))
    .telemetry(true)
    .build();

    // A compact decision-forensics spec: conservative backfilling on a
    // 2-partition cluster with decision-point migration, so the audit log
    // exhibits every record kind the explain/audit-diff CI smokes read —
    // submissions with router candidates, reservation starts, skip
    // reasons, plan repairs and migrations.
    let audit_demo = ScenarioSpec::builder(TraceSource::PartitionedPreset {
        preset: TracePreset::Lublin1,
        parts: 2,
        jobs: 800,
        seed: TRACE_SEED,
    })
    .platform(
        Platform::from_layout(
            &swf::table2_partitions(TracePreset::Lublin1, 2),
            RouterSpec::LeastLoaded,
        )
        .rerouted(ReroutePolicy::AtDecisionPoints {
            max_moves_per_job: 3,
            min_gain_secs: 60.0,
        }),
    )
    .policy(Policy::Fcfs)
    .backfill(Backfill::Conservative(RuntimeEstimator::RequestTime))
    .audit(true)
    .build();

    // The dynamic-machine demo: the audit_demo platform perturbed by an
    // explicit, replayable event trace — a mid-run outage on partition 0
    // (kills + resubmits land in the audit log) and a later maintenance
    // drain of partition 1 (the reroute pass evacuates its queue). The
    // reproduce test pins its report byte-for-byte.
    let failure_demo = ScenarioSpec::builder(TraceSource::PartitionedPreset {
        preset: TracePreset::Lublin1,
        parts: 2,
        jobs: 800,
        seed: TRACE_SEED,
    })
    .platform(
        Platform::from_layout(
            &swf::table2_partitions(TracePreset::Lublin1, 2),
            RouterSpec::LeastLoaded,
        )
        .rerouted(ReroutePolicy::AtDecisionPoints {
            max_moves_per_job: 3,
            min_gain_secs: 60.0,
        }),
    )
    .policy(Policy::Fcfs)
    .backfill(Backfill::Conservative(RuntimeEstimator::RequestTime))
    .audit(true)
    .events(PlatformEventSpec {
        trace: vec![
            PlatformEvent::NodeFail {
                at: 150_000.0,
                part: 0,
                procs: 100,
            },
            PlatformEvent::NodeRepair {
                at: 220_000.0,
                part: 0,
                procs: 100,
            },
            PlatformEvent::DrainStart {
                at: 260_000.0,
                part: 1,
            },
            PlatformEvent::DrainEnd {
                at: 330_000.0,
                part: 1,
            },
        ],
        processes: Vec::new(),
        failure_policy: FailurePolicy::KillResubmit,
    })
    .build();

    vec![
        ("table3_fcfs", table3_fcfs),
        ("multi_partition_2p", multi_partition_2p),
        ("replicated_windows", replicated_windows),
        ("rl_smoke", rl_smoke),
        ("trace_demo", trace_demo),
        ("audit_demo", audit_demo),
        ("failure_demo", failure_demo),
    ]
}

fn usage() -> ! {
    eprintln!(
        "usage: scenario run <spec.json> [--out NAME] [--stdout] [--perturb EVENTS]\n       \
         scenario trace <spec.json> [--out FILE] [--perturb EVENTS]\n       \
         scenario explain <spec.json> [--job ID] [--perturb EVENTS]\n       \
         scenario audit <spec.json> [--out FILE] [--perturb EVENTS]\n       \
         scenario audit-diff <a_audit.json> <b_audit.json>\n       \
         scenario examples [dir]"
    );
    std::process::exit(2);
}

/// Applies a `--perturb events.json` overlay: the file holds one
/// serialized [`PlatformEventSpec`] that **replaces** the spec's own
/// event stream, so any committed spec can be rerun under a perturbation
/// trace without editing the spec file.
fn apply_perturb_overlay(spec: &mut ScenarioSpec, args: &[String]) {
    let Some(i) = args.iter().position(|a| a == "--perturb") else {
        return;
    };
    let Some(path) = args.get(i + 1) else {
        eprintln!("error: --perturb takes a path to a platform-events JSON file");
        std::process::exit(2);
    };
    let json = match std::fs::read_to_string(path) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let events: PlatformEventSpec = match serde_json::from_str(&json) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("error: cannot parse {path} as a platform-event spec: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "perturbing with {path}: {} explicit events, {} generative processes",
        events.trace.len(),
        events.processes.len()
    );
    spec.events = events;
}

/// Loads a spec file or exits with the parse/read error — the shared
/// entry gate of every spec-consuming subcommand.
fn load_spec_or_exit(path: &str) -> ScenarioSpec {
    match ScenarioSpec::load(path) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// Runs a spec under the audit probe or exits with the error (agent
/// specs, non-kernel engines and windows protocols cannot be audited).
fn run_audited_or_exit(spec: &ScenarioSpec) -> (RunReport, hpcsim::AuditLog) {
    match hpcsim::scenario::run_audited(spec) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// The default `results/<stem>_<suffix>.json` output path for a spec.
fn derived_out(path: &str, suffix: &str) -> String {
    let stem = std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "scenario".into());
    format!("results/{stem}_{suffix}.json")
}

/// The `"records"` array of an exported audit log, re-serialized one
/// JSON string per record for order-sensitive comparison.
fn audit_records_or_exit(path: &str) -> Vec<String> {
    let json = match std::fs::read_to_string(path) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let value: serde::Value = match serde_json::from_str(&json) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: cannot parse {path}: {e}");
            std::process::exit(1);
        }
    };
    let records = match &value {
        serde::Value::Object(entries) => entries.iter().find(|(k, _)| k == "records"),
        _ => None,
    };
    let Some((_, serde::Value::Array(records))) = records else {
        eprintln!("error: {path} has no \"records\" array — not an audit log export?");
        std::process::exit(1);
    };
    records
        .iter()
        .map(|r| serde_json::to_string(r).expect("record re-serializes"))
        .collect()
}

/// An agent spec with a seed list: one `rlbf::train` per seed
/// (Replicator-parallel), then every seed's agent deployed under the
/// spec's protocol — one report per seed, stamped with it.
fn run_agent_sweep(spec: &ScenarioSpec) -> Result<Vec<RunReport>, String> {
    eprintln!(
        "agent spec with {} training seeds — running a train sweep …",
        spec.seeds.len()
    );
    let sweep = rlbf::train_sweep_spec(spec, None)?;
    eprintln!(
        "train-set bsld across seeds: {:.2} ± {:.2} (best seed {:#x})",
        sweep.report.final_mean, sweep.report.final_std, sweep.report.best_seed
    );
    sweep
        .results
        .iter()
        .zip(&sweep.report.seeds)
        .map(|(result, &seed)| {
            let agent = rlbf::RlbfAgent::from_training(result, spec.trace.label());
            rlbf::run_spec_with_agent(spec, &agent).map(|mut report| {
                report.seed = Some(seed);
                report
            })
        })
        .collect()
}

/// Executes one spec, training the agent slot first when it has no
/// checkpoint to deploy.
fn run_one(spec: &ScenarioSpec) -> Result<RunReport, String> {
    let needs_training = matches!(
        &spec.scheduler,
        SchedulerSpec::Agent(slot) if slot.checkpoint.is_none()
    );
    if needs_training {
        eprintln!("agent slot has no checkpoint — training from the spec first …");
        let result = rlbf::train_from_spec(spec)?;
        let agent = rlbf::RlbfAgent::from_training(&result, spec.trace.label());
        rlbf::run_spec_with_agent(spec, &agent)
    } else {
        rlbf::run_spec(spec)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => {
            let path = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let mut spec = load_spec_or_exit(path);
            apply_perturb_overlay(&mut spec, &args);
            let reports: Vec<RunReport> = if spec.seeds.is_empty() {
                match run_one(&spec) {
                    Ok(r) => vec![r],
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(1);
                    }
                }
            } else if matches!(spec.scheduler, SchedulerSpec::Agent(_)) {
                // An agent spec's seeds are *training* seeds — run the
                // full train sweep and deploy every seed's agent. (Decided
                // before attempting replication: run_replicated's trace
                // re-seeding checks would otherwise mask this path for
                // seedless sources such as SWF files.)
                match run_agent_sweep(&spec) {
                    Ok(rs) => rs,
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(1);
                    }
                }
            } else {
                // Seeded heuristic sweeps fan out via the Replicator.
                match hpcsim::scenario::run_replicated(&spec) {
                    Ok(rs) => rs,
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(1);
                    }
                }
            };
            for r in &reports {
                if r.dropped_jobs > 0 {
                    eprintln!(
                        "warning: {}: {} of {} trace jobs fit no partition and were \
                         dropped (metrics describe the remaining {})",
                        r.label,
                        r.dropped_jobs,
                        r.jobs + r.dropped_jobs,
                        r.jobs
                    );
                }
            }
            report_table(&format!("scenario run {path}"), &reports);
            if args.iter().any(|a| a == "--stdout") {
                let json = serde_json::to_string_pretty(&reports).expect("reports serialize");
                println!("{json}");
            } else {
                let default_name = std::path::Path::new(path)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| "scenario".into());
                let out = args
                    .iter()
                    .position(|a| a == "--out")
                    .and_then(|i| args.get(i + 1).cloned())
                    .unwrap_or(default_name);
                if reports.len() == 1 {
                    // Single-shot runs commit as one report object.
                    bench::write_json(&out, &reports[0]);
                } else {
                    write_reports(&out, &reports);
                }
            }
        }
        Some("trace") => {
            let path = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let mut spec = load_spec_or_exit(path);
            apply_perturb_overlay(&mut spec, &args);
            let (report, recorder) = match hpcsim::scenario::run_recorded(&spec) {
                Ok(pair) => pair,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            };
            let spans = recorder.spans().len();
            if spans == 0 {
                eprintln!(
                    "error: the run produced no spans — the probe is disconnected \
                     (this is a bug, not an empty workload)"
                );
                std::process::exit(1);
            }
            let telemetry = report
                .telemetry
                .as_ref()
                .expect("recorded runs always attach telemetry");
            eprintln!(
                "{}: {} jobs, {} events, {spans} spans across the simulation phases",
                report.label, report.jobs, telemetry.events
            );
            let out = args
                .iter()
                .position(|a| a == "--out")
                .and_then(|i| args.get(i + 1).cloned())
                .unwrap_or_else(|| derived_out(path, "trace"));
            if let Some(dir) = std::path::Path::new(&out).parent() {
                std::fs::create_dir_all(dir).expect("can create the trace output dir");
            }
            std::fs::write(&out, recorder.chrome_trace_json()).expect("can write the trace file");
            eprintln!("wrote {out} (open in chrome://tracing or Perfetto)");
        }
        Some("explain") => {
            let path = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let mut spec = load_spec_or_exit(path);
            apply_perturb_overlay(&mut spec, &args);
            let job = args.iter().position(|a| a == "--job").map(|i| {
                args.get(i + 1)
                    .and_then(|s| s.parse::<usize>().ok())
                    .unwrap_or_else(|| {
                        eprintln!("error: --job takes a numeric job id");
                        std::process::exit(1);
                    })
            });
            let (report, log) = run_audited_or_exit(&spec);
            eprintln!(
                "{}: {} jobs, {} audit records",
                report.label,
                report.jobs,
                log.records.len()
            );
            // The narrative is the product of this subcommand: stdout.
            print!("{}", log.explain(job));
        }
        Some("audit") => {
            let path = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let mut spec = load_spec_or_exit(path);
            apply_perturb_overlay(&mut spec, &args);
            let (report, log) = run_audited_or_exit(&spec);
            eprintln!(
                "{}: {} jobs, {} audit records",
                report.label,
                report.jobs,
                log.records.len()
            );
            let out = args
                .iter()
                .position(|a| a == "--out")
                .and_then(|i| args.get(i + 1).cloned())
                .unwrap_or_else(|| derived_out(path, "audit"));
            if let Some(dir) = std::path::Path::new(&out).parent() {
                std::fs::create_dir_all(dir).expect("can create the audit output dir");
            }
            std::fs::write(&out, log.to_json_pretty()).expect("can write the audit log");
            eprintln!("wrote {out}");
        }
        Some("audit-diff") => {
            let a_path = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let b_path = args.get(2).map(String::as_str).unwrap_or_else(|| usage());
            let a = audit_records_or_exit(a_path);
            let b = audit_records_or_exit(b_path);
            let divergent = (0..a.len().min(b.len())).find(|&i| a[i] != b[i]);
            match divergent {
                Some(i) => {
                    eprintln!("logs diverge at record {i}:");
                    eprintln!("  {a_path}: {}", a[i]);
                    eprintln!("  {b_path}: {}", b[i]);
                    std::process::exit(1);
                }
                None if a.len() != b.len() => {
                    let i = a.len().min(b.len());
                    let (longer, extra) = if a.len() > b.len() {
                        (a_path, &a[i])
                    } else {
                        (b_path, &b[i])
                    };
                    eprintln!("logs agree on the first {i} records, then {longer} continues:");
                    eprintln!("  {longer}: {extra}");
                    std::process::exit(1);
                }
                None => {
                    println!("no divergence ({} records)", a.len());
                }
            }
        }
        Some("examples") => {
            let dir = std::path::PathBuf::from(
                args.get(1)
                    .map(String::as_str)
                    .unwrap_or("examples/scenarios"),
            );
            std::fs::create_dir_all(&dir).expect("can create the examples dir");
            for (name, spec) in example_specs() {
                let path = dir.join(format!("{name}.json"));
                spec.save(&path).expect("can write example spec");
                eprintln!("wrote {}", path.display());
            }
        }
        _ => usage(),
    }
}
