//! **Figure 1**: bsld under EASY backfilling as runtime-prediction accuracy
//! varies, for the four base policies of Table 3.
//!
//! The paper's counter-intuitive observation: moving from the actual
//! runtime (perfect prediction) to +5%…+100% noisy predictions does *not*
//! monotonically degrade scheduling — for some policies a noisy prediction
//! beats the oracle, because looser estimates widen the backfilling window
//! (Figure 2's trade-off).
//!
//! ```text
//! cargo run -p bench --release --bin fig1_accuracy_tradeoff [--full]
//! ```

use bench::{fmt_bsld, load_trace, print_table, write_json, Scale};
use hpcsim::prelude::*;
use serde::Serialize;
use swf::TracePreset;

#[derive(Serialize)]
struct Fig1Row {
    policy: String,
    estimator: String,
    bsld: f64,
}

fn main() {
    let scale = Scale::from_env();
    let trace = load_trace(TracePreset::SdscSp2, &scale);
    println!("Figure 1 — prediction accuracy vs bsld on {}", trace.name());
    println!("trace: {}", trace.stats());

    let noise_levels = [0.0, 0.05, 0.10, 0.20, 0.40, 1.00];
    let estimators: Vec<(String, RuntimeEstimator)> =
        std::iter::once(("request".to_string(), RuntimeEstimator::RequestTime))
            .chain(noise_levels.iter().map(|&frac| {
                let est = if frac == 0.0 {
                    RuntimeEstimator::ActualRuntime
                } else {
                    RuntimeEstimator::NoisyActual {
                        max_over_frac: frac,
                        seed: 7,
                    }
                };
                let label = if frac == 0.0 {
                    "AR".to_string()
                } else {
                    format!("+{:.0}%", frac * 100.0)
                };
                (label, est)
            }))
            .collect();

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for policy in Policy::ALL {
        let mut row = vec![policy.name().to_string()];
        for (label, est) in &estimators {
            let bsld = run_scheduler(&trace, policy, Backfill::Easy(*est))
                .metrics
                .mean_bounded_slowdown;
            row.push(fmt_bsld(bsld));
            records.push(Fig1Row {
                policy: policy.name().into(),
                estimator: label.clone(),
                bsld,
            });
        }
        rows.push(row);
    }

    let mut header = vec!["policy"];
    let labels: Vec<&str> = estimators.iter().map(|(l, _)| l.as_str()).collect();
    header.extend(labels);
    print_table(
        "Figure 1 — bsld by prediction accuracy (EASY)",
        &header,
        &rows,
    );

    // The paper's headline: at least one policy × noise level beats the
    // same policy with the oracle prediction.
    let beats_oracle = Policy::ALL.iter().any(|p| {
        let get = |est_label: &str| {
            records
                .iter()
                .find(|r| r.policy == p.name() && r.estimator == est_label)
                .map(|r| r.bsld)
                .unwrap_or(f64::NAN)
        };
        let ar = get("AR");
        ["+5%", "+10%", "+20%", "+40%", "+100%"]
            .iter()
            .any(|l| get(l) < ar)
    });
    println!(
        "\nnoisy-beats-oracle observed: {} (paper: yes — accuracy is not monotone)",
        if beats_oracle { "YES" } else { "no" }
    );

    write_json("fig1_accuracy_tradeoff", &records);
}
