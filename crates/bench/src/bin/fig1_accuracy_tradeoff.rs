//! **Figure 1**: bsld under EASY backfilling as runtime-prediction accuracy
//! varies, for the four base policies of Table 3.
//!
//! The paper's counter-intuitive observation: moving from the actual
//! runtime (perfect prediction) to +5%…+100% noisy predictions does *not*
//! monotonically degrade scheduling — for some policies a noisy prediction
//! beats the oracle, because looser estimates widen the backfilling window
//! (Figure 2's trade-off).
//!
//! The grid is (policy × estimator) scenario specs over the SDSC-SP2
//! trace; the written JSON is the uniform `RunReport` list, each report
//! embedding the spec that regenerates it.
//!
//! ```text
//! cargo run -p bench --release --bin fig1_accuracy_tradeoff [--full]
//! ```

use bench::{fmt_bsld, preset_source, print_table, write_reports, Scale};
use hpcsim::prelude::*;
use swf::TracePreset;

fn main() {
    let scale = Scale::from_env();
    println!("Figure 1 — prediction accuracy vs bsld on SDSC-SP2");

    let noise_levels = [0.0, 0.05, 0.10, 0.20, 0.40, 1.00];
    let estimators: Vec<(String, RuntimeEstimator)> =
        std::iter::once(("request".to_string(), RuntimeEstimator::RequestTime))
            .chain(noise_levels.iter().map(|&frac| {
                let est = if frac == 0.0 {
                    RuntimeEstimator::ActualRuntime
                } else {
                    RuntimeEstimator::NoisyActual {
                        max_over_frac: frac,
                        seed: 7,
                    }
                };
                let label = if frac == 0.0 {
                    "AR".to_string()
                } else {
                    format!("+{:.0}%", frac * 100.0)
                };
                (label, est)
            }))
            .collect();

    // Build the full (policy × estimator) spec grid, then run it.
    let mut reports: Vec<RunReport> = Vec::new();
    let mut rows = Vec::new();
    for policy in Policy::ALL {
        let mut row = vec![policy.name().to_string()];
        for (est_label, est) in &estimators {
            let spec = ScenarioSpec::builder(preset_source(TracePreset::SdscSp2, &scale))
                .name(format!("{} · {}", policy.name(), est_label))
                .policy(policy)
                .backfill(Backfill::Easy(*est))
                .build();
            let report = hpcsim::scenario::run(&spec).expect("heuristic spec runs");
            row.push(fmt_bsld(report.metrics.mean_bounded_slowdown));
            reports.push(report);
        }
        rows.push(row);
    }

    let mut header = vec!["policy"];
    let labels: Vec<&str> = estimators.iter().map(|(l, _)| l.as_str()).collect();
    header.extend(labels);
    print_table(
        "Figure 1 — bsld by prediction accuracy (EASY)",
        &header,
        &rows,
    );

    // The paper's headline: at least one policy × noise level beats the
    // same policy with the oracle prediction.
    let bsld_of = |label: &str| {
        reports
            .iter()
            .find(|r| r.label == label)
            .map(|r| r.metrics.mean_bounded_slowdown)
            .unwrap_or(f64::NAN)
    };
    let beats_oracle = Policy::ALL.iter().any(|p| {
        let ar = bsld_of(&format!("{} · AR", p.name()));
        ["+5%", "+10%", "+20%", "+40%", "+100%"]
            .iter()
            .any(|l| bsld_of(&format!("{} · {}", p.name(), l)) < ar)
    });
    println!(
        "\nnoisy-beats-oracle observed: {} (paper: yes — accuracy is not monotone)",
        if beats_oracle { "YES" } else { "no" }
    );

    write_reports("fig1_accuracy_tradeoff", &reports);
}
