//! **Table 5**: generality — an agent trained on trace X (`RL-X`, FCFS
//! base, as in the paper) applied to every other trace Y, under both FCFS
//! and SJF base policies.
//!
//! Every cell is one scenario spec under the shared `Windows` protocol;
//! the cross-deployment cells simply put a *different* trace source in
//! the spec than the agent was trained on — generality studies are a loop
//! over specs, exactly the shape the ROADMAP's cluster-generality item
//! needs.
//!
//! ```text
//! cargo run -p bench --release --bin table5_generality [--full]
//! ```

use bench::{
    agent_checkpoint_path, eval_builder, fmt_bsld, na, print_table, train_or_load_agent,
    write_reports, Scale,
};
use hpcsim::prelude::*;
use rlbf::{agent_slot, run_spec_with_agent, RlbfAgent};
use swf::TracePreset;

const EVAL_SEED: u64 = 0x97a5;

fn main() {
    let scale = Scale::from_env();

    // Train (or load) one agent per trace, FCFS base — the paper's RL-X.
    let agents: Vec<(TracePreset, RlbfAgent)> = TracePreset::ALL
        .iter()
        .map(|&p| (p, train_or_load_agent(p, Policy::Fcfs, &scale)))
        .collect();

    let mut reports: Vec<RunReport> = Vec::new();
    for base in [Policy::Fcfs, Policy::Sjf] {
        let mut rows = Vec::new();
        for eval_preset in TracePreset::ALL {
            let has_estimates = eval_preset.targets().has_user_estimates;

            let heur = |backfill: Backfill| {
                let spec = eval_builder(eval_preset, &scale, EVAL_SEED)
                    .policy(base)
                    .backfill(backfill)
                    .build();
                hpcsim::scenario::run(&spec).expect("heuristic spec runs")
            };
            let easy = has_estimates.then(|| heur(Backfill::Easy(RuntimeEstimator::RequestTime)));
            let easy_ar = heur(Backfill::Easy(RuntimeEstimator::ActualRuntime));

            let mut row = vec![
                eval_preset.name().to_string(),
                easy.as_ref()
                    .map(|r| fmt_bsld(r.metrics.mean_bounded_slowdown))
                    .unwrap_or_else(na),
                fmt_bsld(easy_ar.metrics.mean_bounded_slowdown),
            ];
            reports.extend(easy);
            reports.push(easy_ar);

            for (train_preset, agent) in &agents {
                // The slot names the RL-X checkpoint (trained on
                // `train_preset`, FCFS base), so the cross-deployment
                // cell's spec regenerates with the exact trained model,
                // not a freshly trained one on the eval trace.
                let checkpoint = agent_checkpoint_path(*train_preset, Policy::Fcfs, &scale)
                    .to_string_lossy()
                    .into_owned();
                let spec = eval_builder(eval_preset, &scale, EVAL_SEED)
                    .name(format!(
                        "{} · {}+RL-{} · {}x{}w",
                        eval_preset.name(),
                        base.name(),
                        train_preset.name(),
                        scale.eval_samples,
                        scale.eval_window
                    ))
                    .policy(base)
                    .agent(agent_slot(&agent.env, None, Some(checkpoint)))
                    .build();
                let report = run_spec_with_agent(&spec, agent).expect("agent spec runs");
                row.push(fmt_bsld(report.metrics.mean_bounded_slowdown));
                reports.push(report);
            }
            rows.push(row);
        }
        print_table(
            &format!("Table 5 — {} as the base scheduling policy", base.name()),
            &[
                "trace",
                "EASY",
                "EASY-AR",
                "RL-SDSC-SP2",
                "RL-HPC2N",
                "RL-Lublin-1",
                "RL-Lublin-2",
            ],
            &rows,
        );
    }

    println!("\nshape check: cross-trained agents (off-diagonal) should still beat");
    println!("EASY in most cells — the paper's generality claim (§4.4).");
    write_reports("table5_generality", &reports);
}
