//! **Table 5**: generality — an agent trained on trace X (`RL-X`, FCFS
//! base, as in the paper) applied to every other trace Y, under both FCFS
//! and SJF base policies.
//!
//! ```text
//! cargo run -p bench --release --bin table5_generality [--full]
//! ```

use bench::{fmt_bsld, load_trace, na, print_table, train_or_load_agent, write_json, Scale};
use hpcsim::{Backfill, Policy, RuntimeEstimator};
use rlbf::{evaluate_heuristic, RlbfAgent};
use serde::Serialize;
use swf::TracePreset;

const EVAL_SEED: u64 = 0x97a5;

#[derive(Serialize)]
struct Table5Cell {
    base_policy: String,
    eval_trace: String,
    column: String,
    bsld: Option<f64>,
}

fn main() {
    let scale = Scale::from_env();

    // Train (or load) one agent per trace, FCFS base — the paper's RL-X.
    let agents: Vec<(TracePreset, RlbfAgent)> = TracePreset::ALL
        .iter()
        .map(|&p| (p, train_or_load_agent(p, Policy::Fcfs, &scale)))
        .collect();

    let mut records = Vec::new();
    for base in [Policy::Fcfs, Policy::Sjf] {
        let mut rows = Vec::new();
        for eval_preset in TracePreset::ALL {
            let trace = load_trace(eval_preset, &scale);
            let has_estimates = eval_preset.targets().has_user_estimates;

            let easy = if has_estimates {
                Some(evaluate_heuristic(
                    &trace,
                    base,
                    Backfill::Easy(RuntimeEstimator::RequestTime),
                    scale.eval_samples,
                    scale.eval_window,
                    EVAL_SEED,
                ))
            } else {
                None
            };
            let easy_ar = evaluate_heuristic(
                &trace,
                base,
                Backfill::Easy(RuntimeEstimator::ActualRuntime),
                scale.eval_samples,
                scale.eval_window,
                EVAL_SEED,
            );

            let mut row = vec![
                eval_preset.name().to_string(),
                easy.map(fmt_bsld).unwrap_or_else(na),
                fmt_bsld(easy_ar),
            ];
            records.push(Table5Cell {
                base_policy: base.name().into(),
                eval_trace: eval_preset.name().into(),
                column: "EASY".into(),
                bsld: easy,
            });
            records.push(Table5Cell {
                base_policy: base.name().into(),
                eval_trace: eval_preset.name().into(),
                column: "EASY-AR".into(),
                bsld: Some(easy_ar),
            });

            for (train_preset, agent) in &agents {
                let bsld = agent.evaluate(
                    &trace,
                    base,
                    scale.eval_samples,
                    scale.eval_window,
                    EVAL_SEED,
                );
                row.push(fmt_bsld(bsld));
                records.push(Table5Cell {
                    base_policy: base.name().into(),
                    eval_trace: eval_preset.name().into(),
                    column: format!("RL-{}", train_preset.name()),
                    bsld: Some(bsld),
                });
            }
            rows.push(row);
        }
        print_table(
            &format!("Table 5 — {} as the base scheduling policy", base.name()),
            &[
                "trace",
                "EASY",
                "EASY-AR",
                "RL-SDSC-SP2",
                "RL-HPC2N",
                "RL-Lublin-1",
                "RL-Lublin-2",
            ],
            &rows,
        );
    }

    println!("\nshape check: cross-trained agents (off-diagonal) should still beat");
    println!("EASY in most cells — the paper's generality claim (§4.4).");
    write_json("table5_generality", &records);
}
