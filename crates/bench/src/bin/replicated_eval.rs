//! Replicator-parallel §4.3 evaluation: the paper's 10 × 1024-job window
//! protocol repeated under N independent master seeds, expressed as **one
//! scenario spec with a seed list** and fanned out with
//! `hpcsim::scenario::run_replicated` (which rides `desim::Replicator`).
//!
//! Each replication re-seeds the spec's window sampler (see
//! `scenario::materialize`), so one replication = one complete protocol
//! run. The binary times the sweep sequentially (1 thread) and parallel
//! (all cores) and records the wall-clock win in
//! `results/eval_replication.json`.
//!
//! ```text
//! cargo run --release -p bench --bin replicated_eval [-- --seeds N --jobs N]
//! ```

use bench::{print_table, write_json, TRACE_SEED};
use hpcsim::prelude::*;
use hpcsim::scenario::replication_seeds;
use serde::Serialize;
use std::time::Instant;
use swf::{TracePreset, TraceSource};

#[derive(Serialize)]
struct Row {
    label: String,
    trace: String,
    backfill: String,
    seeds: usize,
    windows: usize,
    window_len: usize,
    /// Worker threads the parallel run had available — the speedup ceiling.
    /// On a 1-core host seq and par are the same code path and the speedup
    /// is ≈ 1.0 by construction; replications share nothing, so on an
    /// N-core host the sweep scales with min(N, seeds).
    host_threads: usize,
    mean_bsld: f64,
    std_across_seeds: f64,
    seq_ms: f64,
    par_ms: f64,
    speedup: f64,
    /// The spec that regenerates this sweep (timing aside).
    spec: ScenarioSpec,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |name: &str, default: usize| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let seeds = arg("--seeds", 16);
    let jobs = arg("--jobs", 10_000);
    let windows = 10; // paper §4.3
    let window_len = 1024;
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let cases = [
        (
            TracePreset::Lublin1,
            Backfill::Easy(RuntimeEstimator::RequestTime),
            "EASY",
        ),
        (
            TracePreset::Lublin1,
            Backfill::Conservative(RuntimeEstimator::RequestTime),
            "CONS",
        ),
        (
            TracePreset::SdscSp2,
            Backfill::Easy(RuntimeEstimator::RequestTime),
            "EASY",
        ),
    ];

    let mut records = Vec::new();
    let mut table = Vec::new();
    for (preset, backfill, label) in cases {
        // One spec = the full sweep: the seed list fans out across
        // threads, each replication re-seeding the window sampler.
        let spec = ScenarioSpec::builder(TraceSource::Preset {
            preset,
            jobs,
            seed: TRACE_SEED,
        })
        .policy(Policy::Fcfs)
        .backfill(backfill)
        .windows(windows, window_len, TRACE_SEED)
        .seeds(replication_seeds(TRACE_SEED, seeds))
        .build();

        let t0 = Instant::now();
        let seq = hpcsim::scenario::run_replicated_threads(&spec, 1).expect("sweep runs");
        let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let par = hpcsim::scenario::run_replicated(&spec).expect("sweep runs");
        let par_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(seq, par, "replication must be execution-order independent");

        let bslds: Vec<f64> = par
            .iter()
            .map(|r| r.metrics.mean_bounded_slowdown)
            .collect();
        let mean = bslds.iter().sum::<f64>() / seeds as f64;
        let var = bslds.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / seeds as f64;
        table.push(vec![
            preset.name().to_string(),
            label.to_string(),
            format!("{mean:.2} ± {:.2}", var.sqrt()),
            format!("{seq_ms:.0}"),
            format!("{par_ms:.0}"),
            format!("{:.2}x", seq_ms / par_ms),
        ]);
        records.push(Row {
            label: spec.label(),
            trace: preset.name().into(),
            backfill: label.into(),
            seeds,
            windows,
            window_len,
            host_threads,
            mean_bsld: mean,
            std_across_seeds: var.sqrt(),
            seq_ms,
            par_ms,
            speedup: seq_ms / par_ms,
            spec,
        });
    }

    print_table(
        &format!("§4.3 protocol × {seeds} seeds, Replicator fan-out ({host_threads} host threads)"),
        &[
            "trace",
            "backfill",
            "bsld (±σ)",
            "seq ms",
            "par ms",
            "speedup",
        ],
        &table,
    );
    write_json("eval_replication", &records);
}
