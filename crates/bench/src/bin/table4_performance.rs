//! **Table 4**: bsld of RLBackfilling vs EASY / EASY-AR across base
//! policies and traces, evaluated on sampled job windows the training
//! never saw (the paper's 10 × 1024-job protocol).
//!
//! Columns follow the paper exactly: FCFS+EASY, FCFS+EASY-AR, FCFS+RLBF,
//! SJF+EASY, SJF+EASY-AR, SJF+RLBF, WFP3+EASY, F1+EASY. Synthetic traces
//! have no user estimates, so their EASY-AR columns are `-` (EASY ≡
//! EASY-AR there), matching the paper's table layout.
//!
//! ```text
//! cargo run -p bench --release --bin table4_performance [--full]
//! ```

use bench::{fmt_bsld, load_trace, na, print_table, train_or_load_agent, write_json, Scale};
use hpcsim::{Backfill, Policy, RuntimeEstimator};
use rlbf::evaluate_heuristic;
use serde::Serialize;
use swf::TracePreset;

const EVAL_SEED: u64 = 0xe7a1;

#[derive(Serialize)]
struct Table4Row {
    trace: String,
    fcfs_easy: f64,
    fcfs_easy_ar: Option<f64>,
    fcfs_rlbf: f64,
    sjf_easy: f64,
    sjf_easy_ar: Option<f64>,
    sjf_rlbf: f64,
    wfp3_easy: f64,
    f1_easy: f64,
}

fn main() {
    let scale = Scale::from_env();
    let mut rows = Vec::new();
    let mut records = Vec::new();

    for preset in TracePreset::ALL {
        let trace = load_trace(preset, &scale);
        let has_estimates = preset.targets().has_user_estimates;
        eprintln!("== {} ==", preset.name());

        let heur = |policy: Policy, backfill: Backfill| {
            evaluate_heuristic(
                &trace,
                policy,
                backfill,
                scale.eval_samples,
                scale.eval_window,
                EVAL_SEED,
            )
        };
        let easy = Backfill::Easy(RuntimeEstimator::RequestTime);
        let easy_ar = Backfill::Easy(RuntimeEstimator::ActualRuntime);

        let fcfs_easy = heur(Policy::Fcfs, easy);
        let sjf_easy = heur(Policy::Sjf, easy);
        let wfp3_easy = heur(Policy::Wfp3, easy);
        let f1_easy = heur(Policy::F1, easy);
        let (fcfs_easy_ar, sjf_easy_ar) = if has_estimates {
            (
                Some(heur(Policy::Fcfs, easy_ar)),
                Some(heur(Policy::Sjf, easy_ar)),
            )
        } else {
            (None, None)
        };

        let fcfs_agent = train_or_load_agent(preset, Policy::Fcfs, &scale);
        let fcfs_rlbf = fcfs_agent.evaluate(
            &trace,
            Policy::Fcfs,
            scale.eval_samples,
            scale.eval_window,
            EVAL_SEED,
        );
        let sjf_agent = train_or_load_agent(preset, Policy::Sjf, &scale);
        let sjf_rlbf = sjf_agent.evaluate(
            &trace,
            Policy::Sjf,
            scale.eval_samples,
            scale.eval_window,
            EVAL_SEED,
        );

        rows.push(vec![
            preset.name().to_string(),
            fmt_bsld(fcfs_easy),
            fcfs_easy_ar.map(fmt_bsld).unwrap_or_else(na),
            fmt_bsld(fcfs_rlbf),
            fmt_bsld(sjf_easy),
            sjf_easy_ar.map(fmt_bsld).unwrap_or_else(na),
            fmt_bsld(sjf_rlbf),
            fmt_bsld(wfp3_easy),
            fmt_bsld(f1_easy),
        ]);
        records.push(Table4Row {
            trace: preset.name().into(),
            fcfs_easy,
            fcfs_easy_ar,
            fcfs_rlbf,
            sjf_easy,
            sjf_easy_ar,
            sjf_rlbf,
            wfp3_easy,
            f1_easy,
        });
    }

    print_table(
        "Table 4 — bsld on sampled job windows (RLBF = RLBackfilling)",
        &[
            "trace",
            "FCFS+EASY",
            "FCFS+EASY-AR",
            "FCFS+RLBF",
            "SJF+EASY",
            "SJF+EASY-AR",
            "SJF+RLBF",
            "WFP3+EASY",
            "F1+EASY",
        ],
        &rows,
    );

    println!("\nshape checks vs the paper:");
    for r in &records {
        let vs_easy = 100.0 * (r.fcfs_easy - r.fcfs_rlbf) / r.fcfs_easy;
        print!(
            "  {:<9} FCFS+RLBF vs FCFS+EASY: {:+.1}% (paper: +26%..+59%)",
            r.trace, vs_easy
        );
        if let Some(ar) = r.fcfs_easy_ar {
            print!(
                "  vs EASY-AR: {:+.1}% (paper: +15%..+30%)",
                100.0 * (ar - r.fcfs_rlbf) / ar
            );
        }
        println!();
    }

    write_json("table4_performance", &records);
}
