//! **Table 4**: bsld of RLBackfilling vs EASY / EASY-AR across base
//! policies and traces, evaluated on sampled job windows the training
//! never saw (the paper's 10 × 1024-job protocol).
//!
//! Every cell is one scenario spec — the heuristic columns run through
//! `hpcsim::scenario::run`, the RLBF columns deploy the cached agent
//! through `rlbf::run_spec_with_agent` — all under the **same** `Windows`
//! protocol, so competing schedulers see identical job sequences.
//!
//! Columns follow the paper exactly: FCFS+EASY, FCFS+EASY-AR, FCFS+RLBF,
//! SJF+EASY, SJF+EASY-AR, SJF+RLBF, WFP3+EASY, F1+EASY. Synthetic traces
//! have no user estimates, so their EASY-AR columns are `-` (EASY ≡
//! EASY-AR there), matching the paper's table layout.
//!
//! ```text
//! cargo run -p bench --release --bin table4_performance [--full]
//! ```

use bench::{
    agent_checkpoint_path, eval_builder, fmt_bsld, na, print_table, train_or_load_agent,
    write_reports, Scale,
};
use hpcsim::prelude::*;
use rlbf::{agent_slot, run_spec_with_agent};
use swf::TracePreset;

const EVAL_SEED: u64 = 0xe7a1;

fn main() {
    let scale = Scale::from_env();
    let mut rows = Vec::new();
    let mut reports: Vec<RunReport> = Vec::new();

    for preset in TracePreset::ALL {
        let has_estimates = preset.targets().has_user_estimates;
        eprintln!("== {} ==", preset.name());

        // One heuristic cell = one spec under the shared eval protocol.
        let heur = |policy: Policy, backfill: Backfill| {
            let spec = eval_builder(preset, &scale, EVAL_SEED)
                .policy(policy)
                .backfill(backfill)
                .build();
            hpcsim::scenario::run(&spec).expect("heuristic spec runs")
        };
        // One RLBF cell = the same spec with the agent in the scheduler
        // slot, deployed from the shared checkpoint cache; the slot names
        // that checkpoint so the embedded spec regenerates this exact run.
        let rl = |policy: Policy| {
            let agent = train_or_load_agent(preset, policy, &scale);
            let checkpoint = agent_checkpoint_path(preset, policy, &scale)
                .to_string_lossy()
                .into_owned();
            let spec = eval_builder(preset, &scale, EVAL_SEED)
                .policy(policy)
                .agent(agent_slot(&agent.env, None, Some(checkpoint)))
                .build();
            run_spec_with_agent(&spec, &agent).expect("agent spec runs")
        };
        let easy = Backfill::Easy(RuntimeEstimator::RequestTime);
        let easy_ar = Backfill::Easy(RuntimeEstimator::ActualRuntime);

        let fcfs_easy = heur(Policy::Fcfs, easy);
        let sjf_easy = heur(Policy::Sjf, easy);
        let wfp3_easy = heur(Policy::Wfp3, easy);
        let f1_easy = heur(Policy::F1, easy);
        let (fcfs_easy_ar, sjf_easy_ar) = if has_estimates {
            (
                Some(heur(Policy::Fcfs, easy_ar)),
                Some(heur(Policy::Sjf, easy_ar)),
            )
        } else {
            (None, None)
        };
        let fcfs_rlbf = rl(Policy::Fcfs);
        let sjf_rlbf = rl(Policy::Sjf);

        let bsld = |r: &RunReport| r.metrics.mean_bounded_slowdown;
        rows.push(vec![
            preset.name().to_string(),
            fmt_bsld(bsld(&fcfs_easy)),
            fcfs_easy_ar
                .as_ref()
                .map(|r| fmt_bsld(bsld(r)))
                .unwrap_or_else(na),
            fmt_bsld(bsld(&fcfs_rlbf)),
            fmt_bsld(bsld(&sjf_easy)),
            sjf_easy_ar
                .as_ref()
                .map(|r| fmt_bsld(bsld(r)))
                .unwrap_or_else(na),
            fmt_bsld(bsld(&sjf_rlbf)),
            fmt_bsld(bsld(&wfp3_easy)),
            fmt_bsld(bsld(&f1_easy)),
        ]);

        println!(
            "  {:<9} FCFS+RLBF vs FCFS+EASY: {:+.1}% (paper: +26%..+59%)",
            preset.name(),
            100.0 * (bsld(&fcfs_easy) - bsld(&fcfs_rlbf)) / bsld(&fcfs_easy)
        );
        if let Some(ar) = &fcfs_easy_ar {
            println!(
                "  {:<9} FCFS+RLBF vs FCFS+EASY-AR: {:+.1}% (paper: +15%..+30%)",
                preset.name(),
                100.0 * (bsld(ar) - bsld(&fcfs_rlbf)) / bsld(ar)
            );
        }

        reports.extend([fcfs_easy, fcfs_rlbf, sjf_easy, sjf_rlbf, wfp3_easy, f1_easy]);
        reports.extend(fcfs_easy_ar);
        reports.extend(sjf_easy_ar);
    }

    print_table(
        "Table 4 — bsld on sampled job windows (RLBF = RLBackfilling)",
        &[
            "trace",
            "FCFS+EASY",
            "FCFS+EASY-AR",
            "FCFS+RLBF",
            "SJF+EASY",
            "SJF+EASY-AR",
            "SJF+RLBF",
            "WFP3+EASY",
            "F1+EASY",
        ],
        &rows,
    );

    write_reports("table4_performance", &reports);
}
