//! Criterion bench: `desim`-kernel simulator vs the seed cost model
//! (reference engine + naive availability profile + seed pass logic),
//! across trace sizes — the perf baseline future PRs regress against.
//!
//! The seed's conservative pass is `O(n³)`-ish and takes seconds per run
//! at 10K jobs, so the heaviest seed cases are gated behind the `full`
//! filter argument (`cargo bench -p bench --bench kernel -- full`); the
//! committed headline numbers live in `results/bench_kernel.json`
//! (emitted by `cargo run --release -p bench --bin speed_probe`).

use bench::TRACE_SEED;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpcsim::prelude::*;
use hpcsim::reference::run_seed_scheduler;
use std::hint::black_box;
use swf::TracePreset;

fn bench_easy_kernel_vs_seed(c: &mut Criterion) {
    let mut group = c.benchmark_group("easy_lublin1");
    for n in [1_000usize, 10_000] {
        let trace = TracePreset::Lublin1.generate(n, TRACE_SEED);
        group.bench_with_input(BenchmarkId::new("kernel", n), &trace, |b, t| {
            b.iter(|| {
                run_scheduler(
                    black_box(t),
                    Policy::Fcfs,
                    Backfill::Easy(RuntimeEstimator::RequestTime),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("seed", n), &trace, |b, t| {
            b.iter(|| {
                run_seed_scheduler(
                    black_box(t),
                    Policy::Fcfs,
                    Backfill::Easy(RuntimeEstimator::RequestTime),
                )
            })
        });
    }
    group.finish();
}

fn bench_easy_kernel_100k(c: &mut Criterion) {
    // Kernel-only: a trace size the seed implementation could not sustain.
    let trace = TracePreset::Lublin1.generate(100_000, TRACE_SEED);
    let mut group = c.benchmark_group("easy_lublin1_large");
    group.bench_function("kernel/100000", |b| {
        b.iter(|| {
            run_scheduler(
                black_box(&trace),
                Policy::Fcfs,
                Backfill::Easy(RuntimeEstimator::RequestTime),
            )
        })
    });
    group.finish();
}

fn bench_conservative_kernel_vs_seed(c: &mut Criterion) {
    let mut group = c.benchmark_group("conservative_lublin1");
    let trace = TracePreset::Lublin1.generate(1_000, TRACE_SEED);
    group.bench_with_input(BenchmarkId::new("kernel", 1_000), &trace, |b, t| {
        b.iter(|| {
            run_scheduler(
                black_box(t),
                Policy::Fcfs,
                Backfill::Conservative(RuntimeEstimator::RequestTime),
            )
        })
    });
    group.bench_with_input(BenchmarkId::new("seed", 1_000), &trace, |b, t| {
        b.iter(|| {
            run_seed_scheduler(
                black_box(t),
                Policy::Fcfs,
                Backfill::Conservative(RuntimeEstimator::RequestTime),
            )
        })
    });
    // The incremental-planner headline case: 10k jobs was seconds-scale
    // before persistent plans landed, so it lives here (kernel-only, per
    // commit) and not just in speed_probe.
    let trace10k = TracePreset::Lublin1.generate(10_000, TRACE_SEED);
    group.bench_with_input(BenchmarkId::new("kernel", 10_000), &trace10k, |b, t| {
        b.iter(|| {
            run_scheduler(
                black_box(t),
                Policy::Fcfs,
                Backfill::Conservative(RuntimeEstimator::RequestTime),
            )
        })
    });
    group.finish();
}

fn bench_migration(c: &mut Criterion) {
    // The decision-point re-routing hot path this PR's shared router
    // plans optimize: every settled batch re-evaluates the waiting jobs
    // of every partition. Tracked per commit so the reroute scan cannot
    // silently regress to per-candidate plan rebuilding.
    use std::sync::Arc;
    let reroute = ReroutePolicy::AtDecisionPoints {
        max_moves_per_job: 3,
        min_gain_secs: 60.0,
    };
    let mut group = c.benchmark_group("migration_lublin1");
    for parts in [2usize, 4] {
        let w = swf::partitioned_preset(TracePreset::Lublin1, parts, 3_000, TRACE_SEED);
        let spec = ClusterSpec::from_layout(&w.layout);
        for (name, backfill) in [
            ("easy", Backfill::Easy(RuntimeEstimator::RequestTime)),
            (
                "cons",
                Backfill::Conservative(RuntimeEstimator::RequestTime),
            ),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("decision_points_{name}"), parts),
                &(&w, &spec),
                |b, (w, spec)| {
                    b.iter(|| {
                        run_scheduler_on_rerouted(
                            black_box(&w.trace),
                            Policy::Fcfs,
                            backfill,
                            spec,
                            Arc::new(LeastLoaded),
                            reroute,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_multi_partition(c: &mut Criterion) {
    // The cluster subsystem's overhead/benefit at 2 and 4 partitions:
    // per-partition queues shrink the sort and pass costs, the router adds
    // a per-arrival decision. Kernel-only (the seed engine is flat).
    use std::sync::Arc;
    let mut group = c.benchmark_group("multi_partition_lublin1");
    for parts in [2usize, 4] {
        let w = swf::partitioned_preset(TracePreset::Lublin1, parts, 10_000, TRACE_SEED);
        let spec = ClusterSpec::from_layout(&w.layout);
        group.bench_with_input(
            BenchmarkId::new("easy_least_loaded", parts),
            &(&w, &spec),
            |b, (w, spec)| {
                b.iter(|| {
                    run_scheduler_on(
                        black_box(&w.trace),
                        Policy::Fcfs,
                        Backfill::Easy(RuntimeEstimator::RequestTime),
                        spec,
                        Arc::new(LeastLoaded),
                    )
                })
            },
        );
    }
    // Conservative at 1k jobs (the pass dominates; matches the flat case
    // benched above for an apples-to-apples partition-count comparison).
    let w = swf::partitioned_preset(TracePreset::Lublin1, 2, 1_000, TRACE_SEED);
    let spec = ClusterSpec::from_layout(&w.layout);
    group.bench_function("conservative_earliest_start/2", |b| {
        b.iter(|| {
            run_scheduler_on(
                black_box(&w.trace),
                Policy::Fcfs,
                Backfill::Conservative(RuntimeEstimator::RequestTime),
                &spec,
                Arc::new(EarliestStart::default()),
            )
        })
    });
    group.finish();
}

fn bench_probe_overhead(c: &mut Criterion) {
    // The zero-cost claim, measured: the same 10k-job run through the
    // default `NoopProbe` (monomorphized away — must be indistinguishable
    // from the pre-observability baseline) and through a counters-only
    // `Recorder`. The Noop/Recorder gap is the price of telemetry; the
    // Noop/baseline gap must stay ~0 (the CI floor enforces ≤2%).
    let trace = TracePreset::Lublin1.generate(10_000, TRACE_SEED);
    let mut group = c.benchmark_group("probe_overhead");
    for (name, backfill) in [
        ("easy", Backfill::Easy(RuntimeEstimator::RequestTime)),
        (
            "cons",
            Backfill::Conservative(RuntimeEstimator::RequestTime),
        ),
    ] {
        group.bench_with_input(BenchmarkId::new("noop", name), &trace, |b, t| {
            b.iter(|| run_scheduler(black_box(t), Policy::Fcfs, backfill))
        });
        group.bench_with_input(BenchmarkId::new("recorder", name), &trace, |b, t| {
            b.iter(|| {
                run_scheduler_recorded(black_box(t), Policy::Fcfs, backfill, Recorder::default())
            })
        });
    }
    group.finish();
}

fn bench_replicated_experiments(c: &mut Criterion) {
    // The workload the kernel unlocks: N independent replications of a
    // whole experiment fanned out by desim's Replicator.
    let trace = TracePreset::Lublin2.generate(2_000, TRACE_SEED);
    c.bench_function("replicated_easy_8x1024", |b| {
        let replicator = desim::Replicator::new(7);
        b.iter(|| {
            replicator.run(8, |_idx, seed| {
                let windows = rlbf::sample_windows(black_box(&trace), 1, 1024, seed);
                run_scheduler(
                    &windows[0],
                    Policy::Fcfs,
                    Backfill::Easy(RuntimeEstimator::RequestTime),
                )
                .metrics
                .mean_bounded_slowdown
            })
        })
    });
}

fn bench_full_sizes(c: &mut Criterion) {
    // Heavy cases (the seed conservative run takes ~5 s per iteration):
    // only run when explicitly requested with `-- full`.
    if !std::env::args().any(|a| a == "full") {
        return;
    }
    let mut group = c.benchmark_group("full");
    let trace = TracePreset::Lublin1.generate(10_000, TRACE_SEED);
    group.bench_function("conservative_lublin1/kernel/10000", |b| {
        b.iter(|| {
            run_scheduler(
                black_box(&trace),
                Policy::Fcfs,
                Backfill::Conservative(RuntimeEstimator::RequestTime),
            )
        })
    });
    group.bench_function("conservative_lublin1/seed/10000", |b| {
        b.iter(|| {
            run_seed_scheduler(
                black_box(&trace),
                Policy::Fcfs,
                Backfill::Conservative(RuntimeEstimator::RequestTime),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_easy_kernel_vs_seed,
    bench_easy_kernel_100k,
    bench_conservative_kernel_vs_seed,
    bench_multi_partition,
    bench_migration,
    bench_probe_overhead,
    bench_replicated_experiments,
    bench_full_sizes,
);
criterion_main!(benches);
