//! Criterion micro-benchmarks: simulator throughput under each policy and
//! backfilling strategy. These quantify the substrate cost that bounds RL
//! training speed (every PPO trajectory is one of these simulations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpcsim::prelude::*;
use std::hint::black_box;
use swf::TracePreset;

fn bench_policies(c: &mut Criterion) {
    let trace = TracePreset::Lublin1.generate(1000, 3);
    let mut group = c.benchmark_group("scheduler_1000_jobs");
    for policy in Policy::ALL {
        group.bench_with_input(
            BenchmarkId::new("easy", policy.name()),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    run_scheduler(
                        black_box(&trace),
                        policy,
                        Backfill::Easy(RuntimeEstimator::RequestTime),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_backfill_strategies(c: &mut Criterion) {
    let trace = TracePreset::SdscSp2.generate(1000, 4);
    let mut group = c.benchmark_group("backfill_1000_jobs");
    let cases = [
        ("none", Backfill::None),
        ("easy", Backfill::Easy(RuntimeEstimator::RequestTime)),
        ("easy_ar", Backfill::Easy(RuntimeEstimator::ActualRuntime)),
        (
            "conservative",
            Backfill::Conservative(RuntimeEstimator::RequestTime),
        ),
    ];
    for (name, backfill) in cases {
        group.bench_function(name, |b| {
            b.iter(|| run_scheduler(black_box(&trace), Policy::Fcfs, backfill))
        });
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("lublin_generate_1000", |b| {
        let model = TracePreset::Lublin1.model();
        b.iter(|| model.generate(black_box(1000), 7))
    });
}

criterion_group!(
    benches,
    bench_policies,
    bench_backfill_strategies,
    bench_trace_generation
);
criterion_main!(benches);
