//! Criterion micro-benchmarks: the RL agent's hot paths — kernel policy
//! forward, value forward, and the gradient accumulation that dominates
//! PPO update time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppo::ActorCritic;
use rlbf::{BackfillActorCritic, NetConfig, ObsConfig, Observation, JOB_FEATURES};
use std::hint::black_box;
use tinynn::Matrix;

fn obs_of_size(slots: usize) -> Observation {
    let mut features = Matrix::zeros(slots + 1, JOB_FEATURES);
    for s in 0..slots {
        for c in 0..JOB_FEATURES {
            features.set(s, c, ((s * 13 + c) as f64 * 0.17).sin() * 0.5 + 0.5);
        }
    }
    let mut mask = vec![true; slots];
    mask.push(true);
    let mut queue_index: Vec<Option<usize>> = (0..slots).map(Some).collect();
    queue_index.push(None);
    Observation {
        features,
        mask,
        queue_index,
    }
}

fn ac_of_size(slots: usize) -> BackfillActorCritic {
    BackfillActorCritic::new(
        NetConfig {
            obs: ObsConfig {
                max_obsv_size: slots,
            },
            ..NetConfig::default()
        },
        5,
    )
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_forward");
    for slots in [32usize, 64, 128] {
        let ac = ac_of_size(slots);
        let obs = obs_of_size(slots);
        group.bench_with_input(BenchmarkId::from_parameter(slots), &slots, |b, _| {
            b.iter(|| ac.logits(black_box(&obs)))
        });
    }
    group.finish();
}

fn bench_value(c: &mut Criterion) {
    let ac = ac_of_size(128);
    let obs = obs_of_size(128);
    c.bench_function("value_forward_128", |b| {
        b.iter(|| ac.value_of(black_box(&obs)))
    });
}

fn bench_policy_backward(c: &mut Criterion) {
    let obs = obs_of_size(64);
    c.bench_function("policy_grad_accumulate_64", |b| {
        let mut ac = ac_of_size(64);
        b.iter(|| ac.accumulate_policy_grad(black_box(&obs), 3, 0.01))
    });
}

criterion_group!(benches, bench_forward, bench_value, bench_policy_backward);
criterion_main!(benches);
