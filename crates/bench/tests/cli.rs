//! End-to-end CLI contracts of the `scenario` binary, exercised by
//! spawning the real executable (`CARGO_BIN_EXE_scenario`):
//!
//! * `run … --stdout` must emit **exactly one JSON document on stdout**
//!   — the regression that motivated moving every table/diagnostic to
//!   stderr, where a `## title` header used to corrupt piped JSON;
//! * `trace …` must write a parseable Chrome-trace file with at least
//!   one span, and exit zero.

use std::path::{Path, PathBuf};
use std::process::Command;

/// The workspace root (the committed spec paths are relative to it).
fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels under the workspace root")
}

fn scenario_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_scenario"))
}

#[test]
fn run_stdout_is_pure_json() {
    let spec = workspace_root().join("examples/scenarios/table3_fcfs.json");
    let out = scenario_bin()
        .args(["run", spec.to_str().unwrap(), "--stdout"])
        .output()
        .expect("scenario binary runs");
    assert!(
        out.status.success(),
        "scenario run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    // The whole stream must parse — any diagnostic interleaved with the
    // JSON (the old `## title` table header) breaks piping into jq.
    let parsed: serde_json::Value = serde_json::from_str(&stdout).unwrap_or_else(|e| {
        panic!("stdout of `scenario run --stdout` is not pure JSON ({e}):\n{stdout}")
    });
    let serde_json::Value::Array(reports) = parsed else {
        panic!("--stdout must emit a report array");
    };
    assert_eq!(reports.len(), 1, "one unseeded spec, one report");
    // The human-facing table still exists — on stderr.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("## scenario run"),
        "the diagnostic table moved off stderr:\n{stderr}"
    );
}

#[test]
fn trace_subcommand_writes_a_parseable_chrome_trace() {
    let spec = workspace_root().join("examples/scenarios/table3_fcfs.json");
    let out_file: PathBuf =
        std::env::temp_dir().join(format!("hpcsim_trace_smoke_{}.json", std::process::id()));
    let out = scenario_bin()
        .args([
            "trace",
            spec.to_str().unwrap(),
            "--out",
            out_file.to_str().unwrap(),
        ])
        .output()
        .expect("scenario binary runs");
    assert!(
        out.status.success(),
        "scenario trace failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&out_file).expect("trace file was written");
    let _ = std::fs::remove_file(&out_file);
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("trace file is valid JSON");
    let serde_json::Value::Object(entries) = parsed else {
        panic!("a Chrome trace is a JSON object");
    };
    let events = entries
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .expect("the trace has a traceEvents array");
    let serde_json::Value::Array(events) = events else {
        panic!("traceEvents must be an array");
    };
    assert!(
        !events.is_empty(),
        "the trace must contain at least one span"
    );
    for key in ["name", "ph", "ts", "dur", "pid", "tid"] {
        let serde_json::Value::Object(fields) = &events[0] else {
            panic!("trace events are objects");
        };
        assert!(
            fields.iter().any(|(k, _)| k == key),
            "trace events need the `{key}` field for chrome://tracing"
        );
    }
}
