//! The PPO-clip update (Schulman et al. 2017), structured like OpenAI
//! SpinningUp's PyTorch implementation — which is exactly what the paper
//! used (§4.1.1) — but with the gradients written out analytically.
//!
//! The policy loss for one sample is
//! `L = −min(ratio · A, clip(ratio, 1−ε, 1+ε) · A)` with
//! `ratio = exp(log π_new(a|s) − log π_old(a|s))`. Its derivative with
//! respect to `log π_new` is `−ratio · A` when the unclipped branch is
//! active and `0` when the clipped branch is active (the clipped branch is
//! constant in θ). The per-sample coefficient is produced by
//! [`policy_grad_coef`] and verified against finite differences in tests.

use crate::buffer::Batch;
use serde::{Deserialize, Serialize};

/// PPO hyper-parameters. Defaults follow the paper §4.1.1 (80 update
/// iterations for both networks, learning rate 1e-3) and SpinningUp
/// conventions for the rest.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Discount factor. 1.0 — episodes are finite with a terminal reward.
    pub gamma: f64,
    /// GAE λ.
    pub lambda: f64,
    /// Clipping parameter ε.
    pub clip_ratio: f64,
    /// Policy update iterations per epoch (paper: 80).
    pub train_pi_iters: usize,
    /// Value update iterations per epoch (paper: 80).
    pub train_v_iters: usize,
    /// Early-stop threshold on the approximate KL divergence.
    pub target_kl: f64,
    /// Policy learning rate (paper: 1e-3).
    pub pi_lr: f64,
    /// Value-function learning rate (paper: 1e-3).
    pub v_lr: f64,
    /// Entropy bonus coefficient (0 = SpinningUp default).
    pub entropy_coef: f64,
}

impl Default for PpoConfig {
    fn default() -> Self {
        Self {
            gamma: 1.0,
            lambda: 0.97,
            clip_ratio: 0.2,
            train_pi_iters: 80,
            train_v_iters: 80,
            target_kl: 0.01,
            pi_lr: 1e-3,
            v_lr: 1e-3,
            entropy_coef: 0.0,
        }
    }
}

/// Diagnostics of one PPO update.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdateStats {
    /// Final approximate KL(π_old ‖ π_new) over the batch.
    pub approx_kl: f64,
    /// Policy iterations actually executed (≤ `train_pi_iters`).
    pub pi_iters_run: usize,
    /// Mean squared value error after the value updates.
    pub value_loss: f64,
    /// Fraction of samples whose ratio was clipped in the last iteration.
    pub clip_frac: f64,
}

/// `d(−L_clip)/d(log π_new)` — returns the coefficient `c` such that the
/// gradient of the per-sample *loss* w.r.t. the new log-prob is `−c`
/// (equivalently: accumulate `c · ∇ log π` to do gradient *ascent* on the
/// clipped objective).
pub fn policy_grad_coef(logp_new: f64, logp_old: f64, advantage: f64, clip_ratio: f64) -> f64 {
    let ratio = (logp_new - logp_old).exp();
    let unclipped = ratio * advantage;
    let clipped = ratio.clamp(1.0 - clip_ratio, 1.0 + clip_ratio) * advantage;
    if unclipped <= clipped {
        // Unclipped branch active: d(ratio·A)/dlogp = ratio·A.
        ratio * advantage
    } else {
        // Clipped branch active: constant in θ.
        0.0
    }
}

/// Whether the sample's ratio sits outside the clip interval (diagnostic).
pub fn is_clipped(logp_new: f64, logp_old: f64, clip_ratio: f64) -> bool {
    let ratio = (logp_new - logp_old).exp();
    !(1.0 - clip_ratio..=1.0 + clip_ratio).contains(&ratio)
}

/// Sample-mean approximate KL divergence `E[log π_old − log π_new]`.
pub fn approx_kl(logp_old: &[f64], logp_new: &[f64]) -> f64 {
    assert_eq!(logp_old.len(), logp_new.len());
    if logp_old.is_empty() {
        return 0.0;
    }
    logp_old
        .iter()
        .zip(logp_new)
        .map(|(o, n)| o - n)
        .sum::<f64>()
        / logp_old.len() as f64
}

/// The actor-critic interface [`ppo_update`] drives.
///
/// `rlbf` implements this with the paper's kernel policy network and MLP
/// value network; the tests use a tabular implementation. Gradients are
/// *accumulated* by the `accumulate_*` calls and consumed by the
/// `*_opt_step` calls (which must also clear them).
pub trait ActorCritic<O> {
    /// Log-probability of `action` at `obs` under the current policy.
    fn log_prob(&self, obs: &O, action: usize) -> f64;
    /// Critic value estimate at `obs`.
    fn value(&self, obs: &O) -> f64;
    /// Accumulates `coef · ∇_θ log π(action|obs)` into the policy grads
    /// (coef already carries the sign for gradient ascent).
    fn accumulate_policy_grad(&mut self, obs: &O, action: usize, coef: f64);
    /// Accumulates `coef · ∇_φ V(obs)` into the value grads.
    fn accumulate_value_grad(&mut self, obs: &O, coef: f64);
    /// Applies and clears accumulated policy gradients (ascent direction).
    fn policy_opt_step(&mut self);
    /// Applies and clears accumulated value gradients (descent on MSE is
    /// encoded in the sign of the accumulated coefficients).
    fn value_opt_step(&mut self);
}

/// Runs one full PPO update (π and V) on a finished batch.
pub fn ppo_update<O, AC: ActorCritic<O>>(
    ac: &mut AC,
    batch: &Batch<O>,
    cfg: &PpoConfig,
) -> UpdateStats {
    assert!(!batch.is_empty(), "cannot update on an empty batch");
    let n = batch.len() as f64;
    let logp_old: Vec<f64> = batch.steps.iter().map(|s| s.log_prob).collect();

    let mut kl = 0.0;
    let mut pi_iters_run = 0;
    let mut clip_frac = 0.0;
    for _ in 0..cfg.train_pi_iters {
        let logp_new: Vec<f64> = batch
            .steps
            .iter()
            .map(|s| ac.log_prob(&s.obs, s.action))
            .collect();
        kl = approx_kl(&logp_old, &logp_new);
        if kl > 1.5 * cfg.target_kl {
            break; // SpinningUp's early stop
        }
        pi_iters_run += 1;
        let mut clipped = 0usize;
        for (i, step) in batch.steps.iter().enumerate() {
            let coef = policy_grad_coef(
                logp_new[i],
                logp_old[i],
                batch.advantages[i],
                cfg.clip_ratio,
            );
            if is_clipped(logp_new[i], logp_old[i], cfg.clip_ratio) {
                clipped += 1;
            }
            // Ascent on the surrogate (+ optional entropy bonus folded in
            // by the implementor if entropy_coef > 0).
            ac.accumulate_policy_grad(&step.obs, step.action, coef / n);
        }
        clip_frac = clipped as f64 / n;
        ac.policy_opt_step();
    }

    let mut value_loss = 0.0;
    for _ in 0..cfg.train_v_iters {
        value_loss = 0.0;
        for (i, step) in batch.steps.iter().enumerate() {
            let v = ac.value(&step.obs);
            let err = v - batch.returns[i];
            value_loss += err * err;
            // Descent on MSE: dL/dφ = 2·err·∇V / n, so accumulate the
            // negative.
            ac.accumulate_value_grad(&step.obs, -2.0 * err / n);
        }
        value_loss /= n;
        ac.value_opt_step();
    }

    UpdateStats {
        approx_kl: kl,
        pi_iters_run,
        value_loss,
        clip_frac,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{RolloutBuffer, Step};

    #[test]
    fn grad_coef_matches_finite_differences() {
        let eps = 1e-7;
        for &(lp_new, lp_old, adv) in &[
            (-1.0, -1.2, 2.0),
            (-0.4, -1.2, 2.0), // ratio > 1+ε, positive adv -> clipped
            (-1.0, -1.2, -2.0),
            (-2.5, -1.2, -2.0), // ratio < 1-ε, negative adv -> clipped
        ] {
            let loss = |lp: f64| {
                let ratio = (lp - lp_old).exp();
                let clipped = ratio.clamp(0.8, 1.2) * adv;
                -(ratio * adv).min(clipped)
            };
            let numeric = -(loss(lp_new + eps) - loss(lp_new - eps)) / (2.0 * eps);
            let analytic = policy_grad_coef(lp_new, lp_old, adv, 0.2);
            assert!(
                (analytic - numeric).abs() < 1e-5 * (1.0 + numeric.abs()),
                "case ({lp_new},{lp_old},{adv}): analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn clipping_zeroes_the_gradient() {
        // ratio far above 1+ε with positive advantage: no incentive to
        // push further.
        let coef = policy_grad_coef(0.0, -2.0, 1.0, 0.2);
        assert_eq!(coef, 0.0);
        // ratio far below 1-ε with negative advantage: also pinned.
        let coef = policy_grad_coef(-3.0, 0.0, -1.0, 0.2);
        assert_eq!(coef, 0.0);
    }

    #[test]
    fn approx_kl_is_zero_for_identical_policies() {
        let lp = vec![-1.0, -2.0, -0.5];
        assert_eq!(approx_kl(&lp, &lp), 0.0);
    }

    /// A two-armed bandit with a tabular softmax policy: arm 1 pays 1,
    /// arm 0 pays 0. PPO must drive the policy towards arm 1.
    struct Bandit {
        logits: [f64; 2],
        grad: [f64; 2],
        value: f64,
        value_grad: f64,
        lr: f64,
    }

    impl Bandit {
        fn log_softmax(&self) -> [f64; 2] {
            let m = self.logits[0].max(self.logits[1]);
            let z = ((self.logits[0] - m).exp() + (self.logits[1] - m).exp()).ln() + m;
            [self.logits[0] - z, self.logits[1] - z]
        }
    }

    impl ActorCritic<()> for Bandit {
        fn log_prob(&self, _obs: &(), action: usize) -> f64 {
            self.log_softmax()[action]
        }
        fn value(&self, _obs: &()) -> f64 {
            self.value
        }
        fn accumulate_policy_grad(&mut self, _obs: &(), action: usize, coef: f64) {
            let p = self.log_softmax().map(f64::exp);
            for (i, pi) in p.iter().enumerate() {
                let onehot = if i == action { 1.0 } else { 0.0 };
                self.grad[i] += coef * (onehot - pi);
            }
        }
        fn accumulate_value_grad(&mut self, _obs: &(), coef: f64) {
            self.value_grad += coef;
        }
        fn policy_opt_step(&mut self) {
            for i in 0..2 {
                self.logits[i] += self.lr * self.grad[i];
                self.grad[i] = 0.0;
            }
        }
        fn value_opt_step(&mut self) {
            self.value += self.lr * self.value_grad;
            self.value_grad = 0.0;
        }
    }

    #[test]
    fn ppo_solves_a_bandit() {
        let mut bandit = Bandit {
            logits: [0.0, 0.0],
            grad: [0.0, 0.0],
            value: 0.0,
            value_grad: 0.0,
            lr: 0.05,
        };
        let cfg = PpoConfig {
            train_pi_iters: 10,
            train_v_iters: 10,
            target_kl: 0.05,
            ..PpoConfig::default()
        };
        // Simulate epochs of rollouts under the current policy.
        let mut rng_state = 0x9e3779b97f4a7c15u64;
        let mut unit = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..60 {
            let mut buf = RolloutBuffer::new(1.0, 1.0);
            for _ in 0..64 {
                let lp = bandit.log_softmax();
                let a = if unit() < lp[0].exp() { 0 } else { 1 };
                let reward = a as f64;
                buf.absorb_trajectory(
                    vec![Step {
                        obs: (),
                        action: a,
                        reward,
                        value: bandit.value,
                        log_prob: lp[a],
                    }],
                    0.0,
                );
            }
            let batch = buf.into_batch();
            ppo_update(&mut bandit, &batch, &cfg);
        }
        let p1 = bandit.log_softmax()[1].exp();
        assert!(p1 > 0.9, "policy did not learn the good arm: p1 = {p1}");
        assert!(
            (bandit.value - 1.0).abs() < 0.5,
            "value off: {}",
            bandit.value
        );
    }

    #[test]
    fn early_stop_respects_target_kl() {
        // An aggressive learning rate forces KL past the threshold fast;
        // pi_iters_run must fall short of train_pi_iters.
        let mut bandit = Bandit {
            logits: [0.0, 0.0],
            grad: [0.0, 0.0],
            value: 0.0,
            value_grad: 0.0,
            lr: 5.0,
        };
        let cfg = PpoConfig {
            train_pi_iters: 80,
            target_kl: 0.001,
            ..PpoConfig::default()
        };
        let mut buf = RolloutBuffer::new(1.0, 1.0);
        for i in 0..32 {
            let a = i % 2;
            buf.absorb_trajectory(
                vec![Step {
                    obs: (),
                    action: a,
                    reward: a as f64,
                    value: 0.0,
                    log_prob: (0.5f64).ln(),
                }],
                0.0,
            );
        }
        let stats = ppo_update(&mut bandit, &buf.into_batch(), &cfg);
        assert!(
            stats.pi_iters_run < 80,
            "expected KL early stop, ran {} iters",
            stats.pi_iters_run
        );
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let mut bandit = Bandit {
            logits: [0.0, 0.0],
            grad: [0.0, 0.0],
            value: 0.0,
            value_grad: 0.0,
            lr: 0.1,
        };
        let batch: Batch<()> = Batch {
            steps: vec![],
            advantages: vec![],
            returns: vec![],
        };
        ppo_update(&mut bandit, &batch, &PpoConfig::default());
    }
}
