//! Rollout storage: trajectories of (observation, action, reward, value,
//! log-prob) tuples, finished into advantages and value targets.

use crate::gae::{gae_advantages, normalize, rewards_to_go};
use serde::{Deserialize, Serialize};

/// One environment step as recorded during rollout collection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Step<O> {
    /// Observation the agent acted on.
    pub obs: O,
    /// Chosen action (slot index).
    pub action: usize,
    /// Reward received *after* the action.
    pub reward: f64,
    /// Critic value estimate at `obs`.
    pub value: f64,
    /// Log-probability of `action` under the rollout policy.
    pub log_prob: f64,
}

/// A finished batch ready for a PPO update.
#[derive(Debug, Clone)]
pub struct Batch<O> {
    /// Flattened steps across trajectories.
    pub steps: Vec<Step<O>>,
    /// GAE advantages, normalized over the whole batch.
    pub advantages: Vec<f64>,
    /// Rewards-to-go (value regression targets).
    pub returns: Vec<f64>,
}

impl<O> Batch<O> {
    /// Number of steps in the batch.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the batch holds no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Accumulates trajectories and converts them into a training [`Batch`].
#[derive(Debug, Clone)]
pub struct RolloutBuffer<O> {
    gamma: f64,
    lambda: f64,
    steps: Vec<Step<O>>,
    advantages: Vec<f64>,
    returns: Vec<f64>,
    path_start: usize,
}

impl<O> RolloutBuffer<O> {
    /// A buffer computing GAE(γ, λ).
    pub fn new(gamma: f64, lambda: f64) -> Self {
        Self {
            gamma,
            lambda,
            steps: Vec::new(),
            advantages: Vec::new(),
            returns: Vec::new(),
            path_start: 0,
        }
    }

    /// Records one step of the current trajectory.
    pub fn push(&mut self, step: Step<O>) {
        self.steps.push(step);
    }

    /// Number of recorded steps (all trajectories).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Closes the current trajectory. `last_value` bootstraps truncated
    /// paths (0.0 for genuine terminations).
    pub fn finish_path(&mut self, last_value: f64) {
        let path = &self.steps[self.path_start..];
        if path.is_empty() {
            return;
        }
        let rewards: Vec<f64> = path.iter().map(|s| s.reward).collect();
        let mut values: Vec<f64> = path.iter().map(|s| s.value).collect();
        values.push(last_value);
        self.advantages
            .extend(gae_advantages(&rewards, &values, self.gamma, self.lambda));
        self.returns
            .extend(rewards_to_go(&rewards, last_value, self.gamma));
        self.path_start = self.steps.len();
    }

    /// Appends a whole pre-collected trajectory (the parallel-collection
    /// path: workers build trajectories independently, the trainer merges).
    pub fn absorb_trajectory(&mut self, steps: Vec<Step<O>>, last_value: f64) {
        debug_assert_eq!(self.path_start, self.steps.len(), "unfinished path");
        self.steps.extend(steps);
        self.finish_path(last_value);
    }

    /// Finalizes into a batch with batch-normalized advantages. Panics if a
    /// trajectory was left unfinished.
    pub fn into_batch(mut self) -> Batch<O> {
        assert_eq!(
            self.path_start,
            self.steps.len(),
            "call finish_path before into_batch"
        );
        normalize(&mut self.advantages);
        Batch {
            steps: self.steps,
            advantages: self.advantages,
            returns: self.returns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(reward: f64, value: f64) -> Step<()> {
        Step {
            obs: (),
            action: 0,
            reward,
            value,
            log_prob: -1.0,
        }
    }

    #[test]
    fn single_terminal_reward_propagates_to_all_steps() {
        // γ=1: every step's return equals the terminal reward — the paper's
        // sparse-reward scheme ("each step returns a reward of 0, only
        // returning the true reward at the very last step", §3.4).
        let mut buf = RolloutBuffer::new(1.0, 1.0);
        buf.push(step(0.0, 0.0));
        buf.push(step(0.0, 0.0));
        buf.push(step(5.0, 0.0));
        buf.finish_path(0.0);
        let batch = buf.into_batch();
        assert_eq!(batch.returns, vec![5.0, 5.0, 5.0]);
    }

    #[test]
    fn multiple_paths_are_independent() {
        let mut buf = RolloutBuffer::new(1.0, 1.0);
        buf.push(step(1.0, 0.0));
        buf.finish_path(0.0);
        buf.push(step(3.0, 0.0));
        buf.finish_path(0.0);
        let batch = buf.into_batch();
        assert_eq!(batch.returns, vec![1.0, 3.0]);
        assert_eq!(batch.len(), 2);
        // normalized advantages: symmetric around 0
        assert!((batch.advantages[0] + batch.advantages[1]).abs() < 1e-9);
    }

    #[test]
    fn absorb_trajectory_matches_manual_pushes() {
        let mut a = RolloutBuffer::new(0.99, 0.95);
        a.push(step(1.0, 0.5));
        a.push(step(2.0, 0.25));
        a.finish_path(0.0);

        let mut b = RolloutBuffer::new(0.99, 0.95);
        b.absorb_trajectory(vec![step(1.0, 0.5), step(2.0, 0.25)], 0.0);

        assert_eq!(a.into_batch().advantages, b.into_batch().advantages);
    }

    #[test]
    #[should_panic(expected = "finish_path")]
    fn unfinished_path_panics() {
        let mut buf = RolloutBuffer::new(1.0, 1.0);
        buf.push(step(1.0, 0.0));
        let _ = buf.into_batch();
    }

    #[test]
    fn empty_finish_is_a_noop() {
        let mut buf: RolloutBuffer<()> = RolloutBuffer::new(1.0, 1.0);
        buf.finish_path(0.0);
        assert!(buf.is_empty());
        let batch = buf.into_batch();
        assert!(batch.is_empty());
    }
}
