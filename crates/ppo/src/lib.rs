//! Proximal Policy Optimization for discrete masked action spaces.
//!
//! The paper trains RLBackfilling "using the Proximal Policy Optimization
//! (PPO) algorithm from OpenAI Spinning Up using PyTorch" (§4.1.1). This
//! crate is that algorithm, written against the [`tinynn`] substrate:
//!
//! * [`gae`] — discounted returns and GAE(γ, λ) advantage estimation;
//! * [`buffer`] — trajectory storage ([`RolloutBuffer`]) producing
//!   normalized training batches;
//! * [`update`] — the clipped-surrogate update with KL early stopping,
//!   driving any [`ActorCritic`] implementation.
//!
//! The crate is deliberately environment-agnostic: `rlbf` supplies the
//! backfilling environment and the paper's kernel policy / value networks.

pub mod buffer;
pub mod gae;
pub mod update;

pub use buffer::{Batch, RolloutBuffer, Step};
pub use gae::{discount_cumsum, gae_advantages, normalize, rewards_to_go};
pub use update::{
    approx_kl, is_clipped, policy_grad_coef, ppo_update, ActorCritic, PpoConfig, UpdateStats,
};
