//! Return and advantage estimation: discounted cumulative sums and
//! Generalized Advantage Estimation (Schulman et al. 2016).

/// Discounted cumulative sum: `out[i] = Σ_{j≥i} γ^(j−i) · x[j]`.
pub fn discount_cumsum(x: &[f64], gamma: f64) -> Vec<f64> {
    let mut out = vec![0.0; x.len()];
    let mut acc = 0.0;
    for i in (0..x.len()).rev() {
        acc = x[i] + gamma * acc;
        out[i] = acc;
    }
    out
}

/// GAE(γ, λ) advantages for one trajectory.
///
/// `values` holds the critic's estimates for every state in the trajectory
/// **plus** the bootstrap value of the state after the last step (0 for a
/// terminal state), i.e. `values.len() == rewards.len() + 1`.
pub fn gae_advantages(rewards: &[f64], values: &[f64], gamma: f64, lambda: f64) -> Vec<f64> {
    assert_eq!(
        values.len(),
        rewards.len() + 1,
        "values must include the bootstrap entry"
    );
    let deltas: Vec<f64> = rewards
        .iter()
        .enumerate()
        .map(|(i, &r)| r + gamma * values[i + 1] - values[i])
        .collect();
    discount_cumsum(&deltas, gamma * lambda)
}

/// Rewards-to-go (the value-function regression target): discounted suffix
/// sums of the rewards, bootstrapped with `last_value` for truncated
/// trajectories.
pub fn rewards_to_go(rewards: &[f64], last_value: f64, gamma: f64) -> Vec<f64> {
    let mut ext: Vec<f64> = rewards.to_vec();
    ext.push(last_value);
    let mut full = discount_cumsum(&ext, gamma);
    full.pop();
    full
}

/// Normalizes advantages to zero mean / unit standard deviation — the
/// variance-reduction trick the paper describes for its value-network
/// baseline ("using the improvement of the current policy over historical
/// policies … reduces the variance of inputs", §3.3.2).
pub fn normalize(xs: &mut [f64]) {
    if xs.is_empty() {
        return;
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    let std = var.sqrt().max(1e-8);
    for x in xs {
        *x = (*x - mean) / std;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discount_cumsum_matches_hand_computation() {
        let out = discount_cumsum(&[1.0, 1.0, 1.0], 0.5);
        assert_eq!(out, vec![1.75, 1.5, 1.0]);
    }

    #[test]
    fn discount_gamma_one_is_suffix_sum() {
        let out = discount_cumsum(&[1.0, 2.0, 3.0], 1.0);
        assert_eq!(out, vec![6.0, 5.0, 3.0]);
    }

    #[test]
    fn gae_with_lambda_one_is_returns_minus_values() {
        // λ=1 ⇒ advantage = discounted return − value.
        let rewards = [0.0, 0.0, 10.0];
        let values = [1.0, 2.0, 3.0, 0.0];
        let adv = gae_advantages(&rewards, &values, 1.0, 1.0);
        assert!((adv[0] - (10.0 - 1.0)).abs() < 1e-12);
        assert!((adv[1] - (10.0 - 2.0)).abs() < 1e-12);
        assert!((adv[2] - (10.0 - 3.0)).abs() < 1e-12);
    }

    #[test]
    fn gae_with_lambda_zero_is_td_error() {
        let rewards = [1.0, 2.0];
        let values = [0.5, 0.25, 0.125];
        let adv = gae_advantages(&rewards, &values, 0.9, 0.0);
        assert!((adv[0] - (1.0 + 0.9 * 0.25 - 0.5)).abs() < 1e-12);
        assert!((adv[1] - (2.0 + 0.9 * 0.125 - 0.25)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bootstrap")]
    fn gae_requires_bootstrap_value() {
        gae_advantages(&[1.0], &[1.0], 1.0, 1.0);
    }

    #[test]
    fn rewards_to_go_bootstraps_truncated_paths() {
        let rtg = rewards_to_go(&[1.0, 1.0], 10.0, 0.5);
        // [1 + 0.5*(1 + 0.5*10), 1 + 0.5*10]
        assert_eq!(rtg, vec![1.0 + 0.5 * 6.0, 6.0]);
    }

    #[test]
    fn normalize_gives_zero_mean_unit_std() {
        let mut xs = vec![1.0, 2.0, 3.0, 4.0];
        normalize(&mut xs);
        let mean: f64 = xs.iter().sum::<f64>() / 4.0;
        let var: f64 = xs.iter().map(|x| x * x).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalize_handles_constant_and_empty_input() {
        let mut xs = vec![5.0, 5.0];
        normalize(&mut xs);
        assert!(xs.iter().all(|x| x.is_finite()));
        let mut empty: Vec<f64> = vec![];
        normalize(&mut empty);
    }
}
