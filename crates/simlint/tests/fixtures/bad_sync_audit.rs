//! Fixture: shared-mutability machinery outside the sanctioned sync
//! module. The `use` declaration itself is not a use site.

use std::cell::RefCell;

pub static mut TICKS: u64 = 0;

pub struct Cache {
    inner: RefCell<Vec<u64>>,
}

pub fn guard(v: u64) -> std::sync::Mutex<u64> {
    std::sync::Mutex::new(v)
}

pub fn counter() -> std::sync::atomic::AtomicU64 {
    std::sync::atomic::AtomicU64::new(0)
}
