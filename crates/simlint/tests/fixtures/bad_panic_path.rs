//! Fixture: every panic source inside a hot (seeded) fn is flagged;
//! identical code outside the hot closure is not panic-path's business.

pub fn advance(xs: &[u32], i: usize) -> u32 {
    let first = xs.first().unwrap();
    let second = xs.get(1).expect("two elements");
    if i > xs.len() {
        panic!("index past the end");
    }
    first + second + xs[i]
}

pub fn cold_report(xs: &[u32]) -> u32 {
    xs.first().unwrap() + xs[0]
}
