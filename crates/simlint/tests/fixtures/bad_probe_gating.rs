// Fixture: trips `probe-gating` (and nothing else) when checked under a
// kernel path. Not compiled — simlint input only.

pub fn advance_sim(probe: &mut impl Probe, depth: usize) {
    probe.on_queue_depth(depth);
}
