//! Fixture: lossy `as` casts on time-valued expressions. Casting a
//! non-time value, or widening to f64, stays clean.

pub fn bucket(start_time: f64, now: f64) -> (u32, i64, f32) {
    let a = start_time as u32;
    let b = now as i64;
    let c = start_time as f32;
    let widened = start_time as f64;
    let count = 10usize;
    let d = count as u32;
    let _ = (widened, d);
    (a, b, c)
}
