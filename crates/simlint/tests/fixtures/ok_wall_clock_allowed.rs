// Fixture: the same wall-clock reads as bad_wall_clock.rs, each escaped
// with an allow directive. Not compiled — simlint input only.
use std::time::Instant; // a type mention alone is fine; `now` is the read

pub fn stamp() -> f64 {
    // simlint: allow(wall-clock) — measuring the host, not the simulation
    let t = Instant::now();
    t.elapsed().as_secs_f64()
}
