//! Fixture: a reasoned allow on a lossy time cast.

pub fn bucket(start_time: f64) -> u64 {
    start_time as u64 // simlint: allow(time-cast) — start times are integral seconds by construction; truncation is exact
}
