// Fixture: every probe hook form simlint must accept as gated — block
// guard, early-return guard, condition-position call, same-statement
// mention. Not compiled — simlint input only.

pub fn advance_sim<P: Probe>(probe: &mut P, depth: usize) {
    if P::ENABLED {
        probe.on_queue_depth(depth);
    }
    if P::ENABLED && probe.audit_on() {
        probe.on_settle(depth);
    }
    debug_assert!(P::ENABLED && probe.consistent());
}

pub fn harvest<P: Probe>(probe: &mut P, depth: usize) {
    if !P::ENABLED {
        return;
    }
    probe.set_depth(depth);
}
