//! Fixture: float reductions over order-unstable iteration. A sequential
//! slice reduction is order-stable and stays clean.

pub fn total(xs: &[f64]) -> f64 {
    xs.par_iter().sum()
}

pub fn loop_total(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for chunk in xs.par_chunks(4) {
        acc += chunk.first().copied().unwrap_or(0.0);
    }
    acc
}

pub fn ordered_total(xs: &[f64]) -> f64 {
    xs.iter().sum()
}
