//! Fixture: a reasoned allow on interior mutability.

pub struct Cache {
    inner: std::cell::RefCell<Vec<u64>>, // simlint: allow(sync-audit) — single-threaded scratch; the split moves it per-worker
}
