// Fixture: trips `wall-clock` (and nothing else) when checked under a
// kernel path. Not compiled — simlint input only.
use std::time::{Instant, SystemTime};

pub fn epoch_stamp() -> f64 {
    let t = Instant::now();
    let _calendar: SystemTime = SystemTime::now();
    t.elapsed().as_secs_f64()
}
