// Fixture: trips `unordered-iter` (and nothing else) when checked under
// a kernel path. Keyed access appears too and must NOT be flagged.
// Not compiled — simlint input only.
use std::collections::{HashMap, HashSet};

pub struct Table {
    counts: HashMap<usize, u32>,
}

pub fn sum(table: &Table, seen: HashSet<usize>) -> u32 {
    let mut total = 0;
    // Keyed access: legal.
    total += table.counts.get(&7).copied().unwrap_or(0);
    // Order-exposing: flagged. (max, not `+=` — accumulation over an
    // unstable source is float-order's finding, not this fixture's.)
    for (_, v) in table.counts.iter() {
        total = total.max(*v);
    }
    for id in &seen {
        total = total.max(*id as u32);
    }
    total
}
