// Fixture: trips `unordered-iter` (and nothing else) when checked under
// a kernel path. Keyed access appears too and must NOT be flagged.
// Not compiled — simlint input only.
use std::collections::{HashMap, HashSet};

pub struct Table {
    counts: HashMap<usize, u32>,
}

pub fn sum(table: &Table, seen: HashSet<usize>) -> u32 {
    let mut total = 0;
    // Keyed access: legal.
    total += table.counts.get(&7).copied().unwrap_or(0);
    // Order-exposing: flagged.
    for (_, v) in table.counts.iter() {
        total += v;
    }
    for id in &seen {
        total += *id as u32;
    }
    total
}
