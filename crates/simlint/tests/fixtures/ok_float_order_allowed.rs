//! Fixture: a reasoned allow on an order-unstable float reduction.

pub fn total(xs: &[f64]) -> f64 {
    xs.par_iter().sum() // simlint: allow(float-order) — inputs are exact dyadic rationals; the sum is order-exact
}
