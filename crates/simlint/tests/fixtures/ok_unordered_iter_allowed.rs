// Fixture: the same hash iterations as bad_unordered_iter.rs, escaped
// with allow directives. Not compiled — simlint input only.
use std::collections::HashMap;

pub fn sum(counts: &HashMap<usize, u32>) -> u32 {
    let mut total = 0;
    // simlint: allow(unordered-iter) — max is order-independent
    for (_, v) in counts.iter() {
        total = total.max(*v);
    }
    total
}
