//! Fixture: reasoned allows turn panic-path hits into inventory
//! candidates.

pub fn advance(xs: &[u32]) -> u32 {
    let first = xs.first().unwrap(); // simlint: allow(panic-path) — caller guarantees a non-empty slice
    first + xs[0] // simlint: allow(panic-path) — non-emptiness established on the line above
}
