// Fixture: an allocation in a registered hot fn, escaped with a reasoned
// allow — it must produce no finding but one inventory candidate.
// Not compiled — simlint input only.

pub fn earliest_fit(xs: &[u32]) -> Vec<u32> {
    // simlint: allow(hot-alloc) — fixture: returns an owned Vec by contract
    xs.to_vec()
}
