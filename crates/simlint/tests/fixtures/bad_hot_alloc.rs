// Fixture: trips `hot-alloc` (and nothing else) when checked under a
// kernel path — the fn name `earliest_fit` is in the hot registry; the
// identically-allocating `warm_helper` is not and must NOT be flagged.
// Not compiled — simlint input only.

pub fn earliest_fit(xs: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    out.extend(xs.iter().map(|x| x + 1));
    let doubled = xs.to_vec();
    let _label = format!("{}", doubled.len());
    out.clone()
}

pub fn warm_helper(xs: &[u32]) -> Vec<u32> {
    xs.to_vec()
}
