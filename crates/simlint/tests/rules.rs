//! Per-rule fixture tests: each `bad_*` fixture trips exactly its rule,
//! each `ok_*` variant is clean, and the corpus is checked under the same
//! engine entry (`check_source`) the repo walk uses — same path scoping,
//! same allow handling.

use simlint::check_source;

/// Runs a fixture as if it lived in the hpcsim kernel crate.
fn check_fixture(name: &str) -> simlint::FileOutcome {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let content = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    check_source(&format!("crates/hpcsim/src/{name}"), &content)
}

fn rules_of(outcome: &simlint::FileOutcome) -> Vec<&str> {
    outcome.findings.iter().map(|f| f.rule.as_str()).collect()
}

#[test]
fn bad_wall_clock_trips_only_wall_clock() {
    let out = check_fixture("bad_wall_clock.rs");
    assert!(!out.findings.is_empty());
    assert!(rules_of(&out).iter().all(|r| *r == "wall-clock"), "{out:?}");
    // Both the Instant read and the SystemTime mentions are caught.
    assert!(out.findings.iter().any(|f| f.message.contains("Instant")));
    assert!(out
        .findings
        .iter()
        .any(|f| f.message.contains("SystemTime")));
    // Findings carry the enclosing fn and a real line.
    let read = out
        .findings
        .iter()
        .find(|f| f.message.contains("Instant"))
        .unwrap();
    assert_eq!(read.function.as_deref(), Some("epoch_stamp"));
    assert!(read.line > 0);
}

#[test]
fn allowed_wall_clock_is_clean() {
    let out = check_fixture("ok_wall_clock_allowed.rs");
    assert!(out.findings.is_empty(), "{out:?}");
}

#[test]
fn bad_unordered_iter_trips_only_unordered_iter() {
    let out = check_fixture("bad_unordered_iter.rs");
    assert_eq!(out.findings.len(), 2, "{out:?}");
    assert!(rules_of(&out).iter().all(|r| *r == "unordered-iter"));
    // One method-call form, one for-loop form; keyed `.get` is not flagged.
    assert!(out.findings.iter().any(|f| f.message.contains(".iter()")));
    assert!(out.findings.iter().any(|f| f.message.contains("for … in")));
    assert!(!out.findings.iter().any(|f| f.message.contains("get")));
}

#[test]
fn allowed_unordered_iter_is_clean() {
    let out = check_fixture("ok_unordered_iter_allowed.rs");
    assert!(out.findings.is_empty(), "{out:?}");
}

#[test]
fn bad_hot_alloc_trips_only_hot_alloc() {
    let out = check_fixture("bad_hot_alloc.rs");
    assert_eq!(out.findings.len(), 4, "{out:?}");
    assert!(rules_of(&out).iter().all(|r| *r == "hot-alloc"));
    assert!(out
        .findings
        .iter()
        .all(|f| f.function.as_deref() == Some("earliest_fit")));
    // The identical allocation in the unregistered fn is not flagged.
    assert!(!out
        .findings
        .iter()
        .any(|f| f.function.as_deref() == Some("warm_helper")));
    for pattern in ["Vec::new", ".to_vec()", "format!", ".clone()"] {
        assert!(
            out.findings.iter().any(|f| f.message.contains(pattern)),
            "missing {pattern}: {out:?}"
        );
    }
}

#[test]
fn allowed_hot_alloc_becomes_inventory_candidate() {
    let out = check_fixture("ok_hot_alloc_allowed.rs");
    assert!(out.findings.is_empty(), "{out:?}");
    assert_eq!(out.allowed_hot.len(), 1);
    let hit = &out.allowed_hot[0];
    assert_eq!(hit.function, "earliest_fit");
    assert_eq!(hit.pattern, ".to_vec()");
    assert!(hit.reason.contains("owned Vec"));
}

#[test]
fn hot_alloc_allow_without_reason_is_rejected() {
    let out = check_source(
        "crates/hpcsim/src/profile.rs",
        "pub fn earliest_fit(xs: &[u32]) -> Vec<u32> {\n    xs.to_vec() // simlint: allow(hot-alloc)\n}\n",
    );
    assert_eq!(out.findings.len(), 1, "{out:?}");
    assert!(out.findings[0].message.contains("needs a reason"));
    assert!(out.allowed_hot.is_empty());
}

#[test]
fn bad_probe_gating_trips_only_probe_gating() {
    let out = check_fixture("bad_probe_gating.rs");
    assert_eq!(out.findings.len(), 1, "{out:?}");
    assert_eq!(out.findings[0].rule, "probe-gating");
    assert!(out.findings[0].message.contains("on_queue_depth"));
}

#[test]
fn gated_probe_calls_are_clean() {
    let out = check_fixture("ok_probe_gating_gated.rs");
    assert!(out.findings.is_empty(), "{out:?}");
}

#[test]
fn unused_allow_is_reported() {
    let out = check_source(
        "crates/hpcsim/src/whatever.rs",
        "// simlint: allow(wall-clock) — nothing here needs it\npub fn quiet() {}\n",
    );
    assert_eq!(out.findings.len(), 1, "{out:?}");
    assert_eq!(out.findings[0].rule, "unused-allow");
}

#[test]
fn non_kernel_paths_are_out_of_scope() {
    let content = std::fs::read_to_string(format!(
        "{}/tests/fixtures/bad_wall_clock.rs",
        env!("CARGO_MANIFEST_DIR")
    ))
    .unwrap();
    // Bench binaries and foreign crates are exempt by path.
    for path in [
        "crates/bench/src/bin/speed_probe.rs",
        "crates/swf/src/lib.rs",
        "vendor/serde/src/lib.rs",
    ] {
        let out = check_source(path, &content);
        assert!(out.findings.is_empty(), "{path} should be exempt");
    }
}

#[test]
fn observe_layer_is_exempt_from_wall_clock_but_not_unordered_iter() {
    let src = "\
use std::collections::HashMap;
use std::time::Instant;
pub fn snapshot(counts: &HashMap<usize, u32>) -> f64 {
    let t = Instant::now();
    for (_, v) in counts.iter() {
        let _ = v;
    }
    t.elapsed().as_secs_f64()
}
";
    let out = check_source("crates/hpcsim/src/observe.rs", src);
    assert!(
        out.findings.iter().all(|f| f.rule == "unordered-iter"),
        "{out:?}"
    );
    assert_eq!(out.findings.len(), 1);
}

#[test]
fn cfg_test_modules_are_exempt() {
    let src = "\
#[cfg(test)]
mod tests {
    pub fn earliest_fit(xs: &[u32]) -> Vec<u32> {
        let t = std::time::Instant::now();
        let _ = t;
        xs.to_vec()
    }
}
";
    let out = check_source("crates/hpcsim/src/profile.rs", src);
    assert!(out.findings.is_empty(), "{out:?}");
}

#[test]
fn injected_clone_in_earliest_fit_is_caught() {
    // The acceptance-criteria scenario, at the unit level: a stray
    // `.clone()` added to the availability-profile scan must be flagged
    // (the CLI test exercises the same via the ratchet on the real file).
    let real = std::fs::read_to_string(format!(
        "{}/../hpcsim/src/profile.rs",
        env!("CARGO_MANIFEST_DIR")
    ))
    .unwrap();
    let clean = check_source("crates/hpcsim/src/profile.rs", &real);
    assert!(clean.findings.is_empty(), "profile.rs should start clean");

    let sabotaged = real.replacen(
        "let not_before = not_before.max(self.now);",
        "let not_before = not_before.max(self.now);\n        let _leak = self.buckets.clone();",
        1,
    );
    assert_ne!(real, sabotaged, "injection anchor missing from profile.rs");
    let out = check_source("crates/hpcsim/src/profile.rs", &sabotaged);
    assert_eq!(out.findings.len(), 1, "{out:?}");
    assert_eq!(out.findings[0].rule, "hot-alloc");
    assert_eq!(out.findings[0].function.as_deref(), Some("earliest_fit"));
}
