//! Per-rule fixture tests: each `bad_*` fixture trips exactly its rule,
//! each `ok_*` variant is clean, and the corpus is checked under the same
//! engine entry (`check_source`) the repo walk uses — same path scoping,
//! same allow handling.

use simlint::check_source;

/// Runs a fixture as if it lived in the hpcsim kernel crate.
fn check_fixture(name: &str) -> simlint::FileOutcome {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let content = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    check_source(&format!("crates/hpcsim/src/{name}"), &content)
}

fn rules_of(outcome: &simlint::FileOutcome) -> Vec<&str> {
    outcome.findings.iter().map(|f| f.rule.as_str()).collect()
}

#[test]
fn bad_wall_clock_trips_only_wall_clock() {
    let out = check_fixture("bad_wall_clock.rs");
    assert!(!out.findings.is_empty());
    assert!(rules_of(&out).iter().all(|r| *r == "wall-clock"), "{out:?}");
    // Both the Instant read and the SystemTime mentions are caught.
    assert!(out.findings.iter().any(|f| f.message.contains("Instant")));
    assert!(out
        .findings
        .iter()
        .any(|f| f.message.contains("SystemTime")));
    // Findings carry the enclosing fn and a real line.
    let read = out
        .findings
        .iter()
        .find(|f| f.message.contains("Instant"))
        .unwrap();
    assert_eq!(read.function.as_deref(), Some("epoch_stamp"));
    assert!(read.line > 0);
}

#[test]
fn allowed_wall_clock_is_clean() {
    let out = check_fixture("ok_wall_clock_allowed.rs");
    assert!(out.findings.is_empty(), "{out:?}");
}

#[test]
fn bad_unordered_iter_trips_only_unordered_iter() {
    let out = check_fixture("bad_unordered_iter.rs");
    assert_eq!(out.findings.len(), 2, "{out:?}");
    assert!(rules_of(&out).iter().all(|r| *r == "unordered-iter"));
    // One method-call form, one for-loop form; keyed `.get` is not flagged.
    assert!(out.findings.iter().any(|f| f.message.contains(".iter()")));
    assert!(out.findings.iter().any(|f| f.message.contains("for … in")));
    assert!(!out.findings.iter().any(|f| f.message.contains("get")));
}

#[test]
fn allowed_unordered_iter_is_clean() {
    let out = check_fixture("ok_unordered_iter_allowed.rs");
    assert!(out.findings.is_empty(), "{out:?}");
}

#[test]
fn bad_hot_alloc_trips_only_hot_alloc() {
    let out = check_fixture("bad_hot_alloc.rs");
    assert_eq!(out.findings.len(), 4, "{out:?}");
    assert!(rules_of(&out).iter().all(|r| *r == "hot-alloc"));
    assert!(out
        .findings
        .iter()
        .all(|f| f.function.as_deref() == Some("earliest_fit")));
    // The identical allocation in the unregistered fn is not flagged.
    assert!(!out
        .findings
        .iter()
        .any(|f| f.function.as_deref() == Some("warm_helper")));
    for pattern in ["Vec::new", ".to_vec()", "format!", ".clone()"] {
        assert!(
            out.findings.iter().any(|f| f.message.contains(pattern)),
            "missing {pattern}: {out:?}"
        );
    }
}

#[test]
fn allowed_hot_alloc_becomes_inventory_candidate() {
    let out = check_fixture("ok_hot_alloc_allowed.rs");
    assert!(out.findings.is_empty(), "{out:?}");
    assert_eq!(out.allowed.len(), 1);
    let hit = &out.allowed[0];
    assert_eq!(hit.rule, "hot-alloc");
    assert_eq!(hit.function, "earliest_fit");
    assert_eq!(hit.pattern, ".to_vec()");
    assert!(hit.reason.contains("owned Vec"));
}

#[test]
fn hot_alloc_allow_without_reason_is_rejected() {
    let out = check_source(
        "crates/hpcsim/src/profile.rs",
        "pub fn earliest_fit(xs: &[u32]) -> Vec<u32> {\n    xs.to_vec() // simlint: allow(hot-alloc)\n}\n",
    );
    assert_eq!(out.findings.len(), 1, "{out:?}");
    assert!(out.findings[0].message.contains("needs a reason"));
    assert!(out.allowed.is_empty());
}

#[test]
fn bad_panic_path_trips_only_panic_path() {
    let out = check_fixture("bad_panic_path.rs");
    assert_eq!(out.findings.len(), 4, "{out:?}");
    assert!(rules_of(&out).iter().all(|r| *r == "panic-path"));
    // All four panic sources in the seeded fn are caught…
    assert!(out
        .findings
        .iter()
        .all(|f| f.function.as_deref() == Some("advance")));
    for pattern in [".unwrap()", ".expect()", "panic!", "indexing"] {
        assert!(
            out.findings.iter().any(|f| f.message.contains(pattern)),
            "missing {pattern}: {out:?}"
        );
    }
    // …while the identical unwrap/index outside the hot closure is not.
    assert!(!out
        .findings
        .iter()
        .any(|f| f.function.as_deref() == Some("cold_report")));
}

#[test]
fn allowed_panic_path_becomes_inventory_candidate() {
    let out = check_fixture("ok_panic_path_allowed.rs");
    assert!(out.findings.is_empty(), "{out:?}");
    assert_eq!(out.allowed.len(), 2, "{out:?}");
    assert!(out.allowed.iter().all(|h| h.rule == "panic-path"));
    assert!(out.allowed.iter().all(|h| !h.reason.is_empty()));
}

#[test]
fn bad_float_order_trips_only_float_order() {
    let out = check_fixture("bad_float_order.rs");
    assert_eq!(out.findings.len(), 2, "{out:?}");
    assert!(rules_of(&out).iter().all(|r| *r == "float-order"));
    // The parallel reduction and the accumulating loop are both caught;
    // the sequential slice sum in `ordered_total` is not.
    assert!(out
        .findings
        .iter()
        .any(|f| f.function.as_deref() == Some("total")));
    assert!(out
        .findings
        .iter()
        .any(|f| f.function.as_deref() == Some("loop_total")));
    assert!(!out
        .findings
        .iter()
        .any(|f| f.function.as_deref() == Some("ordered_total")));
}

#[test]
fn allowed_float_order_becomes_inventory_candidate() {
    let out = check_fixture("ok_float_order_allowed.rs");
    assert!(out.findings.is_empty(), "{out:?}");
    assert_eq!(out.allowed.len(), 1, "{out:?}");
    assert_eq!(out.allowed[0].rule, "float-order");
}

#[test]
fn bad_time_cast_trips_only_time_cast() {
    let out = check_fixture("bad_time_cast.rs");
    assert_eq!(out.findings.len(), 3, "{out:?}");
    assert!(rules_of(&out).iter().all(|r| *r == "time-cast"));
    // u32/i64/f32 casts on time-named values are lossy; the f64 cast and
    // the non-time `count as u32` are not flagged.
    for target in ["u32", "i64", "f32"] {
        assert!(
            out.findings.iter().any(|f| f.message.contains(target)),
            "missing {target}: {out:?}"
        );
    }
}

#[test]
fn allowed_time_cast_becomes_inventory_candidate() {
    let out = check_fixture("ok_time_cast_allowed.rs");
    assert!(out.findings.is_empty(), "{out:?}");
    assert_eq!(out.allowed.len(), 1, "{out:?}");
    assert_eq!(out.allowed[0].rule, "time-cast");
}

#[test]
fn bad_sync_audit_trips_only_sync_audit() {
    let out = check_fixture("bad_sync_audit.rs");
    assert!(out.findings.len() >= 5, "{out:?}");
    assert!(rules_of(&out).iter().all(|r| *r == "sync-audit"));
    for pattern in ["static mut", "RefCell", "Mutex", "Atomic*"] {
        assert!(
            out.findings.iter().any(|f| f.message.contains(pattern)),
            "missing {pattern}: {out:?}"
        );
    }
    // The `use std::cell::RefCell;` declaration is not a use site: only
    // the field type on line 10 counts.
    assert_eq!(
        out.findings
            .iter()
            .filter(|f| f.message.contains("RefCell"))
            .count(),
        1,
        "{out:?}"
    );
}

#[test]
fn allowed_sync_audit_becomes_inventory_candidate() {
    let out = check_fixture("ok_sync_audit_allowed.rs");
    assert!(out.findings.is_empty(), "{out:?}");
    assert_eq!(out.allowed.len(), 1, "{out:?}");
    assert_eq!(out.allowed[0].rule, "sync-audit");
}

#[test]
fn unused_allow_is_uniform_across_ratcheted_rules() {
    for rule in [
        "hot-alloc",
        "panic-path",
        "float-order",
        "time-cast",
        "sync-audit",
    ] {
        let src = format!("// simlint: allow({rule}) — stale\npub fn quiet() {{}}\n");
        let out = check_source("crates/hpcsim/src/x.rs", &src);
        assert_eq!(out.findings.len(), 1, "{rule}: {out:?}");
        assert_eq!(out.findings[0].rule, "unused-allow");
        assert!(out.findings[0].message.contains(rule), "{rule}: {out:?}");
    }
}

#[test]
fn bad_probe_gating_trips_only_probe_gating() {
    let out = check_fixture("bad_probe_gating.rs");
    assert_eq!(out.findings.len(), 1, "{out:?}");
    assert_eq!(out.findings[0].rule, "probe-gating");
    assert!(out.findings[0].message.contains("on_queue_depth"));
}

#[test]
fn gated_probe_calls_are_clean() {
    let out = check_fixture("ok_probe_gating_gated.rs");
    assert!(out.findings.is_empty(), "{out:?}");
}

#[test]
fn unused_allow_is_reported() {
    let out = check_source(
        "crates/hpcsim/src/whatever.rs",
        "// simlint: allow(wall-clock) — nothing here needs it\npub fn quiet() {}\n",
    );
    assert_eq!(out.findings.len(), 1, "{out:?}");
    assert_eq!(out.findings[0].rule, "unused-allow");
}

#[test]
fn non_kernel_paths_are_out_of_scope() {
    let content = std::fs::read_to_string(format!(
        "{}/tests/fixtures/bad_wall_clock.rs",
        env!("CARGO_MANIFEST_DIR")
    ))
    .unwrap();
    // Bench binaries and foreign crates are exempt by path.
    for path in [
        "crates/bench/src/bin/speed_probe.rs",
        "vendor/serde/src/lib.rs",
    ] {
        let out = check_source(path, &content);
        assert!(out.findings.is_empty(), "{path} should be exempt");
    }
}

#[test]
fn edge_crates_get_determinism_rules_but_not_hot_path_discipline() {
    // swf/rlbf feed the byte-pinned schedules: wall-clock and
    // unordered-iter apply there too…
    let wall = std::fs::read_to_string(format!(
        "{}/tests/fixtures/bad_wall_clock.rs",
        env!("CARGO_MANIFEST_DIR")
    ))
    .unwrap();
    for path in ["crates/swf/src/lib.rs", "crates/rlbf/src/env.rs"] {
        let out = check_source(path, &wall);
        assert!(
            out.findings.iter().any(|f| f.rule == "wall-clock"),
            "{path}: {out:?}"
        );
    }
    // …but the hot-path/parallel-readiness rules stay kernel-only.
    for fixture in ["bad_hot_alloc.rs", "bad_panic_path.rs", "bad_sync_audit.rs"] {
        let content = std::fs::read_to_string(format!(
            "{}/tests/fixtures/{fixture}",
            env!("CARGO_MANIFEST_DIR")
        ))
        .unwrap();
        let out = check_source("crates/rlbf/src/train.rs", &content);
        assert!(out.findings.is_empty(), "{fixture} in rlbf: {out:?}");
    }
}

#[test]
fn observe_layer_is_exempt_from_wall_clock_but_not_unordered_iter() {
    let src = "\
use std::collections::HashMap;
use std::time::Instant;
pub fn snapshot(counts: &HashMap<usize, u32>) -> f64 {
    let t = Instant::now();
    for (_, v) in counts.iter() {
        let _ = v;
    }
    t.elapsed().as_secs_f64()
}
";
    let out = check_source("crates/hpcsim/src/observe.rs", src);
    assert!(
        out.findings.iter().all(|f| f.rule == "unordered-iter"),
        "{out:?}"
    );
    assert_eq!(out.findings.len(), 1);
}

#[test]
fn cfg_test_modules_are_exempt() {
    let src = "\
#[cfg(test)]
mod tests {
    pub fn earliest_fit(xs: &[u32]) -> Vec<u32> {
        let t = std::time::Instant::now();
        let _ = t;
        xs.to_vec()
    }
}
";
    let out = check_source("crates/hpcsim/src/profile.rs", src);
    assert!(out.findings.is_empty(), "{out:?}");
}

#[test]
fn injected_clone_in_earliest_fit_is_caught() {
    // The acceptance-criteria scenario, at the unit level: a stray
    // `.clone()` added to the availability-profile scan must be flagged
    // (the CLI test exercises the same via the ratchet on the real file).
    // Single-file analysis sees a smaller hot closure than the repo walk
    // (allows for hits only reachable cross-file read as unused here), so
    // assert on the *delta* the injection causes, not on absolute counts.
    let real = std::fs::read_to_string(format!(
        "{}/../hpcsim/src/profile.rs",
        env!("CARGO_MANIFEST_DIR")
    ))
    .unwrap();
    let before = check_source("crates/hpcsim/src/profile.rs", &real);
    assert!(
        !before
            .findings
            .iter()
            .any(|f| f.rule == "hot-alloc" && f.function.as_deref() == Some("earliest_fit")),
        "{before:?}"
    );

    let sabotaged = real.replacen(
        "let not_before = not_before.max(self.now);",
        "let not_before = not_before.max(self.now);\n        let _leak = self.buckets.clone();",
        1,
    );
    assert_ne!(real, sabotaged, "injection anchor missing from profile.rs");
    let after = check_source("crates/hpcsim/src/profile.rs", &sabotaged);
    let new: Vec<_> = after
        .findings
        .iter()
        .filter(|f| !before.findings.contains(f))
        .collect();
    assert_eq!(new.len(), 1, "{new:?}");
    assert_eq!(new[0].rule, "hot-alloc");
    assert_eq!(new[0].function.as_deref(), Some("earliest_fit"));
}

/// PR 8's hand-maintained hot-fn registry, verbatim. The call-graph pass
/// replaced it; this proves the derived closure does not regress its
/// coverage — every name the registry protected is still hot somewhere.
const PR8_HAND_REGISTRY: &[&str] = &[
    "earliest_fit",
    "earliest_avail",
    "avail_at",
    "next_candidate_after",
    "next_shortfall_after",
    "insert_contrib",
    "remove_contrib",
    "conservative_pass",
    "easy_pass",
    "easy_pass_with_order",
    "backfill",
    "backfill_candidates",
    "plan_conservative_starts",
    "conservative_starts",
    "shadow_extra",
    "would_delay",
    "would_delay_reserved",
    "estimated_start",
    "estimated_start_shared",
    "estimated_start_scratch",
    "best_move",
    "route",
    "reroute",
    "reroute_pass",
    "seek",
    "rebuild",
    "advance",
    "apply_due_events",
    "start_ready_jobs",
    "start_job",
    "step_with",
    "schedule",
    "pop",
    "pop_until",
    "on_enqueue",
    "on_dequeue",
    "on_start",
    "on_complete",
    "on_resort",
];

#[test]
fn derived_hot_set_covers_the_retired_hand_registry() {
    // Derive live from the real kernel sources — same inputs the repo
    // walk uses — rather than trusting the committed artifact (the
    // hot-set ratchet already pins that to this derivation).
    let root = format!("{}/../..", env!("CARGO_MANIFEST_DIR"));
    let mut paths = Vec::new();
    for dir in ["crates/desim/src", "crates/hpcsim/src"] {
        collect_rs(std::path::Path::new(&format!("{root}/{dir}")), &mut paths);
    }
    paths.sort();
    let files: Vec<simlint::source::SourceFile> = paths
        .iter()
        .map(|p| {
            let rel = p
                .strip_prefix(&root)
                .unwrap()
                .to_string_lossy()
                .trim_start_matches('/')
                .replace('\\', "/");
            simlint::source::SourceFile::parse(&rel, &std::fs::read_to_string(p).unwrap())
        })
        .collect();
    let hot = simlint::graph::CallGraph::build(&files).hot_set();
    let names = hot.names();
    let missing: Vec<_> = PR8_HAND_REGISTRY
        .iter()
        .filter(|n| !names.contains(**n))
        .collect();
    assert!(
        missing.is_empty(),
        "derived hot set lost registry coverage: {missing:?}"
    );
}

fn collect_rs(dir: &std::path::Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}
