//! A small, self-contained Rust lexer.
//!
//! simlint's rules reason over token sequences, never over raw text, so a
//! `HashMap` inside a string literal or a `.clone()` in a doc comment can
//! never trip a rule. The lexer therefore has to get exactly one thing
//! right: the boundaries of comments, string literals (including raw and
//! byte strings), char literals and lifetimes. Everything else is
//! delivered as plain identifier / number / punctuation tokens with line
//! numbers.
//!
//! There is deliberately no `syn`/proc-macro stack here — the vendored
//! dependency set has none, and the rules only need lexical structure plus
//! brace scoping (built on top of these tokens by [`crate::source`]).

/// What a token is. Comments are lexed (their boundaries matter and line
/// comments carry `simlint:` directives) but are stored out-of-band by
/// [`crate::source::SourceFile`], so rule patterns match code only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// `// ...` — text excludes the slashes.
    LineComment,
    /// `/* ... */`, nested.
    BlockComment,
    /// Any string literal: `"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// A char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// A lifetime such as `'a` (including `'_` and `'static`).
    Lifetime,
    /// A numeric literal (integers, floats, any radix, with suffixes).
    Num,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// Lexes `src` into tokens. Never fails: unterminated literals simply run
/// to end-of-file (the rules then see one oversized token, which is the
/// safe direction — nothing after it can be misread as code).
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if c.is_whitespace() => self.pos += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                '\'' => self.char_or_lifetime(),
                _ if c.is_ascii_digit() => self.number(),
                _ if is_ident_start(c) => self.ident_or_prefixed_literal(),
                _ => {
                    self.push(TokKind::Punct(c), c.to_string(), self.line);
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.pos += 2;
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(TokKind::LineComment, text, line);
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.pos += 2;
        let mut depth = 1usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.pos += 2;
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    break;
                }
            } else {
                if c == '\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
        }
        self.push(TokKind::BlockComment, String::new(), line);
    }

    /// A cooked string starting at the current `"`.
    fn string(&mut self) {
        let line = self.line;
        self.pos += 1;
        while let Some(c) = self.peek(0) {
            match c {
                // An escaped char can be a newline (line-continuation
                // `\` at end of line) — it still advances the line count.
                '\\' => {
                    if self.peek(1) == Some('\n') {
                        self.line += 1;
                    }
                    self.pos += 2;
                }
                '"' => {
                    self.pos += 1;
                    break;
                }
                _ => {
                    if c == '\n' {
                        self.line += 1;
                    }
                    self.pos += 1;
                }
            }
        }
        self.push(TokKind::Str, String::new(), line);
    }

    /// A raw string starting at the current `r` (hashes and quote follow).
    fn raw_string(&mut self) {
        let line = self.line;
        self.pos += 1; // past `r`
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.pos += 1;
        }
        debug_assert_eq!(self.peek(0), Some('"'));
        self.pos += 1;
        'scan: while let Some(c) = self.peek(0) {
            if c == '\n' {
                self.line += 1;
            }
            self.pos += 1;
            if c == '"' {
                for h in 0..hashes {
                    if self.peek(h) != Some('#') {
                        continue 'scan;
                    }
                }
                self.pos += hashes;
                break;
            }
        }
        self.push(TokKind::Str, String::new(), line);
    }

    /// `'x'` / `'\n'` → char literal; `'a` / `'_` → lifetime.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        match self.peek(1) {
            // An escape is always a char literal.
            Some('\\') => {
                self.pos += 2; // past `'\`
                while let Some(c) = self.peek(0) {
                    self.pos += 1;
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::Char, String::new(), line);
            }
            // `'c'` with a direct closing quote is a char literal; anything
            // else (`'a`, `'static`, `'_`) is a lifetime.
            Some(c) if self.peek(2) == Some('\'') && c != '\'' => {
                self.pos += 3;
                self.push(TokKind::Char, String::new(), line);
            }
            _ => {
                self.pos += 1;
                let start = self.pos;
                while let Some(c) = self.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    self.pos += 1;
                }
                let text: String = self.chars[start..self.pos].iter().collect();
                self.push(TokKind::Lifetime, text, line);
            }
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                self.pos += 1;
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the number; `5.clone()` does not.
                self.pos += 1;
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(TokKind::Num, text, line);
    }

    /// An identifier — or, when the identifier is a literal prefix (`r`,
    /// `b`, `br`) directly followed by its quote, the prefixed literal.
    fn ident_or_prefixed_literal(&mut self) {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        match (text.as_str(), self.peek(0)) {
            ("r" | "br", Some('"' | '#')) if self.raw_quote_follows() => {
                self.pos = start + text.len() - 1; // rewind onto the `r`
                self.raw_string();
            }
            ("b", Some('"')) => self.string(),
            ("b", Some('\'')) => {
                // Byte-char literal: `b'x'` / `b'\n'`.
                self.char_or_lifetime();
                if let Some(last) = self.out.last_mut() {
                    last.kind = TokKind::Char;
                }
            }
            _ => self.push(TokKind::Ident, text, self.line),
        }
    }

    /// After an `r`/`br` prefix: is the rest really `#*"`? (Distinguishes
    /// `r#"…"#` from the raw identifier `r#keyword` and from `r # token`.)
    fn raw_quote_follows(&self) -> bool {
        let mut i = 0;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let toks = lex("let x = a.b;\nfoo()");
        assert!(toks[0].is_ident("let"));
        assert!(toks[2].is_punct('='));
        assert_eq!(toks.last().unwrap().line, 2);
    }

    #[test]
    fn line_continuation_in_string_counts_its_newline() {
        let toks = lex("let s = \"a \\\n b\";\nafter");
        assert_eq!(toks.last().unwrap().line, 3);
    }

    #[test]
    fn comments_swallow_code_patterns() {
        let toks = lex("// HashMap.iter()\n/* .clone()\n .collect() */ x");
        assert_eq!(
            kinds("// HashMap.iter()\n/* c */ x"),
            vec![TokKind::LineComment, TokKind::BlockComment, TokKind::Ident]
        );
        // The only code token is `x`, on line 3.
        let code: Vec<&Tok> = toks
            .iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        assert_eq!(code.len(), 1);
        assert_eq!(code[0].line, 3);
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(
            kinds("/* a /* b */ c */ y"),
            vec![TokKind::BlockComment, TokKind::Ident]
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        assert_eq!(
            kinds(r#"f("has .clone() and \" quote")"#),
            vec![
                TokKind::Ident,
                TokKind::Punct('('),
                TokKind::Str,
                TokKind::Punct(')')
            ]
        );
    }

    #[test]
    fn raw_and_byte_strings() {
        assert_eq!(
            kinds(r###"let s = r#"raw " with .iter()"#;"###),
            vec![
                TokKind::Ident,
                TokKind::Ident,
                TokKind::Punct('='),
                TokKind::Str,
                TokKind::Punct(';')
            ]
        );
        assert_eq!(kinds(r#"b"bytes""#), vec![TokKind::Str]);
        assert_eq!(kinds("b'x'"), vec![TokKind::Char]);
    }

    #[test]
    fn chars_vs_lifetimes() {
        assert_eq!(kinds("'a'"), vec![TokKind::Char]);
        assert_eq!(kinds(r"'\n'"), vec![TokKind::Char]);
        let toks = lex("&'a str + 'static");
        assert_eq!(toks[1].kind, TokKind::Lifetime);
        assert_eq!(toks[1].text, "a");
        assert_eq!(toks.last().unwrap().kind, TokKind::Lifetime);
        assert_eq!(toks.last().unwrap().text, "static");
    }

    #[test]
    fn numbers_do_not_eat_method_calls() {
        let toks = lex("1.5 + 5.clone()");
        assert_eq!(toks[0].kind, TokKind::Num);
        assert_eq!(toks[0].text, "1.5");
        assert_eq!(toks[2].kind, TokKind::Num);
        assert_eq!(toks[2].text, "5");
        assert!(toks[4].is_ident("clone"));
    }

    #[test]
    fn line_comment_text_is_preserved() {
        let toks = lex("x // simlint: allow(hot-alloc) — scratch reuse");
        assert_eq!(toks[1].kind, TokKind::LineComment);
        assert!(toks[1].text.contains("allow(hot-alloc)"));
    }
}
