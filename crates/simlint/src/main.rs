//! CLI: `simlint check [--root DIR] [--format text|json] [--out FILE]
//! [--bless]`.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error. `--bless` (or
//! `SIMLINT_BLESS=1`) rewrites `results/hot_alloc_inventory.json` from
//! the current allow comments instead of diffing against it.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: simlint check [--root DIR] [--format text|json] [--out FILE] [--bless]

  --root DIR      repo root to check (default: current directory)
  --format FMT    diagnostics format: text (default) or json
  --out FILE      also write the JSON report to FILE (any --format)
  --bless         rewrite results/hot_alloc_inventory.json from the
                  current allow comments (also: SIMLINT_BLESS=1)
";

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("simlint: {msg}");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return Err("missing subcommand".into());
    };
    if cmd != "check" {
        return Err(format!("unknown subcommand {cmd:?}"));
    }

    let mut root = PathBuf::from(".");
    let mut format = "text".to_string();
    let mut out_file: Option<PathBuf> = None;
    let mut bless = std::env::var("SIMLINT_BLESS")
        .map(|v| v == "1")
        .unwrap_or(false);

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = PathBuf::from(args.next().ok_or("--root needs a value")?),
            "--format" => {
                format = args.next().ok_or("--format needs a value")?;
                if format != "text" && format != "json" {
                    return Err(format!("unknown format {format:?}"));
                }
            }
            "--out" => out_file = Some(PathBuf::from(args.next().ok_or("--out needs a value")?)),
            "--bless" => bless = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }

    let report = simlint::check_repo(&root, bless)
        .map_err(|e| format!("while checking {}: {e}", root.display()))?;

    if let Some(path) = &out_file {
        std::fs::write(path, report.to_json())
            .map_err(|e| format!("while writing {}: {e}", path.display()))?;
    }
    match format.as_str() {
        "json" => print!("{}", report.to_json()),
        _ => print!("{}", report.to_text()),
    }
    if bless {
        eprintln!(
            "simlint: blessed {} with {} entr{}",
            simlint::inventory::INVENTORY_REL,
            report.inventoried,
            if report.inventoried == 1 { "y" } else { "ies" },
        );
    }
    Ok(report.is_clean())
}
