//! CLI: `simlint check [--root DIR] [--format text|json] [--out FILE]
//! [--diff BASELINE] [--bless]`.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error. `--bless` (or
//! `SIMLINT_BLESS=1`) rewrites `results/hot_set.json` and the ratchet
//! inventories from the current sources/allow comments instead of
//! diffing against them. `--diff FILE` compares against a committed JSON
//! report and prints (and exits on) only *new* findings — the actionable
//! view for a PR; `--out` still writes the full report.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: simlint check [--root DIR] [--format text|json] [--out FILE]
                     [--diff BASELINE] [--bless]

  --root DIR      repo root to check (default: current directory)
  --format FMT    diagnostics format: text (default) or json
  --out FILE      also write the JSON report to FILE (any --format)
  --diff BASELINE compare against a committed JSON report; print and
                  fail on new findings only
  --bless         rewrite results/hot_set.json and the ratchet
                  inventories from the current sources and allow
                  comments (also: SIMLINT_BLESS=1)
";

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("simlint: {msg}");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return Err("missing subcommand".into());
    };
    if cmd != "check" {
        return Err(format!("unknown subcommand {cmd:?}"));
    }

    let mut root = PathBuf::from(".");
    let mut format = "text".to_string();
    let mut out_file: Option<PathBuf> = None;
    let mut diff_file: Option<PathBuf> = None;
    let mut bless = std::env::var("SIMLINT_BLESS")
        .map(|v| v == "1")
        .unwrap_or(false);

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = PathBuf::from(args.next().ok_or("--root needs a value")?),
            "--format" => {
                format = args.next().ok_or("--format needs a value")?;
                if format != "text" && format != "json" {
                    return Err(format!("unknown format {format:?}"));
                }
            }
            "--out" => out_file = Some(PathBuf::from(args.next().ok_or("--out needs a value")?)),
            "--diff" => diff_file = Some(PathBuf::from(args.next().ok_or("--diff needs a value")?)),
            "--bless" => bless = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }

    let report = simlint::check_repo(&root, bless)
        .map_err(|e| format!("while checking {}: {e}", root.display()))?;

    if let Some(path) = &out_file {
        std::fs::write(path, report.to_json())
            .map_err(|e| format!("while writing {}: {e}", path.display()))?;
    }

    if let Some(path) = &diff_file {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("while reading {}: {e}", path.display()))?;
        let baseline = simlint::report::parse_findings(&text)
            .map_err(|e| format!("baseline {}: {e}", path.display()))?;
        let fresh = simlint::report::new_findings(&report.findings, &baseline);
        let mut diff = simlint::report::Report {
            findings: fresh,
            files_checked: report.files_checked,
            inventoried: report.inventoried,
            hot_functions: report.hot_functions,
        };
        diff.findings.sort();
        match format.as_str() {
            "json" => print!("{}", diff.to_json()),
            _ => {
                print!("{}", diff.to_text());
                println!(
                    "simlint: {} new finding(s) vs baseline {}",
                    diff.findings.len(),
                    path.display()
                );
            }
        }
        return Ok(diff.is_clean());
    }

    match format.as_str() {
        "json" => print!("{}", report.to_json()),
        _ => print!("{}", report.to_text()),
    }
    if bless {
        eprintln!(
            "simlint: blessed {} hot fn(s) into {} and {} ratcheted hit(s) across {} inventorie(s)",
            report.hot_functions,
            simlint::graph::HOT_SET_REL,
            report.inventoried,
            simlint::inventory::SPECS.len(),
        );
    }
    Ok(report.is_clean())
}
