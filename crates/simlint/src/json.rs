//! A minimal JSON value parser and writer.
//!
//! The vendored `serde_json` only exposes typed `from_str`/`to_string`
//! over derive-equipped structs, and simlint is deliberately
//! dependency-free anyway (it gates the build that would compile those
//! crates). This module supplies the two things the tool needs: parsing
//! untrusted JSON for the pin-coverage rule and the ratchet baseline, and
//! emitting deterministic, stable-ordered JSON for reports and blessing.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Object keys are kept sorted (`BTreeMap`) so that
/// re-serialization — and therefore the blessed ratchet file — is
/// byte-stable regardless of input order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()?.get(key)
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs: accept a following low
                            // surrogate; otherwise use the replacement
                            // char (pins never contain surrogates).
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                let lo = self.low_surrogate()?;
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(format!("bad escape \\{}", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar, not a byte.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn low_surrogate(&mut self) -> Result<u32, String> {
        if self.peek() != Some(b'\\') {
            return Err("lone high surrogate".into());
        }
        self.pos += 1;
        if self.peek() != Some(b'u') {
            return Err("lone high surrogate".into());
        }
        self.pos += 1;
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or("truncated \\u escape")?;
        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|e| e.to_string())
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number {text:?}"))
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Serializes with 2-space indentation and sorted object keys — stable
/// output suitable for committing (the ratchet baseline) and diffing.
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, 0);
    out.push('\n');
    out
}

fn write_value(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                let _ = write!(out, "{}", *n as i64);
            } else {
                let _ = write!(out, "{n}");
            }
        }
        Value::Str(s) => write_str(out, s),
        Value::Arr(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                pad(out, indent + 1);
                write_value(out, item, indent + 1);
            }
            out.push('\n');
            pad(out, indent);
            out.push(']');
        }
        Value::Obj(o) => {
            if o.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                pad(out, indent + 1);
                write_str(out, k);
                out.push_str(": ");
                write_value(out, item, indent + 1);
            }
            out.push('\n');
            pad(out, indent);
            out.push('}');
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience constructors used by the report writer.
pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

pub fn s(text: &str) -> Value {
    Value::Str(text.to_string())
}

pub fn n(num: u64) -> Value {
    Value::Num(num as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_basics() {
        let v = parse(r#"{"b": [1, 2.5, true, null], "a": "x\ny"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        let text = to_string_pretty(&v);
        assert_eq!(parse(&text).unwrap(), v);
        // Keys come out sorted.
        assert!(text.find("\"a\"").unwrap() < text.find("\"b\"").unwrap());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1} x").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn unicode_and_escapes() {
        let v = parse(r#""café — ✓""#).unwrap();
        assert_eq!(v.as_str(), Some("café — ✓"));
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn stable_pretty_output() {
        let v = parse(r#"{"z":1,"a":{"m":[{"k":2}]}}"#).unwrap();
        let once = to_string_pretty(&v);
        let twice = to_string_pretty(&parse(&once).unwrap());
        assert_eq!(once, twice);
    }
}
