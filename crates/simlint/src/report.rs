//! Findings and the two output formats (human text, machine JSON).

use crate::json::{n, obj, s, Value};

/// One diagnostic. `line` is 1-based; 0 means "whole file" (used by
/// pin-coverage, which reasons about files rather than source lines).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: String,
    pub function: Option<String>,
    pub message: String,
}

impl Finding {
    pub fn new(
        rule: &str,
        file: &str,
        line: u32,
        function: Option<&str>,
        message: String,
    ) -> Finding {
        Finding {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            function: function.map(str::to_string),
            message,
        }
    }
}

/// Result of a whole-repo (or fixture) run.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_checked: usize,
    /// Allowed hot-path allocations that matched the committed inventory
    /// (informational; they are the ratchet's blessed set).
    pub inventoried: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// `file:line: [rule] message (in fn)` — one finding per line, sorted.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let mut sorted = self.findings.clone();
        sorted.sort();
        for f in &sorted {
            let loc = if f.line == 0 {
                f.file.clone()
            } else {
                format!("{}:{}", f.file, f.line)
            };
            let in_fn = f
                .function
                .as_deref()
                .map(|name| format!(" (in fn {name})"))
                .unwrap_or_default();
            out.push_str(&format!("{loc}: [{}] {}{in_fn}\n", f.rule, f.message));
        }
        out.push_str(&format!(
            "simlint: {} finding(s) across {} file(s); {} inventoried hot-path allocation(s)\n",
            self.findings.len(),
            self.files_checked,
            self.inventoried,
        ));
        out
    }

    /// Stable JSON: `{"version":1,"findings":[…],"summary":{…}}`.
    pub fn to_json(&self) -> String {
        let mut sorted = self.findings.clone();
        sorted.sort();
        let findings = sorted
            .iter()
            .map(|f| {
                obj(vec![
                    ("file", s(&f.file)),
                    ("line", n(u64::from(f.line))),
                    ("rule", s(&f.rule)),
                    (
                        "function",
                        f.function.as_deref().map(s).unwrap_or(Value::Null),
                    ),
                    ("message", s(&f.message)),
                ])
            })
            .collect();
        let doc = obj(vec![
            ("version", n(1)),
            ("findings", Value::Arr(findings)),
            (
                "summary",
                obj(vec![
                    ("total", n(self.findings.len() as u64)),
                    ("files_checked", n(self.files_checked as u64)),
                    ("inventoried", n(self.inventoried as u64)),
                    ("clean", Value::Bool(self.is_clean())),
                ]),
            ),
        ]);
        crate::json::to_string_pretty(&doc)
    }
}
