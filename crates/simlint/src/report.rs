//! Findings and the two output formats (human text, machine JSON).

use crate::json::{n, obj, s, Value};

/// One diagnostic. `line` is 1-based; 0 means "whole file" (used by
/// pin-coverage, which reasons about files rather than source lines).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: String,
    pub function: Option<String>,
    pub message: String,
}

impl Finding {
    pub fn new(
        rule: &str,
        file: &str,
        line: u32,
        function: Option<&str>,
        message: String,
    ) -> Finding {
        Finding {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            function: function.map(str::to_string),
            message,
        }
    }
}

/// Result of a whole-repo (or fixture) run.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_checked: usize,
    /// Allowed ratcheted hits that matched the committed inventories
    /// (informational; they are the ratchets' blessed set).
    pub inventoried: usize,
    /// Size of the derived hot set (call-graph closure from the seeds).
    pub hot_functions: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// `file:line: [rule] message (in fn)` — one finding per line, sorted.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let mut sorted = self.findings.clone();
        sorted.sort();
        for f in &sorted {
            let loc = if f.line == 0 {
                f.file.clone()
            } else {
                format!("{}:{}", f.file, f.line)
            };
            let in_fn = f
                .function
                .as_deref()
                .map(|name| format!(" (in fn {name})"))
                .unwrap_or_default();
            out.push_str(&format!("{loc}: [{}] {}{in_fn}\n", f.rule, f.message));
        }
        out.push_str(&format!(
            "simlint: {} finding(s) across {} file(s); {} hot fn(s); \
             {} inventoried ratcheted hit(s)\n",
            self.findings.len(),
            self.files_checked,
            self.hot_functions,
            self.inventoried,
        ));
        out
    }

    /// Stable JSON: `{"version":1,"findings":[…],"summary":{…}}`.
    pub fn to_json(&self) -> String {
        let mut sorted = self.findings.clone();
        sorted.sort();
        let findings = sorted
            .iter()
            .map(|f| {
                obj(vec![
                    ("file", s(&f.file)),
                    ("line", n(u64::from(f.line))),
                    ("rule", s(&f.rule)),
                    (
                        "function",
                        f.function.as_deref().map(s).unwrap_or(Value::Null),
                    ),
                    ("message", s(&f.message)),
                ])
            })
            .collect();
        let doc = obj(vec![
            ("version", n(1)),
            ("findings", Value::Arr(findings)),
            (
                "summary",
                obj(vec![
                    ("total", n(self.findings.len() as u64)),
                    ("files_checked", n(self.files_checked as u64)),
                    ("inventoried", n(self.inventoried as u64)),
                    ("hot_functions", n(self.hot_functions as u64)),
                    ("clean", Value::Bool(self.is_clean())),
                ]),
            ),
        ]);
        crate::json::to_string_pretty(&doc)
    }
}

/// Parses the findings array back out of a JSON report (the `--diff`
/// baseline path). Accepts exactly what [`Report::to_json`] writes.
pub fn parse_findings(text: &str) -> Result<Vec<Finding>, String> {
    let doc = crate::json::parse(text)?;
    let arr = doc
        .get("findings")
        .and_then(Value::as_arr)
        .ok_or("missing `findings` array")?;
    let mut out = Vec::new();
    for f in arr {
        let field = |k: &str| {
            f.get(k)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("finding missing `{k}`"))
        };
        out.push(Finding {
            file: field("file")?.to_string(),
            line: f
                .get("line")
                .and_then(Value::as_u64)
                .ok_or("finding missing `line`")? as u32,
            rule: field("rule")?.to_string(),
            function: f
                .get("function")
                .and_then(Value::as_str)
                .map(str::to_string),
            message: field("message")?.to_string(),
        });
    }
    Ok(out)
}

/// The multiset difference `current − baseline`, keyed on
/// `(rule, file, function, message)` — deliberately line-insensitive, so
/// unrelated edits that shift a pre-existing finding don't resurface it
/// on a PR diff.
pub fn new_findings(current: &[Finding], baseline: &[Finding]) -> Vec<Finding> {
    use std::collections::HashMap;
    let key = |f: &Finding| {
        (
            f.rule.clone(),
            f.file.clone(),
            f.function.clone(),
            f.message.clone(),
        )
    };
    let mut seen: HashMap<_, usize> = HashMap::new();
    for f in baseline {
        *seen.entry(key(f)).or_default() += 1;
    }
    let mut out = Vec::new();
    for f in current {
        match seen.get_mut(&key(f)) {
            Some(c) if *c > 0 => *c -= 1,
            _ => out.push(f.clone()),
        }
    }
    out.sort();
    out
}
