//! The hot-path allocation ratchet.
//!
//! `results/hot_alloc_inventory.json` is the committed, machine-readable
//! inventory of every *allowed* allocation inside a registered hot
//! function, keyed by `(file, function, pattern)` with an occurrence
//! count and the reason from its allow comment. The check fails when the
//! code and the inventory disagree in either direction:
//!
//! - an allowed allocation not in the inventory → the inventory is stale
//!   (someone added an allow without re-blessing);
//! - an inventory entry with no matching allocation → also stale (the
//!   allocation was fixed; the inventory must shrink to match, so the
//!   ratchet only ever tightens by deliberate, reviewed re-blessing).
//!
//! Un-allowed hot-path allocations never reach this module — they are
//! hard violations reported by the engine directly. Re-bless with
//! `SIMLINT_BLESS=1 cargo run -p simlint -- check` (or `--bless`).

use crate::json::{self, n, obj, s, Value};
use crate::report::Finding;
use std::collections::BTreeMap;
use std::path::Path;

pub const INVENTORY_REL: &str = "results/hot_alloc_inventory.json";

/// One allowed allocation site as the engine found it in the source.
#[derive(Debug, Clone)]
pub struct AllowedHit {
    pub file: String,
    pub line: u32,
    pub function: String,
    pub pattern: &'static str,
    pub reason: String,
}

type Key = (String, String, String); // (file, function, pattern)

/// Groups allowed hits into inventory form: key → (count, reasons).
fn group(hits: &[AllowedHit]) -> BTreeMap<Key, (u64, Vec<String>)> {
    let mut out: BTreeMap<Key, (u64, Vec<String>)> = BTreeMap::new();
    for h in hits {
        let e = out
            .entry((h.file.clone(), h.function.clone(), h.pattern.to_string()))
            .or_default();
        e.0 += 1;
        if !h.reason.is_empty() && !e.1.contains(&h.reason) {
            e.1.push(h.reason.clone());
        }
    }
    out
}

/// Compares the allowed hits against the committed inventory.
pub fn check(root: &Path, hits: &[AllowedHit]) -> Vec<Finding> {
    let mut out = Vec::new();
    let current = group(hits);

    let baseline = match std::fs::read_to_string(root.join(INVENTORY_REL)) {
        Ok(text) => match parse_baseline(&text) {
            Ok(b) => b,
            Err(e) => {
                out.push(Finding::new(
                    "hot-alloc",
                    INVENTORY_REL,
                    0,
                    None,
                    format!("inventory unreadable ({e}); re-bless with SIMLINT_BLESS=1"),
                ));
                return out;
            }
        },
        Err(_) => {
            // No inventory and nothing to inventory is the vacuous-clean
            // state (fresh checkouts of repos without hot-path allows).
            if !hits.is_empty() {
                out.push(Finding::new(
                    "hot-alloc",
                    INVENTORY_REL,
                    0,
                    None,
                    format!(
                        "inventory missing ({} allowed hot-path allocation(s) found); \
                         create it with SIMLINT_BLESS=1",
                        hits.len()
                    ),
                ));
            }
            return out;
        }
    };

    for (key, (count, _)) in &current {
        let (file, function, pattern) = key;
        match baseline.get(key) {
            None => {
                let line = hits
                    .iter()
                    .find(|h| h.file == *file && h.function == *function)
                    .map(|h| h.line)
                    .unwrap_or(0);
                out.push(Finding::new(
                    "hot-alloc",
                    file,
                    line,
                    Some(function),
                    format!(
                        "allowed {pattern} in `{function}` is not in the committed inventory; \
                         re-bless with SIMLINT_BLESS=1 so the ratchet stays honest"
                    ),
                ));
            }
            Some(base_count) if base_count != count => {
                out.push(Finding::new(
                    "hot-alloc",
                    file,
                    0,
                    Some(function),
                    format!(
                        "inventory says {base_count}× {pattern} in `{function}` but the code \
                         has {count}×; re-bless with SIMLINT_BLESS=1"
                    ),
                ));
            }
            Some(_) => {}
        }
    }

    for (key, base_count) in &baseline {
        let (file, function, pattern) = key;
        if !current.contains_key(key) {
            out.push(Finding::new(
                "hot-alloc",
                INVENTORY_REL,
                0,
                None,
                format!(
                    "stale inventory entry: {base_count}× {pattern} in `{function}` \
                     ({file}) no longer exists — shrink the inventory with SIMLINT_BLESS=1"
                ),
            ));
        }
    }

    out
}

/// Rewrites the inventory from the current allowed hits.
pub fn bless(root: &Path, hits: &[AllowedHit]) -> std::io::Result<()> {
    let entries: Vec<Value> = group(hits)
        .into_iter()
        .map(|((file, function, pattern), (count, reasons))| {
            obj(vec![
                ("file", s(&file)),
                ("function", s(&function)),
                ("pattern", s(&pattern)),
                ("count", n(count)),
                ("reason", s(&reasons.join("; "))),
            ])
        })
        .collect();
    let doc = obj(vec![("version", n(1)), ("entries", Value::Arr(entries))]);
    std::fs::write(root.join(INVENTORY_REL), json::to_string_pretty(&doc))
}

fn parse_baseline(text: &str) -> Result<BTreeMap<Key, u64>, String> {
    let doc = json::parse(text)?;
    let entries = doc
        .get("entries")
        .and_then(Value::as_arr)
        .ok_or("missing `entries` array")?;
    let mut out = BTreeMap::new();
    for e in entries {
        let field = |k: &str| {
            e.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("entry missing `{k}`"))
        };
        let key = (field("file")?, field("function")?, field("pattern")?);
        let count = e
            .get("count")
            .and_then(Value::as_u64)
            .ok_or("entry missing `count`")?;
        out.insert(key, count);
    }
    Ok(out)
}
