//! The ratchet inventories.
//!
//! Some rules are ratchets, not bans: an *allowed* hit (with a reason) is
//! legal but must appear in a committed, machine-readable inventory, so
//! the blessed surface only ever changes by deliberate, reviewed
//! re-blessing. Three inventories cover the ratcheted rules:
//!
//! | file                                       | rules                               |
//! |--------------------------------------------|-------------------------------------|
//! | `results/hot_alloc_inventory.json`         | `hot-alloc`                         |
//! | `results/panic_path_inventory.json`        | `panic-path`                        |
//! | `results/parallel_readiness_inventory.json`| `sync-audit`, `float-order`, `time-cast` |
//!
//! Entries are keyed by `(rule, file, function, pattern)` with an
//! occurrence count and the reason from the allow comment. The check
//! fails when code and inventory disagree in either direction:
//!
//! - an allowed hit not in the inventory → stale (someone added an allow
//!   without re-blessing);
//! - an inventory entry with no matching hit → also stale (the hit was
//!   fixed; the inventory must shrink to match).
//!
//! Un-allowed hits never reach this module — they are hard violations
//! reported by the engine directly. Re-bless with
//! `SIMLINT_BLESS=1 cargo run -p simlint -- check` (or `--bless`).

use crate::json::{self, n, obj, s, Value};
use crate::report::Finding;
use std::collections::BTreeMap;
use std::path::Path;

/// One committed inventory file and the rules it ratchets.
pub struct RatchetSpec {
    pub rel: &'static str,
    pub rules: &'static [&'static str],
}

pub const HOT_ALLOC: RatchetSpec = RatchetSpec {
    rel: "results/hot_alloc_inventory.json",
    rules: &["hot-alloc"],
};

pub const PANIC_PATH: RatchetSpec = RatchetSpec {
    rel: "results/panic_path_inventory.json",
    rules: &["panic-path"],
};

pub const PARALLEL_READINESS: RatchetSpec = RatchetSpec {
    rel: "results/parallel_readiness_inventory.json",
    rules: &["sync-audit", "float-order", "time-cast"],
};

pub const SPECS: &[&RatchetSpec] = &[&HOT_ALLOC, &PANIC_PATH, &PARALLEL_READINESS];

/// One allowed hit as the engine found it in the source.
#[derive(Debug, Clone)]
pub struct AllowedHit {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    /// Enclosing fn; empty for file-level hits (e.g. a `RefCell` field).
    pub function: String,
    pub pattern: &'static str,
    pub reason: String,
}

type Key = (String, String, String, String); // (rule, file, function, pattern)

/// Groups allowed hits for one spec into inventory form:
/// key → (count, reasons).
fn group<'a>(
    spec: &RatchetSpec,
    hits: impl Iterator<Item = &'a AllowedHit>,
) -> BTreeMap<Key, (u64, Vec<String>)> {
    let mut out: BTreeMap<Key, (u64, Vec<String>)> = BTreeMap::new();
    for h in hits.filter(|h| spec.rules.contains(&h.rule)) {
        let e = out
            .entry((
                h.rule.to_string(),
                h.file.clone(),
                h.function.clone(),
                h.pattern.to_string(),
            ))
            .or_default();
        e.0 += 1;
        if !h.reason.is_empty() && !e.1.contains(&h.reason) {
            e.1.push(h.reason.clone());
        }
    }
    out
}

/// Compares the allowed hits against one committed inventory.
pub fn check(root: &Path, spec: &RatchetSpec, hits: &[AllowedHit]) -> Vec<Finding> {
    let mut out = Vec::new();
    let current = group(spec, hits.iter());
    let label = spec.rules[0];

    let baseline = match std::fs::read_to_string(root.join(spec.rel)) {
        Ok(text) => match parse_baseline(&text, spec) {
            Ok(b) => b,
            Err(e) => {
                out.push(Finding::new(
                    label,
                    spec.rel,
                    0,
                    None,
                    format!("inventory unreadable ({e}); re-bless with SIMLINT_BLESS=1"),
                ));
                return out;
            }
        },
        Err(_) => {
            // No inventory and nothing to inventory is the vacuous-clean
            // state (fresh checkouts of repos without ratcheted allows).
            if !current.is_empty() {
                out.push(Finding::new(
                    label,
                    spec.rel,
                    0,
                    None,
                    format!(
                        "inventory missing ({} allowed {} hit(s) found); \
                         create it with SIMLINT_BLESS=1",
                        current.values().map(|(c, _)| c).sum::<u64>(),
                        spec.rules.join("/"),
                    ),
                ));
            }
            return out;
        }
    };

    for (key, (count, _)) in &current {
        let (rule, file, function, pattern) = key;
        match baseline.get(key) {
            None => {
                let line = hits
                    .iter()
                    .find(|h| h.rule == rule.as_str() && h.file == *file && h.function == *function)
                    .map(|h| h.line)
                    .unwrap_or(0);
                out.push(Finding::new(
                    rule,
                    file,
                    line,
                    Some(function).filter(|f| !f.is_empty()).map(String::as_str),
                    format!(
                        "allowed {pattern} in `{function}` is not in the committed {}; \
                         re-bless with SIMLINT_BLESS=1 so the ratchet stays honest",
                        spec.rel
                    ),
                ));
            }
            Some(base_count) if base_count != count => {
                out.push(Finding::new(
                    rule,
                    file,
                    0,
                    Some(function).filter(|f| !f.is_empty()).map(String::as_str),
                    format!(
                        "inventory says {base_count}× {pattern} in `{function}` but the code \
                         has {count}×; re-bless with SIMLINT_BLESS=1"
                    ),
                ));
            }
            Some(_) => {}
        }
    }

    for (key, base_count) in &baseline {
        let (rule, _file, function, pattern) = key;
        if !current.contains_key(key) {
            out.push(Finding::new(
                rule,
                spec.rel,
                0,
                None,
                format!(
                    "stale inventory entry: {base_count}× {pattern} in `{function}` \
                     no longer exists — shrink the inventory with SIMLINT_BLESS=1"
                ),
            ));
        }
    }

    out
}

/// Rewrites one inventory from the current allowed hits. A spec with no
/// hits and no existing file is skipped (vacuous mini-repos don't grow
/// empty inventories).
pub fn bless(root: &Path, spec: &RatchetSpec, hits: &[AllowedHit]) -> std::io::Result<()> {
    let grouped = group(spec, hits.iter());
    let path = root.join(spec.rel);
    if grouped.is_empty() && !path.exists() {
        return Ok(());
    }
    let entries: Vec<Value> = grouped
        .into_iter()
        .map(|((rule, file, function, pattern), (count, reasons))| {
            obj(vec![
                ("rule", s(&rule)),
                ("file", s(&file)),
                ("function", s(&function)),
                ("pattern", s(&pattern)),
                ("count", n(count)),
                ("reason", s(&reasons.join("; "))),
            ])
        })
        .collect();
    let doc = obj(vec![("version", n(1)), ("entries", Value::Arr(entries))]);
    std::fs::write(path, json::to_string_pretty(&doc))
}

fn parse_baseline(text: &str, spec: &RatchetSpec) -> Result<BTreeMap<Key, u64>, String> {
    let doc = json::parse(text)?;
    let entries = doc
        .get("entries")
        .and_then(Value::as_arr)
        .ok_or("missing `entries` array")?;
    let mut out = BTreeMap::new();
    for e in entries {
        let field = |k: &str| {
            e.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("entry missing `{k}`"))
        };
        // Pre-v2 inventories had no `rule` field; default to the spec's
        // primary rule so old baselines parse (re-bless upgrades them).
        let rule = e
            .get("rule")
            .and_then(Value::as_str)
            .unwrap_or(spec.rules[0])
            .to_string();
        let key = (rule, field("file")?, field("function")?, field("pattern")?);
        let count = e
            .get("count")
            .and_then(Value::as_u64)
            .ok_or("entry missing `count`")?;
        out.insert(key, count);
    }
    Ok(out)
}
