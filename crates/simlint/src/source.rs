//! Per-file structural analysis layered on top of the lexer.
//!
//! [`SourceFile`] separates comments from code, parses `simlint:` allow
//! directives out of line comments, and runs a single brace-matching pass
//! that computes for every code token:
//!
//! - the innermost named `fn` whose body contains it (both the bare name
//!   and a definition id into [`SourceFile::defs`]),
//! - the innermost `impl`/`trait` type, so `fn route` on `EarliestStart`
//!   and `fn route` on `LeastLoaded` are distinct definitions,
//! - whether it sits inside a `#[cfg(test)] mod … { }` block,
//! - whether it is guarded by an `ENABLED` conditional: an enclosing
//!   `if …ENABLED… { }` block, a preceding `if !…ENABLED… { return…; }`
//!   early-out in the same scope, or `ENABLED` mentioned in the same
//!   statement (`debug_assert!(P::ENABLED && …)`).
//!
//! Rules then work over `code` tokens plus these annotations and never
//! have to re-derive scoping themselves; the call-graph pass
//! ([`crate::graph`]) consumes the definition table.

use crate::lexer::{lex, Tok, TokKind};

/// An inline escape: `// simlint: allow(<rule>) — <reason>`.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Line the comment sits on. The directive covers findings on this
    /// line and, when the comment is alone on its line, the next line.
    pub line: u32,
    pub rule: String,
    /// Text after the rule, with any leading dash/em-dash stripped.
    pub reason: String,
    /// Set by the engine when a finding consumes this directive; an
    /// unconsumed directive is itself reported (stale allows rot fast).
    pub used: std::cell::Cell<bool>,
}

/// One code token plus the structural facts rules need.
#[derive(Debug, Clone)]
pub struct CodeTok {
    pub tok: Tok,
    /// Innermost enclosing named function, if any.
    pub in_fn: Option<String>,
    /// Index into [`SourceFile::defs`] of that innermost function.
    pub fn_def: Option<usize>,
    /// Inside a `#[cfg(test)] mod` block.
    pub in_cfg_test: bool,
    /// Guarded by an `ENABLED` condition (see module docs).
    pub enabled_gated: bool,
}

/// One named `fn` definition discovered by the structural pass.
#[derive(Debug, Clone)]
pub struct FnDefSite {
    pub name: String,
    /// Line of the name token.
    pub line: u32,
    /// The innermost enclosing `impl Type`/`impl Trait for Type`/`trait
    /// Type` target, if any — how same-named methods are told apart.
    pub impl_ty: Option<String>,
    /// Declared under `#[cfg(test)]` (enclosing mod or direct attribute).
    pub in_cfg_test: bool,
}

/// A lexed-and-analyzed source file.
pub struct SourceFile {
    /// Repo-relative path, `/`-separated.
    pub rel_path: String,
    pub code: Vec<CodeTok>,
    pub allows: Vec<AllowDirective>,
    /// Every named `fn` definition, in source order.
    pub defs: Vec<FnDefSite>,
    /// Lines that hold only a comment (used to extend allow coverage to
    /// the following line).
    comment_only_lines: std::collections::BTreeSet<u32>,
}

impl SourceFile {
    pub fn parse(rel_path: &str, content: &str) -> SourceFile {
        let toks = lex(content);

        let mut allows = Vec::new();
        let mut code_toks: Vec<Tok> = Vec::new();
        let mut code_lines = std::collections::BTreeSet::new();
        let mut comment_lines = std::collections::BTreeSet::new();
        for t in toks {
            match t.kind {
                TokKind::LineComment => {
                    if let Some(d) = parse_allow(&t) {
                        allows.push(d);
                    }
                    comment_lines.insert(t.line);
                }
                TokKind::BlockComment => {
                    comment_lines.insert(t.line);
                }
                _ => {
                    code_lines.insert(t.line);
                    code_toks.push(t);
                }
            }
        }
        let comment_only_lines = comment_lines
            .into_iter()
            .filter(|l| !code_lines.contains(l))
            .collect();

        let (code, defs) = annotate(&code_toks);
        SourceFile {
            rel_path: rel_path.to_string(),
            code,
            allows,
            defs,
            comment_only_lines,
        }
    }

    /// Finds an allow directive covering `rule` on `line` — either a
    /// trailing comment on the same line or a comment-only line directly
    /// above — and marks it used.
    pub fn allow_for(&self, rule: &str, line: u32) -> Option<&AllowDirective> {
        let d = self.allows.iter().find(|d| {
            d.rule == rule
                && (d.line == line
                    || (d.line + 1 == line && self.comment_only_lines.contains(&d.line)))
        })?;
        d.used.set(true);
        Some(d)
    }
}

fn parse_allow(t: &Tok) -> Option<AllowDirective> {
    let text = t.text.trim();
    let rest = text.strip_prefix("simlint:")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let mut reason = rest[close + 1..].trim();
    for dash in ["—", "--", "-"] {
        if let Some(r) = reason.strip_prefix(dash) {
            reason = r.trim_start();
            break;
        }
    }
    Some(AllowDirective {
        line: t.line,
        rule,
        reason: reason.to_string(),
        used: std::cell::Cell::new(false),
    })
}

/// What one open brace on the scope stack means.
#[derive(Clone, Default)]
struct Scope {
    /// `Some(name)` when this brace opened a `fn name(…) … {` body.
    fn_name: Option<String>,
    /// Index into the def table when this brace opened a fn body.
    fn_def: Option<usize>,
    /// `Some(Type)` when this brace opened `impl … Type {` or `trait
    /// Type {` — the self type that methods defined inside belong to.
    impl_ty: Option<String>,
    /// This brace is a `#[cfg(test)] mod name {`.
    cfg_test_mod: bool,
    /// The scope header mentioned `ENABLED` without negation — an
    /// `if P::ENABLED { … }` style guard.
    enabled_guard: bool,
    /// The scope header was `if !…ENABLED… {` — candidate early-out.
    neg_enabled_if: bool,
    /// Somewhere earlier in this scope an `if !…ENABLED… { return…; }`
    /// ran, so the remainder of the scope is effectively gated.
    gated_after_early_return: bool,
    /// A `return` token appeared directly in this scope's body.
    saw_return: bool,
}

/// Extracts the self type from an `impl`/`trait` scope header: the final
/// path segment of the type after `for` when present (`impl Router for
/// EarliestStart` → `EarliestStart`), else the first type path after the
/// keyword and its generic parameters (`impl<T: Ord> Queue<T>` → `Queue`).
fn impl_target(h: &[&Tok]) -> Option<String> {
    let kw = h
        .iter()
        .position(|t| t.is_ident("impl") || t.is_ident("trait"))?;
    // Prefer the segment after a top-level `for` (generic bounds like
    // `for<'a>` never precede the self type in an impl header).
    let mut start = kw + 1;
    let mut depth = 0i32;
    for (k, t) in h.iter().enumerate().skip(kw + 1) {
        match t.kind {
            crate::lexer::TokKind::Punct('<') => depth += 1,
            crate::lexer::TokKind::Punct('>') => depth -= 1,
            crate::lexer::TokKind::Ident if depth == 0 && t.text == "for" => start = k + 1,
            _ => {}
        }
    }
    // Walk the type path from `start`: final segment before generics.
    let mut depth = 0i32;
    let mut name: Option<String> = None;
    for t in h.iter().skip(start) {
        match t.kind {
            crate::lexer::TokKind::Punct('<') => depth += 1,
            crate::lexer::TokKind::Punct('>') => depth -= 1,
            crate::lexer::TokKind::Punct(':' | '&') => {}
            crate::lexer::TokKind::Ident if depth == 0 => {
                if matches!(t.text.as_str(), "mut" | "dyn" | "where") {
                    if t.text == "where" {
                        break;
                    }
                    continue;
                }
                name = Some(t.text.clone());
            }
            _ if depth == 0 => break,
            _ => {}
        }
    }
    name
}

/// The single structural pass: brace matching plus statement tracking.
fn annotate(toks: &[Tok]) -> (Vec<CodeTok>, Vec<FnDefSite>) {
    let mut out: Vec<CodeTok> = Vec::with_capacity(toks.len());
    let mut defs: Vec<FnDefSite> = Vec::new();
    let mut stack: Vec<Scope> = Vec::new();
    // Tokens since the last statement boundary (`;`, `{`, `}`): the
    // "header" that classifies the next `{`, and the current statement
    // for same-statement ENABLED detection.
    let mut header: Vec<usize> = Vec::new();
    let mut stmt_start = 0usize; // index into `out` where the statement began
                                 // `#[cfg(test)]` seen since the last statement boundary or earlier on
                                 // the same item (attributes sit in the same header as their item).
    let mut pending_cfg_test = false;

    let make = |t: &Tok, stack: &[Scope]| CodeTok {
        tok: t.clone(),
        in_fn: stack.iter().rev().find_map(|s| s.fn_name.clone()),
        fn_def: stack.iter().rev().find_map(|s| s.fn_def),
        in_cfg_test: stack.iter().any(|s| s.cfg_test_mod),
        enabled_gated: stack
            .iter()
            .any(|s| s.enabled_guard || s.gated_after_early_return),
    };

    // Marks the current statement gated when it mentions ENABLED.
    let backfill_stmt = |out: &mut [CodeTok], stmt_start: usize| {
        if out[stmt_start..]
            .iter()
            .any(|ct| ct.tok.is_ident("ENABLED"))
        {
            for ct in &mut out[stmt_start..] {
                ct.enabled_gated = true;
            }
        }
    };

    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Punct('{') => {
                let h: Vec<&Tok> = header.iter().map(|&j| &toks[j]).collect();
                let mut scope = Scope::default();
                for (k, ht) in h.iter().enumerate() {
                    if ht.is_ident("fn") {
                        if let Some(name) = h.get(k + 1) {
                            if name.kind == TokKind::Ident {
                                scope.fn_name = Some(name.text.clone());
                                scope.fn_def = Some(defs.len());
                                // A fn marked `#[cfg(test)]` directly has
                                // the attribute in its own header.
                                let header_cfg_test = h.windows(3).any(|w| {
                                    w[0].is_ident("cfg")
                                        && w[1].is_punct('(')
                                        && w[2].is_ident("test")
                                });
                                defs.push(FnDefSite {
                                    name: name.text.clone(),
                                    line: name.line,
                                    impl_ty: stack.iter().rev().find_map(|s| s.impl_ty.clone()),
                                    in_cfg_test: stack.iter().any(|s| s.cfg_test_mod)
                                        || header_cfg_test,
                                });
                            }
                        }
                    }
                    if (ht.is_ident("impl") || ht.is_ident("trait")) && scope.fn_name.is_none() {
                        scope.impl_ty = impl_target(&h);
                    }
                    if ht.is_ident("mod") && pending_cfg_test {
                        scope.cfg_test_mod = true;
                    }
                }
                let has_enabled = h.iter().any(|ht| ht.is_ident("ENABLED"));
                if has_enabled {
                    // The guard's own header is gated too: in
                    // `if P::ENABLED && probe.audit_on() { … }` the
                    // condition call only runs when ENABLED is true
                    // (short-circuit), and compiles away when it's false.
                    // `out` is index-aligned with `toks`, so the header
                    // indices address the already-emitted tokens.
                    for &j in &header {
                        out[j].enabled_gated = true;
                    }
                    let negated = h
                        .iter()
                        .position(|ht| ht.is_ident("if"))
                        .and_then(|p| h.get(p + 1))
                        .is_some_and(|ht| ht.is_punct('!'));
                    if negated {
                        scope.neg_enabled_if = true;
                    } else {
                        scope.enabled_guard = true;
                    }
                }
                stack.push(scope);
                pending_cfg_test = false;
                header.clear();
                out.push(make(t, &stack));
                stmt_start = out.len();
            }
            TokKind::Punct('}') => {
                backfill_stmt(&mut out, stmt_start);
                if let Some(closed) = stack.pop() {
                    // Early-out pattern: `if !…ENABLED… { … return …; }`
                    // gates everything after it in the enclosing scope.
                    if closed.neg_enabled_if && closed.saw_return {
                        if let Some(parent) = stack.last_mut() {
                            parent.gated_after_early_return = true;
                        }
                    }
                }
                header.clear();
                out.push(make(t, &stack));
                stmt_start = out.len();
            }
            TokKind::Punct(';') => {
                out.push(make(t, &stack));
                backfill_stmt(&mut out, stmt_start);
                header.clear();
                stmt_start = out.len();
            }
            _ => {
                if t.is_ident("return") {
                    if let Some(s) = stack.last_mut() {
                        s.saw_return = true;
                    }
                }
                if t.is_ident("cfg")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                    && toks.get(i + 2).is_some_and(|n| n.is_ident("test"))
                {
                    pending_cfg_test = true;
                }
                header.push(i);
                out.push(make(t, &stack));
            }
        }
    }
    backfill_stmt(&mut out, stmt_start);
    (out, defs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_at<'a>(sf: &'a SourceFile, word: &str) -> &'a CodeTok {
        sf.code
            .iter()
            .find(|ct| ct.tok.is_ident(word))
            .unwrap_or_else(|| panic!("token {word:?} not found"))
    }

    #[test]
    fn fn_attribution_is_innermost() {
        let sf = SourceFile::parse(
            "x.rs",
            "fn outer() { helper(); fn inner() { deep(); } tail(); }",
        );
        assert_eq!(code_at(&sf, "helper").in_fn.as_deref(), Some("outer"));
        assert_eq!(code_at(&sf, "deep").in_fn.as_deref(), Some("inner"));
        assert_eq!(code_at(&sf, "tail").in_fn.as_deref(), Some("outer"));
    }

    #[test]
    fn closures_stay_in_enclosing_fn() {
        let sf = SourceFile::parse("x.rs", "fn hot() { items.for_each(|x| { body(x); }); }");
        assert_eq!(code_at(&sf, "body").in_fn.as_deref(), Some("hot"));
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let sf = SourceFile::parse(
            "x.rs",
            "fn live() { a(); }\n#[cfg(test)]\nmod tests { fn t() { b(); } }",
        );
        assert!(!code_at(&sf, "a").in_cfg_test);
        assert!(code_at(&sf, "b").in_cfg_test);
    }

    #[test]
    fn enabled_block_guard() {
        let sf = SourceFile::parse(
            "x.rs",
            "fn f(&mut self) { if P::ENABLED { self.probe.on_start(1); } self.probe.on_raw(2); }",
        );
        assert!(code_at(&sf, "on_start").enabled_gated);
        assert!(!code_at(&sf, "on_raw").enabled_gated);
    }

    #[test]
    fn enabled_early_return_gates_remainder() {
        let sf = SourceFile::parse(
            "x.rs",
            "fn f(&mut self) { if !P::ENABLED { return; } self.probe.set_stat(1); }",
        );
        assert!(code_at(&sf, "set_stat").enabled_gated);
    }

    #[test]
    fn neg_enabled_without_return_does_not_gate() {
        let sf = SourceFile::parse(
            "x.rs",
            "fn f(&mut self) { if !P::ENABLED { cheap(); } self.probe.on_x(); }",
        );
        assert!(!code_at(&sf, "on_x").enabled_gated);
    }

    #[test]
    fn same_statement_enabled_gates() {
        let sf = SourceFile::parse(
            "x.rs",
            "fn f() { debug_assert!(P::ENABLED && probe.check()); }",
        );
        assert!(code_at(&sf, "check").enabled_gated);
    }

    #[test]
    fn allow_same_line_and_line_above() {
        let src = "\
fn f() {
    x.clone(); // simlint: allow(hot-alloc) — same line
    // simlint: allow(hot-alloc) — line above
    y.clone();
    z.clone();
}
";
        let sf = SourceFile::parse("x.rs", src);
        assert!(sf.allow_for("hot-alloc", 2).is_some());
        assert!(sf.allow_for("hot-alloc", 4).is_some());
        assert!(sf.allow_for("hot-alloc", 5).is_none());
        assert!(sf.allow_for("unordered-iter", 2).is_none());
    }

    #[test]
    fn allow_reason_parses_dashes() {
        let sf = SourceFile::parse("x.rs", "// simlint: allow(wall-clock) -- the reason\n");
        assert_eq!(sf.allows.len(), 1);
        assert_eq!(sf.allows[0].rule, "wall-clock");
        assert_eq!(sf.allows[0].reason, "the reason");
    }
}
