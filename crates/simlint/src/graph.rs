//! The intra-workspace call graph and the derived hot set.
//!
//! PR 8's hot set was a hand-maintained name registry — it went stale the
//! moment a hot function was renamed or split. This pass derives it: fn
//! definitions come from the structural pass ([`crate::source`]), call
//! sites are resolved best-effort by name, and the hot set is the
//! transitive closure from a short list of seed entry points (the event
//! loop, the availability scan, the backfill passes, the planner and the
//! router estimate path).
//!
//! Resolution is deliberately conservative in the *over*-approximating
//! direction — a call that could reach several same-named definitions
//! marks all of them hot (trait-method fan-out), and anything that can't
//! be matched to a workspace definition lands in an explicit unresolved
//! bucket instead of being silently dropped:
//!
//! - `recv.name(…)` — fans out to every method definition named `name`;
//!   when the receiver is literally `self` and the enclosing impl defines
//!   `name`, it resolves to that one definition instead.
//! - `Type::name(…)` — resolves via the (impl type, name) index; `Self::`
//!   uses the enclosing impl type. An upper-case qualifier with no
//!   matching workspace method (e.g. `Vec::new`) is unresolved, *not*
//!   fanned out — ubiquitous std names must never drag unrelated
//!   definitions into the hot set.
//! - `module::name(…)` / bare `name(…)` — resolves to free functions of
//!   that name.
//! - Macros (`name!…`), keywords and `#[cfg(test)]` code are skipped.
//!
//! The derived set is committed as `results/hot_set.json` and ratcheted:
//! a rename/split that changes hot coverage is a visible diff that fails
//! CI until re-blessed with `SIMLINT_BLESS=1` — never a silent hole.

use crate::json::{self, n, obj, s, Value};
use crate::report::Finding;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

pub const HOT_SET_REL: &str = "results/hot_set.json";

/// Seed entry points of the hot closure. Names, not paths: these are the
/// functions the profiler says dominate a run — the event loop, the
/// availability-profile scan, the backfill passes, the incremental
/// planner and the router estimate path. `backfill_candidates` is seeded
/// explicitly because it is the public RL action-space API: nothing in
/// the kernel calls it, the agent does, every step. A trailing `*` is a
/// prefix glob.
pub const SEEDS: &[&str] = &[
    "advance",
    "step_with",
    "apply_due_events",
    "earliest_fit",
    "easy_pass",
    "easy_pass_with_order",
    "conservative_pass",
    "plan_conservative_starts",
    "route",
    "reroute_pass",
    "apply_platform_event",
    "estimated_start*",
    "backfill_candidates",
];

fn seed_matches(name: &str) -> bool {
    SEEDS.iter().any(|pat| match pat.strip_suffix('*') {
        Some(prefix) => name.starts_with(prefix),
        None => name == *pat,
    })
}

/// One fn definition in the workspace.
#[derive(Debug, Clone)]
pub struct Def {
    pub file: String,
    pub name: String,
    /// Enclosing `impl`/`trait` target; `None` for free functions.
    pub impl_ty: Option<String>,
    pub line: u32,
    in_cfg_test: bool,
}

/// Keywords that look like calls when followed by `(` — `if (…)`,
/// `return (a, b)`, `match (x, y)` — and must never be call sites.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "for", "loop", "in", "return", "break", "continue", "move",
    "as", "let", "mut", "ref", "unsafe", "await", "yield", "use", "pub", "where", "box", "dyn",
    "fn", "impl", "struct", "enum", "trait", "mod", "const", "static", "type", "crate", "super",
    "self", "Self",
];

pub struct CallGraph {
    pub defs: Vec<Def>,
    /// caller def id → callee def ids (resolved).
    edges: Vec<BTreeSet<usize>>,
    /// caller def id → call names that matched no workspace definition.
    unresolved: Vec<BTreeSet<String>>,
}

impl CallGraph {
    /// Builds the graph over a set of analyzed files (one file is fine —
    /// the fixture path — the closure is then intra-file).
    pub fn build(files: &[SourceFile]) -> CallGraph {
        CallGraph::build_refs(&files.iter().collect::<Vec<_>>())
    }

    /// [`CallGraph::build`] over borrowed files (the repo walk keeps the
    /// parsed files alive for the per-file rule pass that follows).
    pub fn build_refs(files: &[&SourceFile]) -> CallGraph {
        // Pass 1: the definition table plus name indices. Test-only
        // definitions exist in the table (ids must line up with
        // `SourceFile::defs`) but are neither call targets nor seeds.
        let mut defs: Vec<Def> = Vec::new();
        let mut base: Vec<usize> = Vec::with_capacity(files.len());
        for sf in files {
            base.push(defs.len());
            for d in &sf.defs {
                defs.push(Def {
                    file: sf.rel_path.clone(),
                    name: d.name.clone(),
                    impl_ty: d.impl_ty.clone(),
                    line: d.line,
                    in_cfg_test: d.in_cfg_test,
                });
            }
        }
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_ty_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (id, d) in defs.iter().enumerate() {
            if d.in_cfg_test {
                continue;
            }
            match &d.impl_ty {
                Some(ty) => {
                    methods_by_name.entry(&d.name).or_default().push(id);
                    by_ty_name.entry((ty, &d.name)).or_default().push(id);
                }
                None => free_by_name.entry(&d.name).or_default().push(id),
            }
        }

        // Pass 2: call sites.
        let mut edges = vec![BTreeSet::new(); defs.len()];
        let mut unresolved = vec![BTreeSet::new(); defs.len()];
        for (fi, sf) in files.iter().enumerate() {
            let code = &sf.code;
            for (i, ct) in code.iter().enumerate() {
                if ct.in_cfg_test || ct.tok.kind != crate::lexer::TokKind::Ident {
                    continue;
                }
                let Some(caller) = ct.fn_def.map(|local| base[fi] + local) else {
                    continue; // top-level expression, not inside any fn
                };
                let name = ct.tok.text.as_str();
                // A call site is `name(` or turbofish `name::<…>(`.
                let followed_by_call = code.get(i + 1).is_some_and(|t| t.tok.is_punct('('))
                    || (code.get(i + 1).is_some_and(|t| t.tok.is_punct(':'))
                        && code.get(i + 2).is_some_and(|t| t.tok.is_punct(':'))
                        && code.get(i + 3).is_some_and(|t| t.tok.is_punct('<')));
                if !followed_by_call {
                    continue;
                }
                // `name!(…)` is a macro; `fn name(…)` is the definition.
                if code.get(i + 1).is_some_and(|t| t.tok.is_punct('!'))
                    || (i > 0 && code[i - 1].tok.is_ident("fn"))
                {
                    continue;
                }

                let prev_is = |c: char| i > 0 && code[i - 1].tok.is_punct(c);
                let targets: Option<Vec<usize>> = if prev_is('.') {
                    // Method call. `self.name(…)` resolves precisely when
                    // the enclosing impl defines `name`; otherwise fan out.
                    let self_recv = i >= 2 && code[i - 2].tok.is_ident("self");
                    let caller_ty = defs[caller].impl_ty.clone();
                    let precise = if self_recv {
                        caller_ty
                            .as_deref()
                            .and_then(|ty| by_ty_name.get(&(ty, name)).cloned())
                    } else {
                        None
                    };
                    precise.or_else(|| methods_by_name.get(name).cloned())
                } else if prev_is(':') && i >= 2 && code[i - 2].tok.is_punct(':') {
                    // Path call `Q::name(…)`.
                    let qual = (i >= 3)
                        .then(|| &code[i - 3].tok)
                        .filter(|t| t.kind == crate::lexer::TokKind::Ident);
                    match qual {
                        Some(q) => {
                            let qname = if q.text == "Self" {
                                defs[caller].impl_ty.clone().unwrap_or_default()
                            } else {
                                q.text.clone()
                            };
                            if let Some(ids) = by_ty_name.get(&(qname.as_str(), name)) {
                                Some(ids.clone())
                            } else if qname.starts_with(char::is_uppercase) {
                                // `Vec::new`, `SimTime::from` — a type
                                // with no such workspace method. Never
                                // fan out on ubiquitous std names.
                                None
                            } else {
                                // `module::name(…)` — a free fn path.
                                free_by_name.get(name).cloned()
                            }
                        }
                        None => None,
                    }
                } else if !KEYWORDS.contains(&name) && !prev_is('#') {
                    // Bare call — a free function (or a tuple-struct
                    // constructor, which resolves to nothing).
                    free_by_name.get(name).cloned()
                } else {
                    continue;
                };

                match targets {
                    Some(ids) if !ids.is_empty() => {
                        edges[caller].extend(ids);
                    }
                    _ => {
                        unresolved[caller].insert(name.to_string());
                    }
                }
            }
        }

        CallGraph {
            defs,
            edges,
            unresolved,
        }
    }

    /// The transitive closure from the seed entry points, plus the
    /// unresolved-call bucket restricted to hot callers (the calls the
    /// graph could not account for — reviewable, not ratcheted).
    pub fn hot_set(&self) -> HotSet {
        let mut hot_ids: BTreeSet<usize> = BTreeSet::new();
        let mut work: Vec<usize> = Vec::new();
        for (id, d) in self.defs.iter().enumerate() {
            if !d.in_cfg_test && seed_matches(&d.name) {
                hot_ids.insert(id);
                work.push(id);
            }
        }
        while let Some(id) = work.pop() {
            for &callee in &self.edges[id] {
                if hot_ids.insert(callee) {
                    work.push(callee);
                }
            }
        }

        let mut entries = BTreeSet::new();
        let mut hot_names = BTreeSet::new();
        let mut unresolved = BTreeSet::new();
        for &id in &hot_ids {
            let d = &self.defs[id];
            entries.insert(HotEntry {
                file: d.file.clone(),
                function: d.name.clone(),
                impl_ty: d.impl_ty.clone(),
            });
            hot_names.insert((d.file.clone(), d.name.clone()));
            unresolved.extend(self.unresolved[id].iter().cloned());
        }
        HotSet {
            entries,
            hot_names,
            unresolved,
        }
    }
}

/// One hot definition as committed to `results/hot_set.json`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct HotEntry {
    pub file: String,
    pub function: String,
    pub impl_ty: Option<String>,
}

/// The derived hot set.
pub struct HotSet {
    pub entries: BTreeSet<HotEntry>,
    /// `(file, fn name)` lookup for rules — two same-named methods in one
    /// file are not distinguished (conservatively both hot).
    hot_names: BTreeSet<(String, String)>,
    /// Call names from hot functions that matched no workspace def.
    pub unresolved: BTreeSet<String>,
}

impl HotSet {
    pub fn is_hot(&self, file: &str, function: &str) -> bool {
        self.hot_names
            .contains(&(file.to_string(), function.to_string()))
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hot function names, deduped across files/impls.
    pub fn names(&self) -> BTreeSet<&str> {
        self.entries.iter().map(|e| e.function.as_str()).collect()
    }
}

/// Compares the derived hot set against the committed one. A missing file
/// with an empty derived set is vacuously clean (mini-repos without
/// kernel entry points); anything else must match exactly.
pub fn check(root: &Path, hot: &HotSet) -> Vec<Finding> {
    let mut out = Vec::new();
    let committed = match std::fs::read_to_string(root.join(HOT_SET_REL)) {
        Ok(text) => match parse_hot_set(&text) {
            Ok(c) => c,
            Err(e) => {
                out.push(Finding::new(
                    "hot-set",
                    HOT_SET_REL,
                    0,
                    None,
                    format!("hot set unreadable ({e}); re-bless with SIMLINT_BLESS=1"),
                ));
                return out;
            }
        },
        Err(_) => {
            if !hot.is_empty() {
                out.push(Finding::new(
                    "hot-set",
                    HOT_SET_REL,
                    0,
                    None,
                    format!(
                        "hot set file missing ({} derived hot function(s)); \
                         create it with SIMLINT_BLESS=1",
                        hot.len()
                    ),
                ));
            }
            return out;
        }
    };

    for e in &hot.entries {
        if !committed.entries.contains(e) {
            out.push(Finding::new(
                "hot-set",
                &e.file,
                0,
                Some(&e.function),
                format!(
                    "`{}` is in the derived hot set but not in {HOT_SET_REL}; \
                     a rename/split changed hot coverage — review and re-bless \
                     with SIMLINT_BLESS=1",
                    qualify(e)
                ),
            ));
        }
    }
    for e in &committed.entries {
        if !hot.entries.contains(e) {
            out.push(Finding::new(
                "hot-set",
                HOT_SET_REL,
                0,
                Some(&e.function),
                format!(
                    "committed hot set lists `{}` but it is no longer derived \
                     ({}) — review and re-bless with SIMLINT_BLESS=1",
                    qualify(e),
                    e.file
                ),
            ));
        }
    }
    if committed.seeds != SEEDS {
        out.push(Finding::new(
            "hot-set",
            HOT_SET_REL,
            0,
            None,
            "seed list in the committed hot set differs from the analyzer's; \
             re-bless with SIMLINT_BLESS=1"
                .to_string(),
        ));
    }
    out
}

fn qualify(e: &HotEntry) -> String {
    match &e.impl_ty {
        Some(ty) => format!("{ty}::{}", e.function),
        None => e.function.clone(),
    }
}

/// Rewrites `results/hot_set.json` from the derived set. Skipped entirely
/// when the derived set is empty and no file exists (vacuous mini-repos).
pub fn bless(root: &Path, hot: &HotSet) -> std::io::Result<()> {
    let path = root.join(HOT_SET_REL);
    if hot.is_empty() && !path.exists() {
        return Ok(());
    }
    let functions: Vec<Value> = hot
        .entries
        .iter()
        .map(|e| {
            obj(vec![
                ("file", s(&e.file)),
                ("function", s(&e.function)),
                ("impl", e.impl_ty.as_deref().map(s).unwrap_or(Value::Null)),
            ])
        })
        .collect();
    let doc = obj(vec![
        ("version", n(1)),
        ("seeds", Value::Arr(SEEDS.iter().map(|p| s(p)).collect())),
        ("functions", Value::Arr(functions)),
        ("count", n(hot.entries.len() as u64)),
    ]);
    std::fs::write(path, json::to_string_pretty(&doc))
}

struct CommittedHotSet {
    seeds: Vec<String>,
    entries: BTreeSet<HotEntry>,
}

fn parse_hot_set(text: &str) -> Result<CommittedHotSet, String> {
    let doc = json::parse(text)?;
    let seeds = doc
        .get("seeds")
        .and_then(Value::as_arr)
        .ok_or("missing `seeds`")?
        .iter()
        .map(|v| v.as_str().map(str::to_string).ok_or("non-string seed"))
        .collect::<Result<Vec<_>, _>>()?;
    let mut entries = BTreeSet::new();
    for e in doc
        .get("functions")
        .and_then(Value::as_arr)
        .ok_or("missing `functions`")?
    {
        entries.insert(HotEntry {
            file: e
                .get("file")
                .and_then(Value::as_str)
                .ok_or("entry missing `file`")?
                .to_string(),
            function: e
                .get("function")
                .and_then(Value::as_str)
                .ok_or("entry missing `function`")?
                .to_string(),
            impl_ty: e.get("impl").and_then(Value::as_str).map(str::to_string),
        });
    }
    Ok(CommittedHotSet { seeds, entries })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot_names_of(src: &str) -> BTreeSet<String> {
        let sf = SourceFile::parse("crates/hpcsim/src/x.rs", src);
        let g = CallGraph::build(std::slice::from_ref(&sf));
        g.hot_set()
            .entries
            .iter()
            .map(|e| e.function.clone())
            .collect()
    }

    #[test]
    fn closure_follows_free_calls() {
        let names = hot_names_of(
            "fn advance() { helper(); }\n\
             fn helper() { deep(); }\n\
             fn deep() {}\n\
             fn cold() { deep(); }\n",
        );
        assert!(names.contains("advance"));
        assert!(names.contains("helper"));
        assert!(names.contains("deep"));
        assert!(!names.contains("cold"));
    }

    #[test]
    fn recursion_terminates() {
        let names = hot_names_of("fn advance(n: u32) { if n > 0 { advance(n - 1); } }\n");
        assert_eq!(names.len(), 1);
    }

    #[test]
    fn mutual_recursion_terminates_and_covers_both() {
        let names = hot_names_of(
            "fn advance(n: u32) { pong(n); }\n\
             fn pong(n: u32) { if n > 0 { advance(n - 1); } }\n",
        );
        assert!(names.contains("advance") && names.contains("pong"));
    }

    #[test]
    fn trait_method_calls_fan_out_to_all_impls() {
        let names = hot_names_of(
            "struct A; struct B;\n\
             impl Router for A { fn route(&self) { self.tally(); } }\n\
             impl Router for B { fn route(&self) {} }\n\
             impl A { fn tally(&self) {} }\n\
             fn advance(r: &dyn Router) { r.plan(); }\n\
             impl Router for A { fn plan(&self) {} }\n",
        );
        // `route` is itself a seed (both impls), and `self.tally()`
        // resolves precisely to A::tally via the enclosing impl.
        assert!(names.contains("route"));
        assert!(names.contains("tally"));
        assert!(names.contains("plan"));
    }

    #[test]
    fn shadowed_free_fn_and_method_are_told_apart() {
        // A method call never marks the same-named free fn, and a bare
        // call never marks the method.
        let names = hot_names_of(
            "fn tick() {}\n\
             struct T;\n\
             impl T { fn tick(&self) {} fn shim(&self) {} }\n\
             fn advance(t: &T) { t.tick(); }\n\
             fn apply_due_events() { shim_free(); }\n\
             fn shim_free() { tick(); }\n",
        );
        // advance → method T::tick (hot); apply_due_events → shim_free →
        // free tick (hot). Both names land, but via distinct entries:
        let sf = SourceFile::parse(
            "crates/hpcsim/src/x.rs",
            "fn tick() {}\n\
             struct T;\n\
             impl T { fn tick(&self) {} }\n\
             fn advance(t: &T) { t.tick(); }\n",
        );
        let g = CallGraph::build(std::slice::from_ref(&sf));
        let hot = g.hot_set();
        let method_hot = hot
            .entries
            .iter()
            .any(|e| e.function == "tick" && e.impl_ty.as_deref() == Some("T"));
        let free_hot = hot
            .entries
            .iter()
            .any(|e| e.function == "tick" && e.impl_ty.is_none());
        assert!(method_hot, "{:?}", hot.entries);
        assert!(!free_hot, "method call must not mark the free fn");
        assert!(names.contains("shim_free"));
    }

    #[test]
    fn std_path_calls_do_not_fan_out() {
        let names = hot_names_of(
            "struct S; impl S { fn new() -> S { S } }\n\
             fn advance() { let v = Vec::new(); let _ = v; }\n",
        );
        // `Vec::new` must not drag `S::new` into the hot set.
        assert!(!names.contains("new"), "{names:?}");
    }

    #[test]
    fn self_path_calls_resolve_to_enclosing_impl() {
        let names = hot_names_of(
            "struct S;\n\
             impl S { fn advance(&self) { Self::stage(); } fn stage() {} }\n\
             struct Other; impl Other { fn stage() {} }\n",
        );
        let sf = SourceFile::parse(
            "crates/hpcsim/src/x.rs",
            "struct S;\n\
             impl S { fn advance(&self) { Self::stage(); } fn stage() {} }\n\
             struct Other; impl Other { fn stage() {} }\n",
        );
        let g = CallGraph::build(std::slice::from_ref(&sf));
        let hot = g.hot_set();
        assert!(names.contains("stage"));
        assert!(
            !hot.entries
                .iter()
                .any(|e| e.impl_ty.as_deref() == Some("Other")),
            "Self:: must resolve to the enclosing impl only: {:?}",
            hot.entries
        );
    }

    #[test]
    fn macros_and_cfg_test_are_skipped() {
        let names = hot_names_of(
            "fn advance() { assert!(ok()); }\n\
             fn assert() {}\n\
             #[cfg(test)]\n\
             mod tests { fn advance() { secret(); } }\n\
             fn secret() {}\n",
        );
        assert!(!names.contains("assert"), "macro bang must be skipped");
        assert!(!names.contains("ok")); // no def named ok
        assert!(!names.contains("secret"), "cfg(test) callers don't count");
    }

    #[test]
    fn unresolved_calls_land_in_the_bucket() {
        let sf = SourceFile::parse(
            "crates/hpcsim/src/x.rs",
            "fn advance(xs: &[u32]) { let _ = xs.binary_search(&1); mystery(); }\n",
        );
        let g = CallGraph::build(std::slice::from_ref(&sf));
        let hot = g.hot_set();
        assert!(hot.unresolved.contains("binary_search"));
        assert!(hot.unresolved.contains("mystery"));
    }

    #[test]
    fn seed_glob_matches_prefix() {
        let names = hot_names_of("fn estimated_start_scratch() {}\nfn estimate() {}\n");
        assert!(names.contains("estimated_start_scratch"));
        assert!(!names.contains("estimate"));
    }
}
