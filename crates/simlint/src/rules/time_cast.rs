//! time-cast — no lossy `as` casts on simulation-time values.
//!
//! `SimTime` is an `f64` of seconds; `x as u32`/`as usize`/`as f32` on a
//! time-derived value silently truncates or rounds, and two shards that
//! truncate at different points produce different schedules. This rule
//! flags `<expr> as <lossy>` where the lossy targets are every integer
//! type plus `f32` (`as f64` is the widening direction and stays legal),
//! and the subject expression's postfix chain mentions a time-ish name:
//! `SimTime` itself, clock/duration accessors (`now`, `elapsed`,
//! `as_secs*`, `as_millis`), or identifiers spelled like times
//! (`*_time`, `*_secs`, `*_ms`, `*_deadline`, `runtime`, `walltime`,
//! `submit`, `shadow_end`, …).
//!
//! Lexical, so deliberately narrow: a cast of `count` or `idx` never
//! matches. Surviving hits are ratcheted into
//! `results/parallel_readiness_inventory.json` with a reason saying why
//! the truncation is sound (e.g. a floor to a whole-second bucket that
//! both engines perform identically).

use super::RatchetHit;
use crate::lexer::TokKind;
use crate::source::SourceFile;

pub const RULE: &str = "time-cast";

/// Cast targets that lose information coming from an `f64`/wide-`u64`
/// time value. `f64` is deliberately absent.
const LOSSY_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
];

/// Is `name` a time-ish identifier?
fn time_marker(name: &str) -> bool {
    const EXACT: &[&str] = &[
        "SimTime",
        "now",
        "elapsed",
        "runtime",
        "walltime",
        "deadline",
        "submit",
        "timestamp",
    ];
    const SUFFIX: &[&str] = &[
        "_time",
        "_secs",
        "_ms",
        "_millis",
        "_deadline",
        "_start",
        "_end",
        "_finish",
    ];
    const PREFIX: &[&str] = &["as_secs", "as_millis", "as_micros", "as_nanos", "time_"];
    EXACT.contains(&name)
        || SUFFIX.iter().any(|s| name.ends_with(s))
        || PREFIX.iter().any(|p| name.starts_with(p))
}

pub fn hits(sf: &SourceFile) -> Vec<RatchetHit> {
    let code = &sf.code;
    let mut out = Vec::new();
    for (i, ct) in code.iter().enumerate() {
        if ct.in_cfg_test || !ct.tok.is_ident("as") {
            continue;
        }
        let Some(target) = code.get(i + 1).filter(|t| {
            t.tok.kind == TokKind::Ident && LOSSY_TARGETS.contains(&t.tok.text.as_str())
        }) else {
            continue;
        };
        let subject = super::chain_idents_before(code, i);
        let Some(marker) = subject.iter().find(|n| time_marker(n)) else {
            continue;
        };
        out.push(RatchetHit {
            line: ct.tok.line,
            function: ct.in_fn.clone().unwrap_or_default(),
            pattern: "as-cast",
            message: format!(
                "`… as {}` on time-valued `{marker}` is lossy; truncation points must be \
                 bitwise-identical across engines — keep SimTime arithmetic in f64, or allow \
                 with a reason saying why this rounding is deterministic \
                 (ratcheted in results/parallel_readiness_inventory.json)",
                target.tok.text
            ),
        });
    }
    out
}
