//! The rule set. Each rule takes an analyzed [`SourceFile`] and returns
//! raw findings (or, for the ratcheted rules, [`RatchetHit`]s); the
//! engine in [`crate::lib`] applies allow directives and the inventory
//! ratchets on top.
//!
//! Which files a rule sees is decided by path in [`crate::check_source`]
//! (and documented per rule) — rules themselves only look at tokens.

pub mod float_order;
pub mod hot_alloc;
pub mod panic_path;
pub mod pin_coverage;
pub mod probe_gating;
pub mod sync_audit;
pub mod time_cast;
pub mod unordered_iter;
pub mod wall_clock;

use crate::lexer::TokKind;
use crate::source::CodeTok;

/// One raw hit from a ratcheted rule, before the engine splits it into a
/// hard violation or an (allowed) inventory entry.
pub struct RatchetHit {
    pub line: u32,
    /// Enclosing fn; empty for file-level hits.
    pub function: String,
    /// Inventory identity of the matched pattern.
    pub pattern: &'static str,
    /// The violation message used when the hit is *not* allowed.
    pub message: String,
}

/// True when the code token at `i` starts `.name(` — a method call on
/// some receiver (path-form `Type::name(...)` does not match).
pub(crate) fn is_method_call(code: &[CodeTok], i: usize, name: &str) -> bool {
    i > 0
        && code[i - 1].tok.is_punct('.')
        && code[i].tok.is_ident(name)
        && code.get(i + 1).is_some_and(|t| {
            // Plain call or turbofish: `.collect()` / `.collect::<V>()`.
            t.tok.is_punct('(') || t.tok.is_punct(':')
        })
}

/// True when tokens at `i..` spell the path call `A::b(` (allowing the
/// two-colon separator the lexer emits as two `:` puncts).
pub(crate) fn is_path_call(code: &[CodeTok], i: usize, ty: &str, method: &str) -> bool {
    code[i].tok.is_ident(ty)
        && code.get(i + 1).is_some_and(|t| t.tok.is_punct(':'))
        && code.get(i + 2).is_some_and(|t| t.tok.is_punct(':'))
        && code.get(i + 3).is_some_and(|t| t.tok.is_ident(method))
        && code.get(i + 4).is_some_and(|t| t.tok.is_punct('('))
}

/// Keywords that can appear directly before `[`/`(` without making the
/// bracket an index/call on a value (`let [a, b] = …`, `return (x)`).
pub(crate) const EXPR_KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "for", "loop", "in", "return", "break", "continue", "move",
    "as", "let", "mut", "ref", "unsafe", "await", "yield", "use", "pub", "where", "box", "dyn",
    "fn", "impl", "struct", "enum", "trait", "mod", "const", "static", "type",
];

/// Walks left from code index `end` (exclusive) across one postfix
/// expression chain — identifiers, numbers, `.`, `?`, `&`, turbofish
/// `::<…>`, and balanced `(…)` / `[…]` groups — and returns every
/// identifier it crosses (receivers, field names, method names, and the
/// contents of balanced groups). Used by rules that classify an
/// expression by the names appearing in it (float-order receivers,
/// time-cast subjects).
pub(crate) fn chain_idents_before(code: &[CodeTok], end: usize) -> Vec<String> {
    let mut idents = Vec::new();
    let mut j = end;
    while j > 0 {
        let t = &code[j - 1].tok;
        match t.kind {
            TokKind::Ident => {
                if EXPR_KEYWORDS.contains(&t.text.as_str()) {
                    break;
                }
                idents.push(t.text.clone());
                j -= 1;
            }
            TokKind::Num => j -= 1,
            TokKind::Punct('.' | '?' | '&') => j -= 1,
            // Turbofish tail `::<T>` (scanning backward: `>` … `<` `:` `:`).
            TokKind::Punct('>') => {
                let mut depth = 1i32;
                j -= 1;
                while j > 0 && depth > 0 {
                    match code[j - 1].tok.kind {
                        TokKind::Punct('>') => depth += 1,
                        TokKind::Punct('<') => depth -= 1,
                        TokKind::Ident => idents.push(code[j - 1].tok.text.clone()),
                        _ => {}
                    }
                    j -= 1;
                }
            }
            TokKind::Punct(':') => j -= 1,
            // Balanced group: collect its identifiers too, so
            // `(a.end_time - b) as u32` sees `end_time`.
            TokKind::Punct(close @ (')' | ']')) => {
                let open = if close == ')' { '(' } else { '[' };
                let mut depth = 1i32;
                j -= 1;
                while j > 0 && depth > 0 {
                    let inner = &code[j - 1].tok;
                    if inner.is_punct(close) {
                        depth += 1;
                    } else if inner.is_punct(open) {
                        depth -= 1;
                    } else if inner.kind == TokKind::Ident
                        && !EXPR_KEYWORDS.contains(&inner.text.as_str())
                    {
                        idents.push(inner.text.clone());
                    }
                    j -= 1;
                }
            }
            _ => break,
        }
    }
    idents
}
