//! The rule set. Each rule takes an analyzed [`SourceFile`] and returns
//! raw findings; the engine in [`crate::lib`] applies allow directives and
//! the hot-path ratchet on top.
//!
//! Which files a rule sees is decided by path in [`crate::check_source`]
//! (and documented per rule) — rules themselves only look at tokens.

pub mod hot_alloc;
pub mod pin_coverage;
pub mod probe_gating;
pub mod unordered_iter;
pub mod wall_clock;

use crate::source::CodeTok;

/// True when the code token at `i` starts `.name(` — a method call on
/// some receiver (path-form `Type::name(...)` does not match).
pub(crate) fn is_method_call(code: &[CodeTok], i: usize, name: &str) -> bool {
    i > 0
        && code[i - 1].tok.is_punct('.')
        && code[i].tok.is_ident(name)
        && code.get(i + 1).is_some_and(|t| {
            // Plain call or turbofish: `.collect()` / `.collect::<V>()`.
            t.tok.is_punct('(') || t.tok.is_punct(':')
        })
}

/// True when tokens at `i..` spell the path call `A::b(` (allowing the
/// two-colon separator the lexer emits as two `:` puncts).
pub(crate) fn is_path_call(code: &[CodeTok], i: usize, ty: &str, method: &str) -> bool {
    code[i].tok.is_ident(ty)
        && code.get(i + 1).is_some_and(|t| t.tok.is_punct(':'))
        && code.get(i + 2).is_some_and(|t| t.tok.is_punct(':'))
        && code.get(i + 3).is_some_and(|t| t.tok.is_ident(method))
        && code.get(i + 4).is_some_and(|t| t.tok.is_punct('('))
}
