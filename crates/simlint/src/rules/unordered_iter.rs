//! determinism/unordered-iter — no iteration over hash-ordered
//! collections in the kernel crates.
//!
//! `HashMap`/`HashSet` iteration order is unspecified and changes across
//! std versions and hasher seeds; any simulation decision derived from it
//! silently breaks bitwise determinism. Keyed access (`get`, `insert`,
//! `entry`, `remove`, `contains_key`, `len`) stays legal — only the
//! order-exposing methods and `for … in &map` loops are flagged.
//!
//! Binding is lexical, per file: a name is "hash-typed" when it is
//! declared with a `: …HashMap<…>` / `: …HashSet<…>` ascription (struct
//! fields, lets, fn params) or initialized from `HashMap::new()` /
//! `with_capacity()` / `from(…)`. That deliberately over-approximates
//! nothing and under-approximates little: kernel code that launders a map
//! through a type alias should be flagged by review, not lexing.

use crate::report::Finding;
use crate::source::{CodeTok, SourceFile};
use std::collections::BTreeSet;

pub const RULE: &str = "unordered-iter";

/// Methods that expose (or consume in) hash order.
const ORDER_EXPOSING: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// Keywords that can never be a bound name (guards the backward scan).
const NOT_A_NAME: &[&str] = &[
    "use", "pub", "crate", "super", "let", "in", "for", "where", "impl", "fn", "mut", "as",
    "return", "type", "struct", "enum", "const", "static", "ref", "move", "if", "else", "match",
];

pub fn check(sf: &SourceFile) -> Vec<Finding> {
    let code = &sf.code;
    let names = bind_hash_names(code);
    let mut out = Vec::new();

    for (i, ct) in code.iter().enumerate() {
        if ct.in_cfg_test {
            continue;
        }
        // `name.iter()` / `self.name.keys()` / `name.drain()` …
        if ct.tok.kind == crate::lexer::TokKind::Ident && names.contains(ct.tok.text.as_str()) {
            if let Some(dot) = code.get(i + 1) {
                if dot.tok.is_punct('.') {
                    if let Some(m) = code.get(i + 2) {
                        if ORDER_EXPOSING.iter().any(|name| m.tok.is_ident(name))
                            && code
                                .get(i + 3)
                                .is_some_and(|t| t.tok.is_punct('(') || t.tok.is_punct(':'))
                        {
                            out.push(Finding::new(
                                RULE,
                                &sf.rel_path,
                                m.tok.line,
                                m.in_fn.as_deref(),
                                format!(
                                    ".{}() on hash-ordered `{}` exposes unspecified order; \
                                     use a BTreeMap/BTreeSet, sort the output, or keep access keyed",
                                    m.tok.text, ct.tok.text
                                ),
                            ));
                        }
                    }
                }
            }
            // `for x in &name { … }` / `for x in &mut self.name { … }` —
            // borrow-iterating the collection directly.
            if is_for_in_target(code, i, &ct.tok.text) {
                out.push(Finding::new(
                    RULE,
                    &sf.rel_path,
                    ct.tok.line,
                    ct.in_fn.as_deref(),
                    format!(
                        "`for … in &{}` iterates a hash-ordered collection; \
                         use a BTreeMap/BTreeSet or sort first",
                        ct.tok.text
                    ),
                ));
            }
        }
    }
    out
}

/// Is the identifier at `i` the direct target of `for … in & [mut] …`,
/// followed by the loop body brace (i.e. iterated, not indexed)?
fn is_for_in_target(code: &[CodeTok], i: usize, _name: &str) -> bool {
    // Walk back over `self .` and `& mut`.
    let mut j = i;
    if j >= 2 && code[j - 1].tok.is_punct('.') && code[j - 2].tok.is_ident("self") {
        j -= 2;
    }
    let mut saw_amp = false;
    if j >= 1 && code[j - 1].tok.is_ident("mut") {
        j -= 1;
    }
    if j >= 1 && code[j - 1].tok.is_punct('&') {
        saw_amp = true;
        j -= 1;
    }
    if !(j >= 1 && code[j - 1].tok.is_ident("in")) {
        return false;
    }
    // Both `in &name` and the by-move `in name` iterate in hash order;
    // either is flagged, so the borrow marker itself is irrelevant.
    let _ = saw_amp;
    // The loop body brace must follow immediately: anything else (`.`,
    // `[`, `(`) means the expression continues and the identifier at `i`
    // is a prefix or receiver, not the iterated collection — those forms
    // are handled (or legitimately keyed) elsewhere.
    code.get(i + 1).is_some_and(|t| t.tok.is_punct('{'))
}

/// One backward/forward scan binding hash-typed names (see module docs).
/// Shared with float-order, which treats hash-bound receivers as
/// order-unstable reduction sources.
pub(crate) fn bind_hash_names(code: &[CodeTok]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, ct) in code.iter().enumerate() {
        if !(ct.tok.is_ident("HashMap") || ct.tok.is_ident("HashSet")) {
            continue;
        }
        // Forward form: `… = HashMap::new()` → bind the ident before `=`.
        // Backward form: `name : [&][mut] [std::collections::] HashXxx`.
        let mut j = i;
        let mut crossed_colon = false;
        let mut crossed_eq = false;
        while j > 0 {
            j -= 1;
            let t = &code[j].tok;
            match t.kind {
                crate::lexer::TokKind::Punct(':') => crossed_colon = true,
                crate::lexer::TokKind::Punct('=') => {
                    crossed_eq = true;
                    break;
                }
                crate::lexer::TokKind::Punct('&' | '<' | ',') => {}
                crate::lexer::TokKind::Lifetime => {}
                crate::lexer::TokKind::Ident
                    if matches!(t.text.as_str(), "std" | "collections" | "mut") => {}
                _ => break,
            }
        }
        if crossed_eq {
            // `let [mut] name = HashMap::…` — ident right before the `=`.
            if j > 0 {
                let cand = &code[j - 1].tok;
                if cand.kind == crate::lexer::TokKind::Ident
                    && !NOT_A_NAME.contains(&cand.text.as_str())
                {
                    names.insert(cand.text.clone());
                }
            }
        } else if crossed_colon {
            let cand = &code[j].tok;
            if cand.kind == crate::lexer::TokKind::Ident
                && !NOT_A_NAME.contains(&cand.text.as_str())
            {
                names.insert(cand.text.clone());
            }
        }
    }
    names
}
