//! panic-path — no unguarded panics inside the derived hot set.
//!
//! The upcoming serial/threadsafe kernel split runs backfill passes on
//! worker threads; a panic mid-pass there doesn't abort the run, it
//! poisons locks and leaves shards half-advanced — the worst possible
//! failure mode for a bitwise-equivalence bar. Inside the hot closure
//! (see [`crate::graph`]) the panicking constructs are therefore
//! ratcheted: `.unwrap(…)`, `.expect(…)`, the panicking macros
//! (`panic!`, `unreachable!`, `todo!`, `unimplemented!`) and slice/array
//! indexing `x[i]` (which hides a bounds panic). Each surviving site
//! carries an allow with a reason — collectively the committed
//! `results/panic_path_inventory.json` is the audit list the threadsafe
//! split will be built against.

use super::RatchetHit;
use crate::graph::HotSet;
use crate::lexer::TokKind;
use crate::source::SourceFile;

pub const RULE: &str = "panic-path";

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub fn hits(sf: &SourceFile, hot: &HotSet) -> Vec<RatchetHit> {
    let code = &sf.code;
    let mut out = Vec::new();
    for (i, ct) in code.iter().enumerate() {
        if ct.in_cfg_test {
            continue;
        }
        let Some(func) = ct.in_fn.as_deref() else {
            continue;
        };
        if !hot.is_hot(&sf.rel_path, func) {
            continue;
        }

        let hit: Option<(&'static str, String)> = if super::is_method_call(code, i, "unwrap") {
            Some((
                ".unwrap()",
                format!("`.unwrap()` can panic inside hot fn `{func}`"),
            ))
        } else if super::is_method_call(code, i, "expect") {
            Some((
                ".expect()",
                format!("`.expect()` can panic inside hot fn `{func}`"),
            ))
        } else if ct.tok.kind == TokKind::Ident
            && PANIC_MACROS.contains(&ct.tok.text.as_str())
            && code.get(i + 1).is_some_and(|t| t.tok.is_punct('!'))
        {
            Some((
                "panic!",
                format!("`{}!` panics inside hot fn `{func}`", ct.tok.text),
            ))
        } else if is_index_bracket(code, i) {
            Some((
                "indexing",
                format!("slice/array indexing hides a bounds panic inside hot fn `{func}`"),
            ))
        } else {
            None
        };

        if let Some((pattern, what)) = hit {
            out.push(RatchetHit {
                line: ct.tok.line,
                function: func.to_string(),
                pattern,
                message: format!(
                    "{what}; a panic mid-pass breaks the parallel kernel's bitwise-equivalence \
                     recovery — return an error/handle the case, or allow with a reason \
                     (ratcheted in results/panic_path_inventory.json)"
                ),
            });
        }
    }
    out
}

/// Is the token at `i` a `[` that indexes a value expression? True when
/// the previous token is an identifier (not a keyword), a close-paren or
/// a close-bracket — `xs[i]`, `f(x)[0]`, `grid[r][c]`. Array literals
/// (`[0; N]`), patterns (`let [a, b] = …`), types (`: [u8; 4]`) and
/// attributes (`#[…]`) all have a non-expression token before the
/// bracket and never match.
fn is_index_bracket(code: &[crate::source::CodeTok], i: usize) -> bool {
    if !code[i].tok.is_punct('[') || i == 0 {
        return false;
    }
    let prev = &code[i - 1].tok;
    match prev.kind {
        TokKind::Ident => !super::EXPR_KEYWORDS.contains(&prev.text.as_str()),
        TokKind::Punct(')' | ']') => true,
        _ => false,
    }
}
