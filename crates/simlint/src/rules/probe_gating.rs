//! probe/gating — probe hook calls must sit behind `P::ENABLED`.
//!
//! The observability layer's zero-cost claim rests on every hook call
//! being guarded so the optimizer can delete the whole branch when
//! `ENABLED` is `false`. A bare `self.probe.on_x(…)` still evaluates its
//! arguments — and argument expressions are exactly where accidental
//! work (formatting, collecting, cloning) creeps in. This rule flags any
//! `….probe.<method>(…)` call whose token is not inside an
//! `ENABLED`-gated scope (block guard, early-return guard, or
//! same-statement mention — see [`crate::source`]).
//!
//! Files that *define* probes (`probe.rs`, the `observe` layer) are
//! excluded by path in the engine: the trait impls there are the sink the
//! gated calls flow into.

use crate::report::Finding;
use crate::source::SourceFile;

pub const RULE: &str = "probe-gating";

pub fn check(sf: &SourceFile) -> Vec<Finding> {
    let code = &sf.code;
    let mut out = Vec::new();
    for (i, ct) in code.iter().enumerate() {
        if !ct.tok.is_ident("probe") {
            continue;
        }
        // Match `probe . <method> (` — receiver prefixes (`self .`) don't
        // matter; what matters is a call through a probe handle.
        let Some(m) = code.get(i + 2) else { continue };
        if !(code[i + 1].tok.is_punct('.')
            && m.tok.kind == crate::lexer::TokKind::Ident
            && code.get(i + 3).is_some_and(|t| t.tok.is_punct('(')))
        {
            continue;
        }
        if m.in_cfg_test || m.enabled_gated {
            continue;
        }
        // Consuming finalizers (`into_telemetry`, `into_log_and_telemetry`)
        // take the probe by value once at teardown — they are how results
        // leave an *instrumented* run, not per-event hooks, and only exist
        // on probes that are enabled by construction.
        if m.tok.text.starts_with("into_") {
            continue;
        }
        out.push(Finding::new(
            RULE,
            &sf.rel_path,
            m.tok.line,
            m.in_fn.as_deref(),
            format!(
                "probe hook `.{}()` is not behind `P::ENABLED`; wrap it in \
                 `if P::ENABLED {{ … }}` so disabled builds pay nothing",
                m.tok.text
            ),
        ));
    }
    out
}
