//! pin-coverage — committed result pins must be referenced, scenario
//! files must be valid JSON.
//!
//! A byte pin in `results/` only protects the project while some test
//! actually compares against it; an orphaned pin silently becomes dead
//! weight that drifts from the code. And a scenario file with a JSON typo
//! fails at *use* time, in whichever smoke run happens to load it. This
//! rule closes both gaps statically:
//!
//! - every top-level `results/*.json` must be mentioned by filename in a
//!   test (root `tests/`, any `crates/*/tests/`) or in
//!   `results/README.md`, and must parse as JSON;
//! - every `examples/scenarios/*.json` must parse as JSON.

use crate::json;
use crate::report::Finding;
use std::path::Path;

pub const RULE: &str = "pin-coverage";

pub fn check(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();

    // Reference corpus: all test sources plus the results README.
    let mut corpus = String::new();
    for dir in test_dirs(root) {
        collect_text(&dir, &mut corpus);
    }
    if let Ok(readme) = std::fs::read_to_string(root.join("results/README.md")) {
        corpus.push_str(&readme);
    }

    for path in json_files(&root.join("results")) {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let rel = format!("results/{name}");
        // The ratchet baselines and the derived hot set are simlint's own
        // artifacts — simlint is the test that reads them, so the
        // reference requirement is satisfied by construction (parse
        // validation below still applies).
        let is_own_artifact = crate::inventory::SPECS.iter().any(|spec| rel == spec.rel)
            || rel == crate::graph::HOT_SET_REL;
        if !is_own_artifact && !corpus.contains(&name) {
            out.push(Finding::new(
                RULE,
                &rel,
                0,
                None,
                format!(
                    "pin `{name}` is referenced by no test and not listed in results/README.md; \
                     orphaned pins drift — wire it up or delete it"
                ),
            ));
        }
        check_parses(&path, &rel, &mut out);
    }

    for path in json_files(&root.join("examples/scenarios")) {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        check_parses(&path, &format!("examples/scenarios/{name}"), &mut out);
    }

    out
}

fn check_parses(path: &Path, rel: &str, out: &mut Vec<Finding>) {
    match std::fs::read_to_string(path) {
        Ok(text) => {
            if let Err(e) = json::parse(&text) {
                out.push(Finding::new(
                    RULE,
                    rel,
                    0,
                    None,
                    format!("not valid JSON: {e}"),
                ));
            }
        }
        Err(e) => out.push(Finding::new(RULE, rel, 0, None, format!("unreadable: {e}"))),
    }
}

/// Top-level `*.json` files of `dir` (no recursion — `results/agents/`
/// and friends manage their own contracts), sorted for stable output.
fn json_files(dir: &Path) -> Vec<std::path::PathBuf> {
    let mut out = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            let p = e.path();
            if p.is_file() && p.extension().is_some_and(|x| x == "json") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// `tests/` at the root plus every `crates/*/tests/`.
fn test_dirs(root: &Path) -> Vec<std::path::PathBuf> {
    let mut out = vec![root.join("tests")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            let t = e.path().join("tests");
            if t.is_dir() {
                out.push(t);
            }
        }
    }
    out.sort();
    out
}

/// Appends the contents of every `.rs` file under `dir` (recursively —
/// test trees may nest fixtures/helpers) to `corpus`.
fn collect_text(dir: &Path, corpus: &mut String) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_text(&p, corpus);
        } else if p.extension().is_some_and(|x| x == "rs") {
            if let Ok(text) = std::fs::read_to_string(&p) {
                corpus.push_str(&text);
            }
        }
    }
}
