//! determinism/wall-clock — no wall-clock reads in the kernel crates.
//!
//! The simulator's determinism contract (byte-pinned outputs, replicated
//! windows) only holds if simulated time is the *only* clock. `Instant`
//! and `SystemTime` are allowed in exactly one place: the observe span
//! layer, which measures the simulator from outside and is excluded by
//! path in the engine. Bench binaries live in `crates/bench` and are
//! never handed to this rule.

use crate::report::Finding;
use crate::source::SourceFile;

pub const RULE: &str = "wall-clock";

pub fn check(sf: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let code = &sf.code;
    for (i, ct) in code.iter().enumerate() {
        if ct.in_cfg_test {
            continue;
        }
        // `Instant::now(` — path call, any path prefix.
        if super::is_path_call(code, i, "Instant", "now") {
            out.push(Finding::new(
                RULE,
                &sf.rel_path,
                ct.tok.line,
                ct.in_fn.as_deref(),
                "Instant::now() reads the wall clock; kernel code must use simulated time only"
                    .to_string(),
            ));
        }
        // Any mention of SystemTime at all (type position included): the
        // kernel has no legitimate use for calendar time.
        if ct.tok.is_ident("SystemTime") {
            out.push(Finding::new(
                RULE,
                &sf.rel_path,
                ct.tok.line,
                ct.in_fn.as_deref(),
                "SystemTime has no place in kernel code; use simulated time".to_string(),
            ));
        }
    }
    out
}
