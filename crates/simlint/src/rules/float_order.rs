//! float-order — no float accumulation over order-unstable iteration.
//!
//! Float addition is not associative: the same set of job contributions
//! summed in two different orders produces bitwise-different schedules,
//! which is exactly the drift the serial/threadsafe equivalence bar
//! forbids. This rule flags reductions whose iteration order is (or will
//! become) unspecified:
//!
//! - `.sum()` / `.product()` / `.fold(…)` where the receiver chain runs
//!   through a rayon parallel bridge (`par_iter`, `into_par_iter`,
//!   `par_bridge`, `par_chunks*`) or a lexically hash-bound name (the
//!   same binding analysis as unordered-iter);
//! - `+=` inside a `for` loop whose header iterates such a source.
//!
//! Reductions with an explicit integer turbofish (`.sum::<u64>()`) are
//! exempt — integer addition commutes. Hits are ratcheted into
//! `results/parallel_readiness_inventory.json`: an allowed site's reason
//! must say what pins the order (a sort, a sequential collect, a pinning
//! test).

use super::RatchetHit;
use crate::lexer::TokKind;
use crate::source::{CodeTok, SourceFile};

pub const RULE: &str = "float-order";

const REDUCERS: &[&str] = &["sum", "product", "fold"];

/// Receiver-chain names that mean "order is parallel/unspecified".
const PAR_MARKERS: &[&str] = &[
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_bridge",
    "par_chunks",
    "par_chunks_mut",
];

const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

pub fn hits(sf: &SourceFile) -> Vec<RatchetHit> {
    let code = &sf.code;
    let hash_names = super::unordered_iter::bind_hash_names(code);
    let unstable = |name: &str| PAR_MARKERS.contains(&name) || hash_names.contains(name);
    let mut out = Vec::new();

    for (i, ct) in code.iter().enumerate() {
        if ct.in_cfg_test {
            continue;
        }

        // Reduction form: `.sum()` / `.fold(…)` over an unstable chain.
        if REDUCERS.iter().any(|r| super::is_method_call(code, i, r)) {
            if has_int_turbofish(code, i) {
                continue;
            }
            let chain = super::chain_idents_before(code, i - 1); // before the `.`
            if let Some(src) = chain.iter().find(|n| unstable(n)) {
                out.push(RatchetHit {
                    line: ct.tok.line,
                    function: ct.in_fn.clone().unwrap_or_default(),
                    pattern: ".sum()/.fold()",
                    message: format!(
                        "float `.{}()` reduces over order-unstable `{src}`; float addition is \
                         not associative, so the result is not bitwise-stable — sort/sequence \
                         the source, use an integer accumulator, or allow with a reason \
                         (ratcheted in results/parallel_readiness_inventory.json)",
                        ct.tok.text
                    ),
                });
            }
        }

        // Loop form: `for x in <unstable source> { … acc += …; … }`.
        if ct.tok.is_ident("for") {
            flag_accumulating_loop(code, i, &unstable, &mut out);
        }
    }
    out
}

/// `.sum::<u64>()`-style explicit integer annotation right after the
/// reducer name at `i`.
fn has_int_turbofish(code: &[CodeTok], i: usize) -> bool {
    code.get(i + 1).is_some_and(|t| t.tok.is_punct(':'))
        && code.get(i + 2).is_some_and(|t| t.tok.is_punct(':'))
        && code.get(i + 3).is_some_and(|t| t.tok.is_punct('<'))
        && code.get(i + 4).is_some_and(|t| {
            t.tok.kind == TokKind::Ident && INT_TYPES.contains(&t.tok.text.as_str())
        })
}

/// For the `for` keyword at `i`: if the loop header (between `in` and the
/// body `{`) mentions an unstable source, flag every `+=` in the body.
fn flag_accumulating_loop(
    code: &[CodeTok],
    i: usize,
    unstable: &dyn Fn(&str) -> bool,
    out: &mut Vec<RatchetHit>,
) {
    // Find the body-opening `{` at bracket depth 0.
    let mut j = i + 1;
    let mut depth = 0i32;
    let body_open = loop {
        let Some(ct) = code.get(j) else { return };
        match ct.tok.kind {
            TokKind::Punct('(' | '[') => depth += 1,
            TokKind::Punct(')' | ']') => depth -= 1,
            TokKind::Punct('{') if depth == 0 => break j,
            TokKind::Punct(';') => return, // not a loop header after all
            _ => {}
        }
        j += 1;
    };
    let source_name = code[i + 1..body_open].iter().find_map(|ct| {
        (ct.tok.kind == TokKind::Ident && unstable(&ct.tok.text)).then(|| ct.tok.text.clone())
    });
    let Some(src) = source_name else { return };

    // Flag `+=` inside the body (balanced to the matching `}`).
    let mut depth = 1i32;
    let mut k = body_open + 1;
    while let Some(ct) = code.get(k) {
        match ct.tok.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokKind::Punct('+') if code.get(k + 1).is_some_and(|t| t.tok.is_punct('=')) => {
                out.push(RatchetHit {
                    line: ct.tok.line,
                    function: ct.in_fn.clone().unwrap_or_default(),
                    pattern: "+= in for-loop",
                    message: format!(
                        "`+=` accumulates inside a loop over order-unstable `{src}`; float \
                         addition is not associative, so the result is not bitwise-stable — \
                         sort/sequence the source or allow with a reason \
                         (ratcheted in results/parallel_readiness_inventory.json)"
                    ),
                });
            }
            _ => {}
        }
        k += 1;
    }
}
