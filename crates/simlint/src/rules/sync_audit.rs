//! sync-audit — every piece of shared-mutability machinery in the kernel
//! crates is inventoried before the parallel split.
//!
//! The serial/threadsafe kernel split will have to re-justify every
//! `RefCell`, `Rc`, atomic and lock in `desim`/`hpcsim`: `Rc`/`RefCell`/
//! `Cell` are `!Sync` and block `Send`ing shards outright; ad-hoc
//! `Mutex`/atomics introduce ordering the equivalence bar can't see.
//! This rule makes that audit a committed artifact: outside the
//! sanctioned sync module (`crates/desim/src/replicate.rs` today,
//! `crates/desim/src/sync/` once the split lands — carved out by path in
//! the engine), any mention of `static mut`, `Rc`, `Arc`, `RefCell`,
//! `Cell`, `UnsafeCell`, `Mutex`, `RwLock`, `Condvar`, `Atomic*` or
//! `thread::spawn` needs a reasoned allow, ratcheted into
//! `results/parallel_readiness_inventory.json`. `Arc` is included
//! deliberately: it is thread-*safe* but not decision-*neutral*, and the
//! split must argue each one.
//!
//! `use` statements are skipped — the audit tracks uses, not imports.

use super::RatchetHit;
use crate::lexer::TokKind;
use crate::source::SourceFile;

pub const RULE: &str = "sync-audit";

const SHARED_TYPES: &[&str] = &[
    "Rc",
    "Arc",
    "RefCell",
    "Cell",
    "UnsafeCell",
    "Mutex",
    "RwLock",
    "Condvar",
];

pub fn hits(sf: &SourceFile) -> Vec<RatchetHit> {
    let code = &sf.code;
    let mut out = Vec::new();
    // Statement-level `use` tracking: a `use` at statement start skips
    // everything up to the closing `;`.
    let mut in_use_stmt = false;
    let mut at_stmt_start = true;

    for (i, ct) in code.iter().enumerate() {
        if let TokKind::Punct(';' | '{' | '}') = ct.tok.kind {
            in_use_stmt = false;
            at_stmt_start = true;
            continue;
        }
        if at_stmt_start && ct.tok.is_ident("use") {
            in_use_stmt = true;
        }
        at_stmt_start = false;
        if in_use_stmt || ct.in_cfg_test || ct.tok.kind != TokKind::Ident {
            continue;
        }

        let name = ct.tok.text.as_str();
        let pattern: Option<&'static str> =
            if name == "static" && code.get(i + 1).is_some_and(|t| t.tok.is_ident("mut")) {
                Some("static mut")
            } else if let Some(p) = SHARED_TYPES.iter().copied().find(|t| *t == name) {
                Some(p)
            } else if name.starts_with("Atomic") && name.len() > "Atomic".len() {
                Some("Atomic*")
            } else if name == "thread"
                && code.get(i + 1).is_some_and(|t| t.tok.is_punct(':'))
                && code.get(i + 2).is_some_and(|t| t.tok.is_punct(':'))
                && code.get(i + 3).is_some_and(|t| t.tok.is_ident("spawn"))
            {
                Some("thread::spawn")
            } else {
                None
            };

        if let Some(pattern) = pattern {
            out.push(RatchetHit {
                line: ct.tok.line,
                function: ct.in_fn.clone().unwrap_or_default(),
                pattern,
                message: format!(
                    "`{pattern}` is shared-mutability machinery in a kernel crate; the \
                     parallel split must audit every use — move it behind the sanctioned \
                     desim sync module or allow with a reason \
                     (ratcheted in results/parallel_readiness_inventory.json)"
                ),
            });
        }
    }
    out
}
