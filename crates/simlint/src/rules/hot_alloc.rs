//! hot-path/alloc — allocation discipline inside the derived hot set.
//!
//! The hot set is no longer a hand list: it is the transitive call-graph
//! closure from the seed entry points in [`crate::graph`] (the event
//! loop, the availability scan, the backfill passes, the planner, the
//! router estimate path), committed as `results/hot_set.json`. An
//! allocation in a hot function runs O(events × queue) times. Inside one
//! (closures included — attribution is to the innermost *named* fn) the
//! patterns `Vec::new`, `vec![…]`, `.collect()`, `.clone()`, `.to_vec()`,
//! `Box::new` and `format!` are flagged.
//!
//! This rule is a *ratchet*, not a ban: an allowed finding (with a
//! reason) is legal but must appear in the committed
//! `results/hot_alloc_inventory.json`; see [`crate::inventory`].

use super::RatchetHit;
use crate::graph::HotSet;
use crate::source::SourceFile;

pub const RULE: &str = "hot-alloc";

/// Raw pattern matches with their inventory identity; the engine splits
/// them into violations and (allowed) inventory entries.
pub fn hits(sf: &SourceFile, hot: &HotSet) -> Vec<RatchetHit> {
    let code = &sf.code;
    let mut out = Vec::new();
    for (i, ct) in code.iter().enumerate() {
        if ct.in_cfg_test {
            continue;
        }
        let Some(func) = ct.in_fn.as_deref() else {
            continue;
        };
        if !hot.is_hot(&sf.rel_path, func) {
            continue;
        }
        let pattern: Option<&'static str> = if super::is_path_call(code, i, "Vec", "new") {
            Some("Vec::new")
        } else if super::is_path_call(code, i, "Box", "new") {
            Some("Box::new")
        } else if ct.tok.is_ident("vec") && code.get(i + 1).is_some_and(|t| t.tok.is_punct('!')) {
            Some("vec![]")
        } else if ct.tok.is_ident("format") && code.get(i + 1).is_some_and(|t| t.tok.is_punct('!'))
        {
            Some("format!")
        } else if super::is_method_call(code, i, "collect") {
            Some(".collect()")
        } else if super::is_method_call(code, i, "clone") {
            Some(".clone()")
        } else if super::is_method_call(code, i, "to_vec") {
            Some(".to_vec()")
        } else {
            None
        };
        if let Some(pattern) = pattern {
            out.push(RatchetHit {
                line: ct.tok.line,
                function: func.to_string(),
                pattern,
                message: format!(
                    "{pattern} allocates inside hot fn `{func}`; hoist/reuse a scratch buffer \
                     or allow with a reason (ratcheted in results/hot_alloc_inventory.json)"
                ),
            });
        }
    }
    out
}
