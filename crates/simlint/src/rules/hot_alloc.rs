//! hot-path/alloc — allocation discipline inside the registered hot
//! functions.
//!
//! These are the functions the profiler says dominate a simulation run:
//! the availability-profile scan, the backfill passes, the incremental
//! planner, the router estimate path, and the event loop itself. An
//! allocation here runs O(events × queue) times, and the upcoming SoA
//! refactor will churn exactly these bodies. Inside a registered
//! function (closures included — attribution is to the innermost *named*
//! fn) the patterns `Vec::new`, `vec![…]`, `.collect()`, `.clone()`,
//! `.to_vec()`, `Box::new` and `format!` are flagged.
//!
//! This rule is a *ratchet*, not a ban: an allowed finding (with a
//! reason) is legal but must appear in the committed
//! `results/hot_alloc_inventory.json`; see [`crate::inventory`].

use crate::report::Finding;
use crate::source::SourceFile;

pub const RULE: &str = "hot-alloc";

/// The hot-function registry. Names, not paths: the point is that a
/// function with one of these names in a kernel crate is hot wherever it
/// lives, and renaming a hot function away from its registered name is a
/// reviewable act.
pub const HOT_FNS: &[&str] = &[
    // availability profile scan (crates/hpcsim/src/profile.rs)
    "earliest_fit",
    "earliest_avail",
    "avail_at",
    "next_candidate_after",
    "next_shortfall_after",
    "insert_contrib",
    "remove_contrib",
    // backfill passes
    "conservative_pass",
    "easy_pass",
    "easy_pass_with_order",
    "backfill",
    "backfill_candidates",
    // incremental planner
    "plan_conservative_starts",
    "conservative_starts",
    "shadow_extra",
    "would_delay",
    "would_delay_reserved",
    // router estimate path
    "estimated_start",
    "estimated_start_shared",
    "estimated_start_scratch",
    "best_move",
    "route",
    "reroute",
    "reroute_pass",
    "seek",
    "rebuild",
    // event loop and settle hooks
    "advance",
    "apply_due_events",
    "start_ready_jobs",
    "start_job",
    "step_with",
    "schedule",
    "pop",
    "pop_until",
    "on_enqueue",
    "on_dequeue",
    "on_start",
    "on_complete",
    "on_resort",
];

/// A matched allocation pattern, named for the inventory.
pub struct Hit {
    pub line: u32,
    pub function: String,
    pub pattern: &'static str,
}

pub fn check(sf: &SourceFile) -> Vec<Finding> {
    hits(sf)
        .into_iter()
        .map(|h| {
            Finding::new(
                RULE,
                &sf.rel_path,
                h.line,
                Some(&h.function),
                format!(
                    "{} allocates inside hot fn `{}`; hoist/reuse a scratch buffer \
                     or allow with a reason (ratcheted in results/hot_alloc_inventory.json)",
                    h.pattern, h.function
                ),
            )
        })
        .collect()
}

/// Raw pattern matches with their inventory identity; the engine splits
/// them into violations and (allowed) inventory entries.
pub fn hits(sf: &SourceFile) -> Vec<Hit> {
    let code = &sf.code;
    let mut out = Vec::new();
    for (i, ct) in code.iter().enumerate() {
        if ct.in_cfg_test {
            continue;
        }
        let Some(func) = ct.in_fn.as_deref() else {
            continue;
        };
        if !HOT_FNS.contains(&func) {
            continue;
        }
        let pattern: Option<&'static str> = if super::is_path_call(code, i, "Vec", "new") {
            Some("Vec::new")
        } else if super::is_path_call(code, i, "Box", "new") {
            Some("Box::new")
        } else if ct.tok.is_ident("vec") && code.get(i + 1).is_some_and(|t| t.tok.is_punct('!')) {
            Some("vec![]")
        } else if ct.tok.is_ident("format") && code.get(i + 1).is_some_and(|t| t.tok.is_punct('!'))
        {
            Some("format!")
        } else if super::is_method_call(code, i, "collect") {
            Some(".collect()")
        } else if super::is_method_call(code, i, "clone") {
            Some(".clone()")
        } else if super::is_method_call(code, i, "to_vec") {
            Some(".to_vec()")
        } else {
            None
        };
        if let Some(pattern) = pattern {
            out.push(Hit {
                line: ct.tok.line,
                function: func.to_string(),
                pattern,
            });
        }
    }
    out
}
