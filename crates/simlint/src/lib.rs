//! simlint — project-invariant static analysis for the simulation kernel.
//!
//! The test suite defends this repo's invariants *dynamically*; simlint
//! states the statable ones at the source level and checks them in CI,
//! before anything runs:
//!
//! | rule            | invariant                                              |
//! |-----------------|--------------------------------------------------------|
//! | `wall-clock`    | kernel code never reads the wall clock                 |
//! | `unordered-iter`| kernel code never iterates hash-ordered collections    |
//! | `hot-alloc`     | hot functions don't allocate (ratcheted inventory)     |
//! | `probe-gating`  | probe hooks sit behind `P::ENABLED`                    |
//! | `pin-coverage`  | result pins are referenced; scenario JSON parses       |
//!
//! Escapes are inline: `// simlint: allow(<rule>) — <reason>` on the
//! offending line or the line above. `hot-alloc` allows additionally
//! feed the committed ratchet baseline (`results/hot_alloc_inventory.json`,
//! re-blessed via `SIMLINT_BLESS=1`). Everything is dependency-free and
//! built on a small hand-rolled Rust lexer — see `src/lexer.rs` for why.

pub mod inventory;
pub mod json;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;

use inventory::AllowedHit;
use report::{Finding, Report};
use source::SourceFile;
use std::path::Path;

/// What one source file contributes to a run.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Violations (allow directives already applied).
    pub findings: Vec<Finding>,
    /// Allowed hot-path allocations, destined for the ratchet.
    pub allowed_hot: Vec<AllowedHit>,
}

/// Which rules a kernel source file is subject to, decided by path.
struct RuleScope {
    wall_clock: bool,
    unordered_iter: bool,
    hot_alloc: bool,
    probe_gating: bool,
}

fn scope_for(rel_path: &str) -> Option<RuleScope> {
    let kernel =
        rel_path.starts_with("crates/desim/src/") || rel_path.starts_with("crates/hpcsim/src/");
    if !kernel || !rel_path.ends_with(".rs") {
        return None;
    }
    // The observe layer is the sanctioned measurement boundary: it may
    // read the wall clock, it allocates only when recording is on, and it
    // is where probe hooks terminate.
    let observe = rel_path.contains("observe");
    // Probe trait definitions (and their no-op impls) are the callee side
    // of the gating contract, not call sites.
    let probe_def = rel_path.ends_with("/probe.rs");
    // The reference simulation is the deliberately-naïve from-scratch
    // oracle the equivalence suite compares against; the audit layer is
    // cold by construction (guarded by `audit_enabled`). Holding either
    // to hot-path allocation discipline would optimize the yardstick.
    let cold = observe || rel_path.contains("audit") || rel_path.ends_with("/reference.rs");
    Some(RuleScope {
        wall_clock: !observe,
        unordered_iter: true,
        hot_alloc: !cold,
        probe_gating: !observe && !probe_def,
    })
}

/// Checks one in-memory source file (the unit fixtures and the repo walk
/// both funnel through here). `rel_path` decides rule applicability.
pub fn check_source(rel_path: &str, content: &str) -> FileOutcome {
    let mut out = FileOutcome::default();
    let Some(scope) = scope_for(rel_path) else {
        return out;
    };
    let sf = SourceFile::parse(rel_path, content);

    let apply = |findings: Vec<Finding>, out: &mut FileOutcome| {
        for f in findings {
            if sf.allow_for(&f.rule, f.line).is_none() {
                out.findings.push(f);
            }
        }
    };

    if scope.wall_clock {
        apply(rules::wall_clock::check(&sf), &mut out);
    }
    if scope.unordered_iter {
        apply(rules::unordered_iter::check(&sf), &mut out);
    }
    if scope.probe_gating {
        apply(rules::probe_gating::check(&sf), &mut out);
    }
    if scope.hot_alloc {
        for hit in rules::hot_alloc::hits(&sf) {
            match sf.allow_for(rules::hot_alloc::RULE, hit.line) {
                Some(d) if d.reason.is_empty() => {
                    out.findings.push(Finding::new(
                        rules::hot_alloc::RULE,
                        rel_path,
                        hit.line,
                        Some(&hit.function),
                        format!(
                            "allow(hot-alloc) needs a reason — the inventory records *why* \
                             {} in `{}` is acceptable",
                            hit.pattern, hit.function
                        ),
                    ));
                }
                Some(d) => out.allowed_hot.push(AllowedHit {
                    file: rel_path.to_string(),
                    line: hit.line,
                    function: hit.function,
                    pattern: hit.pattern,
                    reason: d.reason.clone(),
                }),
                None => out.findings.push(
                    rules::hot_alloc::check(&sf)
                        .into_iter()
                        .find(|f| {
                            f.line == hit.line && f.function.as_deref() == Some(&hit.function)
                        })
                        .unwrap_or_else(|| {
                            Finding::new(
                                rules::hot_alloc::RULE,
                                rel_path,
                                hit.line,
                                Some(&hit.function),
                                format!(
                                    "{} allocates inside hot fn `{}`",
                                    hit.pattern, hit.function
                                ),
                            )
                        }),
                ),
            }
        }
    }

    // A directive nothing consumed is itself a defect: stale allows hide
    // future violations on their line.
    for d in &sf.allows {
        if !d.used.get() {
            out.findings.push(Finding::new(
                "unused-allow",
                rel_path,
                d.line,
                None,
                format!(
                    "allow({}) matches no finding on this or the next line; delete it",
                    d.rule
                ),
            ));
        }
    }

    out
}

/// Walks the kernel crates and runs every rule; `bless` rewrites the
/// hot-alloc inventory instead of diffing against it.
pub fn check_repo(root: &Path, bless: bool) -> std::io::Result<Report> {
    let mut report = Report::default();
    let mut allowed_hot: Vec<AllowedHit> = Vec::new();

    let mut files = Vec::new();
    for crate_dir in ["crates/desim/src", "crates/hpcsim/src"] {
        walk_rs(&root.join(crate_dir), &mut files);
    }
    files.sort();

    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let content = std::fs::read_to_string(&path)?;
        let mut outcome = check_source(&rel, &content);
        report.findings.append(&mut outcome.findings);
        allowed_hot.append(&mut outcome.allowed_hot);
        report.files_checked += 1;
    }

    report.inventoried = allowed_hot.len();
    if bless {
        inventory::bless(root, &allowed_hot)?;
    } else {
        report
            .findings
            .append(&mut inventory::check(root, &allowed_hot));
    }

    report
        .findings
        .append(&mut rules::pin_coverage::check(root));

    report.findings.sort();
    Ok(report)
}

fn walk_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            walk_rs(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}
