//! simlint — project-invariant static analysis for the simulation kernel.
//!
//! The test suite defends this repo's invariants *dynamically*; simlint
//! states the statable ones at the source level and checks them in CI,
//! before anything runs:
//!
//! | rule            | invariant                                               | scope                    |
//! |-----------------|---------------------------------------------------------|--------------------------|
//! | `wall-clock`    | no wall-clock reads                                     | kernel + swf/rlbf        |
//! | `unordered-iter`| no iteration over hash-ordered collections              | kernel + swf/rlbf        |
//! | `hot-alloc`     | hot functions don't allocate (ratcheted inventory)      | kernel                   |
//! | `panic-path`    | hot functions don't panic (ratcheted inventory)         | kernel                   |
//! | `float-order`   | no float reduction over order-unstable iteration        | kernel (ratcheted)       |
//! | `time-cast`     | no lossy `as` casts on time values                      | kernel (ratcheted)       |
//! | `sync-audit`    | shared-mutability machinery is inventoried              | kernel (ratcheted)       |
//! | `probe-gating`  | probe hooks sit behind `P::ENABLED`                     | kernel                   |
//! | `hot-set`       | the derived hot set matches `results/hot_set.json`      | repo                     |
//! | `pin-coverage`  | result pins are referenced; scenario JSON parses        | repo                     |
//!
//! "Hot" is no longer a hand list: a call-graph pass ([`graph`]) derives
//! the transitive closure from the seed entry points and ratchets it as
//! `results/hot_set.json`. Escapes are inline:
//! `// simlint: allow(<rule>) — <reason>` on the offending line or the
//! line above. The ratcheted rules additionally feed the committed
//! inventories (see [`inventory`]), re-blessed via `SIMLINT_BLESS=1`.
//! Everything is dependency-free and built on a small hand-rolled Rust
//! lexer — see `src/lexer.rs` for why.

pub mod graph;
pub mod inventory;
pub mod json;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;

use graph::{CallGraph, HotSet};
use inventory::AllowedHit;
use report::{Finding, Report};
use rules::RatchetHit;
use source::SourceFile;
use std::path::Path;

/// What one source file contributes to a run.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Violations (allow directives already applied).
    pub findings: Vec<Finding>,
    /// Allowed ratcheted hits (hot-alloc, panic-path, sync-audit,
    /// float-order, time-cast), destined for the inventories.
    pub allowed: Vec<AllowedHit>,
}

/// Which rules a source file is subject to, decided by path.
struct RuleScope {
    wall_clock: bool,
    unordered_iter: bool,
    hot_alloc: bool,
    probe_gating: bool,
    panic_path: bool,
    float_order: bool,
    time_cast: bool,
    sync_audit: bool,
}

fn scope_for(rel_path: &str) -> Option<RuleScope> {
    if !rel_path.ends_with(".rs") {
        return None;
    }
    let kernel =
        rel_path.starts_with("crates/desim/src/") || rel_path.starts_with("crates/hpcsim/src/");
    // Trace generation and env stepping feed the byte-pinned schedules
    // too: the determinism rules (wall-clock, unordered-iter) extend to
    // them, but the hot-path/parallel-readiness discipline stays
    // kernel-only.
    let edge = rel_path.starts_with("crates/swf/src/") || rel_path.starts_with("crates/rlbf/src/");
    if !kernel && !edge {
        return None;
    }
    if edge {
        return Some(RuleScope {
            wall_clock: true,
            unordered_iter: true,
            hot_alloc: false,
            probe_gating: false,
            panic_path: false,
            float_order: false,
            time_cast: false,
            sync_audit: false,
        });
    }
    // The observe layer is the sanctioned measurement boundary: it may
    // read the wall clock, it allocates only when recording is on, and it
    // is where probe hooks terminate.
    let observe = rel_path.contains("observe");
    // Probe trait definitions (and their no-op impls) are the callee side
    // of the gating contract, not call sites.
    let probe_def = rel_path.ends_with("/probe.rs");
    // The reference simulation is the deliberately-naïve from-scratch
    // oracle the equivalence suite compares against; the audit layer is
    // cold by construction (guarded by `audit_enabled`). Holding either
    // to hot-path discipline would optimize the yardstick.
    let cold = observe || rel_path.contains("audit") || rel_path.ends_with("/reference.rs");
    // The sanctioned sync module: desim's replicated-run machinery today,
    // `desim/src/sync/` once the threadsafe split lands.
    let sanctioned_sync = rel_path == "crates/desim/src/replicate.rs"
        || rel_path.starts_with("crates/desim/src/sync/");
    Some(RuleScope {
        wall_clock: !observe,
        unordered_iter: true,
        hot_alloc: !cold,
        probe_gating: !observe && !probe_def,
        panic_path: !cold,
        float_order: true,
        time_cast: true,
        sync_audit: !sanctioned_sync,
    })
}

/// Splits a ratcheted rule's raw hits into hard violations and allowed
/// inventory candidates. An allow without a reason is itself a violation
/// — the inventory records *why* each blessed site is acceptable.
fn apply_ratchet(
    rule: &'static str,
    hits: Vec<RatchetHit>,
    sf: &SourceFile,
    out: &mut FileOutcome,
) {
    for hit in hits {
        let function = (!hit.function.is_empty()).then_some(hit.function.as_str());
        match sf.allow_for(rule, hit.line) {
            Some(d) if d.reason.is_empty() => out.findings.push(Finding::new(
                rule,
                &sf.rel_path,
                hit.line,
                function,
                format!(
                    "allow({rule}) needs a reason — the inventory records *why* \
                     {} at this site is acceptable",
                    hit.pattern
                ),
            )),
            Some(d) => out.allowed.push(AllowedHit {
                rule,
                file: sf.rel_path.clone(),
                line: hit.line,
                function: hit.function,
                pattern: hit.pattern,
                reason: d.reason.clone(),
            }),
            None => out.findings.push(Finding::new(
                rule,
                &sf.rel_path,
                hit.line,
                function,
                hit.message,
            )),
        }
    }
}

/// Runs every in-scope rule over one analyzed file against a hot set.
fn check_parsed(sf: &SourceFile, scope: &RuleScope, hot: &HotSet) -> FileOutcome {
    let mut out = FileOutcome::default();

    let apply = |findings: Vec<Finding>, out: &mut FileOutcome| {
        for f in findings {
            if sf.allow_for(&f.rule, f.line).is_none() {
                out.findings.push(f);
            }
        }
    };

    if scope.wall_clock {
        apply(rules::wall_clock::check(sf), &mut out);
    }
    if scope.unordered_iter {
        apply(rules::unordered_iter::check(sf), &mut out);
    }
    if scope.probe_gating {
        apply(rules::probe_gating::check(sf), &mut out);
    }
    if scope.hot_alloc {
        apply_ratchet(
            rules::hot_alloc::RULE,
            rules::hot_alloc::hits(sf, hot),
            sf,
            &mut out,
        );
    }
    if scope.panic_path {
        apply_ratchet(
            rules::panic_path::RULE,
            rules::panic_path::hits(sf, hot),
            sf,
            &mut out,
        );
    }
    if scope.float_order {
        apply_ratchet(
            rules::float_order::RULE,
            rules::float_order::hits(sf),
            sf,
            &mut out,
        );
    }
    if scope.time_cast {
        apply_ratchet(
            rules::time_cast::RULE,
            rules::time_cast::hits(sf),
            sf,
            &mut out,
        );
    }
    if scope.sync_audit {
        apply_ratchet(
            rules::sync_audit::RULE,
            rules::sync_audit::hits(sf),
            sf,
            &mut out,
        );
    }

    // A directive nothing consumed is itself a defect: stale allows hide
    // future violations on their line.
    for d in &sf.allows {
        if !d.used.get() {
            out.findings.push(Finding::new(
                "unused-allow",
                &sf.rel_path,
                d.line,
                None,
                format!(
                    "allow({}) matches no finding on this or the next line; delete it",
                    d.rule
                ),
            ));
        }
    }

    out
}

/// Checks one in-memory source file (the unit fixtures funnel through
/// here). `rel_path` decides rule applicability; the hot set is derived
/// from this file alone, so intra-file reachability from the seed entry
/// points is what counts.
pub fn check_source(rel_path: &str, content: &str) -> FileOutcome {
    let Some(scope) = scope_for(rel_path) else {
        return FileOutcome::default();
    };
    let sf = SourceFile::parse(rel_path, content);
    let hot = CallGraph::build(std::slice::from_ref(&sf)).hot_set();
    check_parsed(&sf, &scope, &hot)
}

/// Walks the scanned crates, builds the whole-workspace call graph,
/// derives the hot set, and runs every rule; `bless` rewrites the hot
/// set and the inventories instead of diffing against them.
pub fn check_repo(root: &Path, bless: bool) -> std::io::Result<Report> {
    let mut report = Report::default();

    // Pass 1: parse everything in scope.
    let mut paths = Vec::new();
    for crate_dir in [
        "crates/desim/src",
        "crates/hpcsim/src",
        "crates/swf/src",
        "crates/rlbf/src",
    ] {
        walk_rs(&root.join(crate_dir), &mut paths);
    }
    paths.sort();

    let mut files: Vec<(SourceFile, RuleScope)> = Vec::new();
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(scope) = scope_for(&rel) else {
            continue;
        };
        let content = std::fs::read_to_string(&path)?;
        files.push((SourceFile::parse(&rel, &content), scope));
    }

    // Pass 2: the call graph spans the kernel crates (all files at once,
    // so a kernel fn called only from another file is still hot). The
    // swf/rlbf edge crates are deliberately outside it: the rules the
    // hot set drives are kernel-scoped, and name fan-out through edge
    // crates (`.step()`, `.len()`) would only pollute the ratchet.
    let sfs: Vec<&SourceFile> = files
        .iter()
        .map(|(sf, _)| sf)
        .filter(|sf| {
            sf.rel_path.starts_with("crates/desim/src/")
                || sf.rel_path.starts_with("crates/hpcsim/src/")
        })
        .collect();
    let graph = CallGraph::build_refs(&sfs);
    let hot = graph.hot_set();
    report.hot_functions = hot.len();

    // Pass 3: rules per file.
    let mut allowed: Vec<AllowedHit> = Vec::new();
    for (sf, scope) in &files {
        let mut outcome = check_parsed(sf, scope, &hot);
        report.findings.append(&mut outcome.findings);
        allowed.append(&mut outcome.allowed);
        report.files_checked += 1;
    }

    report.inventoried = allowed.len();
    if bless {
        graph::bless(root, &hot)?;
        for spec in inventory::SPECS {
            inventory::bless(root, spec, &allowed)?;
        }
    } else {
        report.findings.append(&mut graph::check(root, &hot));
        for spec in inventory::SPECS {
            report
                .findings
                .append(&mut inventory::check(root, spec, &allowed));
        }
    }

    report
        .findings
        .append(&mut rules::pin_coverage::check(root));

    report.findings.sort();
    Ok(report)
}

fn walk_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            walk_rs(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}
