//! Property tests for the dynamic-machine platform layer: under random
//! interleavings of node failures, repairs, maintenance drains and
//! partition resizes, per-partition accounting must hold against the
//! *current* (not nameplate) capacity at every decision point, no trace
//! job may be silently lost or duplicated, and an empty event stream must
//! leave the engine bitwise identical to one that never installed the
//! layer.

use hpcsim::cluster::{
    ClusterSpec, EarliestStart, LeastLoaded, PartitionSpec, ReroutePolicy, Router, StaticAffinity,
};
use hpcsim::platform::{FailurePolicy, PlatformEvent, PlatformEventSpec};
use hpcsim::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;
use swf::{Job, Trace};

/// Asserts the capacity-aware per-partition invariants at one instant.
fn check_invariants(sim: &Simulation) {
    for (i, part) in sim.partitions().iter().enumerate() {
        let running: u32 = part.running().iter().map(|r| r.job.procs).sum();
        assert_eq!(
            part.free() + running,
            part.capacity(),
            "partition {i}: free {} + running {} != capacity {}",
            part.free(),
            running,
            part.capacity()
        );
        for j in part.queue() {
            assert!(
                j.procs <= part.capacity(),
                "partition {i}: queued job {} ({} procs) exceeds capacity {}",
                j.id,
                j.procs,
                part.capacity()
            );
        }
    }
}

/// A random contended workload on a 48-processor machine.
fn arb_trace() -> impl Strategy<Value = Trace> {
    let job = (
        0.0f64..20_000.0, // submit
        1u32..=24,        // procs (fits the smallest generated partition split)
        1.0f64..10_000.0, // runtime
        1.0f64..2.5,      // request multiplier
    );
    proptest::collection::vec(job, 1..60).prop_map(|specs| {
        let jobs: Vec<Job> = specs
            .into_iter()
            .enumerate()
            .map(|(i, (submit, procs, runtime, over))| {
                Job::new(i, submit, procs, runtime * over, runtime)
            })
            .collect();
        Trace::new("prop", 48, jobs)
    })
}

/// A random 2–4 partition spec over 48 processors; the first partition is
/// always wide enough (24) for every generated job.
fn arb_spec() -> impl Strategy<Value = ClusterSpec> {
    let extra = (
        4u32..=24,
        prop_oneof![Just(0.8f64), Just(1.0), Just(1.35), Just(1.6)],
    );
    proptest::collection::vec(extra, 1..4).prop_map(|extras| {
        let mut parts = vec![PartitionSpec::new("base", 24, 1.0)];
        for (i, (procs, speed)) in extras.into_iter().enumerate() {
            parts.push(PartitionSpec::new(format!("p{i}"), procs, speed));
        }
        ClusterSpec::new(parts)
    })
}

fn arb_router() -> impl Strategy<Value = Arc<dyn Router>> {
    prop_oneof![
        Just(Arc::new(StaticAffinity) as Arc<dyn Router>),
        Just(Arc::new(LeastLoaded) as Arc<dyn Router>),
        Just(Arc::new(EarliestStart::default()) as Arc<dyn Router>),
    ]
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::Fcfs),
        Just(Policy::Sjf),
        Just(Policy::Wfp3),
        Just(Policy::F1)
    ]
}

fn arb_reroute() -> impl Strategy<Value = ReroutePolicy> {
    prop_oneof![
        Just(ReroutePolicy::AtSubmission),
        (0u32..=4, prop_oneof![Just(0.0f64), Just(60.0)]).prop_map(
            |(max_moves_per_job, min_gain_secs)| ReroutePolicy::AtDecisionPoints {
                max_moves_per_job,
                min_gain_secs,
            }
        ),
    ]
}

fn arb_failure_policy() -> impl Strategy<Value = FailurePolicy> {
    prop_oneof![
        Just(FailurePolicy::KillResubmit),
        (0.0f64..600.0)
            .prop_map(|overhead_secs| FailurePolicy::CheckpointRestart { overhead_secs }),
    ]
}

/// One randomly-shaped platform disturbance with a guaranteed recovery:
/// failures are paired with repairs, drains with drain-ends, and resizes
/// are paired shrink-then-restore — so the machine always returns to (at
/// least) its nameplate shape and every queued job can eventually start.
/// `part_raw` is reduced modulo the spec's partition count at build time.
#[derive(Debug, Clone, Copy)]
enum Disturbance {
    Outage {
        at: f64,
        part_raw: usize,
        procs: u32,
        repair_after: f64,
    },
    Drain {
        at: f64,
        part_raw: usize,
        len: f64,
    },
    ShrinkThenRestore {
        at: f64,
        part_raw: usize,
        to: u32,
        restore_after: f64,
    },
}

fn arb_disturbance() -> impl Strategy<Value = Disturbance> {
    prop_oneof![
        ((0.0f64..25_000.0, 0usize..4), (1u32..20, 10.0f64..8_000.0)).prop_map(
            |((at, part_raw), (procs, repair_after))| Disturbance::Outage {
                at,
                part_raw,
                procs,
                repair_after,
            }
        ),
        (0.0f64..25_000.0, 0usize..4, 10.0f64..8_000.0)
            .prop_map(|(at, part_raw, len)| { Disturbance::Drain { at, part_raw, len } }),
        ((0.0f64..25_000.0, 0usize..4), (0u32..24, 10.0f64..8_000.0)).prop_map(
            |((at, part_raw), (to, restore_after))| Disturbance::ShrinkThenRestore {
                at,
                part_raw,
                to,
                restore_after,
            }
        ),
    ]
}

/// Builds a concrete event spec against `spec`'s partition count.
fn build_events(
    disturbances: &[Disturbance],
    spec: &ClusterSpec,
    failure_policy: FailurePolicy,
) -> PlatformEventSpec {
    let n = spec.partitions().len();
    let mut trace = Vec::new();
    for d in disturbances {
        match *d {
            Disturbance::Outage {
                at,
                part_raw,
                procs,
                repair_after,
            } => {
                let part = part_raw % n;
                trace.push(PlatformEvent::NodeFail { at, part, procs });
                trace.push(PlatformEvent::NodeRepair {
                    at: at + repair_after,
                    part,
                    procs,
                });
            }
            Disturbance::Drain { at, part_raw, len } => {
                let part = part_raw % n;
                trace.push(PlatformEvent::DrainStart { at, part });
                trace.push(PlatformEvent::DrainEnd { at: at + len, part });
            }
            Disturbance::ShrinkThenRestore {
                at,
                part_raw,
                to,
                restore_after,
            } => {
                let part = part_raw % n;
                let nameplate = spec.partitions()[part].procs;
                trace.push(PlatformEvent::Resize {
                    at,
                    part,
                    procs: to,
                });
                trace.push(PlatformEvent::Resize {
                    at: at + restore_after,
                    part,
                    procs: nameplate,
                });
            }
        }
    }
    PlatformEventSpec {
        trace,
        processes: Vec::new(),
        failure_policy,
    }
}

fn drive(sim: &mut Simulation) {
    let mut guard = 0usize;
    loop {
        let ev = sim.advance();
        check_invariants(sim);
        if ev == SimEvent::Done {
            break;
        }
        hpcsim::easy::easy_pass(sim, RuntimeEstimator::RequestTime);
        check_invariants(sim);
        guard += 1;
        assert!(guard < 100_000, "no progress");
    }
}

proptest! {
    /// Random recoverable disturbances: accounting holds against current
    /// capacity at every decision point, and every trace job ends in
    /// exactly one of completed / dropped — kills and resubmits included.
    #[test]
    fn platform_events_conserve_jobs_and_accounting(
        trace in arb_trace(),
        spec in arb_spec(),
        router in arb_router(),
        policy in arb_policy(),
        reroute in arb_reroute(),
        disturbances in proptest::collection::vec(arb_disturbance(), 0..6),
        failure_policy in arb_failure_policy(),
    ) {
        let events = build_events(&disturbances, &spec, failure_policy);
        let mut sim = Simulation::with_cluster_rerouted(
            &trace,
            policy,
            spec,
            router,
            reroute,
        );
        sim.install_platform_events(&events).unwrap();
        drive(&mut sim);
        // Every disturbance recovers, so nothing may linger in a queue:
        // each trace job completed exactly once or was counted dropped.
        let queued: usize = sim.partitions().iter().map(|p| p.queue().len()).sum();
        prop_assert_eq!(queued, 0);
        prop_assert_eq!(sim.completed().len() + sim.dropped_jobs(), trace.len());
        let mut ids: Vec<usize> = sim.completed().iter().map(|c| c.job.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), sim.completed().len());
        // Resubmission bookkeeping is consistent: every kill either came
        // back through a queue or joined the dropped count.
        prop_assert!(sim.resubmits() + sim.dropped_jobs() >= sim.kills());
        if sim.kills() > 0 {
            prop_assert!(sim.wasted_node_seconds() >= 0.0);
        }
        // The machine recovered to (at least) its nameplate shape.
        for part in sim.partitions() {
            prop_assert!(part.capacity() >= part.procs());
            prop_assert!(!part.draining());
            prop_assert_eq!(part.free(), part.capacity());
        }
    }

    /// Installing an empty event spec is bitwise inert: the realized
    /// schedule, drop count and robustness counters are identical to a
    /// simulation that never touched the platform layer.
    #[test]
    fn empty_event_stream_is_bitwise_inert(
        trace in arb_trace(),
        spec in arb_spec(),
        router in arb_router(),
        policy in arb_policy(),
        reroute in arb_reroute(),
    ) {
        let mut plain = Simulation::with_cluster_rerouted(
            &trace,
            policy,
            spec.clone(),
            Arc::clone(&router),
            reroute,
        );
        let mut installed = Simulation::with_cluster_rerouted(
            &trace,
            policy,
            spec,
            router,
            reroute,
        );
        installed.install_platform_events(&PlatformEventSpec::default()).unwrap();
        drive(&mut plain);
        drive(&mut installed);
        prop_assert_eq!(plain.completed(), installed.completed());
        prop_assert_eq!(plain.dropped_jobs(), installed.dropped_jobs());
        prop_assert_eq!(plain.migrations(), installed.migrations());
        prop_assert_eq!(installed.kills(), 0);
        prop_assert_eq!(installed.resubmits(), 0);
        prop_assert_eq!(installed.wasted_node_seconds(), 0.0);
    }
}
