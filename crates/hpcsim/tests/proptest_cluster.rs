//! Property tests for the multi-partition cluster engine: per-partition
//! free-processor accounting must never go negative or exceed the
//! partition size, queues must only hold jobs that fit their partition,
//! and every routed job must complete exactly once — across random traces,
//! random heterogeneous 2–4 partition specs, every router, and both
//! heuristic and adversarial interactive driving.

use hpcsim::cluster::{
    ClusterSpec, EarliestStart, LeastLoaded, PartitionSpec, ReroutePolicy, Router, StaticAffinity,
};
use hpcsim::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;
use swf::{Job, Trace};

/// Asserts every per-partition invariant at one paused instant.
fn check_invariants(sim: &Simulation) {
    for (i, part) in sim.partitions().iter().enumerate() {
        // `free` is unsigned, so "never negative" is enforced by
        // construction; the subtraction paths would panic in debug builds.
        // What can drift is the conservation law:
        let running: u32 = part.running().iter().map(|r| r.job.procs).sum();
        assert!(
            part.free() <= part.procs(),
            "partition {i}: free {} exceeds size {}",
            part.free(),
            part.procs()
        );
        assert_eq!(
            part.free() + running,
            part.procs(),
            "partition {i}: free {} + running {} != size {}",
            part.free(),
            running,
            part.procs()
        );
        for j in part.queue() {
            assert!(
                j.procs <= part.procs(),
                "partition {i}: queued job {} is wider than the partition",
                j.id
            );
        }
        for r in part.running() {
            assert!(r.job.procs <= part.procs());
        }
    }
}

/// A random contended workload on a 48-processor machine.
fn arb_trace() -> impl Strategy<Value = Trace> {
    let job = (
        0.0f64..20_000.0, // submit
        1u32..=24,        // procs (fits the smallest generated partition split)
        1.0f64..10_000.0, // runtime
        1.0f64..2.5,      // request multiplier
    );
    proptest::collection::vec(job, 1..80).prop_map(|specs| {
        let jobs: Vec<Job> = specs
            .into_iter()
            .enumerate()
            .map(|(i, (submit, procs, runtime, over))| {
                Job::new(i, submit, procs, runtime * over, runtime)
            })
            .collect();
        Trace::new("prop", 48, jobs)
    })
}

/// A random 2–4 partition spec over 48 processors; the first partition is
/// always wide enough (24) for every generated job, the rest vary in size
/// and speed.
fn arb_spec() -> impl Strategy<Value = ClusterSpec> {
    let extra = (
        4u32..=24,
        prop_oneof![Just(0.8f64), Just(1.0), Just(1.35), Just(1.6)],
    );
    proptest::collection::vec(extra, 1..4).prop_map(|extras| {
        let mut parts = vec![PartitionSpec::new("base", 24, 1.0)];
        for (i, (procs, speed)) in extras.into_iter().enumerate() {
            parts.push(PartitionSpec::new(format!("p{i}"), procs, speed));
        }
        ClusterSpec::new(parts)
    })
}

fn arb_router() -> impl Strategy<Value = Arc<dyn Router>> {
    prop_oneof![
        Just(Arc::new(StaticAffinity) as Arc<dyn Router>),
        Just(Arc::new(LeastLoaded) as Arc<dyn Router>),
        Just(Arc::new(EarliestStart::default()) as Arc<dyn Router>),
    ]
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::Fcfs),
        Just(Policy::Sjf),
        Just(Policy::Wfp3),
        Just(Policy::F1)
    ]
}

/// Decision-point migration configurations, including degenerate budgets
/// and prohibitive gain thresholds.
fn arb_reroute() -> impl Strategy<Value = ReroutePolicy> {
    (
        0u32..=4,
        prop_oneof![Just(0.0f64), Just(60.0), Just(3600.0)],
    )
        .prop_map(
            |(max_moves_per_job, min_gain_secs)| ReroutePolicy::AtDecisionPoints {
                max_moves_per_job,
                min_gain_secs,
            },
        )
}

/// Like [`arb_trace`], but with jobs up to twice the widest partition so
/// runs exercise the unroutable-drop path too.
fn arb_trace_with_unroutable() -> impl Strategy<Value = Trace> {
    let job = (
        0.0f64..20_000.0, // submit
        1u32..=48,        // procs — up to 2× the widest partition (24)
        1.0f64..10_000.0, // runtime
        1.0f64..2.5,      // request multiplier
    );
    proptest::collection::vec(job, 1..80).prop_map(|specs| {
        let jobs: Vec<Job> = specs
            .into_iter()
            .enumerate()
            .map(|(i, (submit, procs, runtime, over))| {
                Job::new(i, submit, procs, runtime * over, runtime)
            })
            .collect();
        Trace::new("prop", 48, jobs)
    })
}

proptest! {
    /// EASY-driven partitioned runs: invariants hold at every decision
    /// point and every job completes.
    #[test]
    fn partition_accounting_holds_under_easy(
        trace in arb_trace(),
        spec in arb_spec(),
        router in arb_router(),
        policy in arb_policy(),
    ) {
        let mut sim = Simulation::with_cluster(&trace, policy, spec, router);
        let mut guard = 0usize;
        loop {
            let ev = sim.advance();
            check_invariants(&sim);
            if ev == SimEvent::Done {
                break;
            }
            hpcsim::easy::easy_pass(&mut sim, RuntimeEstimator::RequestTime);
            check_invariants(&sim);
            guard += 1;
            prop_assert!(guard < 50_000, "no progress");
        }
        prop_assert_eq!(sim.completed().len(), trace.len());
    }

    /// Adversarial interactive driving: greedily backfill the *last*
    /// candidate at every opportunity (the scripted driver most likely to
    /// disturb accounting), then let the run finish.
    #[test]
    fn partition_accounting_holds_under_greedy_driving(
        trace in arb_trace(),
        spec in arb_spec(),
        router in arb_router(),
    ) {
        let mut sim = Simulation::with_cluster(&trace, Policy::Fcfs, spec, router);
        let mut guard = 0usize;
        while sim.advance() == SimEvent::BackfillOpportunity {
            check_invariants(&sim);
            while let Some(&idx) = sim.backfill_candidates().last() {
                sim.backfill(idx).unwrap();
                check_invariants(&sim);
            }
            guard += 1;
            prop_assert!(guard < 50_000, "no progress");
        }
        check_invariants(&sim);
        prop_assert_eq!(sim.completed().len(), trace.len());
        for part in sim.partitions() {
            prop_assert_eq!(part.free(), part.procs());
        }
    }

    /// Decision-point migration conserves jobs (`completed + dropped =
    /// trace`) and never violates per-partition accounting, across random
    /// traces (including unroutable jobs), cluster shapes, routers,
    /// policies and reroute configurations.
    #[test]
    fn migration_conserves_jobs_and_accounting(
        trace in arb_trace_with_unroutable(),
        spec in arb_spec(),
        router in arb_router(),
        policy in arb_policy(),
        reroute in arb_reroute(),
    ) {
        let budget = match reroute {
            ReroutePolicy::AtDecisionPoints { max_moves_per_job, .. } => max_moves_per_job,
            ReroutePolicy::AtSubmission => 0,
        };
        let mut sim =
            Simulation::with_cluster_rerouted(&trace, policy, spec, router, reroute);
        let mut guard = 0usize;
        loop {
            let ev = sim.advance();
            check_invariants(&sim);
            if ev == SimEvent::Done {
                break;
            }
            hpcsim::easy::easy_pass(&mut sim, RuntimeEstimator::RequestTime);
            check_invariants(&sim);
            guard += 1;
            prop_assert!(guard < 50_000, "no progress");
        }
        // Conservation: migration must not lose or duplicate jobs.
        prop_assert_eq!(sim.completed().len() + sim.dropped_jobs(), trace.len());
        prop_assert!(sim.migrations() <= trace.len() * budget as usize);
        // Every job completed exactly once.
        let mut ids: Vec<usize> = sim.completed().iter().map(|c| c.job.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), sim.completed().len());
        for part in sim.partitions() {
            prop_assert_eq!(part.free(), part.procs());
        }
    }
}
