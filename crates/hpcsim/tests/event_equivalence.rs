//! Differential property tests: the `desim`-kernel simulator must produce
//! the **identical realized schedule** as the preserved seed stepping
//! engine for every base policy × backfilling strategy, over randomized
//! Lublin-model workloads and adversarial hand-shaped traces.
//!
//! "Identical" means the same `(job id → start time)` mapping — bitwise
//! equal starts, no tolerance — and therefore identical metrics. Completion
//! *order* within a simultaneous batch is not part of the contract (the
//! seed engine's `swap_remove` scan order is an implementation accident).

use hpcsim::prelude::*;
use hpcsim::runner::run_scheduler_reference;
use proptest::prelude::*;
use swf::{Job, Trace};

/// All backfill strategies exercised by the paper's experiments.
fn all_backfills() -> Vec<Backfill> {
    vec![
        Backfill::None,
        Backfill::Easy(RuntimeEstimator::RequestTime),
        Backfill::Easy(RuntimeEstimator::ActualRuntime),
        Backfill::Easy(RuntimeEstimator::NoisyActual {
            max_over_frac: 0.4,
            seed: 11,
        }),
        Backfill::EasyOrdered(RuntimeEstimator::RequestTime, Policy::Sjf),
        Backfill::Conservative(RuntimeEstimator::RequestTime),
        Backfill::Conservative(RuntimeEstimator::ActualRuntime),
    ]
}

/// The schedule as a canonical `(id, start)` list, sorted by id.
fn schedule_of(completed: &[hpcsim::state::CompletedJob]) -> Vec<(usize, f64)> {
    let mut v: Vec<(usize, f64)> = completed.iter().map(|c| (c.job.id, c.start)).collect();
    v.sort_by_key(|&(id, _)| id);
    v
}

fn assert_equivalent(trace: &Trace, policy: Policy, backfill: Backfill) {
    let kernel = run_scheduler(trace, policy, backfill);
    let seed = run_scheduler_reference(trace, policy, backfill);
    assert_eq!(
        schedule_of(&kernel.completed),
        schedule_of(&seed.completed),
        "schedule diverged: {policy} {backfill:?} on {} ({} jobs)",
        trace.name(),
        trace.len()
    );
    assert_eq!(
        kernel.metrics.mean_bounded_slowdown, seed.metrics.mean_bounded_slowdown,
        "metrics diverged: {policy} {backfill:?}"
    );
    assert_eq!(kernel.metrics.utilization, seed.metrics.utilization);
    assert_eq!(kernel.metrics.makespan, seed.metrics.makespan);
    // The benchmark baseline (seed engine + naive profile + seed pass
    // logic) must realize the same schedule too, or the speedup numbers
    // would compare different algorithms.
    let naive = hpcsim::reference::run_seed_scheduler(trace, policy, backfill);
    assert_eq!(
        schedule_of(&kernel.completed),
        schedule_of(&naive.completed),
        "naive baseline diverged: {policy} {backfill:?}"
    );
    // The instrumented kernel run (live Recorder probe) must be bitwise
    // the NoopProbe run — telemetry observes, never steers — and its
    // counters must be identical when the same run repeats (they feed a
    // byte-pinned artifact, so any nondeterminism is a bug).
    let (recorded, rec) = run_scheduler_recorded(trace, policy, backfill, Recorder::default());
    assert_eq!(
        schedule_of(&kernel.completed),
        schedule_of(&recorded.completed),
        "recorder probe perturbed the schedule: {policy} {backfill:?}"
    );
    assert_eq!(kernel.metrics, recorded.metrics);
    let (_, rec2) = run_scheduler_recorded(trace, policy, backfill, Recorder::default());
    assert_eq!(
        rec.telemetry(),
        rec2.telemetry(),
        "telemetry counters are nondeterministic: {policy} {backfill:?}"
    );
}

/// A random but well-formed workload on a small cluster, shaped to create
/// plenty of contention (and therefore decision points).
fn arb_trace() -> impl Strategy<Value = Trace> {
    let job = (
        0.0f64..30_000.0, // submit
        1u32..=32,        // procs
        1.0f64..15_000.0, // runtime
        1.0f64..3.0,      // request multiplier
    );
    proptest::collection::vec(job, 1..100).prop_map(|specs| {
        let jobs: Vec<Job> = specs
            .into_iter()
            .enumerate()
            .map(|(i, (submit, procs, runtime, over))| {
                Job::new(i, submit, procs, runtime * over, runtime)
            })
            .collect();
        Trace::new("prop", 32, jobs)
    })
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::Fcfs),
        Just(Policy::Sjf),
        Just(Policy::Wfp3),
        Just(Policy::F1)
    ]
}

fn arb_backfill() -> impl Strategy<Value = Backfill> {
    let opts: Vec<_> = all_backfills()
        .into_iter()
        .map(|b| Just(b).boxed())
        .collect();
    proptest::strategy::Union::new(opts)
}

proptest! {
    /// Random contended traces: every policy × backfill pair agrees.
    #[test]
    fn kernel_matches_seed_on_random_traces(
        trace in arb_trace(),
        policy in arb_policy(),
        backfill in arb_backfill(),
    ) {
        let kernel = run_scheduler(&trace, policy, backfill);
        let seed = run_scheduler_reference(&trace, policy, backfill);
        prop_assert_eq!(schedule_of(&kernel.completed), schedule_of(&seed.completed));
        prop_assert_eq!(
            kernel.metrics.mean_bounded_slowdown,
            seed.metrics.mean_bounded_slowdown
        );
    }
}

#[test]
fn kernel_matches_seed_on_lublin_presets() {
    // The calibrated Table 2 workloads (the traces every experiment runs
    // on), full policy × backfill sweep at a size with deep queues.
    for preset in [swf::TracePreset::Lublin1, swf::TracePreset::Lublin2] {
        let trace = preset.generate(600, 2024);
        for policy in Policy::ALL {
            for backfill in all_backfills() {
                assert_equivalent(&trace, policy, backfill);
            }
        }
    }
}

#[test]
fn kernel_matches_seed_on_overestimated_standins() {
    // SDSC-SP2/HPC2N stand-ins carry real overestimation, which makes the
    // EASY vs EASY-AR paths diverge — both engines must diverge the same
    // way.
    for preset in [swf::TracePreset::SdscSp2, swf::TracePreset::Hpc2n] {
        let trace = preset.generate(500, 7);
        for backfill in all_backfills() {
            assert_equivalent(&trace, Policy::Fcfs, backfill);
        }
    }
}

#[test]
fn kernel_matches_seed_on_simultaneous_event_pileups() {
    // Adversarial shape: many identical submit instants and identical
    // runtimes so arrivals and completions coincide exactly — the case
    // where heap ordering vs linear scans could plausibly diverge.
    let jobs: Vec<Job> = (0..60)
        .map(|i| {
            Job::new(
                i,
                ((i / 6) as f64) * 100.0, // six jobs per submit instant
                1 + (i as u32 % 4),
                100.0,
                100.0,
            )
        })
        .collect();
    let trace = Trace::new("pileup", 8, jobs);
    for policy in Policy::ALL {
        for backfill in all_backfills() {
            assert_equivalent(&trace, policy, backfill);
        }
    }
}

#[test]
fn one_partition_cluster_matches_homogeneous_engine_bitwise() {
    // The degenerate ClusterSpec must reproduce the flat engine's schedule
    // bitwise for every Policy × Backfill, under every router (a router on
    // a one-partition machine has exactly one legal answer — routing
    // strategy must be unobservable). The flat engine is itself pinned to
    // the seed engine above, so transitively: cluster == seed.
    use hpcsim::{ClusterSpec, EarliestStart, LeastLoaded, Router, StaticAffinity};
    use std::sync::Arc;
    let routers: Vec<Arc<dyn Router>> = vec![
        Arc::new(StaticAffinity),
        Arc::new(LeastLoaded),
        Arc::new(EarliestStart::default()),
    ];
    for preset in [swf::TracePreset::Lublin2, swf::TracePreset::SdscSp2] {
        let trace = preset.generate(500, 77);
        let spec = ClusterSpec::homogeneous(trace.cluster_procs());
        for policy in Policy::ALL {
            for backfill in all_backfills() {
                let flat = run_scheduler(&trace, policy, backfill);
                for router in &routers {
                    let clustered = hpcsim::run_scheduler_on(
                        &trace,
                        policy,
                        backfill,
                        &spec,
                        Arc::clone(router),
                    );
                    assert_eq!(
                        schedule_of(&clustered.completed),
                        schedule_of(&flat.completed),
                        "one-partition cluster diverged: {policy} {backfill:?} {router:?}"
                    );
                    assert_eq!(
                        clustered.metrics.mean_bounded_slowdown,
                        flat.metrics.mean_bounded_slowdown
                    );
                }
            }
        }
    }
}

#[test]
fn multi_partition_runs_complete_under_every_router() {
    // Not an equivalence check (partitioned schedules legitimately differ)
    // but the end-to-end guarantee: every routed job completes exactly
    // once, under every policy × backfill × router, on a heterogeneous
    // 3-partition split.
    use hpcsim::{ClusterSpec, EarliestStart, LeastLoaded, Router, StaticAffinity};
    use std::sync::Arc;
    let w = swf::partitioned_preset(swf::TracePreset::Lublin1, 3, 400, 13);
    let spec = ClusterSpec::from_layout(&w.layout);
    let routers: Vec<Arc<dyn Router>> = vec![
        Arc::new(StaticAffinity),
        Arc::new(LeastLoaded),
        Arc::new(EarliestStart::default()),
    ];
    for policy in Policy::ALL {
        for backfill in all_backfills() {
            for router in &routers {
                let r =
                    hpcsim::run_scheduler_on(&w.trace, policy, backfill, &spec, Arc::clone(router));
                assert_eq!(
                    r.completed.len(),
                    w.trace.len(),
                    "jobs lost: {policy} {backfill:?} {router:?}"
                );
                let mut ids: Vec<usize> = r.completed.iter().map(|c| c.job.id).collect();
                ids.sort_unstable();
                ids.dedup();
                assert_eq!(ids.len(), w.trace.len(), "duplicate completions");
            }
        }
    }
}

#[test]
fn kernel_matches_seed_under_interactive_driving() {
    // Drive both engines through the raw decision-point API with the same
    // scripted driver (always backfill the last candidate), checking the
    // paused states agree at every opportunity.
    let trace = swf::TracePreset::Lublin2.generate(300, 55);
    let mut kernel = Simulation::new(&trace, Policy::Fcfs);
    let mut seed = hpcsim::reference::ReferenceSimulation::new(&trace, Policy::Fcfs);
    loop {
        let (a, b) = (kernel.advance(), seed.advance());
        assert_eq!(a, b, "event stream diverged");
        if a == SimEvent::Done {
            break;
        }
        assert_eq!(kernel.now(), seed.now(), "paused at different times");
        assert_eq!(kernel.free_procs(), seed.free_procs());
        assert_eq!(kernel.queue(), seed.queue(), "queue order diverged");
        let (ca, cb) = (kernel.backfill_candidates(), seed.backfill_candidates());
        assert_eq!(ca, cb);
        if let Some(&idx) = ca.last() {
            let ra = kernel.backfill(idx).unwrap();
            let rb = seed.backfill(idx).unwrap();
            assert_eq!(ra, rb, "backfill outcome diverged");
        }
    }
    assert_eq!(
        schedule_of(kernel.completed()),
        schedule_of(seed.completed())
    );
}
