//! Differential property suite for the incremental reservation planner
//! (`hpcsim::plan`): a conservative schedule driven by the persistent
//! per-partition planner must be **bitwise identical** to one driven by a
//! from-scratch replan at every decision point, across random
//! arrival/completion/migration interleavings — heterogeneous clusters,
//! under- and over-estimated runtimes (early/late completions), every
//! policy (including WFP3's re-sort path) and decision-point re-routing.
//!
//! This is the end-to-end counterpart of the planner's per-pass debug
//! oracle: the oracle checks each repaired plan against a fresh replan in
//! place; this suite checks that the *realized schedules* coincide, which
//! also covers the backfill-ordering glue in `conservative_pass` and the
//! shared router-plan scratch (`RouterPlanCache`) exercised by the
//! re-route pass.

use hpcsim::cluster::{ClusterSpec, EarliestStart, LeastLoaded, PartitionSpec, StaticAffinity};
use hpcsim::plan::from_scratch_conservative_starts;
use hpcsim::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;
use swf::{Job, Trace};

#[derive(Debug, Clone, Copy)]
enum RouterKind {
    Affinity,
    LeastLoaded,
    EarliestStart,
}

fn make_router(kind: RouterKind) -> Arc<dyn Router> {
    match kind {
        RouterKind::Affinity => Arc::new(StaticAffinity),
        RouterKind::LeastLoaded => Arc::new(LeastLoaded),
        RouterKind::EarliestStart => Arc::new(EarliestStart::default()),
    }
}

#[derive(Debug, Clone)]
struct Case {
    trace: Trace,
    spec: ClusterSpec,
    policy: Policy,
    router: RouterKind,
    reroute: ReroutePolicy,
    estimator: RuntimeEstimator,
}

fn arb_case() -> impl Strategy<Value = Case> {
    let jobs = proptest::collection::vec(
        (
            0.0f64..2_000.0, // submit
            1u32..=16,       // procs (≤ smallest partition: nothing drops)
            1.0f64..400.0,   // runtime
            0.5f64..3.0,     // request = runtime * factor (under/over-estimates)
        ),
        1..120,
    );
    let parts = proptest::collection::vec(
        (
            16u32..=64,
            prop_oneof![
                Just(1.0f64),
                Just(1.0f64),
                Just(1.0f64),
                Just(2.0),
                Just(1.35)
            ],
        ),
        1..=3,
    );
    let policy = prop_oneof![
        Just(Policy::Fcfs),
        Just(Policy::Sjf),
        Just(Policy::Wfp3),
        Just(Policy::F1)
    ];
    let router = prop_oneof![
        Just(RouterKind::Affinity),
        Just(RouterKind::LeastLoaded),
        Just(RouterKind::EarliestStart)
    ];
    let reroute = prop_oneof![
        Just(ReroutePolicy::AtSubmission),
        (1u32..=3, 0.0f64..120.0).prop_map(|(m, g)| ReroutePolicy::AtDecisionPoints {
            max_moves_per_job: m,
            min_gain_secs: g,
        }),
    ];
    let estimator = prop_oneof![
        Just(RuntimeEstimator::RequestTime).boxed(),
        Just(RuntimeEstimator::RequestTime).boxed(),
        Just(RuntimeEstimator::RequestTime).boxed(),
        Just(RuntimeEstimator::ActualRuntime).boxed(),
        (0.0f64..1.0, 0u64..100)
            .prop_map(|(f, s)| RuntimeEstimator::NoisyActual {
                max_over_frac: f,
                seed: s,
            })
            .boxed(),
    ];
    (jobs, parts, policy, router, reroute, estimator).prop_map(
        |(mut jobs, parts, policy, router, reroute, estimator)| {
            jobs.sort_by(|a, b| a.0.total_cmp(&b.0));
            let total: u32 = parts.iter().map(|&(p, _)| p).sum();
            let jobs: Vec<Job> = jobs
                .into_iter()
                .enumerate()
                .map(|(id, (submit, procs, runtime, factor))| {
                    Job::new(id, submit, procs, runtime, runtime * factor)
                })
                .collect();
            let spec = ClusterSpec::new(
                parts
                    .iter()
                    .enumerate()
                    .map(|(i, &(procs, speed))| PartitionSpec::new(format!("p{i}"), procs, speed))
                    .collect(),
            );
            Case {
                trace: Trace::new("prop", total, jobs),
                spec,
                policy,
                router,
                reroute,
                estimator,
            }
        },
    )
}

fn schedule(sim: &Simulation) -> Vec<(usize, u64)> {
    let mut s: Vec<(usize, u64)> = sim
        .completed()
        .iter()
        .map(|c| (c.job.id, c.start.to_bits()))
        .collect();
    s.sort_unstable();
    s
}

/// Drives the simulation with the production conservative pass (the
/// kernel engine's incremental planner).
fn run_incremental(case: &Case) -> Simulation {
    let mut sim = Simulation::with_cluster_rerouted(
        &case.trace,
        case.policy,
        case.spec.clone(),
        make_router(case.router),
        case.reroute,
    );
    while sim.advance() == SimEvent::BackfillOpportunity {
        hpcsim::conservative::conservative_pass(&mut sim, case.estimator);
    }
    sim
}

/// Drives an identical simulation, but every pass re-derives the plan
/// from scratch (`from_scratch_conservative_starts`) — the seed-pinned
/// semantics, bypassing the persistent planner entirely.
fn run_scratch(case: &Case) -> Simulation {
    let mut sim = Simulation::with_cluster_rerouted(
        &case.trace,
        case.policy,
        case.spec.clone(),
        make_router(case.router),
        case.reroute,
    );
    while sim.advance() == SimEvent::BackfillOpportunity {
        let starts = from_scratch_conservative_starts(&sim, case.estimator);
        let mut started = 0;
        for pos in starts {
            if sim.backfill(pos - started).is_ok() {
                started += 1;
            }
        }
    }
    sim
}

proptest! {
    /// Incremental plan repair realizes the same schedule as a
    /// from-scratch replan at every decision point — bitwise, including
    /// migration counts, across random event interleavings.
    #[test]
    fn incremental_repair_matches_from_scratch_replan(case in arb_case()) {
        let inc = run_incremental(&case);
        let scr = run_scratch(&case);
        prop_assert!(
            inc.completed().len() + inc.dropped_jobs() == case.trace.len(),
            "incremental run lost jobs"
        );
        prop_assert_eq!(inc.migrations(), scr.migrations());
        prop_assert_eq!(inc.dropped_jobs(), scr.dropped_jobs());
        prop_assert_eq!(schedule(&inc), schedule(&scr));
    }

    /// The flat one-partition machine stays pinned to the seed reference
    /// engine under the incremental planner (conservative and EASY).
    #[test]
    fn flat_machine_stays_pinned_to_reference_engine(case in arb_case()) {
        for backfill in [
            Backfill::Conservative(case.estimator),
            Backfill::Easy(case.estimator),
        ] {
            let kernel = run_scheduler(&case.trace, case.policy, backfill);
            let reference = hpcsim::runner::run_scheduler_reference(
                &case.trace,
                case.policy,
                backfill,
            );
            let key = |r: &ScheduleResult| {
                let mut s: Vec<(usize, u64)> = r
                    .completed
                    .iter()
                    .map(|c| (c.job.id, c.start.to_bits()))
                    .collect();
                s.sort_unstable();
                s
            };
            prop_assert_eq!(key(&kernel), key(&reference));
        }
    }
}
