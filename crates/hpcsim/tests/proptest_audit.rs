//! Well-formedness property suite for the decision-forensics audit layer
//! (`hpcsim::observe::audit`), across random traces, policies, backfilling
//! strategies, cluster shapes, routers and re-route policies:
//!
//! * **schedule neutrality** — the audited run realizes the bitwise
//!   identical schedule to the unprobed run;
//! * **per-job record grammar** — every job's records read
//!   `Submitted → (skips | migrations)* → Started → Completed`, with
//!   dropped jobs carrying exactly one `Dropped` record and no breakdown;
//! * **reconciliation** — record counts match the `ScheduleResult`
//!   (starts = completions = completed jobs, drops = dropped jobs,
//!   migration records = migration count);
//! * **attribution** — each job's wait-cause components sum to its total
//!   wait, per job and in the aggregate table;
//! * **determinism** — the same inputs produce the identical log
//!   (`first_divergence` finds nothing).

use hpcsim::cluster::{ClusterSpec, PartitionSpec};
use hpcsim::prelude::*;
use hpcsim::{AuditLog, AuditProbe, AuditRecord};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use swf::{Trace, TracePreset};

fn arb_trace() -> impl Strategy<Value = Trace> {
    (
        prop_oneof![
            Just(TracePreset::SdscSp2),
            Just(TracePreset::Hpc2n),
            Just(TracePreset::Lublin1),
            Just(TracePreset::Lublin2),
        ],
        40usize..250,
        any::<u64>(),
    )
        .prop_map(|(preset, jobs, seed)| preset.generate(jobs, seed))
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::Fcfs),
        Just(Policy::Sjf),
        Just(Policy::Wfp3),
        Just(Policy::F1),
    ]
}

fn arb_backfill() -> impl Strategy<Value = Backfill> {
    prop_oneof![
        Just(Backfill::None),
        Just(Backfill::Easy(RuntimeEstimator::RequestTime)),
        Just(Backfill::Easy(RuntimeEstimator::ActualRuntime)),
        Just(Backfill::EasyOrdered(
            RuntimeEstimator::RequestTime,
            Policy::Sjf
        )),
        Just(Backfill::Conservative(RuntimeEstimator::RequestTime)),
    ]
}

fn arb_router() -> impl Strategy<Value = RouterSpec> {
    prop_oneof![
        Just(RouterSpec::Affinity),
        Just(RouterSpec::LeastLoaded),
        Just(RouterSpec::EarliestStart(RuntimeEstimator::RequestTime)),
    ]
}

fn arb_reroute() -> impl Strategy<Value = ReroutePolicy> {
    prop_oneof![
        Just(ReroutePolicy::AtSubmission),
        (1u32..=3, 0.0f64..300.0).prop_map(|(max_moves_per_job, min_gain_secs)| {
            ReroutePolicy::AtDecisionPoints {
                max_moves_per_job,
                min_gain_secs,
            }
        }),
    ]
}

/// Flat machine, or a 2-way split of the trace's machine (narrow
/// partitions drop the trace's widest jobs — that is the point: the
/// `Dropped` reconciliation needs nonzero drops sometimes).
fn cluster_for(trace: &Trace, split: Option<f64>) -> ClusterSpec {
    match split {
        None => ClusterSpec::homogeneous(trace.cluster_procs()),
        Some(frac) => {
            let total = trace.cluster_procs();
            let a = ((total as f64 * frac) as u32).clamp(1, total - 1);
            ClusterSpec::new(vec![
                PartitionSpec::new("a", a, 1.0),
                PartitionSpec::new("b", total - a, 1.0),
            ])
        }
    }
}

fn assert_close(sum: f64, total: f64, what: &str) {
    assert!(
        (sum - total).abs() <= 1e-6 * total.abs().max(1.0),
        "{what}: components {sum} vs total {total}"
    );
}

/// The audit log's structural invariants against the realized schedule.
fn check_well_formed(log: &AuditLog, result: &ScheduleResult) {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    let mut per_job: BTreeMap<usize, Vec<&AuditRecord>> = BTreeMap::new();
    for r in &log.records {
        *counts.entry(r.kind()).or_default() += 1;
        if let Some(j) = r.job() {
            per_job.entry(j).or_default().push(r);
        }
    }
    let n = |kind: &str| counts.get(kind).copied().unwrap_or(0);
    assert_eq!(n("started"), result.completed.len(), "one start per job");
    assert_eq!(n("completed"), result.completed.len());
    assert_eq!(n("dropped"), result.dropped_jobs);
    assert_eq!(n("migrated"), result.migrations);
    assert_eq!(log.job_waits.len(), result.completed.len());

    for (job, records) in &per_job {
        if matches!(records[0], AuditRecord::Dropped { .. }) {
            assert_eq!(
                records.len(),
                1,
                "job {job}: dropped jobs get exactly one record"
            );
            assert!(log.breakdown(*job).is_none());
            continue;
        }
        assert!(
            matches!(records[0], AuditRecord::Submitted { .. }),
            "job {job}: lifecycle must open with Submitted, got {:?}",
            records[0]
        );
        let si = records
            .iter()
            .position(|r| matches!(r, AuditRecord::Started { .. }))
            .unwrap_or_else(|| panic!("job {job}: no Started record"));
        assert_eq!(
            records.len(),
            si + 2,
            "job {job}: Completed must immediately follow Started and close the lifecycle"
        );
        assert!(
            matches!(records[si + 1], AuditRecord::Completed { .. }),
            "job {job}: last record must be Completed, got {:?}",
            records[si + 1]
        );
        for r in &records[1..si] {
            assert!(
                matches!(
                    r,
                    AuditRecord::BackfillSkipped { .. } | AuditRecord::Migrated { .. }
                ),
                "job {job}: only skips/migrations may occur while queued, got {r:?}"
            );
        }
        let mut last = f64::NEG_INFINITY;
        for r in records {
            assert!(
                r.time() >= last,
                "job {job}: records must be time-ordered ({} after {last})",
                r.time()
            );
            last = r.time();
        }
    }

    for wb in &log.job_waits {
        assert_close(
            wb.components.iter().sum(),
            wb.wait,
            &format!("job {} wait breakdown", wb.job),
        );
    }
    let attr = log.attribution();
    assert_eq!(attr.jobs as usize, result.completed.len());
    assert_close(
        attr.components_sum(),
        attr.total_wait,
        "aggregate attribution",
    );
}

#[allow(clippy::too_many_arguments)]
fn run_audited_pair(
    trace: &Trace,
    policy: Policy,
    backfill: Backfill,
    cluster: &ClusterSpec,
    router: Arc<dyn hpcsim::Router>,
    reroute: ReroutePolicy,
) -> (ScheduleResult, AuditLog) {
    let plain =
        run_scheduler_on_rerouted(trace, policy, backfill, cluster, router.clone(), reroute);
    let (audited, probe) = run_scheduler_on_rerouted_probed(
        trace,
        policy,
        backfill,
        cluster,
        router,
        reroute,
        AuditProbe::new(),
    );
    assert_eq!(
        plain.completed, audited.completed,
        "the audit probe must not perturb the schedule"
    );
    assert_eq!(plain.dropped_jobs, audited.dropped_jobs);
    assert_eq!(plain.migrations, audited.migrations);
    (audited, probe.into_log())
}

proptest! {
    #[test]
    fn flat_runs_produce_well_formed_deterministic_logs(
        trace in arb_trace(),
        policy in arb_policy(),
        backfill in arb_backfill(),
    ) {
        let cluster = cluster_for(&trace, None);
        let router = RouterSpec::Affinity.build();
        let (result, log) = run_audited_pair(
            &trace, policy, backfill, &cluster, router.clone(),
            ReroutePolicy::AtSubmission,
        );
        check_well_formed(&log, &result);
        let (_, log2) = run_audited_pair(
            &trace, policy, backfill, &cluster, router,
            ReroutePolicy::AtSubmission,
        );
        prop_assert_eq!(log.first_divergence(&log2), None);
        prop_assert_eq!(log, log2);
    }

    #[test]
    fn clustered_runs_produce_well_formed_deterministic_logs(
        trace in arb_trace(),
        policy in arb_policy(),
        backfill in arb_backfill(),
        router in arb_router(),
        reroute in arb_reroute(),
        split in 0.3f64..0.7,
    ) {
        let cluster = cluster_for(&trace, Some(split));
        let (result, log) = run_audited_pair(
            &trace, policy, backfill, &cluster, router.build(), reroute,
        );
        check_well_formed(&log, &result);
        let (_, log2) = run_audited_pair(
            &trace, policy, backfill, &cluster, router.build(), reroute,
        );
        prop_assert_eq!(log.first_divergence(&log2), None);
        prop_assert_eq!(log, log2);
    }
}
