//! Serde round-trip property tests for the scenario layer: any
//! [`ScenarioSpec`] the builder can produce must survive
//! JSON-serialize → parse **exactly** (`PartialEq`), because committed
//! spec files are the reproducibility contract of the experiment grid.

use hpcsim::cluster::{ClusterSpec, PartitionSpec};
use hpcsim::prelude::*;
use hpcsim::scenario::SelectedMetric;
use proptest::prelude::*;
use swf::{TracePreset, TraceSource};

fn arb_preset() -> impl Strategy<Value = TracePreset> {
    prop_oneof![
        Just(TracePreset::SdscSp2),
        Just(TracePreset::Hpc2n),
        Just(TracePreset::Lublin1),
        Just(TracePreset::Lublin2),
    ]
}

fn arb_source() -> impl Strategy<Value = TraceSource> {
    prop_oneof![
        (arb_preset(), 1usize..5000, any::<u64>())
            .prop_map(|(preset, jobs, seed)| TraceSource::Preset { preset, jobs, seed }),
        (arb_preset(), 2usize..=4, 1usize..5000, any::<u64>()).prop_map(
            |(preset, parts, jobs, seed)| TraceSource::PartitionedPreset {
                preset,
                parts,
                jobs,
                seed,
            }
        ),
        (
            16u32..512,
            100.0f64..2000.0,
            500.0f64..20000.0,
            1.0f64..32.0,
            1usize..5000,
            any::<u64>(),
        )
            .prop_map(|(procs, it, rt, nt, jobs, seed)| TraceSource::Lublin {
                procs,
                mean_interarrival: it,
                mean_runtime: rt,
                mean_procs: nt,
                jobs,
                seed,
            }),
        (
            16u32..512,
            2usize..=4,
            0.2f64..1.2,
            1usize..5000,
            any::<u64>()
        )
            .prop_map(
                |(total, parts, load, jobs, seed)| TraceSource::PartitionedLublin {
                    layout: swf::split_cluster(total.max(parts as u32), parts),
                    load,
                    jobs,
                    seed,
                }
            ),
        (0u32..1000).prop_map(|stem| TraceSource::SwfFile {
            path: format!("traces/archive-{stem}.swf"),
        }),
    ]
}

fn arb_estimator() -> impl Strategy<Value = RuntimeEstimator> {
    prop_oneof![
        Just(RuntimeEstimator::RequestTime),
        Just(RuntimeEstimator::ActualRuntime),
        (0.01f64..2.0, any::<u64>()).prop_map(|(max_over_frac, seed)| {
            RuntimeEstimator::NoisyActual {
                max_over_frac,
                seed,
            }
        }),
    ]
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::Fcfs),
        Just(Policy::Sjf),
        Just(Policy::Wfp3),
        Just(Policy::F1),
    ]
}

fn arb_backfill() -> impl Strategy<Value = Backfill> {
    prop_oneof![
        Just(Backfill::None),
        arb_estimator().prop_map(Backfill::Easy),
        (arb_estimator(), arb_policy()).prop_map(|(e, p)| Backfill::EasyOrdered(e, p)),
        arb_estimator().prop_map(Backfill::Conservative),
    ]
}

fn arb_router() -> impl Strategy<Value = RouterSpec> {
    prop_oneof![
        Just(RouterSpec::Affinity),
        Just(RouterSpec::LeastLoaded),
        arb_estimator().prop_map(RouterSpec::EarliestStart),
    ]
}

fn arb_reroute() -> impl Strategy<Value = ReroutePolicy> {
    prop_oneof![
        Just(ReroutePolicy::AtSubmission),
        (0u32..8, 0.0f64..3600.0).prop_map(|(max_moves_per_job, min_gain_secs)| {
            ReroutePolicy::AtDecisionPoints {
                max_moves_per_job,
                min_gain_secs,
            }
        }),
    ]
}

fn arb_platform() -> impl Strategy<Value = Platform> {
    let cluster = proptest::collection::vec((1u32..256, 0.25f64..4.0), 1..4).prop_map(|parts| {
        ClusterSpec::new(
            parts
                .into_iter()
                .enumerate()
                .map(|(i, (procs, speed))| PartitionSpec::new(format!("p{i}"), procs, speed))
                .collect(),
        )
    });
    (any::<bool>(), cluster, arb_router(), arb_reroute()).prop_map(
        |(flat, cluster, router, reroute)| Platform {
            cluster: if flat { None } else { Some(cluster) },
            router,
            reroute,
        },
    )
}

fn arb_scheduler() -> impl Strategy<Value = SchedulerSpec> {
    let agent =
        (any::<bool>(), 0u32..100, any::<bool>()).prop_map(|(with_checkpoint, ckpt, with_env)| {
            SchedulerSpec::Agent(AgentSlot {
                checkpoint: with_checkpoint.then(|| format!("results/agents/a{ckpt}.json")),
                // An opaque config payload, as the RL crate would embed.
                env: with_env.then(|| {
                    serde_json::Value::Object(vec![(
                        "max_obsv_size".to_string(),
                        serde_json::Value::Number(serde::Number::U64(64)),
                    )])
                }),
                train: None,
            })
        });
    prop_oneof![arb_backfill().prop_map(SchedulerSpec::Heuristic), agent]
}

fn arb_protocol() -> impl Strategy<Value = Protocol> {
    prop_oneof![
        Just(Protocol::FullTrace),
        (1usize..20, 8usize..2048, any::<u64>()).prop_map(|(samples, window_len, seed)| {
            Protocol::Windows {
                samples,
                window_len,
                seed,
            }
        }),
    ]
}

fn arb_metric() -> impl Strategy<Value = MetricKind> {
    prop_oneof![
        Just(MetricKind::BoundedSlowdown),
        Just(MetricKind::Slowdown),
        Just(MetricKind::Wait),
        Just(MetricKind::MaxWait),
        Just(MetricKind::Turnaround),
        Just(MetricKind::Utilization),
        Just(MetricKind::Makespan),
    ]
}

fn arb_engine() -> impl Strategy<Value = Engine> {
    prop_oneof![
        Just(Engine::Kernel),
        Just(Engine::Reference),
        Just(Engine::SeedNaive),
    ]
}

fn arb_platform_event() -> impl Strategy<Value = PlatformEvent> {
    prop_oneof![
        (0.0f64..1e6, 0usize..4, 1u32..64).prop_map(|(at, part, procs)| PlatformEvent::NodeFail {
            at,
            part,
            procs
        }),
        (0.0f64..1e6, 0usize..4, 1u32..64)
            .prop_map(|(at, part, procs)| PlatformEvent::NodeRepair { at, part, procs }),
        (0.0f64..1e6, 0usize..4).prop_map(|(at, part)| PlatformEvent::DrainStart { at, part }),
        (0.0f64..1e6, 0usize..4).prop_map(|(at, part)| PlatformEvent::DrainEnd { at, part }),
        (0.0f64..1e6, 0usize..4, 0u32..64).prop_map(|(at, part, procs)| PlatformEvent::Resize {
            at,
            part,
            procs
        }),
    ]
}

fn arb_events() -> impl Strategy<Value = PlatformEventSpec> {
    let part = prop_oneof![Just(None), (0usize..4).prop_map(Some)];
    let process = (
        (any::<u64>(), 1.0f64..1e6),
        (100.0f64..1e5, 10.0f64..1e4),
        (1u32..64, part),
    )
        .prop_map(
            |((seed, until), (mtbf_secs, repair_secs), (procs, part))| FailureProcess {
                seed,
                until,
                mtbf_secs,
                repair_secs,
                procs,
                part,
            },
        );
    let policy = prop_oneof![
        Just(FailurePolicy::KillResubmit),
        (0.0f64..1e4).prop_map(|overhead_secs| FailurePolicy::CheckpointRestart { overhead_secs }),
    ];
    (
        proptest::collection::vec(arb_platform_event(), 0..4),
        proptest::collection::vec(process, 0..3),
        policy,
    )
        .prop_map(|(trace, processes, failure_policy)| PlatformEventSpec {
            trace,
            processes,
            failure_policy,
        })
}

#[allow(clippy::type_complexity)]
fn arb_spec() -> impl Strategy<Value = ScenarioSpec> {
    let name =
        (any::<bool>(), 0u32..100).prop_map(|(named, n)| named.then(|| format!("custom row {n}")));
    (
        (name, arb_source(), arb_platform()),
        (arb_policy(), arb_scheduler(), arb_engine()),
        (
            arb_protocol(),
            proptest::collection::vec(any::<u64>(), 0..8),
            proptest::collection::vec(arb_metric(), 0..5),
            (any::<bool>(), any::<bool>(), any::<bool>()),
            arb_events(),
        ),
    )
        .prop_map(
            |(
                (name, trace, platform),
                (policy, scheduler, engine),
                (protocol, seeds, metrics, (record_schedule, telemetry, audit), events),
            )| ScenarioSpec {
                name,
                trace,
                platform,
                policy,
                scheduler,
                engine,
                protocol,
                seeds,
                metrics,
                record_schedule,
                telemetry,
                audit,
                events,
            },
        )
}

proptest! {
    #[test]
    fn specs_round_trip_through_json(spec in arb_spec()) {
        let json = spec.to_json_pretty();
        let back = ScenarioSpec::from_json(&json).expect("round-trip parse");
        prop_assert_eq!(back, spec);
    }

    #[test]
    fn specs_round_trip_through_compact_json(spec in arb_spec()) {
        let json = serde_json::to_string(&spec).expect("serializes");
        let back: ScenarioSpec = serde_json::from_str(&json).expect("parses");
        prop_assert_eq!(back, spec);
    }

    #[test]
    fn labels_are_deterministic_and_nonempty(spec in arb_spec()) {
        prop_assert_eq!(spec.label(), spec.label());
        // A named spec uses the name verbatim; unnamed labels are derived.
        if let Some(name) = &spec.name {
            prop_assert_eq!(&spec.label(), name);
        } else {
            prop_assert!(!spec.label().is_empty());
        }
    }

    #[test]
    fn reports_round_trip_through_json(spec in arb_spec(), seed in any::<u64>(), seeded in any::<bool>()) {
        // Reports must round-trip regardless of whether the spec is
        // runnable here (agent slots, missing SWF files): build one
        // directly over synthetic metrics.
        let metrics = hpcsim::Metrics::of(&[], 4);
        let report = hpcsim::scenario::make_report(&spec, seeded.then_some(seed), metrics, 0, None);
        prop_assert_eq!(&report.label, &spec.label());
        let back = RunReport::from_json(&report.to_json_pretty()).expect("report parses");
        prop_assert_eq!(back, report);
    }

    #[test]
    fn selected_metrics_default_to_bsld(spec in arb_spec()) {
        let metrics = hpcsim::Metrics::of(&[], 4);
        let report = hpcsim::scenario::make_report(&spec, None, metrics, 0, None);
        if spec.metrics.is_empty() {
            prop_assert_eq!(
                report.selected,
                vec![SelectedMetric { metric: "bsld".into(), value: 0.0 }]
            );
        } else {
            prop_assert_eq!(report.selected.len(), spec.metrics.len());
        }
    }
}
