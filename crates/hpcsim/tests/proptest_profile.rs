//! Property tests for the availability profile — the planning structure
//! under both EASY's shadow computation and conservative backfilling.

use hpcsim::profile::AvailabilityProfile;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Event {
    Release { time: f64, procs: u32 },
    Usage { start: f64, len: f64, procs: u32 },
}

fn arb_events() -> impl Strategy<Value = Vec<Event>> {
    let release =
        (0.0f64..10_000.0, 1u32..16).prop_map(|(time, procs)| Event::Release { time, procs });
    let usage = (0.0f64..10_000.0, 1.0f64..5_000.0, 1u32..16)
        .prop_map(|(start, len, procs)| Event::Usage { start, len, procs });
    proptest::collection::vec(prop_oneof![release, usage], 0..20)
}

fn build(free: u32, events: &[Event]) -> AvailabilityProfile {
    let mut p = AvailabilityProfile::new(0.0, free);
    for e in events {
        match *e {
            Event::Release { time, procs } => p.add_release(time, procs),
            Event::Usage { start, len, procs } => p.add_usage(start, start + len, procs),
        }
    }
    p
}

proptest! {
    /// Whatever `earliest_fit` returns satisfies the demand over the whole
    /// requested interval (checked at the start and at every breakpoint
    /// inside it), and no earlier event time would have worked.
    #[test]
    fn earliest_fit_is_feasible_and_minimal(
        free in 8u32..64,
        events in arb_events(),
        procs in 1u32..8,
        duration in 1.0f64..5_000.0,
        not_before in 0.0f64..5_000.0,
    ) {
        let p = build(free, &events);
        let t = p.earliest_fit(procs, duration, not_before);
        prop_assert!(t.is_finite(), "demand below baseline free must always fit");
        prop_assert!(t >= not_before);

        // Feasibility over [t, t+duration).
        let check_times: Vec<f64> = std::iter::once(t)
            .chain((0..200).map(|i| t + duration * (i as f64 + 0.5) / 200.0))
            .collect();
        for &ct in &check_times {
            if ct < t + duration {
                prop_assert!(
                    p.avail_at(ct) >= procs as i64,
                    "availability {} < {} at {}",
                    p.avail_at(ct), procs, ct
                );
            }
        }

        // Minimality: starting exactly at `not_before` (if earlier than t)
        // must be infeasible somewhere in its window.
        if t > not_before + 1e-9 {
            let infeasible = (0..400).any(|i| {
                let ct = not_before + duration * i as f64 / 400.0;
                ct < not_before + duration && p.avail_at(ct) < procs as i64
            });
            prop_assert!(infeasible, "earliest_fit skipped a feasible earlier start");
        }
    }

    /// Availability never goes below `baseline − claimed` and releases only
    /// ever increase it.
    #[test]
    fn releases_are_monotone(
        free in 1u32..64,
        releases in proptest::collection::vec((0.0f64..10_000.0, 1u32..16), 0..20),
    ) {
        let mut p = AvailabilityProfile::new(0.0, free);
        for &(time, procs) in &releases {
            p.add_release(time, procs);
        }
        let mut times: Vec<f64> = releases.iter().map(|&(t, _)| t).collect();
        times.push(0.0);
        times.push(1e9);
        times.sort_by(f64::total_cmp);
        let mut prev = i64::MIN;
        for &t in &times {
            let a = p.avail_at(t);
            prop_assert!(a >= prev, "availability decreased without usage");
            prev = a;
        }
    }
}
