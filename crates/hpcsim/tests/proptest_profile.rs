//! Property tests for the availability profile — the planning structure
//! under both EASY's shadow computation and conservative backfilling.
//!
//! Since the bucketed edge timeline landed (PR 5) the profile also
//! supports exact removal and baseline shifts, so the invariant suite is
//! joined by a **differential** suite: a retained naive reference profile
//! (the PR-1 sorted-`Vec` implementation, kept verbatim below) is driven
//! with the same operation sequence and must agree with the production
//! implementation on `avail_at`, `earliest_fit` and `earliest_avail` at
//! every probe point — including equal-time edges, zero-length usages,
//! and removal interleavings rebuilt from the surviving contributions.

use hpcsim::profile::AvailabilityProfile;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// The retained naive reference: the PR-1 flat sorted-Vec profile.
// ---------------------------------------------------------------------

/// The pre-bucketing implementation, preserved as the differential
/// oracle: sorted edge list, O(n) insert with a suffix availability
/// update, O(n) shortfall sweep per fit query.
struct NaiveProfile {
    now: f64,
    free: i64,
    edges: Vec<NaiveEdge>,
}

#[derive(Clone, Copy)]
struct NaiveEdge {
    time: f64,
    delta: i64,
    avail: i64,
}

impl NaiveProfile {
    fn new(now: f64, free: u32) -> Self {
        Self {
            now,
            free: free as i64,
            edges: Vec::new(),
        }
    }

    fn add_release(&mut self, time: f64, procs: u32) {
        self.insert_edge(time.max(self.now), procs as i64);
    }

    fn add_usage(&mut self, start: f64, end: f64, procs: u32) {
        let start = start.max(self.now);
        if end <= start {
            return;
        }
        self.insert_edge(start, -(procs as i64));
        self.insert_edge(end, procs as i64);
    }

    fn insert_edge(&mut self, time: f64, delta: i64) {
        let idx = self
            .edges
            .partition_point(|e| e.time.total_cmp(&time).is_lt());
        let insert_at = if self.edges.get(idx).is_some_and(|e| e.time == time) {
            self.edges[idx].delta += delta;
            idx
        } else {
            let avail_before = if idx == 0 {
                self.free
            } else {
                self.edges[idx - 1].avail
            };
            self.edges.insert(
                idx,
                NaiveEdge {
                    time,
                    delta,
                    avail: avail_before,
                },
            );
            idx
        };
        for e in &mut self.edges[insert_at..] {
            e.avail += delta;
        }
    }

    fn avail_at(&self, time: f64) -> i64 {
        let idx = self
            .edges
            .partition_point(|e| e.time.total_cmp(&time).is_le());
        if idx == 0 {
            self.free
        } else {
            self.edges[idx - 1].avail
        }
    }

    fn earliest_fit(&self, procs: u32, duration: f64, not_before: f64) -> f64 {
        let not_before = not_before.max(self.now);
        let demand = procs as i64;
        let shortfalls: Vec<f64> = self
            .edges
            .iter()
            .filter(|e| e.avail < demand)
            .map(|e| e.time)
            .collect();
        let window_clear = |start: f64| -> bool {
            let end = start + duration;
            let next = shortfalls.partition_point(|&t| t.total_cmp(&start).is_le());
            shortfalls.get(next).is_none_or(|&t| t >= end)
        };
        if self.avail_at(not_before) >= demand && window_clear(not_before) {
            return not_before;
        }
        let first = self
            .edges
            .partition_point(|e| e.time.total_cmp(&not_before).is_le());
        for e in &self.edges[first..] {
            if e.avail >= demand && window_clear(e.time) {
                return e.time;
            }
        }
        f64::INFINITY
    }

    fn earliest_avail(&self, procs: u32) -> f64 {
        self.earliest_fit(procs, 0.0, self.now)
    }
}

// ---------------------------------------------------------------------
// Operation sequences driven against both implementations.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Event {
    Release { time: f64, procs: u32 },
    Usage { start: f64, len: f64, procs: u32 },
}

fn arb_events() -> impl Strategy<Value = Vec<Event>> {
    let release =
        (0.0f64..10_000.0, 1u32..16).prop_map(|(time, procs)| Event::Release { time, procs });
    let usage = (0.0f64..10_000.0, 1.0f64..5_000.0, 1u32..16)
        .prop_map(|(start, len, procs)| Event::Usage { start, len, procs });
    proptest::collection::vec(prop_oneof![release, usage], 0..20)
}

/// Edge-heavy sequences with deliberate time collisions (small discrete
/// time grid) and zero-length usages, plus a removal mask: removed events
/// are first added, then retracted, so the survivors must behave exactly
/// like a fresh build over them.
fn arb_collision_events() -> impl Strategy<Value = (Vec<Event>, Vec<bool>)> {
    let release = (0u32..40, 1u32..16).prop_map(|(slot, procs)| Event::Release {
        time: slot as f64 * 25.0,
        procs,
    });
    let usage = (0u32..40, 0u32..200, 1u32..16).prop_map(|(slot, len, procs)| Event::Usage {
        start: slot as f64 * 25.0,
        len: len as f64, // 0 is a legal (ignored) zero-length usage
        procs,
    });
    proptest::collection::vec(prop_oneof![release, usage], 0..40).prop_flat_map(|events| {
        let n = events.len();
        (
            Just(events),
            proptest::collection::vec(any::<bool>(), n..=n),
        )
    })
}

fn build(free: u32, events: &[Event]) -> AvailabilityProfile {
    let mut p = AvailabilityProfile::new(0.0, free);
    for e in events {
        match *e {
            Event::Release { time, procs } => p.add_release(time, procs),
            Event::Usage { start, len, procs } => p.add_usage(start, start + len, procs),
        }
    }
    p
}

fn build_naive(free: u32, events: &[Event]) -> NaiveProfile {
    let mut p = NaiveProfile::new(0.0, free);
    for e in events {
        match *e {
            Event::Release { time, procs } => p.add_release(time, procs),
            Event::Usage { start, len, procs } => p.add_usage(start, start + len, procs),
        }
    }
    p
}

/// Probe instants that cover every breakpoint and the space between.
fn probe_times(events: &[Event]) -> Vec<f64> {
    let mut ts = vec![0.0, 1e9];
    for e in events {
        match *e {
            Event::Release { time, .. } => ts.push(time),
            Event::Usage { start, len, .. } => {
                ts.push(start);
                ts.push(start + len);
            }
        }
    }
    for i in 0..ts.len().min(40) {
        ts.push(ts[i] + 0.5);
        ts.push((ts[i] - 0.5).max(0.0));
    }
    ts
}

proptest! {
    /// The bucketed timeline and the retained naive reference agree on
    /// every query, for identical operation sequences.
    #[test]
    fn bucketed_matches_naive_reference(
        free in 8u32..64,
        events in arb_events(),
        procs in 1u32..8,
        duration in 1.0f64..5_000.0,
        not_before in 0.0f64..5_000.0,
    ) {
        let p = build(free, &events);
        let naive = build_naive(free, &events);
        for &t in &probe_times(&events) {
            prop_assert!(p.avail_at(t) == naive.avail_at(t), "avail_at({}) diverged", t);
            let a = p.earliest_fit(procs, duration, t);
            let b = naive.earliest_fit(procs, duration, t);
            prop_assert!(a.to_bits() == b.to_bits(), "earliest_fit(.., {}): {} vs {}", t, a, b);
        }
        let a = p.earliest_fit(procs, duration, not_before);
        let b = naive.earliest_fit(procs, duration, not_before);
        prop_assert_eq!(a.to_bits(), b.to_bits());
        prop_assert_eq!(
            p.earliest_avail(procs).to_bits(),
            naive.earliest_avail(procs).to_bits()
        );
    }

    /// Removal is exact: adding every event and retracting a masked
    /// subset leaves a profile that answers every query like a fresh
    /// build over the survivors — on collision-heavy grids with merged
    /// equal-time edges and zero-length usages.
    #[test]
    fn removal_equals_rebuild_of_survivors(
        free in 8u32..64,
        (events, removed) in arb_collision_events(),
        procs in 1u32..8,
        duration in 1.0f64..2_000.0,
    ) {
        let mut p = build(free, &events);
        for (e, &gone) in events.iter().zip(&removed) {
            if !gone {
                continue;
            }
            match *e {
                Event::Release { time, procs } => p.remove_release(time, procs),
                Event::Usage { start, len, procs } => p.remove_usage(start, start + len, procs),
            }
        }
        let survivors: Vec<Event> = events
            .iter()
            .zip(&removed)
            .filter(|(_, &gone)| !gone)
            .map(|(e, _)| e.clone())
            .collect();
        let fresh = build(free, &survivors);
        let naive = build_naive(free, &survivors);
        prop_assert!(p.edge_count() == fresh.edge_count(), "edge multiset differs");
        for &t in &probe_times(&events) {
            prop_assert!(p.avail_at(t) == naive.avail_at(t), "avail_at({}) diverged", t);
            let a = p.earliest_fit(procs, duration, t);
            let b = naive.earliest_fit(procs, duration, t);
            prop_assert!(a.to_bits() == b.to_bits(), "earliest_fit(.., {}) diverged", t);
        }
    }

    /// Whatever `earliest_fit` returns satisfies the demand over the whole
    /// requested interval (checked at the start and at every breakpoint
    /// inside it), and no earlier event time would have worked.
    #[test]
    fn earliest_fit_is_feasible_and_minimal(
        free in 8u32..64,
        events in arb_events(),
        procs in 1u32..8,
        duration in 1.0f64..5_000.0,
        not_before in 0.0f64..5_000.0,
    ) {
        let p = build(free, &events);
        let t = p.earliest_fit(procs, duration, not_before);
        prop_assert!(t.is_finite(), "demand below baseline free must always fit");
        prop_assert!(t >= not_before);

        // Feasibility over [t, t+duration).
        let check_times: Vec<f64> = std::iter::once(t)
            .chain((0..200).map(|i| t + duration * (i as f64 + 0.5) / 200.0))
            .collect();
        for &ct in &check_times {
            if ct < t + duration {
                prop_assert!(
                    p.avail_at(ct) >= procs as i64,
                    "availability {} < {} at {}",
                    p.avail_at(ct), procs, ct
                );
            }
        }

        // Minimality: starting exactly at `not_before` (if earlier than t)
        // must be infeasible somewhere in its window.
        if t > not_before + 1e-9 {
            let infeasible = (0..400).any(|i| {
                let ct = not_before + duration * i as f64 / 400.0;
                ct < not_before + duration && p.avail_at(ct) < procs as i64
            });
            prop_assert!(infeasible, "earliest_fit skipped a feasible earlier start");
        }
    }

    /// Availability never goes below `baseline − claimed` and releases only
    /// ever increase it.
    #[test]
    fn releases_are_monotone(
        free in 1u32..64,
        releases in proptest::collection::vec((0.0f64..10_000.0, 1u32..16), 0..20),
    ) {
        let mut p = AvailabilityProfile::new(0.0, free);
        for &(time, procs) in &releases {
            p.add_release(time, procs);
        }
        let mut times: Vec<f64> = releases.iter().map(|&(t, _)| t).collect();
        times.push(0.0);
        times.push(1e9);
        times.sort_by(f64::total_cmp);
        let mut prev = i64::MIN;
        for &t in &times {
            let a = p.avail_at(t);
            prop_assert!(a >= prev, "availability decreased without usage");
            prev = a;
        }
    }
}
