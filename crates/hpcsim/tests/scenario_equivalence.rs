//! Pins `scenario::run` **bitwise** to the seed-pinned low-level engines
//! (`run_scheduler` / `run_scheduler_on`) across Policy × Backfill ×
//! router, so the declarative redesign cannot drift from the engines the
//! equivalence suite already ties to the seed implementation.
//!
//! The contract: a spec is *pure data* — executing it must produce the
//! exact schedule (same `(id, start)` pairs, same metrics bits) as
//! hand-rolled plumbing over the same trace, platform and heuristic.

use hpcsim::prelude::*;
use hpcsim::state::CompletedJob;
use hpcsim::Phase;
use std::sync::Arc;
use swf::{TracePreset, TraceSource};

const JOBS: usize = 400;
const SEED: u64 = 1123;

fn source() -> TraceSource {
    TraceSource::Preset {
        preset: TracePreset::SdscSp2,
        jobs: JOBS,
        seed: SEED,
    }
}

fn all_backfills() -> Vec<Backfill> {
    vec![
        Backfill::None,
        Backfill::Easy(RuntimeEstimator::RequestTime),
        Backfill::Easy(RuntimeEstimator::ActualRuntime),
        Backfill::Easy(RuntimeEstimator::NoisyActual {
            max_over_frac: 0.4,
            seed: 11,
        }),
        Backfill::EasyOrdered(RuntimeEstimator::RequestTime, Policy::Sjf),
        Backfill::Conservative(RuntimeEstimator::RequestTime),
    ]
}

fn schedule_of(completed: &[CompletedJob]) -> Vec<(usize, f64)> {
    let mut v: Vec<(usize, f64)> = completed.iter().map(|c| (c.job.id, c.start)).collect();
    v.sort_by_key(|&(id, _)| id);
    v
}

#[test]
fn scenario_run_equals_run_scheduler_for_every_policy_and_backfill() {
    let trace = source().materialize().unwrap();
    for policy in Policy::ALL {
        for backfill in all_backfills() {
            let spec = ScenarioSpec::builder(source())
                .policy(policy)
                .backfill(backfill)
                .record_schedule(true)
                .build();
            let report = hpcsim::scenario::run(&spec).unwrap();
            let direct = run_scheduler(&trace, policy, backfill);
            assert_eq!(
                report.metrics, direct.metrics,
                "metrics drifted: {policy} {backfill:?}"
            );
            assert_eq!(
                schedule_of(report.schedule.as_ref().unwrap()),
                schedule_of(&direct.completed),
                "schedule drifted: {policy} {backfill:?}"
            );
        }
    }
}

#[test]
fn scenario_run_equals_run_scheduler_on_under_every_router() {
    // A partitioned workload: the spec's platform names the cluster +
    // router; the direct call builds the identical pieces by hand.
    let parts = 3;
    let w = swf::partitioned_preset(TracePreset::Lublin1, parts, JOBS, SEED);
    let cluster = ClusterSpec::from_layout(&w.layout);
    let src = TraceSource::PartitionedPreset {
        preset: TracePreset::Lublin1,
        parts,
        jobs: JOBS,
        seed: SEED,
    };
    let routers: Vec<(RouterSpec, Arc<dyn hpcsim::cluster::Router>)> = vec![
        (RouterSpec::Affinity, Arc::new(StaticAffinity)),
        (RouterSpec::LeastLoaded, Arc::new(LeastLoaded)),
        (
            RouterSpec::EarliestStart(RuntimeEstimator::RequestTime),
            Arc::new(EarliestStart::default()),
        ),
    ];
    for policy in [Policy::Fcfs, Policy::Sjf] {
        for backfill in [
            Backfill::Easy(RuntimeEstimator::RequestTime),
            Backfill::Conservative(RuntimeEstimator::RequestTime),
        ] {
            for (router_spec, router) in &routers {
                let spec = ScenarioSpec::builder(src.clone())
                    .policy(policy)
                    .backfill(backfill)
                    .cluster(cluster.clone(), *router_spec)
                    .record_schedule(true)
                    .build();
                let report = hpcsim::scenario::run(&spec).unwrap();
                let direct =
                    run_scheduler_on(&w.trace, policy, backfill, &cluster, Arc::clone(router));
                assert_eq!(
                    report.metrics,
                    direct.metrics,
                    "metrics drifted: {policy} {backfill:?} {}",
                    router_spec.label()
                );
                assert_eq!(
                    schedule_of(report.schedule.as_ref().unwrap()),
                    schedule_of(&direct.completed),
                    "schedule drifted: {policy} {backfill:?} {}",
                    router_spec.label()
                );
            }
        }
    }
}

#[test]
fn at_submission_reroute_is_bitwise_inert_across_routers_and_policies() {
    // An explicit `reroute: AtSubmission` spec must realize the exact
    // schedule of (a) the same spec without the field and (b) the direct
    // `run_scheduler_on` engines — the migration subsystem cannot perturb
    // default runs, for any router × policy.
    let parts = 3;
    let w = swf::partitioned_preset(TracePreset::Lublin1, parts, JOBS, SEED);
    let cluster = ClusterSpec::from_layout(&w.layout);
    let src = TraceSource::PartitionedPreset {
        preset: TracePreset::Lublin1,
        parts,
        jobs: JOBS,
        seed: SEED,
    };
    let routers: Vec<(RouterSpec, Arc<dyn hpcsim::cluster::Router>)> = vec![
        (RouterSpec::Affinity, Arc::new(StaticAffinity)),
        (RouterSpec::LeastLoaded, Arc::new(LeastLoaded)),
        (
            RouterSpec::EarliestStart(RuntimeEstimator::RequestTime),
            Arc::new(EarliestStart::default()),
        ),
    ];
    for policy in Policy::ALL {
        for (router_spec, router) in &routers {
            let implicit = ScenarioSpec::builder(src.clone())
                .policy(policy)
                .cluster(cluster.clone(), *router_spec)
                .record_schedule(true)
                .build();
            let explicit = ScenarioSpec::builder(src.clone())
                .policy(policy)
                .cluster(cluster.clone(), *router_spec)
                .reroute(ReroutePolicy::AtSubmission)
                .record_schedule(true)
                .build();
            assert_eq!(implicit, explicit, "AtSubmission is the default");
            let report = hpcsim::scenario::run(&explicit).unwrap();
            let direct = run_scheduler_on(
                &w.trace,
                policy,
                Backfill::Easy(RuntimeEstimator::RequestTime),
                &cluster,
                Arc::clone(router),
            );
            assert_eq!(
                report.metrics,
                direct.metrics,
                "metrics drifted: {policy} {}",
                router_spec.label()
            );
            assert_eq!(
                schedule_of(report.schedule.as_ref().unwrap()),
                schedule_of(&direct.completed),
                "schedule drifted: {policy} {}",
                router_spec.label()
            );
            assert_eq!(report.jobs + report.dropped_jobs, w.trace.len());
        }
    }
}

#[test]
fn empty_platform_event_stream_is_bitwise_inert_across_routers_and_policies() {
    // The fault layer's zero-cost contract: a spec carrying an explicit
    // *empty* `events` block must serialize, run and report byte-for-byte
    // identically to the same spec without the field — for every router ×
    // policy. A diff here means a static machine pays for the dynamic
    // layer, and every committed report pin in the repo is at risk.
    let parts = 2;
    let w = swf::partitioned_preset(TracePreset::Lublin1, parts, JOBS, SEED);
    let cluster = ClusterSpec::from_layout(&w.layout);
    let src = TraceSource::PartitionedPreset {
        preset: TracePreset::Lublin1,
        parts,
        jobs: JOBS,
        seed: SEED,
    };
    for policy in [Policy::Fcfs, Policy::Sjf, Policy::F1] {
        for router_spec in [
            RouterSpec::Affinity,
            RouterSpec::LeastLoaded,
            RouterSpec::EarliestStart(RuntimeEstimator::RequestTime),
        ] {
            let plain = ScenarioSpec::builder(src.clone())
                .policy(policy)
                .cluster(cluster.clone(), router_spec)
                .record_schedule(true)
                .build();
            let with_empty = ScenarioSpec::builder(src.clone())
                .policy(policy)
                .cluster(cluster.clone(), router_spec)
                .record_schedule(true)
                .events(hpcsim::platform::PlatformEventSpec::default())
                .build();
            assert_eq!(plain, with_empty, "an empty event spec is the default");
            let spec_json = with_empty.to_json_pretty();
            assert!(
                !spec_json.contains("\"events\""),
                "empty events must be omitted from spec JSON"
            );
            let a = hpcsim::scenario::run(&plain).unwrap();
            let b = hpcsim::scenario::run(&with_empty).unwrap();
            assert_eq!(
                a.to_json_pretty(),
                b.to_json_pretty(),
                "report bytes drifted: {policy} {}",
                router_spec.label()
            );
            assert!(b.robustness.is_none(), "no events, no robustness block");
            assert!(
                !b.to_json_pretty().contains("\"robustness\""),
                "unperturbed reports must not grow a robustness field"
            );
        }
    }
}

#[test]
fn decision_point_migration_changes_partitioned_schedules() {
    // The counterpart of the inertness pin: with migration on, the same
    // spec must realize a *different* schedule (otherwise the subsystem
    // is dead code), while still conserving every job.
    let parts = 2;
    let w = swf::partitioned_preset(TracePreset::Lublin1, parts, JOBS, SEED);
    let cluster = ClusterSpec::from_layout(&w.layout);
    let src = TraceSource::PartitionedPreset {
        preset: TracePreset::Lublin1,
        parts,
        jobs: JOBS,
        seed: SEED,
    };
    let build = |reroute| {
        ScenarioSpec::builder(src.clone())
            .cluster(cluster.clone(), RouterSpec::LeastLoaded)
            .reroute(reroute)
            .record_schedule(true)
            .build()
    };
    let pinned = hpcsim::scenario::run(&build(ReroutePolicy::AtSubmission)).unwrap();
    let migrated = hpcsim::scenario::run(&build(ReroutePolicy::AtDecisionPoints {
        max_moves_per_job: 3,
        min_gain_secs: 0.0,
    }))
    .unwrap();
    assert_eq!(migrated.jobs + migrated.dropped_jobs, w.trace.len());
    assert_eq!(pinned.jobs, migrated.jobs);
    assert_ne!(
        schedule_of(pinned.schedule.as_ref().unwrap()),
        schedule_of(migrated.schedule.as_ref().unwrap()),
        "decision-point migration must change the realized schedule"
    );
}

#[test]
fn degenerate_platform_is_bitwise_flat_regardless_of_router() {
    // The one-partition spec must reproduce the flat engine exactly under
    // every router — the cluster-subsystem invariant, restated at the
    // scenario layer.
    let trace = source().materialize().unwrap();
    let flat = run_scheduler(
        &trace,
        Policy::Fcfs,
        Backfill::Easy(RuntimeEstimator::RequestTime),
    );
    for router in RouterSpec::ALL {
        for reroute in [
            ReroutePolicy::AtSubmission,
            // Migration is inert on a single partition: the degenerate
            // equivalence holds even with re-routing enabled.
            ReroutePolicy::AtDecisionPoints {
                max_moves_per_job: 3,
                min_gain_secs: 0.0,
            },
        ] {
            let spec = ScenarioSpec::builder(source())
                .cluster(ClusterSpec::homogeneous(trace.cluster_procs()), router)
                .reroute(reroute)
                .record_schedule(true)
                .build();
            let report = hpcsim::scenario::run(&spec).unwrap();
            assert_eq!(report.metrics, flat.metrics, "{}", router.label());
            assert_eq!(
                schedule_of(report.schedule.as_ref().unwrap()),
                schedule_of(&flat.completed),
                "{}",
                router.label()
            );
        }
    }
}

#[test]
fn every_engine_realizes_the_same_flat_schedule() {
    // Kernel, Reference and SeedNaive are pinned equal by the event
    // equivalence suite; the scenario layer must preserve that.
    let mut reports = Vec::new();
    for engine in [Engine::Kernel, Engine::Reference, Engine::SeedNaive] {
        let spec = ScenarioSpec::builder(source())
            .policy(Policy::Sjf)
            .backfill(Backfill::Conservative(RuntimeEstimator::RequestTime))
            .engine(engine)
            .record_schedule(true)
            .build();
        reports.push(hpcsim::scenario::run(&spec).unwrap());
    }
    let kernel = schedule_of(reports[0].schedule.as_ref().unwrap());
    for r in &reports[1..] {
        assert_eq!(schedule_of(r.schedule.as_ref().unwrap()), kernel);
        assert_eq!(
            r.metrics.mean_bounded_slowdown,
            reports[0].metrics.mean_bounded_slowdown
        );
    }
}

#[test]
fn telemetry_flag_does_not_perturb_schedule_or_committed_bytes() {
    // `telemetry: true` must change only the report's telemetry section:
    // same metrics bits, same schedule, and the telemetry-off report's
    // JSON must not mention the field at all (the committed byte pins
    // predate it).
    for backfill in [
        Backfill::Easy(RuntimeEstimator::RequestTime),
        Backfill::Conservative(RuntimeEstimator::RequestTime),
    ] {
        let build = |telemetry| {
            ScenarioSpec::builder(source())
                .backfill(backfill)
                .telemetry(telemetry)
                .record_schedule(true)
                .build()
        };
        let plain = hpcsim::scenario::run(&build(false)).unwrap();
        let observed = hpcsim::scenario::run(&build(true)).unwrap();
        assert_eq!(plain.metrics, observed.metrics, "{backfill:?}");
        assert_eq!(
            schedule_of(plain.schedule.as_ref().unwrap()),
            schedule_of(observed.schedule.as_ref().unwrap()),
            "telemetry collection perturbed the schedule: {backfill:?}"
        );
        assert!(plain.telemetry.is_none());
        assert!(
            !plain.to_json_pretty().contains("\"telemetry\""),
            "a telemetry-off report must serialize without the field"
        );
        let t = observed.telemetry.as_ref().expect("opted in");
        assert!(t.events > 0, "{backfill:?} collected no events");
        // Round-trip: the report with telemetry parses back equal.
        let back = RunReport::from_json(&observed.to_json_pretty()).unwrap();
        assert_eq!(back, observed);
    }
}

#[test]
fn windows_telemetry_is_the_merge_of_per_window_counters() {
    // Under the Windows protocol the report's telemetry must be exactly
    // the per-window counters summed (peaks maxed) — checked here against
    // a manual window loop over the recorded runner.
    let trace = source().materialize().unwrap();
    let (samples, window_len, wseed) = (4, 96, 77);
    let spec = ScenarioSpec::builder(source())
        .windows(samples, window_len, wseed)
        .telemetry(true)
        .build();
    let report = hpcsim::scenario::run(&spec).unwrap();
    let t = report
        .telemetry
        .expect("windows runs still collect counters");

    let windows = hpcsim::scenario::sample_windows(&trace, samples, window_len, wseed);
    let mut expected = Telemetry::default();
    for w in &windows {
        let (_, rec) = run_scheduler_recorded(
            w,
            Policy::Fcfs,
            Backfill::Easy(RuntimeEstimator::RequestTime),
            Recorder::default(),
        );
        expected.merge(rec.telemetry());
    }
    assert_eq!(t, expected);
}

#[test]
fn run_recorded_matches_run_and_traces_every_phase() {
    // The span-tracing entry point must realize the identical report as
    // `run` (modulo the attached telemetry) and cover all four simulation
    // phases on a migration-enabled conservative spec.
    let parts = 2;
    let w = swf::partitioned_preset(TracePreset::Lublin1, parts, JOBS, SEED);
    let spec = ScenarioSpec::builder(TraceSource::PartitionedPreset {
        preset: TracePreset::Lublin1,
        parts,
        jobs: JOBS,
        seed: SEED,
    })
    .cluster(ClusterSpec::from_layout(&w.layout), RouterSpec::LeastLoaded)
    .reroute(ReroutePolicy::AtDecisionPoints {
        max_moves_per_job: 3,
        min_gain_secs: 60.0,
    })
    .backfill(Backfill::Conservative(RuntimeEstimator::RequestTime))
    .record_schedule(true)
    .build();
    let plain = hpcsim::scenario::run(&spec).unwrap();
    let (recorded, recorder) = hpcsim::scenario::run_recorded(&spec).unwrap();
    assert_eq!(plain.metrics, recorded.metrics);
    assert_eq!(
        schedule_of(plain.schedule.as_ref().unwrap()),
        schedule_of(recorded.schedule.as_ref().unwrap())
    );
    let spans = recorder.spans();
    assert!(!spans.is_empty());
    for phase in [
        Phase::ArrivalBatch,
        Phase::ReroutePass,
        Phase::ConservativePass,
        Phase::BackfillScan,
    ] {
        assert!(
            spans.iter().any(|s| s.phase == phase),
            "no {} span recorded",
            phase.name()
        );
    }
    // The Chrome-trace export is one well-formed JSON object carrying
    // one complete ("ph": "X") event per span.
    let json = recorder.chrome_trace_json();
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("trace JSON parses");
    let serde_json::Value::Object(entries) = parsed else {
        panic!("chrome trace root must be a JSON object");
    };
    let events = entries
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .expect("trace has a traceEvents array");
    let serde_json::Value::Array(events) = events else {
        panic!("traceEvents must be an array");
    };
    assert_eq!(events.len(), spans.len());
}

#[test]
fn windows_protocol_matches_manual_window_loop() {
    // The §4.3 protocol through the spec == sampling the same windows by
    // hand and averaging the per-window metrics.
    let trace = source().materialize().unwrap();
    let (samples, window_len, wseed) = (5, 96, 77);
    let spec = ScenarioSpec::builder(source())
        .windows(samples, window_len, wseed)
        .build();
    let report = hpcsim::scenario::run(&spec).unwrap();

    let windows = hpcsim::scenario::sample_windows(&trace, samples, window_len, wseed);
    let per: Vec<Metrics> = windows
        .iter()
        .map(|w| {
            run_scheduler(
                w,
                Policy::Fcfs,
                Backfill::Easy(RuntimeEstimator::RequestTime),
            )
            .metrics
        })
        .collect();
    assert_eq!(report.metrics, hpcsim::scenario::mean_metrics(&per));
}
