//! Spec-file loading must fail *readably*: a missing or malformed
//! `scenario run <spec.json>` input names the offending path (and, for
//! parse failures, the offending field) instead of panicking — the
//! `scenario` binary prints these errors verbatim and exits nonzero.

use hpcsim::prelude::*;

fn fixture(name: &str) -> std::path::PathBuf {
    // Integration tests run with the crate root as cwd.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn missing_spec_file_names_the_path() {
    let path = fixture("does_not_exist.json");
    let err = ScenarioSpec::load(&path).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("cannot read"), "{msg}");
    assert!(msg.contains("does_not_exist.json"), "{msg}");
}

#[test]
fn corrupt_spec_file_names_path_and_field() {
    let path = fixture("corrupt_spec.json");
    let err = ScenarioSpec::load(&path).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("cannot parse"), "{msg}");
    assert!(msg.contains("corrupt_spec.json"), "{msg}");
    // The fixture is missing the `scheduler` field (and carries a string
    // where `jobs` expects a number) — the error must name what is wrong,
    // not just that something is.
    assert!(
        msg.contains("scheduler") || msg.contains("jobs") || msg.contains("expected"),
        "error does not identify the offending field: {msg}"
    );
}

#[test]
fn unparsable_json_is_a_clean_error() {
    let dir = std::env::temp_dir();
    let path = dir.join("hpcsim_truncated_spec.json");
    std::fs::write(&path, "{\"trace\": {\"Preset\"").unwrap();
    let err = ScenarioSpec::load(&path).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("cannot parse"), "{msg}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn valid_specs_still_load() {
    // The loader's error paths must not break the happy path: write a
    // valid spec and read it back.
    let spec = ScenarioSpec::builder(swf::TraceSource::Preset {
        preset: swf::TracePreset::Lublin1,
        jobs: 10,
        seed: 1,
    })
    .build();
    let dir = std::env::temp_dir();
    let path = dir.join("hpcsim_valid_spec.json");
    spec.save(&path).unwrap();
    assert_eq!(ScenarioSpec::load(&path).unwrap(), spec);
    std::fs::remove_file(&path).ok();
}
