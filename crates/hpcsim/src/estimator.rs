//! Runtime estimators: where backfilling gets its notion of "how long will
//! this job run".
//!
//! The paper's Figure 1 experiment varies exactly this knob: EASY backfilling
//! with the user request time, with the actual runtime (a perfect
//! prediction), and with predictions carrying +5% … +100% random error.

use serde::{Deserialize, Serialize};
use swf::Job;

/// A deterministic source of runtime estimates for scheduling decisions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RuntimeEstimator {
    /// The user-submitted request time (wall time). This is what production
    /// EASY deployments use; it systematically overestimates.
    RequestTime,
    /// The actual runtime — an oracle, standing in for a perfect runtime
    /// predictor ("EASY-AR" in the paper's tables).
    ActualRuntime,
    /// The actual runtime inflated by a per-job random factor drawn
    /// uniformly from `[1, 1 + max_over_frac]` — the "+X%" noisy
    /// predictions of Figure 1. Deterministic per `(job id, seed)` so the
    /// same job is always predicted the same way within a simulation.
    NoisyActual {
        /// Maximum relative overestimation (e.g. `0.2` for the "+20%" case).
        max_over_frac: f64,
        /// Seed decorrelating noise across experiment repetitions.
        seed: u64,
    },
}

impl RuntimeEstimator {
    /// The estimated runtime of `job`, in seconds. Always ≥ 1 s and, by
    /// construction of the variants, never below the actual runtime (a
    /// completed job in an archive trace never exceeded its request).
    pub fn estimate(&self, job: &Job) -> f64 {
        match *self {
            RuntimeEstimator::RequestTime => job.request_time,
            RuntimeEstimator::ActualRuntime => job.runtime,
            RuntimeEstimator::NoisyActual {
                max_over_frac,
                seed,
            } => {
                let u = hash_unit(job.id as u64, seed);
                job.runtime * (1.0 + max_over_frac.max(0.0) * u)
            }
        }
        .max(1.0)
    }

    /// Human-readable label used in experiment tables ("EASY", "EASY-AR",
    /// "+20%", …).
    pub fn label(&self) -> String {
        match *self {
            RuntimeEstimator::RequestTime => "request".into(),
            RuntimeEstimator::ActualRuntime => "actual".into(),
            RuntimeEstimator::NoisyActual { max_over_frac, .. } => {
                format!("+{:.0}%", max_over_frac * 100.0)
            }
        }
    }
}

/// SplitMix64-style hash of `(x, seed)` mapped to `[0, 1)`.
fn hash_unit(x: u64, seed: u64) -> f64 {
    let mut z = x
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(seed ^ 0xd1b5_4a32_d192_ed03);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> Job {
        Job::new(7, 0.0, 4, 3600.0, 1000.0)
    }

    #[test]
    fn request_time_estimator_returns_request() {
        assert_eq!(RuntimeEstimator::RequestTime.estimate(&job()), 3600.0);
    }

    #[test]
    fn actual_estimator_returns_runtime() {
        assert_eq!(RuntimeEstimator::ActualRuntime.estimate(&job()), 1000.0);
    }

    #[test]
    fn noisy_estimator_is_bounded_and_deterministic() {
        let e = RuntimeEstimator::NoisyActual {
            max_over_frac: 0.2,
            seed: 5,
        };
        let j = job();
        let a = e.estimate(&j);
        assert!((1000.0..=1200.0 + 1e-9).contains(&a), "estimate {a}");
        assert_eq!(a, e.estimate(&j));
    }

    #[test]
    fn noisy_estimator_varies_across_jobs_and_seeds() {
        let e = RuntimeEstimator::NoisyActual {
            max_over_frac: 1.0,
            seed: 5,
        };
        let j1 = Job::new(1, 0.0, 1, 1000.0, 1000.0);
        let j2 = Job::new(2, 0.0, 1, 1000.0, 1000.0);
        assert_ne!(e.estimate(&j1), e.estimate(&j2));
        let e2 = RuntimeEstimator::NoisyActual {
            max_over_frac: 1.0,
            seed: 6,
        };
        assert_ne!(e.estimate(&j1), e2.estimate(&j1));
    }

    #[test]
    fn zero_noise_equals_actual() {
        let e = RuntimeEstimator::NoisyActual {
            max_over_frac: 0.0,
            seed: 1,
        };
        assert_eq!(e.estimate(&job()), 1000.0);
    }

    #[test]
    fn hash_unit_is_in_unit_interval() {
        for x in 0..10_000u64 {
            let u = hash_unit(x, 42);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(RuntimeEstimator::RequestTime.label(), "request");
        assert_eq!(RuntimeEstimator::ActualRuntime.label(), "actual");
        let e = RuntimeEstimator::NoisyActual {
            max_over_frac: 0.4,
            seed: 0,
        };
        assert_eq!(e.label(), "+40%");
    }
}
