//! Dynamic-machine platform events: node failures, repairs, maintenance
//! drains, and partition resizes as first-class scenario inputs.
//!
//! A [`PlatformEventSpec`] rides on
//! [`ScenarioSpec`](crate::scenario::ScenarioSpec) and describes how the
//! machine changes underneath the workload: an explicit replayable
//! [`PlatformEvent`] trace (the maybenot-style "parse a perturbation trace
//! and replay it" idiom), seeded generative [`FailureProcess`]es, or both.
//! [`PlatformEventSpec::materialize`] flattens everything into one
//! time-ordered event list which the simulation schedules on the `desim`
//! event heap next to job arrivals and completions; events are applied in
//! the same epsilon batch machinery as every other decision point.
//!
//! Capacity semantics live in `state.rs` (see `apply_platform_event`):
//! failures and shrinking resizes retract free processors first and only
//! then kill running jobs (latest-started first); killed jobs follow the
//! spec's [`FailurePolicy`]; draining partitions stop admitting and the
//! decision-point reroute pass evacuates their queues. An **empty**
//! [`PlatformEventSpec`] schedules nothing and the engine is bitwise
//! identical to one compiled without the layer (pinned in
//! `scenario_equivalence`).

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// One change to the machine, applied at simulated time `at`.
///
/// `procs` counts are in reference processors (partition `speed` scales
/// durations, not widths). All variants are idempotent-free imperative
/// deltas except [`PlatformEvent::Resize`], which sets an absolute target
/// capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PlatformEvent {
    /// `procs` processors of partition `part` fail: capacity shrinks, and
    /// running jobs are killed (per [`FailurePolicy`]) if the free pool
    /// cannot cover the loss.
    NodeFail { at: f64, part: usize, procs: u32 },
    /// `procs` processors return to service: capacity and the free pool
    /// grow by `procs`.
    NodeRepair { at: f64, part: usize, procs: u32 },
    /// Partition `part` enters a maintenance drain: it stops admitting
    /// jobs (routing, backfill, and head starts all skip it) and the
    /// decision-point reroute pass tries to move its queue elsewhere.
    /// Running jobs are left to finish.
    DrainStart { at: f64, part: usize },
    /// The drain ends: `part` admits and starts jobs again.
    DrainEnd { at: f64, part: usize },
    /// Partition `part`'s capacity is set to exactly `procs` (shrink kills
    /// like [`PlatformEvent::NodeFail`]; growth may exceed the partition's
    /// original width).
    Resize { at: f64, part: usize, procs: u32 },
}

impl PlatformEvent {
    /// The simulated time the event fires.
    pub fn at(&self) -> f64 {
        match *self {
            PlatformEvent::NodeFail { at, .. }
            | PlatformEvent::NodeRepair { at, .. }
            | PlatformEvent::DrainStart { at, .. }
            | PlatformEvent::DrainEnd { at, .. }
            | PlatformEvent::Resize { at, .. } => at,
        }
    }

    /// The partition the event targets.
    pub fn part(&self) -> usize {
        match *self {
            PlatformEvent::NodeFail { part, .. }
            | PlatformEvent::NodeRepair { part, .. }
            | PlatformEvent::DrainStart { part, .. }
            | PlatformEvent::DrainEnd { part, .. }
            | PlatformEvent::Resize { part, .. } => part,
        }
    }

    /// Stable label used by audit records and telemetry.
    pub fn kind(&self) -> &'static str {
        match self {
            PlatformEvent::NodeFail { .. } => "node_fail",
            PlatformEvent::NodeRepair { .. } => "node_repair",
            PlatformEvent::DrainStart { .. } => "drain_start",
            PlatformEvent::DrainEnd { .. } => "drain_end",
            PlatformEvent::Resize { .. } => "resize",
        }
    }
}

/// What happens to a job running on failed processors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum FailurePolicy {
    /// The job is killed and resubmitted from scratch with its original
    /// submit time and full runtime; the work already done is charged to
    /// `wasted_node_seconds`.
    #[default]
    KillResubmit,
    /// The job is killed but restarts from a checkpoint: the resubmitted
    /// copy only needs the *remaining* runtime plus `overhead_secs` of
    /// restart cost. Wasted work is the overhead, not the elapsed run.
    CheckpointRestart { overhead_secs: f64 },
}

/// A seeded generative failure/repair process: exponentially distributed
/// inter-failure gaps (mean `mtbf_secs`) and repair durations (mean
/// `repair_secs`), each failure taking `procs` processors from `part` (or
/// a uniformly random partition when `part` is `None`). Failures are drawn
/// on `[0, until)`; repairs always fire, even past the horizon, so
/// capacity eventually returns.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureProcess {
    pub seed: u64,
    pub until: f64,
    pub mtbf_secs: f64,
    pub repair_secs: f64,
    pub procs: u32,
    pub part: Option<usize>,
}

impl FailureProcess {
    fn generate(&self, n_parts: usize, out: &mut Vec<PlatformEvent>) {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        // Inverse-CDF exponential; 1 - u is in (0, 1] so ln is finite.
        let exp = |mean: f64, rng: &mut dyn RngCore| -mean * (1.0 - rng.random::<f64>()).ln();
        let mut t = 0.0;
        loop {
            t += exp(self.mtbf_secs.max(0.0), &mut rng);
            if t >= self.until {
                break;
            }
            // Draw the partition before the repair gap so the stream per
            // event is fixed regardless of how either sample is used.
            let part = match self.part {
                Some(p) => p,
                None => rng.random_range(0..n_parts.max(1)),
            };
            let repair_at = t + exp(self.repair_secs.max(0.0), &mut rng);
            out.push(PlatformEvent::NodeFail {
                at: t,
                part,
                procs: self.procs,
            });
            out.push(PlatformEvent::NodeRepair {
                at: repair_at,
                part,
                procs: self.procs,
            });
        }
    }
}

/// The full platform-event input of a scenario: an explicit event trace,
/// zero or more generative processes, and the failure policy killed jobs
/// follow. The default (empty) spec is inert: nothing is scheduled and the
/// simulation is bitwise identical to a run without the layer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlatformEventSpec {
    /// Explicit, replayable events (kept verbatim; ties with generated
    /// events break toward the trace).
    pub trace: Vec<PlatformEvent>,
    /// Seeded generative failure/repair processes.
    pub processes: Vec<FailureProcess>,
    /// Fate of jobs running on failed processors.
    pub failure_policy: FailurePolicy,
}

impl PlatformEventSpec {
    /// True when the spec schedules nothing (the inert default).
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty() && self.processes.is_empty()
    }

    /// Flattens the explicit trace plus every generative process into one
    /// list sorted by firing time (stable: explicit events win ties, then
    /// process order). Validates partition indices and event times against
    /// a cluster of `n_parts` partitions.
    pub fn materialize(&self, n_parts: usize) -> Result<Vec<PlatformEvent>, String> {
        let mut all = self.trace.clone();
        for p in &self.processes {
            if !p.mtbf_secs.is_finite() || p.mtbf_secs <= 0.0 {
                return Err(format!(
                    "failure process: mtbf_secs must be finite and positive, got {}",
                    p.mtbf_secs
                ));
            }
            if !p.repair_secs.is_finite() || p.repair_secs < 0.0 {
                return Err(format!(
                    "failure process: repair_secs must be finite and non-negative, got {}",
                    p.repair_secs
                ));
            }
            if let Some(part) = p.part {
                if part >= n_parts {
                    return Err(format!(
                        "failure process: partition {part} out of range (cluster has {n_parts})"
                    ));
                }
            }
            p.generate(n_parts, &mut all);
        }
        for (i, ev) in all.iter().enumerate() {
            if ev.part() >= n_parts {
                return Err(format!(
                    "platform event {i} ({}): partition {} out of range (cluster has {n_parts})",
                    ev.kind(),
                    ev.part()
                ));
            }
            let at = ev.at();
            if !at.is_finite() || at < 0.0 {
                return Err(format!(
                    "platform event {i} ({}): time {at} must be finite and non-negative",
                    ev.kind()
                ));
            }
        }
        all.sort_by(|a, b| a.at().total_cmp(&b.at()));
        Ok(all)
    }
}

impl Serialize for PlatformEventSpec {
    fn to_value(&self) -> serde::Value {
        let mut entries = Vec::new();
        if !self.trace.is_empty() {
            entries.push(("trace".to_string(), self.trace.to_value()));
        }
        if !self.processes.is_empty() {
            entries.push(("processes".to_string(), self.processes.to_value()));
        }
        if self.failure_policy != FailurePolicy::default() {
            entries.push(("failure_policy".to_string(), self.failure_policy.to_value()));
        }
        serde::Value::Object(entries)
    }
}

impl Deserialize for PlatformEventSpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let has = |name: &str| matches!(v, serde::Value::Object(entries) if entries.iter().any(|(k, _)| k == name));
        Ok(PlatformEventSpec {
            trace: if has("trace") {
                serde::field(v, "trace")?
            } else {
                Vec::new()
            },
            processes: if has("processes") {
                serde::field(v, "processes")?
            } else {
                Vec::new()
            },
            failure_policy: if has("failure_policy") {
                serde::field(v, "failure_policy")?
            } else {
                FailurePolicy::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> PlatformEventSpec {
        PlatformEventSpec {
            trace: vec![
                PlatformEvent::NodeFail {
                    at: 100.0,
                    part: 0,
                    procs: 8,
                },
                PlatformEvent::DrainStart { at: 50.0, part: 1 },
                PlatformEvent::NodeRepair {
                    at: 400.0,
                    part: 0,
                    procs: 8,
                },
                PlatformEvent::DrainEnd { at: 300.0, part: 1 },
                PlatformEvent::Resize {
                    at: 500.0,
                    part: 1,
                    procs: 32,
                },
            ],
            processes: vec![],
            failure_policy: FailurePolicy::CheckpointRestart {
                overhead_secs: 60.0,
            },
        }
    }

    #[test]
    fn default_spec_is_empty_and_serializes_to_empty_object() {
        let spec = PlatformEventSpec::default();
        assert!(spec.is_empty());
        assert_eq!(serde_json::to_string(&spec).unwrap(), "{}");
        let back: PlatformEventSpec = serde_json::from_str("{}").unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = demo_spec();
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: PlatformEventSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn partial_spec_fills_defaults() {
        let back: PlatformEventSpec =
            serde_json::from_str(r#"{"trace": [{"DrainStart": {"at": 5.0, "part": 0}}]}"#).unwrap();
        assert_eq!(back.trace.len(), 1);
        assert!(back.processes.is_empty());
        assert_eq!(back.failure_policy, FailurePolicy::KillResubmit);
    }

    #[test]
    fn materialize_sorts_by_time() {
        let evs = demo_spec().materialize(2).unwrap();
        let times: Vec<f64> = evs.iter().map(|e| e.at()).collect();
        let mut sorted = times.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(times, sorted);
        assert_eq!(evs.len(), 5);
    }

    #[test]
    fn materialize_rejects_out_of_range_partitions() {
        let spec = demo_spec();
        let err = spec.materialize(1).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn materialize_rejects_non_finite_times() {
        let spec = PlatformEventSpec {
            trace: vec![PlatformEvent::DrainStart {
                at: f64::NAN,
                part: 0,
            }],
            ..Default::default()
        };
        let err = spec.materialize(1).unwrap_err();
        assert!(err.contains("finite"), "{err}");
    }

    #[test]
    fn generative_process_is_deterministic_and_pairs_fail_with_repair() {
        let spec = PlatformEventSpec {
            processes: vec![FailureProcess {
                seed: 7,
                until: 100_000.0,
                mtbf_secs: 10_000.0,
                repair_secs: 3_600.0,
                procs: 4,
                part: None,
            }],
            ..Default::default()
        };
        let a = spec.materialize(4).unwrap();
        let b = spec.materialize(4).unwrap();
        assert_eq!(a, b);
        let fails = a
            .iter()
            .filter(|e| matches!(e, PlatformEvent::NodeFail { .. }))
            .count();
        let repairs = a
            .iter()
            .filter(|e| matches!(e, PlatformEvent::NodeRepair { .. }))
            .count();
        assert!(fails > 0, "horizon of 10 MTBFs should draw failures");
        assert_eq!(fails, repairs, "every failure repairs eventually");
        assert!(a
            .iter()
            .all(|e| e.part() < 4 && e.at().is_finite() && e.at() >= 0.0));
    }

    #[test]
    fn generative_process_rejects_bad_rates() {
        for (mtbf, repair) in [(0.0, 1.0), (-1.0, 1.0), (f64::NAN, 1.0), (1.0, -2.0)] {
            let spec = PlatformEventSpec {
                processes: vec![FailureProcess {
                    seed: 1,
                    until: 10.0,
                    mtbf_secs: mtbf,
                    repair_secs: repair,
                    procs: 1,
                    part: Some(0),
                }],
                ..Default::default()
            };
            assert!(spec.materialize(1).is_err(), "mtbf={mtbf} repair={repair}");
        }
    }
}
