//! EASY backfilling (Lifka 1995) with a pluggable runtime estimator.
//!
//! At a backfilling opportunity, EASY grants the blocked head job (the
//! *reserved job* / `rjob`) a reservation at its **shadow time** — the
//! earliest time enough processors will be free according to the runtime
//! estimates of the running jobs. It then scans the remaining queue in
//! priority order and starts any job that fits the free processors and
//! either (a) is estimated to finish before the shadow time, or (b) uses
//! only the **extra** processors that will still be free once the reserved
//! job starts.
//!
//! The estimator is the crux of the paper's Figure 1/2 trade-off: a tighter
//! estimate moves the shadow time earlier (reserved job starts sooner) but
//! shrinks the backfilling window (fewer jobs squeeze in). This module
//! implements exactly that geometry; the paper's Figure 2 invariant is
//! covered by `reservation_moves_left_as_estimate_tightens` below.

use crate::estimator::RuntimeEstimator;
use crate::policy::Policy;
use crate::state::BackfillSim;

/// Runs one EASY backfilling pass at the current opportunity, scanning the
/// waiting queue in the base policy's priority order. Returns the number of
/// jobs backfilled.
///
/// Generic over [`BackfillSim`], so the same pass drives the kernel
/// [`crate::state::Simulation`] and the seed
/// [`crate::reference::ReferenceSimulation`]. The simulation must be
/// paused at a [`crate::state::SimEvent::BackfillOpportunity`].
pub fn easy_pass<S: BackfillSim>(sim: &mut S, estimator: RuntimeEstimator) -> usize {
    let order = sim.policy();
    easy_pass_with_order(sim, estimator, order)
}

/// EASY backfilling with an explicit scan order over the candidates,
/// independent of the base policy. The paper's reward baseline uses FCFS as
/// the base policy with **SJF-ordered** backfilling (§3.4), which is this
/// function with `order = Policy::Sjf`.
pub fn easy_pass_with_order<S: BackfillSim>(
    sim: &mut S,
    estimator: RuntimeEstimator,
    order: Policy,
) -> usize {
    let now = sim.now();
    sim.phase_begin(crate::observe::Phase::BackfillScan);
    // Shadow time and extra processors of the reserved job, from the
    // engine's release profile (the kernel engine keeps it persistent —
    // see `crate::plan` — the reference engine rebuilds from scratch).
    let Some((shadow, mut extra)) = sim.shadow_extra(estimator) else {
        sim.phase_end(crate::observe::Phase::BackfillScan);
        return 0;
    };

    let mut backfilled = 0;
    loop {
        // Re-scan after every start: indices shift and the free count drops.
        let pick = sim
            .queue()
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, j)| {
                if j.procs > sim.free_procs() {
                    return false;
                }
                let est_end = now + estimator.estimate(j);
                est_end <= shadow || j.procs <= extra
            })
            .min_by(|(_, a), (_, b)| {
                order
                    .score(a, now)
                    .total_cmp(&order.score(b, now))
                    .then(a.submit.total_cmp(&b.submit))
                    .then(a.id.cmp(&b.id))
            })
            .map(|(i, j)| (i, *j));
        let Some((idx, job)) = pick else { break };
        let uses_extra = now + estimator.estimate(&job) > shadow;
        sim.backfill(idx)
            .expect("candidate was validated against free procs"); // simlint: allow(panic-path) — candidate was re-validated against free procs just above; Err means the fit check lied
        if uses_extra {
            extra -= job.procs;
        }
        backfilled += 1;
    }
    // Forensics: once no candidate fits, classify why each remaining job
    // was skipped this pass. Only runs under an auditing probe.
    if sim.audit_enabled() {
        let free = sim.free_procs();
        let skips: Vec<(usize, crate::observe::audit::SkipReason)> = sim
            .queue()
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, j)| {
                let reason = if j.procs > free {
                    crate::observe::audit::SkipReason::InsufficientProcs
                } else {
                    // Fits the free procs but would end after the shadow
                    // while exceeding the extra — it would delay the
                    // reserved job's shadow start.
                    crate::observe::audit::SkipReason::ShadowViolation
                };
                (i, reason)
            })
            .collect(); // simlint: allow(hot-alloc) — audit-only skip labels; the collect runs only when audit_enabled()
        for (idx, reason) in skips {
            sim.audit_backfill_skip(idx, reason);
        }
    }
    sim.phase_end(crate::observe::Phase::BackfillScan);
    backfilled
}

/// The reserved job's shadow time and extra-processor count under the given
/// estimator — exposed for tests, observation encodings and diagnostics.
/// Always computed from scratch (read-only access); the scheduling pass
/// itself goes through [`BackfillSim::shadow_extra`].
pub fn shadow_and_extra<S: BackfillSim>(
    sim: &S,
    estimator: RuntimeEstimator,
) -> Option<(f64, u32)> {
    crate::plan::from_scratch_shadow_extra(sim, estimator)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use crate::state::{SimEvent, Simulation};
    use swf::{Job, Trace};

    fn run_easy(trace: &Trace, policy: Policy, est: RuntimeEstimator) -> Simulation {
        let mut sim = Simulation::new(trace, policy);
        while sim.advance() == SimEvent::BackfillOpportunity {
            easy_pass(&mut sim, est);
        }
        sim
    }

    /// Cluster 4: a 3-proc blocker until t=100, a reserved 4-proc job, and a
    /// 1-proc job of runtime `short_rt`.
    fn scenario(short_rt: f64) -> Trace {
        Trace::new(
            "s",
            4,
            vec![
                Job::new(0, 0.0, 3, 100.0, 100.0),
                Job::new(1, 10.0, 4, 100.0, 100.0),
                Job::new(2, 20.0, 1, short_rt, short_rt),
            ],
        )
    }

    #[test]
    fn easy_backfills_job_finishing_before_shadow() {
        let sim = run_easy(&scenario(50.0), Policy::Fcfs, RuntimeEstimator::RequestTime);
        let c2 = sim.completed().iter().find(|c| c.job.id == 2).unwrap();
        assert_eq!(c2.start, 20.0, "short job should backfill immediately");
        let c1 = sim.completed().iter().find(|c| c.job.id == 1).unwrap();
        assert_eq!(c1.start, 100.0, "reserved job must not be delayed");
    }

    #[test]
    fn easy_backfills_on_extra_processors() {
        // Cluster 8: blocker uses 4 until t=100; reserved job wants 6;
        // at the shadow 8 are free, extra = 2. A 2-proc long job may run on
        // the extra processors even though it ends after the shadow.
        let t = Trace::new(
            "s",
            8,
            vec![
                Job::new(0, 0.0, 4, 100.0, 100.0),
                Job::new(1, 10.0, 6, 100.0, 100.0),
                Job::new(2, 20.0, 2, 500.0, 500.0),
            ],
        );
        let sim = run_easy(&t, Policy::Fcfs, RuntimeEstimator::RequestTime);
        let c2 = sim.completed().iter().find(|c| c.job.id == 2).unwrap();
        assert_eq!(c2.start, 20.0);
        let c1 = sim.completed().iter().find(|c| c.job.id == 1).unwrap();
        assert_eq!(c1.start, 100.0);
    }

    #[test]
    fn easy_refuses_job_that_would_delay_reservation() {
        // The 1-proc job runs 500s > shadow(100) and extra is 0
        // (reserved job wants the whole machine).
        let sim = run_easy(
            &scenario(500.0),
            Policy::Fcfs,
            RuntimeEstimator::RequestTime,
        );
        let c1 = sim.completed().iter().find(|c| c.job.id == 1).unwrap();
        assert_eq!(
            c1.start, 100.0,
            "reserved job must start at its shadow time"
        );
        let c2 = sim.completed().iter().find(|c| c.job.id == 2).unwrap();
        assert!(c2.start >= 100.0, "long job must wait for the reservation");
    }

    #[test]
    fn reservation_moves_left_as_estimate_tightens() {
        // Figure 2's geometry: the blocker requests 1000s but actually runs
        // 100s. Under RequestTime the shadow is 1000; under ActualRuntime
        // it is 100 — and the backfilling window shrinks accordingly.
        let t = Trace::new(
            "s",
            4,
            vec![
                Job::new(0, 0.0, 3, 1000.0, 100.0),
                Job::new(1, 10.0, 4, 100.0, 100.0),
                Job::new(2, 20.0, 1, 400.0, 400.0),
            ],
        );
        let mut sim = Simulation::new(&t, Policy::Fcfs);
        assert_eq!(sim.advance(), SimEvent::BackfillOpportunity);
        let (shadow_req, _) = shadow_and_extra(&sim, RuntimeEstimator::RequestTime).unwrap();
        let (shadow_ar, _) = shadow_and_extra(&sim, RuntimeEstimator::ActualRuntime).unwrap();
        assert_eq!(shadow_req, 1000.0);
        assert_eq!(shadow_ar, 100.0);

        // With the loose estimate, the 400s job backfills (400+20 < 1000);
        // with the tight estimate it must not (420 > 100).
        let backfilled = easy_pass(&mut sim, RuntimeEstimator::RequestTime);
        assert_eq!(backfilled, 1);

        let mut sim2 = Simulation::new(&t, Policy::Fcfs);
        assert_eq!(sim2.advance(), SimEvent::BackfillOpportunity);
        assert_eq!(easy_pass(&mut sim2, RuntimeEstimator::ActualRuntime), 0);
    }

    #[test]
    fn easy_never_delays_reserved_job_under_request_time_on_synthetic_traces() {
        // On traces where request == actual (Lublin presets), estimates are
        // exact, so EASY's no-delay guarantee must hold exactly: the
        // reserved job's start equals its shadow time whenever we checked.
        let t = swf::TracePreset::Lublin1.generate(400, 9);
        let mut sim = Simulation::new(&t, Policy::Fcfs);
        while sim.advance() == SimEvent::BackfillOpportunity {
            let reserved = *sim.reserved_job().unwrap();
            let (shadow, _) = shadow_and_extra(&sim, RuntimeEstimator::RequestTime).unwrap();
            easy_pass(&mut sim, RuntimeEstimator::RequestTime);
            let (shadow_after, _) = shadow_and_extra(&sim, RuntimeEstimator::RequestTime)
                .filter(|_| sim.reserved_job().map(|j| j.id) == Some(reserved.id))
                .unwrap_or((shadow, 0));
            assert!(
                shadow_after <= shadow + 1e-6,
                "backfilling pushed the reserved job's shadow from {shadow} to {shadow_after}"
            );
        }
        assert_eq!(sim.completed().len(), t.len());
    }

    #[test]
    fn easy_improves_over_no_backfill_on_congested_trace() {
        use crate::metrics::Metrics;
        let t = swf::TracePreset::Lublin2.generate(600, 5);
        let easy = run_easy(&t, Policy::Fcfs, RuntimeEstimator::RequestTime);
        let mut none = Simulation::new(&t, Policy::Fcfs);
        while none.advance() != SimEvent::Done {}
        let m_easy = Metrics::of(easy.completed(), t.cluster_procs());
        let m_none = Metrics::of(none.completed(), t.cluster_procs());
        assert!(
            m_easy.mean_bounded_slowdown <= m_none.mean_bounded_slowdown,
            "EASY ({}) should not lose to no-backfill ({})",
            m_easy.mean_bounded_slowdown,
            m_none.mean_bounded_slowdown
        );
    }
}
