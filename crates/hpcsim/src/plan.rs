//! Incremental reservation planning: the persistent per-partition planner
//! behind the conservative/EASY hot paths.
//!
//! Before this layer, every decision point rebuilt its planning state from
//! scratch: `conservative_pass` re-derived the whole reservation plan from
//! `running()` + `queue()`, `easy_pass` rebuilt the release profile for one
//! shadow query, and `backfill()` rebuilt a ground-truth profile per action
//! — quadratic work per pass at real queue depths, multiplied again by the
//! decision-point re-routing pass.
//!
//! [`Planner`] instead keeps **long-lived profiles per partition**, updated
//! in O(edge-op) as the simulation evolves:
//!
//! * `actual` — ground-truth release profiles (actual runtimes), consulted
//!   by `would_delay_reserved` on every backfill action. Completions always
//!   land exactly on their release edge, so this profile never invalidates
//!   anything.
//! * `releases` — estimated release profiles under the scheduler's
//!   [`RuntimeEstimator`], the EASY shadow/extra source.
//! * `cons` — the conservative state: a *combined* profile
//!   (releases + granted reservations) plus the reservation plan aligned
//!   with the partition queue, and `dirty_from`, the first queue position
//!   whose reservation is no longer trustworthy.
//!
//! A conservative pass then becomes "repair the suffix of the plan that
//! this event batch invalidated" instead of a full rebuild:
//!
//! * **arrival at queue position k** → positions ≥ k replan (under FCFS
//!   that is just the new tail job);
//! * **on-time or late completion** (estimated end ≤ now) → nothing
//!   replans: retiring the release edge and crediting the baseline is
//!   query-equivalent to the clamped rebuild;
//! * **early completion** (estimated end still in the future) → the whole
//!   partition plan replans, exactly like a from-scratch pass would see;
//! * **job start at its planned instant** → its reservation is retired in
//!   place (usage → release is availability-neutral at and after `now`)
//!   and every later reservation stays valid;
//! * **migration / queue re-sort** → the affected suffix (or the whole
//!   partition) replans.
//!
//! The invalidation rules are *exact*, not heuristic: repaired plans are
//! bitwise identical to a from-scratch replan, which
//! [`Planner::conservative_starts`] re-checks against
//! [`from_scratch_conservative_starts`] under `cfg(debug_assertions)` (the
//! debug oracle — every debug-mode test run of every scenario doubles as a
//! differential test of this module), and
//! `tests/proptest_plan.rs` pins under random arrival/completion/migration
//! interleavings.

use crate::cluster::Partition;
use crate::estimator::RuntimeEstimator;
use crate::observe::{PlanStats, ProfileStats, RepairCause};
use crate::profile::AvailabilityProfile;
use crate::state::BackfillSim;
use swf::Job;

/// Time slack when deciding whether a planned start is "now" (must match
/// the conservative pass's epsilon).
const EPS: f64 = 1e-9;

/// One granted reservation, aligned with a queue position.
#[derive(Debug, Clone, Copy)]
struct PlanEntry {
    id: usize,
    start: f64,
    est: f64,
    procs: u32,
}

/// Placeholder for positions at or beyond `dirty_from` — never read as a
/// reservation.
const UNPLANNED: PlanEntry = PlanEntry {
    id: usize::MAX,
    start: f64::INFINITY,
    est: 0.0,
    procs: 0,
};

/// Conservative planning state of one partition.
#[derive(Debug, Clone)]
struct ConsPlan {
    /// releases + usages of every reservation in `plan[..dirty_from]`.
    combined: AvailabilityProfile,
    /// Reservation per queue position; valid only below `dirty_from`.
    plan: Vec<PlanEntry>,
    /// First queue position whose reservation must be re-derived.
    dirty_from: usize,
    /// Most disruptive invalidation cause accumulated since the last
    /// repair pass; the pass attributes its whole suffix repair to it.
    pending_cause: Option<RepairCause>,
}

impl ConsPlan {
    /// Retires the reservations of positions `k..dirty_from` from the
    /// combined profile and marks them for replanning.
    fn invalidate_from(&mut self, k: usize) {
        if k >= self.dirty_from {
            return;
        }
        // simlint: allow(panic-path) — partition/queue indices come from ensure_est-built state; in-bounds by construction
        for e in &self.plan[k..self.dirty_from] {
            self.combined
                .remove_usage(e.start, e.start + e.est, e.procs);
        }
        self.dirty_from = k;
    }

    /// Accumulates an invalidation cause; between two passes the most
    /// disruptive one wins ([`RepairCause`] orders by disruption).
    fn note(&mut self, cause: RepairCause) {
        self.pending_cause = Some(match self.pending_cause {
            Some(prev) => prev.max(cause),
            None => cause,
        });
    }

    /// The queue's order changed wholesale (a policy re-sort): nothing
    /// about the positional alignment survives.
    fn resorted(&mut self) {
        self.invalidate_from(0);
        self.plan.clear();
        self.note(RepairCause::Resort);
    }
}

/// Estimated planning state (releases + conservative plans) under one
/// estimator.
#[derive(Debug, Clone)]
struct EstState {
    estimator: RuntimeEstimator,
    parts: Vec<PartPlan>,
}

#[derive(Debug, Clone)]
struct PartPlan {
    /// Baseline-free + release edges of the partition's running jobs under
    /// `EstState::estimator`. Release edges are inserted *unclamped*
    /// (`start + estimate`); edges the clock has passed are
    /// query-equivalent to a clamped rebuild and are removed bitwise when
    /// the job completes.
    releases: AvailabilityProfile,
    /// Conservative state; materialized the first time a conservative
    /// pass consults this partition.
    cons: Option<ConsPlan>,
}

impl EstState {
    fn build(parts: &[Partition], estimator: RuntimeEstimator, now: f64) -> Self {
        let parts = parts
            .iter()
            .map(|p| {
                let mut releases = AvailabilityProfile::new(now, p.free());
                for r in p.running() {
                    releases.add_release_raw(r.start + estimator.estimate(&r.job), r.job.procs);
                }
                PartPlan {
                    releases,
                    cons: None,
                }
            })
            .collect(); // simlint: allow(hot-alloc) — cold from-scratch ConsPlan build; steady state uses incremental repair
        Self { estimator, parts }
    }
}

/// The persistent planning layer owned by `state::Simulation`. All hooks
/// are O(1) no-ops until a consumer (a conservative pass, an EASY shadow
/// query, or a backfill-delay check) first consults the corresponding
/// state, which is then maintained incrementally for the rest of the run.
#[derive(Debug, Clone, Default)]
pub(crate) struct Planner {
    /// Ground-truth release profiles (actual runtimes), estimator-free.
    actual: Option<Vec<AvailabilityProfile>>,
    /// Estimated planning state, keyed by the estimator of the first
    /// consumer; a consult under a different estimator rebuilds it.
    est: Option<EstState>,
    /// Passive suffix-repair accounting (see [`crate::observe`]).
    stats: PlanStats,
    /// The repair performed by the most recent [`Planner::conservative_starts`]
    /// call, for the audit log's `plan_repaired` records; `None` when the
    /// last pass repaired nothing. Overwritten every pass, consumed by
    /// [`Planner::take_last_repair`].
    last_repair: Option<(RepairCause, usize)>,
}

impl Planner {
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of the planner's suffix-repair accounting.
    pub fn stats(&self) -> PlanStats {
        self.stats.clone() // simlint: allow(hot-alloc) — stats snapshot is probe-gated diagnostics, not the scheduling path
    }

    /// The (cause, entries) repair of the most recent conservative pass,
    /// if it repaired anything. Consuming — a second call returns `None`.
    pub fn take_last_repair(&mut self) -> Option<(RepairCause, usize)> {
        self.last_repair.take()
    }

    /// Sums the passive profile counters of every persistent profile the
    /// planner owns (ground truth, estimated releases, conservative
    /// combined). Debug-oracle scratch profiles never land here.
    pub fn profile_stats(&self) -> ProfileStats {
        let mut total = ProfileStats::default();
        if let Some(actual) = &self.actual {
            for prof in actual {
                total.absorb(&prof.stats());
            }
        }
        if let Some(est) = &self.est {
            for pp in &est.parts {
                total.absorb(&pp.releases.stats());
                if let Some(cons) = &pp.cons {
                    total.absorb(&cons.combined.stats());
                }
            }
        }
        total
    }

    /// A job entered partition `p`'s queue at `pos` (`None`: appended with
    /// a deferred re-sort pending — positional alignment is gone).
    pub fn on_enqueue(&mut self, p: usize, pos: Option<usize>) {
        let Some(cons) = self.cons_mut(p) else { return };
        match pos {
            Some(k) => {
                cons.invalidate_from(k);
                cons.note(RepairCause::Arrival);
                let at = k.min(cons.plan.len());
                cons.plan.insert(at, UNPLANNED);
            }
            None => cons.resorted(),
        }
    }

    /// A still-waiting job left partition `p`'s queue at `pos` (migration).
    pub fn on_dequeue(&mut self, p: usize, pos: usize) {
        let Some(cons) = self.cons_mut(p) else { return };
        cons.invalidate_from(pos);
        cons.note(RepairCause::Migration);
        if pos < cons.plan.len() {
            cons.plan.remove(pos);
        }
    }

    /// Partition `p`'s queue was re-sorted in place.
    pub fn on_resort(&mut self, p: usize) {
        if let Some(cons) = self.cons_mut(p) {
            cons.resorted();
        }
    }

    /// The job at queue position `pos` of partition `p` started now.
    pub fn on_start(&mut self, p: usize, pos: usize, job: &Job, now: f64) {
        let procs = job.procs;
        if let Some(actual) = &mut self.actual {
            let prof = &mut actual[p]; // simlint: allow(panic-path) — partition/queue indices come from ensure_est-built state; in-bounds by construction
            prof.shift_baseline(-(procs as i64));
            prof.add_release_raw(now + job.runtime, procs);
        }
        let Some(est) = &mut self.est else { return };
        let e = est.estimator.estimate(job);
        let pp = &mut est.parts[p]; // simlint: allow(panic-path) — partition/queue indices come from ensure_est-built state; in-bounds by construction
        pp.releases.shift_baseline(-(procs as i64));
        pp.releases.add_release_raw(now + e, procs);
        let Some(cons) = pp.cons.as_mut() else { return };
        cons.combined.shift_baseline(-(procs as i64));
        cons.combined.add_release_raw(now + e, procs);
        if pos < cons.dirty_from {
            let entry = cons.plan[pos]; // simlint: allow(panic-path) — partition/queue indices come from ensure_est-built state; in-bounds by construction
            debug_assert_eq!(entry.id, job.id, "plan/queue alignment lost");
            if entry.start.to_bits() == now.to_bits() {
                // The job starts exactly at its reserved instant: swapping
                // its usage [now, now+est) for the release just added is
                // availability-neutral at every queryable time, so every
                // later reservation stays valid.
                cons.combined
                    .remove_usage(entry.start, entry.start + entry.est, entry.procs);
                cons.plan.remove(pos);
                cons.dirty_from -= 1;
            } else {
                // Started off-plan (epsilon-slack backfill or a start the
                // plan predates): later reservations saw a different
                // profile than a rebuild would — replan them.
                cons.invalidate_from(pos);
                cons.note(RepairCause::OffPlanStart);
                cons.plan.remove(pos);
            }
        } else if pos < cons.plan.len() {
            cons.plan.remove(pos);
        }
    }

    /// The running job `r` of partition `p` completed now.
    pub fn on_complete(&mut self, p: usize, r: &crate::state::RunningJob, now: f64) {
        let procs = r.job.procs;
        if let Some(actual) = &mut self.actual {
            let prof = &mut actual[p]; // simlint: allow(panic-path) — partition/queue indices come from ensure_est-built state; in-bounds by construction
            prof.remove_release(r.start + r.job.runtime, procs);
            prof.shift_baseline(procs as i64);
        }
        let Some(est) = &mut self.est else { return };
        let est_end = r.start + est.estimator.estimate(&r.job);
        let pp = &mut est.parts[p]; // simlint: allow(panic-path) — partition/queue indices come from ensure_est-built state; in-bounds by construction
        pp.releases.remove_release(est_end, procs);
        pp.releases.shift_baseline(procs as i64);
        let Some(cons) = pp.cons.as_mut() else { return };
        cons.combined.remove_release(est_end, procs);
        cons.combined.shift_baseline(procs as i64);
        if est_end > now {
            // Early completion: availability genuinely moved left of what
            // the plan assumed — a from-scratch pass would re-derive every
            // reservation, so the whole partition replans.
            cons.invalidate_from(0);
            cons.note(RepairCause::EarlyCompletion);
        }
    }

    /// Partition `p`'s live capacity changed by `delta` processors
    /// (positive: repair / resize growth; negative: failure / shrink).
    /// The simulation has already moved `part.free` by the same delta, so
    /// every persistent baseline shifts to match — the PR-5 exact-removal
    /// counterpart for capacity — and the conservative plan fully replans:
    /// a capacity change moves availability at every future instant, the
    /// same ripple as an early completion (and is attributed to that
    /// cause, keeping the repair-cause vocabulary closed).
    pub fn on_capacity(&mut self, p: usize, delta: i64) {
        if delta == 0 {
            return;
        }
        if let Some(actual) = &mut self.actual {
            actual[p].shift_baseline(delta); // simlint: allow(panic-path) — partition/queue indices come from ensure_est-built state; in-bounds by construction
        }
        let Some(est) = &mut self.est else { return };
        let pp = &mut est.parts[p]; // simlint: allow(panic-path) — partition/queue indices come from ensure_est-built state; in-bounds by construction
        pp.releases.shift_baseline(delta);
        let Some(cons) = pp.cons.as_mut() else { return };
        cons.combined.shift_baseline(delta);
        cons.invalidate_from(0);
        cons.note(RepairCause::EarlyCompletion);
    }

    fn cons_mut(&mut self, p: usize) -> Option<&mut ConsPlan> {
        self.est.as_mut()?.parts[p].cons.as_mut() // simlint: allow(panic-path) — partition/queue indices come from ensure_est-built state; in-bounds by construction
    }

    fn ensure_est(&mut self, parts: &[Partition], estimator: RuntimeEstimator, now: f64) {
        let stale = self.est.as_ref().is_none_or(|e| e.estimator != estimator);
        if stale {
            self.est = Some(EstState::build(parts, estimator, now));
        }
    }

    /// Runs the incremental conservative planning pass for partition `p`:
    /// repairs the invalidated suffix of the reservation plan and returns
    /// the queue positions (ascending, head excluded) whose reservation
    /// start is "now" — the backfill set of the pass.
    pub fn conservative_starts(
        &mut self,
        parts: &[Partition],
        p: usize,
        estimator: RuntimeEstimator,
        now: f64,
    ) -> Vec<usize> {
        self.ensure_est(parts, estimator, now);
        let part = &parts[p]; // simlint: allow(panic-path) — partition/queue indices come from ensure_est-built state; in-bounds by construction
        let pp = &mut self.est.as_mut().expect("just ensured").parts[p]; // simlint: allow(panic-path) — ensure_est on the preceding line guarantees est is Some
        pp.releases.advance_to(now);
        let cons = pp.cons.get_or_insert_with(|| {
            // The clone would carry the release profile's op history into
            // a second harvested profile — wipe it so ops count once.
            let mut combined = pp.releases.clone(); // simlint: allow(hot-alloc) — one-time ConsPlan build; amortized away by incremental suffix repair
            combined.clear_stats();
            ConsPlan {
                combined,
                plan: Vec::new(), // simlint: allow(hot-alloc) — Vec::new allocates nothing; the plan grows during the cold rebuild
                dirty_from: 0,
                pending_cause: None,
            }
        });
        cons.combined.advance_to(now);
        debug_assert_eq!(cons.combined.baseline(), part.free() as i64);
        if cons.plan.len() != part.queue().len() {
            // Only a re-sort desyncs the lengths, and it dirties
            // everything, so the stale entries are never read.
            debug_assert_eq!(cons.dirty_from, 0, "plan desynced outside a re-sort");
            cons.plan.resize(part.queue().len(), UNPLANNED);
        }
        // Reservations the clock ran past are stale: a fresh pass can only
        // return starts ≥ now, so repair from the first such position.
        if let Some(k) = cons.plan[..cons.dirty_from] // simlint: allow(panic-path) — partition/queue indices come from ensure_est-built state; in-bounds by construction
            .iter()
            .position(|e| e.start < now)
        {
            cons.invalidate_from(k);
            cons.note(RepairCause::Stale);
        }
        let repair_len = part.queue().len() - cons.dirty_from;
        if repair_len > 0 {
            // A freshly materialized plan has no noted cause; its first
            // full derivation is attributed to arrivals.
            let cause = cons.pending_cause.unwrap_or(RepairCause::Arrival);
            self.stats.record_repair(cause, repair_len);
            self.last_repair = Some((cause, repair_len));
        } else {
            self.last_repair = None;
        }
        cons.pending_cause = None;
        for j in cons.dirty_from..part.queue().len() {
            let job = &part.queue()[j]; // simlint: allow(panic-path) — partition/queue indices come from ensure_est-built state; in-bounds by construction
            let e = estimator.estimate(job);
            let t = cons.combined.earliest_fit(job.procs, e, now);
            debug_assert!(t.is_finite(), "every queued job fits an empty partition");
            cons.combined.add_usage(t, t + e, job.procs);
            // simlint: allow(panic-path) — partition/queue indices come from ensure_est-built state; in-bounds by construction
            cons.plan[j] = PlanEntry {
                id: job.id,
                start: t,
                est: e,
                procs: job.procs,
            };
        }
        cons.dirty_from = part.queue().len();
        #[cfg(debug_assertions)]
        assert_plan_matches_scratch(part, estimator, now, &cons.plan);
        cons.plan
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, e)| e.start <= now + EPS)
            .map(|(i, _)| i)
            .collect() // simlint: allow(hot-alloc) — the due-starts action set is an owned Vec by BackfillSim contract
    }

    /// The EASY shadow time and extra-processor count for partition `p`'s
    /// reserved job, from the persistent release profile.
    pub fn shadow_extra(
        &mut self,
        parts: &[Partition],
        p: usize,
        estimator: RuntimeEstimator,
        now: f64,
        reserved: &Job,
    ) -> (f64, u32) {
        self.ensure_est(parts, estimator, now);
        let pp = &mut self.est.as_mut().expect("just ensured").parts[p]; // simlint: allow(panic-path) — ensure_est on the preceding line guarantees est is Some
        pp.releases.advance_to(now);
        debug_assert_eq!(pp.releases.baseline(), parts[p].free() as i64); // simlint: allow(panic-path) — partition/queue indices come from ensure_est-built state; in-bounds by construction
        let shadow = pp.releases.earliest_fit(reserved.procs, 0.0, now);
        let extra = (pp.releases.avail_at(shadow) - reserved.procs as i64).max(0) as u32;
        #[cfg(debug_assertions)]
        {
            // simlint: allow(panic-path) — partition/queue indices come from ensure_est-built state; in-bounds by construction
            let part = &parts[p];
            let mut prof = AvailabilityProfile::new(now, part.free());
            for r in part.running() {
                prof.add_release((r.start + estimator.estimate(&r.job)).max(now), r.job.procs);
            }
            let s = prof.earliest_avail(reserved.procs);
            let x = (prof.avail_at(s) - reserved.procs as i64).max(0) as u32;
            assert!(
                shadow.to_bits() == s.to_bits() && extra == x,
                "persistent shadow ({shadow}, {extra}) diverged from scratch ({s}, {x})"
            );
        }
        (shadow, extra)
    }

    /// Whether starting `job` now on partition `p` would push back the
    /// reserved job's ground-truth earliest start (actual runtimes). The
    /// trial usage is applied to the persistent profile and retracted —
    /// removal is exact, so the profile is unchanged afterwards.
    pub fn would_delay(
        &mut self,
        parts: &[Partition],
        p: usize,
        job: &Job,
        reserved_procs: u32,
        now: f64,
    ) -> bool {
        let actual = self.actual.get_or_insert_with(|| {
            parts
                .iter()
                .map(|pt| {
                    let mut prof = AvailabilityProfile::new(now, pt.free());
                    for r in pt.running() {
                        prof.add_release_raw(r.start + r.job.runtime, r.job.procs);
                    }
                    prof
                })
                .collect() // simlint: allow(hot-alloc) — one-time ground-truth profile build, cached for the whole run
        });
        let prof = &mut actual[p]; // simlint: allow(panic-path) — partition/queue indices come from ensure_est-built state; in-bounds by construction
        prof.advance_to(now);
        debug_assert_eq!(prof.baseline(), parts[p].free() as i64); // simlint: allow(panic-path) — partition/queue indices come from ensure_est-built state; in-bounds by construction
        let before = prof.earliest_fit(reserved_procs, 0.0, now);
        prof.add_usage(now, now + job.runtime, job.procs);
        let after = prof.earliest_fit(reserved_procs, 0.0, now);
        prof.remove_usage(now, now + job.runtime, job.procs);
        #[cfg(debug_assertions)]
        {
            // simlint: allow(panic-path) — partition/queue indices come from ensure_est-built state; in-bounds by construction
            let part = &parts[p];
            let mut scratch = AvailabilityProfile::new(now, part.free());
            for r in part.running() {
                scratch.add_release(r.end().max(now), r.job.procs);
            }
            let b = scratch.earliest_avail(reserved_procs);
            scratch.add_usage(now, now + job.runtime, job.procs);
            let a = scratch.earliest_avail(reserved_procs);
            assert!(
                before.to_bits() == b.to_bits() && after.to_bits() == a.to_bits(),
                "persistent delay check ({before}, {after}) diverged from scratch ({b}, {a})"
            );
        }
        after > before + EPS
    }
}

/// The from-scratch conservative planning pass over any [`BackfillSim`]:
/// plans a reservation for every queued job in priority order against a
/// freshly built availability profile and returns the queue positions
/// (head excluded) whose planned start is "now". This is the seed-pinned
/// semantics, the default for engines without a persistent planner, and
/// the planner's debug oracle.
pub fn from_scratch_conservative_starts<S: BackfillSim + ?Sized>(
    sim: &S,
    estimator: RuntimeEstimator,
) -> Vec<usize> {
    let now = sim.now();
    let mut prof = AvailabilityProfile::new(now, sim.free_procs());
    for r in sim.running() {
        prof.add_release((r.start + estimator.estimate(&r.job)).max(now), r.job.procs);
    }
    let mut starts = Vec::new(); // simlint: allow(hot-alloc) — Vec::new allocates nothing; the buffer grows once and is reused
    for (i, job) in sim.queue().iter().enumerate() {
        let est = estimator.estimate(job);
        let t = prof.earliest_fit(job.procs, est, now);
        debug_assert!(t.is_finite(), "every queued job fits an empty cluster");
        prof.add_usage(t, t + est, job.procs);
        // Index 0 is the reserved head job: if it could start now the
        // simulator would have started it already, so only later jobs
        // (true backfills) are collected.
        if i > 0 && t <= now + EPS {
            starts.push(i);
        }
    }
    starts
}

/// The from-scratch EASY shadow/extra computation over any
/// [`BackfillSim`] — the default for engines without a persistent
/// planner.
pub fn from_scratch_shadow_extra<S: BackfillSim + ?Sized>(
    sim: &S,
    estimator: RuntimeEstimator,
) -> Option<(f64, u32)> {
    let reserved = *sim.reserved_job()?;
    let now = sim.now();
    let mut prof = AvailabilityProfile::new(now, sim.free_procs());
    for r in sim.running() {
        prof.add_release((r.start + estimator.estimate(&r.job)).max(now), r.job.procs);
    }
    let shadow = prof.earliest_avail(reserved.procs);
    let extra = (prof.avail_at(shadow) - reserved.procs as i64).max(0) as u32;
    Some((shadow, extra))
}

/// Debug oracle: the repaired plan must equal a from-scratch replan, job
/// by job, bitwise.
#[cfg(debug_assertions)]
fn assert_plan_matches_scratch(
    part: &Partition,
    estimator: RuntimeEstimator,
    now: f64,
    plan: &[PlanEntry],
) {
    let mut prof = AvailabilityProfile::new(now, part.free());
    for r in part.running() {
        prof.add_release((r.start + estimator.estimate(&r.job)).max(now), r.job.procs);
    }
    for (j, job) in part.queue().iter().enumerate() {
        let est = estimator.estimate(job);
        let t = prof.earliest_fit(job.procs, est, now);
        prof.add_usage(t, t + est, job.procs);
        assert!(
            plan[j].id == job.id && plan[j].start.to_bits() == t.to_bits(), // simlint: allow(panic-path) — divergence oracle — this fn exists to panic when the incremental plan drifts
            "incremental plan diverged from scratch at queue[{j}] (job {}): \
             incremental ({}, {}), scratch ({}, {t})",
            job.id,
            plan[j].id, // simlint: allow(panic-path) — divergence oracle — this fn exists to panic when the incremental plan drifts
            plan[j].start, // simlint: allow(panic-path) — divergence oracle — this fn exists to panic when the incremental plan drifts
            job.id,
        );
    }
}
