//! Cluster shape: named partitions with sizes and relative speed factors.

use serde::{Deserialize, Serialize};

/// One partition of the cluster: a named pool of identical processors with
/// a relative speed factor.
///
/// Speed is relative to the trace's reference hardware: a job whose trace
/// runtime is `r` seconds executes in `r / speed` wall-clock seconds on
/// this partition (and its user estimate scales the same way — users
/// request wall-clock allocations on the machine they submit to).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionSpec {
    /// Human-readable partition name (e.g. `"batch"`, `"express"`).
    pub name: String,
    /// Number of processors in this partition.
    pub procs: u32,
    /// Relative speed factor (1.0 = reference hardware).
    pub speed: f64,
}

impl PartitionSpec {
    /// A named partition with the given size and speed.
    pub fn new(name: impl Into<String>, procs: u32, speed: f64) -> Self {
        assert!(procs > 0, "partition must have at least one processor");
        assert!(
            speed.is_finite() && speed > 0.0,
            "speed factor must be positive and finite"
        );
        Self {
            name: name.into(),
            procs,
            speed,
        }
    }
}

/// The shape of a (possibly heterogeneous) cluster: an ordered list of
/// partitions. The single-partition, speed-1.0 spec is the degenerate case
/// that reproduces the homogeneous engine bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    parts: Vec<PartitionSpec>,
}

impl ClusterSpec {
    /// A cluster from an explicit partition list.
    pub fn new(parts: Vec<PartitionSpec>) -> Self {
        assert!(!parts.is_empty(), "cluster needs at least one partition");
        Self { parts }
    }

    /// The degenerate homogeneous spec: one partition, speed 1.0. A
    /// [`crate::Simulation`] built on this spec realizes bitwise-identical
    /// schedules to the flat engine (pinned by the equivalence suite).
    pub fn homogeneous(procs: u32) -> Self {
        Self::new(vec![PartitionSpec::new("main", procs, 1.0)])
    }

    /// Builds a spec from a workload-side [`swf::PartitionLayout`] list.
    pub fn from_layout(layout: &[swf::PartitionLayout]) -> Self {
        Self::new(
            layout
                .iter()
                .map(|p| PartitionSpec::new(p.name.clone(), p.procs, p.speed))
                .collect(),
        )
    }

    /// The partitions, in routing-preference order.
    pub fn partitions(&self) -> &[PartitionSpec] {
        &self.parts
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Whether the spec holds no partitions (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Total processors across all partitions.
    pub fn total_procs(&self) -> u32 {
        self.parts.iter().map(|p| p.procs).sum()
    }

    /// The widest partition — the maximum routable job width.
    pub fn max_partition_procs(&self) -> u32 {
        self.parts.iter().map(|p| p.procs).max().unwrap_or(0)
    }

    /// Whether this is the degenerate homogeneous shape (one partition at
    /// reference speed).
    pub fn is_degenerate(&self) -> bool {
        self.parts.len() == 1 && self.parts[0].speed == 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_is_degenerate() {
        let s = ClusterSpec::homogeneous(128);
        assert!(s.is_degenerate());
        assert_eq!(s.total_procs(), 128);
        assert_eq!(s.max_partition_procs(), 128);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn totals_and_widest_across_partitions() {
        let s = ClusterSpec::new(vec![
            PartitionSpec::new("base", 96, 1.0),
            PartitionSpec::new("express", 32, 1.35),
        ]);
        assert!(!s.is_degenerate());
        assert_eq!(s.total_procs(), 128);
        assert_eq!(s.max_partition_procs(), 96);
    }

    #[test]
    fn from_layout_round_trips() {
        let layout = swf::split_cluster(256, 4);
        let s = ClusterSpec::from_layout(&layout);
        assert_eq!(s.len(), 4);
        assert_eq!(s.total_procs(), 256);
        for (a, b) in s.partitions().iter().zip(&layout) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.procs, b.procs);
            assert_eq!(a.speed, b.speed);
        }
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn empty_spec_panics() {
        let _ = ClusterSpec::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_speed_panics() {
        let _ = PartitionSpec::new("x", 4, 0.0);
    }
}
