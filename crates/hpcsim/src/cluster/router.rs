//! Meta-scheduler routing: which partition an arriving job joins.
//!
//! The [`Router`] decides **once, at submission**, before the job enters a
//! partition's queue — jobs never migrate afterwards, matching how real
//! multi-partition systems bind a job to the queue it was submitted to.
//! Routers see a read-only [`ClusterView`] of every partition's current
//! state and must return the index of a partition the job fits
//! (`job.procs <= partition.procs()`).
//!
//! Three built-in strategies cover the classic design space:
//!
//! * [`StaticAffinity`] — state-independent size classes: the narrowest
//!   partition that fits the job (ties to the earlier partition). Mirrors
//!   per-queue width limits on production machines.
//! * [`LeastLoaded`] — joins the fitting partition with the lowest
//!   committed load (used + queued processors, normalized by size).
//! * [`EarliestStart`] — full meta-scheduling: per fitting partition,
//!   plans a conservative-style reservation chain under a runtime
//!   estimator and picks the partition with the earliest estimated start.

use super::partition::Partition;
use crate::estimator::RuntimeEstimator;
use crate::profile::AvailabilityProfile;
use swf::Job;

/// Read-only snapshot of the cluster a router decides against.
#[derive(Debug)]
pub struct ClusterView<'a> {
    /// Current simulation time, seconds.
    pub now: f64,
    /// Every partition's live state.
    pub parts: &'a [Partition],
}

impl ClusterView<'_> {
    /// Indices of partitions the job fits by width.
    pub fn fitting(&self, job: &Job) -> impl Iterator<Item = usize> + '_ {
        let procs = job.procs;
        self.parts
            .iter()
            .enumerate()
            .filter(move |(_, p)| procs <= p.procs())
            .map(|(i, _)| i)
    }
}

/// A meta-scheduling strategy mapping each arriving job to a partition.
///
/// Implementations must be deterministic (same job + same view → same
/// partition) — the simulator's reproducibility depends on it — and must
/// only return indices from [`ClusterView::fitting`].
pub trait Router: std::fmt::Debug + Send + Sync {
    /// Short label used in experiment tables.
    fn name(&self) -> &'static str;

    /// The partition `job` joins. Panics allowed if no partition fits
    /// (the simulation filters unroutable jobs up front).
    fn route(&self, job: &Job, view: &ClusterView<'_>) -> usize;
}

/// Routes by size class: the narrowest fitting partition, ties to the
/// earlier one. State-independent.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticAffinity;

impl Router for StaticAffinity {
    fn name(&self) -> &'static str {
        "affinity"
    }

    fn route(&self, job: &Job, view: &ClusterView<'_>) -> usize {
        view.fitting(job)
            .min_by_key(|&i| view.parts[i].procs())
            .expect("job fits no partition")
    }
}

/// Routes to the fitting partition with the lowest committed load:
/// `(used + queued) / procs`, ties to the earlier partition.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastLoaded;

impl Router for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn route(&self, job: &Job, view: &ClusterView<'_>) -> usize {
        view.fitting(job)
            .min_by(|&a, &b| {
                let load = |i: usize| {
                    let p = &view.parts[i];
                    (p.used() + p.queued_procs()) as f64 / p.procs() as f64
                };
                load(a).total_cmp(&load(b)).then(a.cmp(&b))
            })
            .expect("job fits no partition")
    }
}

/// Full meta-scheduling: estimates, per fitting partition, when the job
/// could start if appended behind the partition's current queue (running
/// jobs release at their estimated ends; every queued job is granted a
/// conservative-style reservation first), and joins the partition with the
/// earliest estimated start. Ties break to faster, then earlier partitions.
#[derive(Debug, Clone, Copy)]
pub struct EarliestStart {
    /// The runtime estimator the plan is built under (the scheduler-side
    /// knowledge; [`RuntimeEstimator::RequestTime`] matches what EASY sees).
    pub estimator: RuntimeEstimator,
}

impl Default for EarliestStart {
    fn default() -> Self {
        Self {
            estimator: RuntimeEstimator::RequestTime,
        }
    }
}

impl EarliestStart {
    /// The estimated earliest start of `job` on partition `i` of `view`,
    /// in wall-clock seconds (partition speed already applied).
    pub fn estimated_start(&self, job: &Job, view: &ClusterView<'_>, i: usize) -> f64 {
        let p = &view.parts[i];
        let mut prof = AvailabilityProfile::new(view.now, p.free());
        for r in p.running() {
            let est_end = (r.start + self.estimator.estimate(&r.job)).max(view.now);
            prof.add_release(est_end, r.job.procs);
        }
        for q in p.queue() {
            let est = self.estimator.estimate(q);
            let t = prof.earliest_fit(q.procs, est, view.now);
            prof.add_usage(t, t + est, q.procs);
        }
        // The candidate job's durations scale with the partition's speed.
        let scaled = p.scale_job(*job);
        let est = self.estimator.estimate(&scaled);
        prof.earliest_fit(scaled.procs, est, view.now)
    }
}

impl Router for EarliestStart {
    fn name(&self) -> &'static str {
        "earliest-start"
    }

    fn route(&self, job: &Job, view: &ClusterView<'_>) -> usize {
        // One estimate per partition, not per comparison — the profile
        // construction is the expensive part of this hot path.
        let starts: Vec<(usize, f64)> = view
            .fitting(job)
            .map(|i| (i, self.estimated_start(job, view, i)))
            .collect();
        starts
            .into_iter()
            .min_by(|&(a, sa), &(b, sb)| {
                sa.total_cmp(&sb)
                    .then(view.parts[b].speed().total_cmp(&view.parts[a].speed()))
                    .then(a.cmp(&b))
            })
            .map(|(i, _)| i)
            .expect("job fits no partition")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::spec::PartitionSpec;
    use crate::state::RunningJob;

    fn parts(specs: &[(u32, f64)]) -> Vec<Partition> {
        specs
            .iter()
            .enumerate()
            .map(|(i, &(procs, speed))| {
                Partition::new(PartitionSpec::new(format!("p{i}"), procs, speed))
            })
            .collect()
    }

    fn job(id: usize, procs: u32, rt: f64) -> Job {
        Job::new(id, 0.0, procs, rt, rt)
    }

    #[test]
    fn affinity_picks_narrowest_fitting_partition() {
        let parts = parts(&[(96, 1.0), (32, 1.35), (16, 0.8)]);
        let view = ClusterView {
            now: 0.0,
            parts: &parts,
        };
        assert_eq!(StaticAffinity.route(&job(0, 8, 100.0), &view), 2);
        assert_eq!(StaticAffinity.route(&job(1, 20, 100.0), &view), 1);
        assert_eq!(StaticAffinity.route(&job(2, 64, 100.0), &view), 0);
    }

    #[test]
    fn least_loaded_follows_the_load_signal() {
        let mut parts = parts(&[(32, 1.0), (32, 1.0)]);
        let view = ClusterView {
            now: 0.0,
            parts: &parts,
        };
        // Equal load: ties to the earlier partition.
        assert_eq!(LeastLoaded.route(&job(0, 4, 10.0), &view), 0);
        // Load partition 0 (16 of 32 used) — partition 1 wins.
        parts[0].free = 16;
        let view = ClusterView {
            now: 0.0,
            parts: &parts,
        };
        assert_eq!(LeastLoaded.route(&job(1, 4, 10.0), &view), 1);
        // Queue backlog counts too.
        parts[0].free = 32;
        parts[1].queue.push(job(9, 20, 100.0));
        let view = ClusterView {
            now: 0.0,
            parts: &parts,
        };
        assert_eq!(LeastLoaded.route(&job(2, 4, 10.0), &view), 0);
    }

    #[test]
    fn earliest_start_avoids_the_busy_partition() {
        let mut parts = parts(&[(8, 1.0), (8, 1.0)]);
        // Partition 0 fully busy until t=1000.
        parts[0].free = 0;
        parts[0].running.push(RunningJob {
            job: job(7, 8, 1000.0),
            start: 0.0,
        });
        let view = ClusterView {
            now: 0.0,
            parts: &parts,
        };
        let r = EarliestStart::default();
        assert_eq!(r.estimated_start(&job(0, 4, 10.0), &view, 0), 1000.0);
        assert_eq!(r.estimated_start(&job(0, 4, 10.0), &view, 1), 0.0);
        assert_eq!(r.route(&job(0, 4, 10.0), &view), 1);
    }

    #[test]
    fn earliest_start_accounts_for_queued_reservations() {
        let mut parts = parts(&[(8, 1.0), (8, 1.0)]);
        // Both idle, but partition 0 has a queued full-machine job.
        parts[0].queue.push(job(5, 8, 500.0));
        let view = ClusterView {
            now: 0.0,
            parts: &parts,
        };
        assert_eq!(EarliestStart::default().route(&job(0, 8, 10.0), &view), 1);
    }

    #[test]
    fn earliest_start_ties_break_to_faster_partition() {
        let parts = parts(&[(8, 1.0), (8, 2.0)]);
        let view = ClusterView {
            now: 0.0,
            parts: &parts,
        };
        assert_eq!(EarliestStart::default().route(&job(0, 4, 100.0), &view), 1);
    }

    #[test]
    fn routers_only_pick_fitting_partitions() {
        let parts = parts(&[(16, 1.0), (64, 1.0)]);
        let view = ClusterView {
            now: 0.0,
            parts: &parts,
        };
        let wide = job(0, 32, 100.0);
        assert_eq!(StaticAffinity.route(&wide, &view), 1);
        assert_eq!(LeastLoaded.route(&wide, &view), 1);
        assert_eq!(EarliestStart::default().route(&wide, &view), 1);
    }
}
