//! Meta-scheduler routing: which partition a job queues on — decided at
//! submission, and (optionally) revisited at every decision point.
//!
//! The [`Router`] decides where an arriving job queues **at submission**,
//! before the job enters a partition's queue. Under the default
//! [`ReroutePolicy::AtSubmission`] that decision is final — jobs never
//! migrate afterwards, matching how real multi-partition systems bind a
//! job to the queue it was submitted to. Under
//! [`ReroutePolicy::AtDecisionPoints`] the simulation calls the router's
//! [`Router::reroute`] hook for every still-waiting job whenever an
//! arrival/completion batch settles, and migrates jobs whose estimated
//! start would be strictly earlier elsewhere — the Moab-style
//! meta-scheduler that spans clusters. Routers see a read-only
//! [`ClusterView`] of every partition's current state and must return the
//! index of a partition the job fits (`job.procs <= partition.procs()`).
//!
//! Three built-in strategies cover the classic design space:
//!
//! * [`StaticAffinity`] — state-independent size classes: the narrowest
//!   partition that fits the job (ties to the earlier partition). Mirrors
//!   per-queue width limits on production machines.
//! * [`LeastLoaded`] — joins the fitting partition with the lowest
//!   committed load (used + queued processors, normalized by size).
//! * [`EarliestStart`] — full meta-scheduling: per fitting partition,
//!   plans a conservative-style reservation chain under a runtime
//!   estimator and picks the partition with the earliest estimated start.

use super::partition::Partition;
use crate::estimator::RuntimeEstimator;
use crate::observe::{ProfileStats, RouterStats};
use crate::policy::Policy;
use crate::profile::AvailabilityProfile;
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell}; // simlint: allow(sync-audit) — single-threaded plan-cache interior mutability; the parallel split moves to per-worker caches
use swf::Job;

/// When (if ever) the meta-scheduler revisits a waiting job's partition.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ReroutePolicy {
    /// Route once at submission and never migrate — the classic binding
    /// and the default; bitwise-identical to the pre-migration engine.
    #[default]
    AtSubmission,
    /// Re-evaluate every still-waiting, non-reserved job at each decision
    /// point (settled arrival/completion batch) and migrate it when the
    /// router estimates a strictly earlier start elsewhere.
    AtDecisionPoints {
        /// Migration budget per job: a job moves at most this many times
        /// over its queueing lifetime (0 disables migration outright).
        max_moves_per_job: u32,
        /// Minimum estimated start-time gain, in seconds, for a move to be
        /// worth taking. Gains below this keep the job where it is.
        min_gain_secs: f64,
    },
}

impl ReroutePolicy {
    /// Short label used in experiment tables (`"at-submission"` /
    /// `"decision-points"`).
    pub fn label(&self) -> &'static str {
        match self {
            ReroutePolicy::AtSubmission => "at-submission",
            ReroutePolicy::AtDecisionPoints { .. } => "decision-points",
        }
    }
}

/// A proposed migration for one waiting job: the target partition and the
/// estimated start-time gain (seconds, always positive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RerouteDecision {
    /// Index of the partition the job should move to.
    pub to: usize,
    /// Estimated start-time improvement of the move, in seconds.
    pub gain: f64,
}

/// Read-only snapshot of the cluster a router decides against.
#[derive(Debug)]
pub struct ClusterView<'a> {
    /// Current simulation time, seconds.
    pub now: f64,
    /// The base policy the partitions serve their queues under — routing
    /// estimates must plan queues in *policy* order, not storage order.
    pub policy: Policy,
    /// Every partition's live state.
    pub parts: &'a [Partition],
    /// Shared planning scratch for [`EarliestStart`] estimates, reused
    /// across every candidate of a routing/re-routing batch. `None`
    /// (standalone views, tests) computes each estimate from scratch —
    /// the two paths are bitwise identical (asserted against each other
    /// in debug builds).
    pub plans: Option<&'a RouterPlanCache>,
}

/// Per-partition scratch shared by [`EarliestStart`] estimates within a
/// routing batch: the partition's release profile, its policy-sorted
/// queue, and the conservative reservation chain over that order —
/// extended lazily rank by rank and rewound exactly (usage removal is
/// bitwise) as candidates of different ranks are evaluated.
///
/// Rebuilt per partition whenever the partition's mutation stamp or the
/// batch time moves, reusing the allocations (profile buckets, sort and
/// chain buffers). Owned by `state::Simulation`, handed to routers
/// through [`ClusterView::plans`].
#[derive(Debug, Clone, Default)]
pub struct RouterPlanCache {
    parts: RefCell<Vec<PartRouterPlan>>, // simlint: allow(sync-audit) — single-threaded plan-cache interior mutability; the parallel split moves to per-worker caches
    /// Passive reuse/rebuild counters (see [`crate::observe`]); only the
    /// shared-plan path increments them, so debug builds (whose oracle
    /// calls the scratch path directly) count the same as release.
    stats: Cell<RouterStats>, // simlint: allow(sync-audit) — single-threaded plan-cache interior mutability; the parallel split moves to per-worker caches
}

impl RouterPlanCache {
    /// An empty cache; entries materialize on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of the cache's passive counters.
    pub fn stats(&self) -> RouterStats {
        self.stats.get()
    }

    /// Sums the passive profile counters of every cached per-partition
    /// plan (the cache's profiles accumulate across rebuilds — `reset`
    /// keeps stats — so this is the cache's whole history).
    pub fn profile_stats(&self) -> ProfileStats {
        let mut total = ProfileStats::default();
        for entry in self.parts.borrow().iter() {
            total.absorb(&entry.profile.stats());
        }
        total
    }

    fn bump(&self, f: impl FnOnce(&mut RouterStats)) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }
}

#[derive(Debug, Clone)]
struct PartRouterPlan {
    /// `Partition::version` this entry reflects; 0 = never built.
    stamp: u64,
    /// Batch time this entry reflects.
    now: f64,
    estimator: RuntimeEstimator,
    /// The policy `sorted`/`chain` were built under.
    policy: Policy,
    /// The partition queue in policy order.
    sorted: Vec<Job>,
    /// Conservative reservation chain over `sorted`, extended lazily;
    /// `chain[r]` only depends on `sorted[..r]`, so it stays valid when
    /// the applied depth is rewound.
    chain: Vec<ChainLink>,
    /// How many chain links are currently applied to `profile`.
    depth: usize,
    /// Release profile + the usages of `chain[..depth]`.
    profile: AvailabilityProfile,
}

#[derive(Debug, Clone, Copy)]
struct ChainLink {
    start: f64,
    est: f64,
    procs: u32,
}

impl Default for PartRouterPlan {
    fn default() -> Self {
        Self {
            stamp: 0,
            now: f64::NAN,
            estimator: RuntimeEstimator::RequestTime,
            policy: Policy::Fcfs,
            sorted: Vec::new(), // simlint: allow(hot-alloc) — Vec::new allocates nothing; the buffer grows once and is reused
            chain: Vec::new(), // simlint: allow(hot-alloc) — Vec::new allocates nothing; the buffer grows once and is reused
            depth: 0,
            profile: AvailabilityProfile::new(0.0, 0),
        }
    }
}

impl PartRouterPlan {
    fn rebuild(&mut self, p: &Partition, now: f64, policy: Policy, estimator: RuntimeEstimator) {
        self.sorted.clear();
        self.sorted.extend_from_slice(p.queue());
        policy.sort_queue(&mut self.sorted, now);
        self.profile.reset(now, p.free());
        for r in p.running() {
            self.profile
                .add_release((r.start + estimator.estimate(&r.job)).max(now), r.job.procs);
        }
        self.chain.clear();
        self.depth = 0;
        self.stamp = p.version();
        self.now = now;
        self.estimator = estimator;
        self.policy = policy;
    }

    /// Moves the applied reservation-chain depth to exactly `rank`,
    /// planning chain links on first need and retracting usages exactly
    /// when rewinding.
    fn seek(&mut self, rank: usize, now: f64, estimator: RuntimeEstimator) {
        while self.depth > rank {
            let l = self.chain[self.depth - 1]; // simlint: allow(panic-path) — indices are the walker's own cursors / fitting() results; in-bounds by construction
            self.profile.remove_usage(l.start, l.start + l.est, l.procs);
            self.depth -= 1;
        }
        while self.depth < rank {
            let r = self.depth;
            if r == self.chain.len() {
                let q = self.sorted[r]; // simlint: allow(panic-path) — indices are the walker's own cursors / fitting() results; in-bounds by construction
                let est = estimator.estimate(&q);
                let start = self.profile.earliest_fit(q.procs, est, now);
                self.chain.push(ChainLink {
                    start,
                    est,
                    procs: q.procs,
                });
            }
            let l = self.chain[r]; // simlint: allow(panic-path) — indices are the walker's own cursors / fitting() results; in-bounds by construction
            self.profile.add_usage(l.start, l.start + l.est, l.procs);
            self.depth = r + 1;
        }
    }
}

impl ClusterView<'_> {
    /// Indices of partitions the job may join right now: wide enough for
    /// the job at live capacity and not draining. Without platform events
    /// this is the historical static width check (capacity never moves,
    /// nothing drains).
    pub fn fitting(&self, job: &Job) -> impl Iterator<Item = usize> + '_ {
        let procs = job.procs;
        self.parts
            .iter()
            .enumerate()
            .filter(move |(_, p)| p.admits(procs))
            .map(|(i, _)| i)
    }
}

/// A meta-scheduling strategy mapping jobs to partitions.
///
/// Implementations must be deterministic (same job + same view → same
/// partition) — the simulator's reproducibility depends on it — and must
/// only return indices from [`ClusterView::fitting`].
pub trait Router: std::fmt::Debug + Send + Sync {
    /// Short label used in experiment tables.
    fn name(&self) -> &'static str;

    /// The partition `job` joins at submission. Panics allowed if no
    /// partition fits (the simulation sets unroutable jobs aside up front
    /// and reports them as dropped).
    fn route(&self, job: &Job, view: &ClusterView<'_>) -> usize;

    /// Proposes migrating a still-waiting job off partition `from` — the
    /// decision-point hook behind [`ReroutePolicy::AtDecisionPoints`].
    ///
    /// `job` carries reference-hardware durations (the simulation
    /// unscales it from its current partition before asking); the view is
    /// the live cluster with the job still queued on `from`. Returns the
    /// strictly-better target and estimated gain, or `None` to stay. The
    /// default implementation plans [`EarliestStart`] reservation chains
    /// under the request-time estimator, so every router participates in
    /// migration without re-deriving the gain geometry; `EarliestStart`
    /// itself overrides this to reuse its configured estimator.
    fn reroute(&self, job: &Job, view: &ClusterView<'_>, from: usize) -> Option<RerouteDecision> {
        EarliestStart::default().best_move(job, view, from)
    }
}

/// Routes by size class: the narrowest fitting partition, ties to the
/// earlier one. State-independent.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticAffinity;

impl Router for StaticAffinity {
    fn name(&self) -> &'static str {
        "affinity"
    }

    fn route(&self, job: &Job, view: &ClusterView<'_>) -> usize {
        view.fitting(job)
            .min_by_key(|&i| view.parts[i].procs()) // simlint: allow(panic-path) — indices are the walker's own cursors / fitting() results; in-bounds by construction
            .expect("job fits no partition") // simlint: allow(panic-path) — router contract: submit admits only jobs that fit at least one partition
    }
}

/// Routes to the fitting partition with the lowest committed load:
/// `(used + queued) / procs`, ties to the earlier partition.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastLoaded;

impl Router for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn route(&self, job: &Job, view: &ClusterView<'_>) -> usize {
        view.fitting(job)
            .min_by(|&a, &b| {
                let load = |i: usize| {
                    let p = &view.parts[i]; // simlint: allow(panic-path) — indices are the walker's own cursors / fitting() results; in-bounds by construction
                    (p.used() + p.queued_procs()) as f64 / p.procs() as f64
                };
                load(a).total_cmp(&load(b)).then(a.cmp(&b))
            })
            .expect("job fits no partition") // simlint: allow(panic-path) — router contract: submit admits only jobs that fit at least one partition
    }
}

/// Full meta-scheduling: estimates, per fitting partition, when the job
/// could start if it joined the partition's queue at its policy position
/// (running jobs release at their estimated ends; every higher-priority
/// queued job is granted a conservative-style reservation first), and
/// joins the partition with the earliest estimated start. Ties break to
/// faster, then earlier partitions.
#[derive(Debug, Clone, Copy)]
pub struct EarliestStart {
    /// The runtime estimator the plan is built under (the scheduler-side
    /// knowledge; [`RuntimeEstimator::RequestTime`] matches what EASY sees).
    pub estimator: RuntimeEstimator,
}

impl Default for EarliestStart {
    fn default() -> Self {
        Self {
            estimator: RuntimeEstimator::RequestTime,
        }
    }
}

impl EarliestStart {
    /// The estimated earliest start of `job` on partition `i` of `view`,
    /// in wall-clock seconds (partition speed already applied).
    ///
    /// The scheduler serves each queue in **policy** order, so the
    /// reservation chain is planned over a policy-sorted copy of the
    /// queue (storage order can lag for time-dependent policies, and is
    /// simply wrong for SJF/F1 candidates that outrank queued work): jobs
    /// ranked ahead of the candidate are granted reservations first, jobs
    /// ranked behind it cannot block it. A job already queued on the
    /// partition (re-route estimation) is excluded by id so it is not
    /// planned against itself.
    ///
    /// When the view carries a [`RouterPlanCache`] (every view the
    /// simulation hands out), the release profile, the policy-sorted
    /// queue and the reservation chain are **shared scratch**, rebuilt
    /// once per partition per batch and re-wound/extended per candidate
    /// instead of rebuilt per call; candidates evaluated in policy order
    /// (the re-route pass's scan order) extend the chain monotonically.
    /// Standalone views compute from scratch; both paths are bitwise
    /// identical (cross-asserted in debug builds).
    pub fn estimated_start(&self, job: &Job, view: &ClusterView<'_>, i: usize) -> f64 {
        if let Some(cache) = view.plans {
            cache.bump(|s| s.candidate_evals += 1);
            if let Some(t) = self.estimated_start_shared(job, view, i, cache) {
                debug_assert_eq!(
                    t.to_bits(),
                    self.estimated_start_scratch(job, view, i).to_bits(),
                    "shared-plan estimate diverged from scratch (job {}, partition {i})",
                    job.id,
                );
                return t;
            }
            cache.bump(|s| s.scratch_fallbacks += 1);
        }
        self.estimated_start_scratch(job, view, i)
    }

    /// The shared-scratch estimate. Returns `None` in one rare corner:
    /// the candidate is queued on this partition and speed-rescaling
    /// drift makes its stored copy rank *strictly ahead* of its
    /// re-scaled self — the chain prefix would then wrongly include the
    /// job's own reservation, so the caller falls back to scratch.
    fn estimated_start_shared(
        &self,
        job: &Job,
        view: &ClusterView<'_>,
        i: usize,
        cache: &RouterPlanCache,
    ) -> Option<f64> {
        let mut parts = cache.parts.borrow_mut();
        if parts.len() < view.parts.len() {
            parts.resize_with(view.parts.len(), Default::default);
        }
        let entry = &mut parts[i]; // simlint: allow(panic-path) — indices are the walker's own cursors / fitting() results; in-bounds by construction
        let p = &view.parts[i]; // simlint: allow(panic-path) — indices are the walker's own cursors / fitting() results; in-bounds by construction
        if entry.stamp != p.version()
            || entry.now.to_bits() != view.now.to_bits()
            || entry.estimator != self.estimator
            || entry.policy != view.policy
        {
            entry.rebuild(p, view.now, view.policy, self.estimator);
            cache.bump(|s| s.plan_rebuilds += 1);
        } else {
            cache.bump(|s| s.plan_reuses += 1);
        }
        let scaled = p.scale_job(*job);
        // The candidate's rank: how many queued jobs outrank it. Its own
        // stored copy (same id ⇒ the (score, submit, id) order makes them
        // compare equal when the scores match bitwise) is naturally
        // excluded from the strict-less count unless rescaling drift
        // skewed the stored score lower — the fallback corner.
        let rank = entry.sorted.partition_point(|q| {
            view.policy
                .score(q, view.now)
                .total_cmp(&view.policy.score(&scaled, view.now))
                .then(q.submit.total_cmp(&scaled.submit))
                .then(q.id.cmp(&scaled.id))
                .is_lt()
        });
        // At reference speed the stored copy is bitwise the candidate, so
        // it compares equal and lands exactly at `rank` — no scan needed.
        // simlint: allow(panic-path) — indices are the walker's own cursors / fitting() results; in-bounds by construction
        if p.speed() != 1.0 && entry.sorted[..rank].iter().any(|q| q.id == job.id) {
            return None;
        }
        entry.seek(rank, view.now, self.estimator);
        let est = self.estimator.estimate(&scaled);
        Some(entry.profile.earliest_fit(scaled.procs, est, view.now))
    }

    /// The from-scratch estimate: fresh profile, fresh policy-sorted
    /// queue copy, fresh reservation chain — the pre-sharing semantics
    /// both paths are pinned to.
    fn estimated_start_scratch(&self, job: &Job, view: &ClusterView<'_>, i: usize) -> f64 {
        let p = &view.parts[i]; // simlint: allow(panic-path) — indices are the walker's own cursors / fitting() results; in-bounds by construction
        let mut prof = AvailabilityProfile::new(view.now, p.free());
        for r in p.running() {
            let est_end = (r.start + self.estimator.estimate(&r.job)).max(view.now);
            prof.add_release(est_end, r.job.procs);
        }
        // The candidate job's durations scale with the partition's speed —
        // both for its own fit and for its rank among the queued jobs
        // (which are stored already scaled).
        let scaled = p.scale_job(*job);
        let mut queued: Vec<Job> = p
            .queue()
            .iter()
            .filter(|q| q.id != job.id)
            .copied()
            .collect(); // simlint: allow(hot-alloc) — from-scratch fallback; runs only when no RouterPlanCache is shared
        view.policy.sort_queue(&mut queued, view.now);
        let ahead = queued.partition_point(|q| {
            view.policy
                .score(q, view.now)
                .total_cmp(&view.policy.score(&scaled, view.now))
                .then(q.submit.total_cmp(&scaled.submit))
                .then(q.id.cmp(&scaled.id))
                .is_lt()
        });
        // simlint: allow(panic-path) — indices are the walker's own cursors / fitting() results; in-bounds by construction
        for q in &queued[..ahead] {
            let est = self.estimator.estimate(q);
            let t = prof.earliest_fit(q.procs, est, view.now);
            prof.add_usage(t, t + est, q.procs);
        }
        let est = self.estimator.estimate(&scaled);
        prof.earliest_fit(scaled.procs, est, view.now)
    }

    /// The best strictly-earlier partition for a job currently queued on
    /// `from`: compares the job's estimated start if it stays against its
    /// estimated start on every other fitting partition. Ties among
    /// targets break like [`Router::route`] (earliest start, then faster,
    /// then earlier partition); returns `None` when staying is at least
    /// as good everywhere.
    pub fn best_move(
        &self,
        job: &Job,
        view: &ClusterView<'_>,
        from: usize,
    ) -> Option<RerouteDecision> {
        let stay = self.estimated_start(job, view, from);
        let (to, start) = view
            .fitting(job)
            .filter(|&i| i != from)
            .map(|i| (i, self.estimated_start(job, view, i)))
            .min_by(|&(a, sa), &(b, sb)| {
                sa.total_cmp(&sb)
                    .then(view.parts[b].speed().total_cmp(&view.parts[a].speed())) // simlint: allow(panic-path) — indices are the walker's own cursors / fitting() results; in-bounds by construction
                    .then(a.cmp(&b))
            })?;
        (start < stay).then_some(RerouteDecision {
            to,
            gain: stay - start,
        })
    }
}

impl Router for EarliestStart {
    fn name(&self) -> &'static str {
        "earliest-start"
    }

    fn route(&self, job: &Job, view: &ClusterView<'_>) -> usize {
        // One estimate per partition, computed inside the map so `min_by`
        // compares cached values — the profile construction is the
        // expensive part of this hot path, and streaming the pairs keeps
        // the pass allocation-free.
        view.fitting(job)
            .map(|i| (i, self.estimated_start(job, view, i)))
            .min_by(|&(a, sa), &(b, sb)| {
                sa.total_cmp(&sb)
                    .then(view.parts[b].speed().total_cmp(&view.parts[a].speed())) // simlint: allow(panic-path) — indices are the walker's own cursors / fitting() results; in-bounds by construction
                    .then(a.cmp(&b))
            })
            .map(|(i, _)| i)
            .expect("job fits no partition") // simlint: allow(panic-path) — router contract: submit admits only jobs that fit at least one partition
    }

    fn reroute(&self, job: &Job, view: &ClusterView<'_>, from: usize) -> Option<RerouteDecision> {
        self.best_move(job, view, from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::spec::PartitionSpec;
    use crate::state::RunningJob;

    fn parts(specs: &[(u32, f64)]) -> Vec<Partition> {
        specs
            .iter()
            .enumerate()
            .map(|(i, &(procs, speed))| {
                Partition::new(PartitionSpec::new(format!("p{i}"), procs, speed))
            })
            .collect()
    }

    fn view(parts: &[Partition]) -> ClusterView<'_> {
        ClusterView {
            now: 0.0,
            policy: Policy::Fcfs,
            parts,
            plans: None,
        }
    }

    fn job(id: usize, procs: u32, rt: f64) -> Job {
        Job::new(id, 0.0, procs, rt, rt)
    }

    #[test]
    fn affinity_picks_narrowest_fitting_partition() {
        let parts = parts(&[(96, 1.0), (32, 1.35), (16, 0.8)]);
        let view = view(&parts);
        assert_eq!(StaticAffinity.route(&job(0, 8, 100.0), &view), 2);
        assert_eq!(StaticAffinity.route(&job(1, 20, 100.0), &view), 1);
        assert_eq!(StaticAffinity.route(&job(2, 64, 100.0), &view), 0);
    }

    #[test]
    fn least_loaded_follows_the_load_signal() {
        let mut parts = parts(&[(32, 1.0), (32, 1.0)]);
        // Equal load: ties to the earlier partition.
        assert_eq!(LeastLoaded.route(&job(0, 4, 10.0), &view(&parts)), 0);
        // Load partition 0 (16 of 32 used) — partition 1 wins.
        parts[0].free = 16;
        assert_eq!(LeastLoaded.route(&job(1, 4, 10.0), &view(&parts)), 1);
        // Queue backlog counts too.
        parts[0].free = 32;
        parts[1].queue.push(job(9, 20, 100.0));
        assert_eq!(LeastLoaded.route(&job(2, 4, 10.0), &view(&parts)), 0);
    }

    #[test]
    fn earliest_start_avoids_the_busy_partition() {
        let mut parts = parts(&[(8, 1.0), (8, 1.0)]);
        // Partition 0 fully busy until t=1000.
        parts[0].free = 0;
        parts[0].running.push(RunningJob {
            job: job(7, 8, 1000.0),
            start: 0.0,
        });
        let view = view(&parts);
        let r = EarliestStart::default();
        assert_eq!(r.estimated_start(&job(0, 4, 10.0), &view, 0), 1000.0);
        assert_eq!(r.estimated_start(&job(0, 4, 10.0), &view, 1), 0.0);
        assert_eq!(r.route(&job(0, 4, 10.0), &view), 1);
    }

    #[test]
    fn earliest_start_accounts_for_queued_reservations() {
        let mut parts = parts(&[(8, 1.0), (8, 1.0)]);
        // Both idle, but partition 0 has a queued full-machine job (which
        // arrived earlier — lower id — so it outranks the candidate).
        parts[0].queue.push(job(5, 8, 500.0));
        let view = view(&parts);
        assert_eq!(EarliestStart::default().route(&job(9, 8, 10.0), &view), 1);
    }

    #[test]
    fn earliest_start_plans_in_policy_order_not_storage_order() {
        // Regression for the storage-order planning bug: under SJF a short
        // candidate outranks a long queued job, so the queued job's
        // reservation cannot block it.
        //
        // Partition 0: 8 procs, fully busy until t=100, queue holds a
        // 1000s full-machine job. Partition 1: fully busy until t=500,
        // empty queue. A 1-proc 10s SJF candidate starts at t=100 on
        // partition 0 (it is served before the queued long job) — the old
        // storage-order chain estimated t=1100 and misrouted it to
        // partition 1.
        let mut parts = parts(&[(8, 1.0), (8, 1.0)]);
        parts[0].free = 0;
        parts[0].running.push(RunningJob {
            job: job(1, 8, 100.0),
            start: 0.0,
        });
        parts[0].queue.push(job(2, 8, 1000.0));
        parts[1].free = 0;
        parts[1].running.push(RunningJob {
            job: job(3, 8, 500.0),
            start: 0.0,
        });
        let sjf_view = ClusterView {
            now: 0.0,
            policy: Policy::Sjf,
            parts: &parts,
            plans: None,
        };
        let r = EarliestStart::default();
        let candidate = job(9, 1, 10.0);
        assert_eq!(r.estimated_start(&candidate, &sjf_view, 0), 100.0);
        assert_eq!(r.estimated_start(&candidate, &sjf_view, 1), 500.0);
        assert_eq!(r.route(&candidate, &sjf_view), 0);
        // The same state under FCFS keeps the old chain: the queued job
        // outranks the newcomer, so partition 1 wins — the two orders
        // disagree, which is exactly what the bug hid.
        let fcfs_view = view(&parts);
        assert_eq!(r.estimated_start(&candidate, &fcfs_view, 0), 1100.0);
        assert_eq!(r.route(&candidate, &fcfs_view), 1);
    }

    #[test]
    fn earliest_start_ties_break_to_faster_partition() {
        let parts = parts(&[(8, 1.0), (8, 2.0)]);
        assert_eq!(
            EarliestStart::default().route(&job(0, 4, 100.0), &view(&parts)),
            1
        );
    }

    #[test]
    fn routers_only_pick_fitting_partitions() {
        let parts = parts(&[(16, 1.0), (64, 1.0)]);
        let view = view(&parts);
        let wide = job(0, 32, 100.0);
        assert_eq!(StaticAffinity.route(&wide, &view), 1);
        assert_eq!(LeastLoaded.route(&wide, &view), 1);
        assert_eq!(EarliestStart::default().route(&wide, &view), 1);
    }

    #[test]
    fn best_move_targets_a_strictly_earlier_start() {
        let mut parts = parts(&[(8, 1.0), (8, 1.0)]);
        // The job waits on partition 0 behind a 1000s blocker; partition 1
        // is idle — moving gains the full 1000 seconds.
        parts[0].free = 0;
        parts[0].running.push(RunningJob {
            job: job(1, 8, 1000.0),
            start: 0.0,
        });
        parts[0].queue.push(job(5, 4, 10.0));
        let view = view(&parts);
        let d = EarliestStart::default()
            .best_move(&job(5, 4, 10.0), &view, 0)
            .expect("idle partition must attract the job");
        assert_eq!(d.to, 1);
        assert_eq!(d.gain, 1000.0);
        // Every router proposes the same move through the default hook.
        assert_eq!(StaticAffinity.reroute(&job(5, 4, 10.0), &view, 0), Some(d));
        assert_eq!(LeastLoaded.reroute(&job(5, 4, 10.0), &view, 0), Some(d));
    }

    #[test]
    fn best_move_stays_put_without_strict_gain() {
        let parts = parts(&[(8, 1.0), (8, 1.0)]);
        // Both partitions idle: the job could start now either way — no
        // strictly earlier start exists, so it stays.
        let mut parts = parts;
        parts[0].queue.push(job(5, 4, 10.0));
        let view = view(&parts);
        assert_eq!(
            EarliestStart::default().best_move(&job(5, 4, 10.0), &view, 0),
            None
        );
    }

    #[test]
    fn best_move_excludes_itself_from_the_stay_estimate() {
        let mut parts = parts(&[(8, 1.0), (4, 1.0)]);
        // The job is the only queued work on an idle partition 0: its stay
        // estimate must be "now", not "behind its own reservation".
        parts[0].queue.push(job(5, 8, 500.0));
        let view = view(&parts);
        let r = EarliestStart::default();
        assert_eq!(r.estimated_start(&job(5, 8, 500.0), &view, 0), 0.0);
        assert_eq!(r.best_move(&job(5, 8, 500.0), &view, 0), None);
    }

    #[test]
    fn reroute_policy_labels_and_default() {
        assert_eq!(ReroutePolicy::default(), ReroutePolicy::AtSubmission);
        assert_eq!(ReroutePolicy::AtSubmission.label(), "at-submission");
        assert_eq!(
            ReroutePolicy::AtDecisionPoints {
                max_moves_per_job: 3,
                min_gain_secs: 60.0
            }
            .label(),
            "decision-points"
        );
    }
}
