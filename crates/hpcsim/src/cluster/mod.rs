//! Heterogeneous multi-partition cluster models.
//!
//! The paper evaluates backfilling on a single homogeneous cluster, but its
//! decision-point protocol is cluster-shape-agnostic. This subsystem adds
//! the missing cluster *model*:
//!
//! * [`ClusterSpec`] / [`PartitionSpec`] — the machine's shape: named
//!   partitions with processor counts and relative speed factors;
//! * [`Partition`] — one partition's live scheduling state (free
//!   processors, priority queue, running set), the unit the multi-partition
//!   [`crate::Simulation`] schedules independently;
//! * [`Router`] — the meta-scheduler: maps each arriving job to a partition
//!   **before** it enters that partition's queue ([`StaticAffinity`],
//!   [`LeastLoaded`], [`EarliestStart`]).
//!
//! Free-processor accounting, backfill candidates, EASY shadow times and
//! conservative reservations are all **per-partition**: a backfilling
//! opportunity names an *active* partition and the decision-point API
//! (`queue()`, `free_procs()`, `backfill(idx)`) operates on it, so the
//! EASY/conservative passes and the RL agent drive partitioned machines
//! unchanged. The one-partition [`ClusterSpec::homogeneous`] spec is the
//! degenerate case and realizes bitwise-identical schedules to the flat
//! engine (pinned by `tests/event_equivalence.rs`).

pub mod partition;
pub mod router;
pub mod spec;

pub use partition::Partition;
pub use router::{
    ClusterView, EarliestStart, LeastLoaded, RerouteDecision, ReroutePolicy, Router,
    RouterPlanCache, StaticAffinity,
};
pub use spec::{ClusterSpec, PartitionSpec};
