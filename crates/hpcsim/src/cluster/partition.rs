//! Per-partition runtime state: free processors, the priority queue, and
//! the running set — the unit the multi-partition [`crate::Simulation`]
//! schedules independently.

use super::spec::PartitionSpec;
use crate::policy::Policy;
use crate::state::RunningJob;
use swf::Job;

/// The mutable scheduling state of one partition.
///
/// Invariants (checked by `debug_assert`s in the simulation and pinned by
/// `tests/proptest_cluster.rs`):
///
/// * `free <= capacity` at all times;
/// * `free + Σ running.procs == capacity`;
/// * every queued or running job fits the partition's width when admitted
///   (`procs <= capacity` at admission; a later shrink evicts queued jobs
///   that no longer fit).
///
/// `capacity` starts at `spec.procs` and only platform events
/// ([`crate::platform::PlatformEvent`]) move it; without them it is
/// constant and the invariants reduce to the historical
/// `free + Σ running.procs == spec.procs`.
#[derive(Debug, Clone)]
pub struct Partition {
    pub(crate) spec: PartitionSpec,
    /// Live capacity: `spec.procs` minus failed processors plus any
    /// resize growth. Equal to `spec.procs` unless platform events fired.
    pub(crate) capacity: u32,
    /// True while a maintenance drain is in effect: the partition admits
    /// no jobs (routing, head starts and backfill all skip it) and the
    /// reroute pass evacuates its queue.
    pub(crate) draining: bool,
    pub(crate) free: u32,
    pub(crate) queue: Vec<Job>,
    pub(crate) running: Vec<RunningJob>,
    /// Whether the queue's policy order may be stale. Only time-dependent
    /// policies (WFP3) dirty it wholesale; time-independent arrivals are
    /// merged in order (see [`Partition::enqueue`]).
    pub(crate) needs_sort: bool,
    /// Re-arm flag: a backfill opportunity in this partition is only
    /// reported after its state changed (time advanced or a job started
    /// here), so a driver that declines is never re-asked about the
    /// identical state.
    pub(crate) opportunity_armed: bool,
    /// Mutation stamp: bumped whenever the queue, running set or free
    /// count changes. Shared planning caches (the router's
    /// [`super::RouterPlanCache`]) compare it to decide whether their
    /// per-partition scratch state is still current.
    pub(crate) version: u64,
}

impl Partition {
    pub(crate) fn new(spec: PartitionSpec) -> Self {
        let free = spec.procs;
        Self {
            capacity: spec.procs,
            draining: false,
            spec,
            free,
            queue: Vec::new(),
            running: Vec::new(),
            needs_sort: false,
            opportunity_armed: true,
            version: 1,
        }
    }

    /// Marks the partition's scheduling state as changed (see `version`).
    pub(crate) fn touch(&mut self) {
        self.version = self.version.wrapping_add(1);
    }

    /// The current mutation stamp (never 0, so caches can use 0 as
    /// "never built").
    pub(crate) fn version(&self) -> u64 {
        self.version
    }

    /// The partition's static description.
    pub fn spec(&self) -> &PartitionSpec {
        &self.spec
    }

    /// Partition name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Total processors in this partition as specified (the static
    /// width; see [`Partition::capacity`] for the live value).
    pub fn procs(&self) -> u32 {
        self.spec.procs
    }

    /// Live capacity: `spec.procs` adjusted by platform events (node
    /// failures/repairs, resizes). Equal to [`Partition::procs`] unless a
    /// scenario's [`crate::platform::PlatformEventSpec`] changed it.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// True while a maintenance drain is in effect (the partition admits
    /// no new jobs).
    pub fn draining(&self) -> bool {
        self.draining
    }

    /// Whether a job of width `procs` may be admitted right now: the
    /// partition is not draining and the live capacity covers the width.
    /// Without platform events this is the historical `procs <=
    /// spec.procs` check, bitwise.
    pub fn admits(&self, procs: u32) -> bool {
        !self.draining && procs <= self.capacity
    }

    /// Relative speed factor.
    pub fn speed(&self) -> f64 {
        self.spec.speed
    }

    /// Free processors right now.
    pub fn free(&self) -> u32 {
        self.free
    }

    /// The partition's waiting queue, priority-sorted as of the last
    /// scheduling pass.
    pub fn queue(&self) -> &[Job] {
        &self.queue
    }

    /// Jobs currently executing on this partition.
    pub fn running(&self) -> &[RunningJob] {
        &self.running
    }

    /// Processors currently in use.
    pub fn used(&self) -> u32 {
        self.capacity - self.free
    }

    /// Queue backlog in processor units (the least-loaded router's load
    /// signal alongside `used`).
    pub fn queued_procs(&self) -> u32 {
        self.queue.iter().map(|j| j.procs).sum()
    }

    /// Rescales a routed job's durations to this partition's wall-clock:
    /// `runtime / speed`, `request_time / speed`. At speed 1.0 the job is
    /// returned untouched (bitwise — the degenerate path must not even
    /// round-trip through a division).
    pub(crate) fn scale_job(&self, job: Job) -> Job {
        if self.spec.speed == 1.0 {
            return job;
        }
        Job {
            runtime: job.runtime / self.spec.speed,
            request_time: job.request_time / self.spec.speed,
            ..job
        }
    }

    /// Inverse of [`Partition::scale_job`]: maps a queued job's durations
    /// back to reference hardware (`runtime * speed`), which is how a
    /// migrating job leaves this partition before being re-scaled to its
    /// target. At speed 1.0 the job is returned untouched (bitwise, like
    /// `scale_job` — a reference-speed hop must not round-trip through
    /// floating-point multiplication); exact for power-of-two speeds, and
    /// accurate to an ulp for other speed factors (1.35, 0.8, …) — the
    /// per-job move budget bounds how often that rounding can accumulate,
    /// and the drift is deterministic either way.
    pub(crate) fn unscale_job(&self, job: Job) -> Job {
        if self.spec.speed == 1.0 {
            return job;
        }
        Job {
            runtime: job.runtime * self.spec.speed,
            request_time: job.request_time * self.spec.speed,
            ..job
        }
    }

    /// Merges an arriving job into the queue, preserving the policy order
    /// without a full re-sort when the policy is time-independent (see
    /// `Policy::time_dependent`): the queue is already sorted by the total
    /// order `(score, submit, id)` and scores cannot drift with time, so a
    /// binary-search insert lands the job exactly where a full re-sort
    /// would. Time-dependent policies (WFP3) fall back to the deferred
    /// full re-sort, as scores must be recomputed at the next pass anyway.
    ///
    /// Returns the insertion position, or `None` on the deferred-sort
    /// path (the caller's planner needs to know where positional
    /// alignment changed).
    pub(crate) fn enqueue(&mut self, job: Job, policy: Policy, now: f64) -> Option<usize> {
        self.touch();
        if policy.time_dependent() || self.needs_sort {
            self.queue.push(job);
            self.needs_sort = true;
            return None;
        }
        let pos = self.queue.partition_point(|q| {
            policy
                .score(q, now)
                .total_cmp(&policy.score(&job, now))
                .then(q.submit.total_cmp(&job.submit))
                .then(q.id.cmp(&job.id))
                .is_lt()
        });
        self.queue.insert(pos, job);
        Some(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part(procs: u32, speed: f64) -> Partition {
        Partition::new(PartitionSpec::new("p", procs, speed))
    }

    fn job(id: usize, submit: f64, procs: u32, rt: f64) -> Job {
        Job::new(id, submit, procs, rt, rt)
    }

    #[test]
    fn scale_job_divides_durations_by_speed() {
        let p = part(8, 2.0);
        let j = p.scale_job(job(0, 5.0, 4, 100.0));
        assert_eq!(j.runtime, 50.0);
        assert_eq!(j.request_time, 50.0);
        assert_eq!(j.submit, 5.0);
    }

    #[test]
    fn scale_job_at_reference_speed_is_identity() {
        let p = part(8, 1.0);
        let j = job(0, 5.0, 4, 100.0);
        assert_eq!(p.scale_job(j), j);
    }

    #[test]
    fn unscale_inverts_scale() {
        // Power-of-two speeds round-trip exactly; speed 1.0 is bitwise
        // identity by construction.
        let fast = part(8, 2.0);
        let j = job(0, 5.0, 4, 100.0);
        assert_eq!(fast.unscale_job(fast.scale_job(j)), j);
        let reference = part(8, 1.0);
        assert_eq!(reference.unscale_job(j), j);
        // Non-dyadic speeds (the preset layouts use 1.35 / 0.8 / 1.6) are
        // inverse only to an ulp — the reroute pass's move budget bounds
        // the accumulated drift.
        let express = part(8, 1.35);
        let back = express.unscale_job(express.scale_job(j));
        assert!((back.runtime - j.runtime).abs() <= f64::EPSILON * j.runtime);
        assert!((back.request_time - j.request_time).abs() <= f64::EPSILON * j.request_time);
    }

    #[test]
    fn enqueue_matches_full_sort_for_time_independent_policies() {
        for policy in [Policy::Fcfs, Policy::Sjf, Policy::F1] {
            let jobs = [
                job(3, 40.0, 2, 500.0),
                job(1, 10.0, 1, 50.0),
                job(2, 10.0, 4, 50.0),
                job(0, 0.0, 8, 5000.0),
            ];
            let mut p = part(8, 1.0);
            for j in jobs {
                p.enqueue(j, policy, 100.0);
                assert!(!p.needs_sort, "{policy}: insert must keep order");
            }
            let mut sorted = jobs.to_vec();
            policy.sort_queue(&mut sorted, 100.0);
            assert_eq!(p.queue(), sorted.as_slice(), "{policy}");
        }
    }

    #[test]
    fn enqueue_defers_sort_for_wfp3() {
        let mut p = part(8, 1.0);
        p.enqueue(job(0, 0.0, 1, 10.0), Policy::Wfp3, 50.0);
        assert!(p.needs_sort, "WFP3 must take the full re-sort path");
    }

    #[test]
    fn enqueue_falls_back_when_queue_is_dirty() {
        let mut p = part(8, 1.0);
        p.needs_sort = true;
        p.enqueue(job(1, 0.0, 1, 10.0), Policy::Sjf, 0.0);
        assert!(p.needs_sort);
        assert_eq!(p.queue().len(), 1);
    }

    #[test]
    fn load_accessors() {
        let mut p = part(8, 1.0);
        p.free = 3;
        p.queue.push(job(0, 0.0, 2, 10.0));
        p.queue.push(job(1, 0.0, 3, 10.0));
        assert_eq!(p.used(), 5);
        assert_eq!(p.queued_procs(), 5);
    }
}
