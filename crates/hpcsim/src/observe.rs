//! `hpcsim::observe` — zero-cost simulation telemetry.
//!
//! The [`Probe`] trait is threaded through the decision-point engine
//! ([`crate::state::ProbedSimulation`] is generic over it) and observes
//! the event loop and all scheduling machinery: events and heap depths,
//! backfill attempts, migrations, and the phase structure of a decision
//! point (arrival batch → reroute pass → conservative/backfill pass).
//! The default [`NoopProbe`] has empty `#[inline]` hooks and
//! `ENABLED == false`, so the uninstrumented simulation monomorphizes to
//! exactly the pre-probe code — `Simulation` is an alias for
//! `ProbedSimulation<NoopProbe>` and pays nothing.
//!
//! [`Recorder`] is the collecting implementation. It produces:
//!
//! * [`Telemetry`] — **deterministic** counters and log₂ [`Histogram`]s,
//!   a pure function of the realized schedule (no clocks, no addresses),
//!   so a committed snapshot doubles as a differential oracle: behavioral
//!   drift moves a counter even when the metrics happen to agree.
//! * Wall-clock [`Span`]s of the simulation phases, exportable as
//!   Chrome-trace/Perfetto JSON ([`Recorder::chrome_trace_json`]). Spans
//!   are *not* part of [`Telemetry`]: they are timing, not behavior.
//!
//! Deep layers that the generic parameter cannot reach cheaply (the
//! availability profiles of [`crate::profile`], the planner of
//! [`crate::plan`], the router plan cache of [`crate::cluster::router`])
//! keep **passive stats** — plain integer counters defined here
//! ([`ProfileStats`], [`PlanStats`], [`RouterStats`]) that are always on
//! (a handful of integer adds on already-expensive paths) and harvested
//! into the probe once, when the simulation completes.
//!
//! The [`audit`] submodule builds the third output on the same trait: a
//! typed, wall-clock-free per-job decision log ([`audit::AuditLog`])
//! recorded by [`audit::AuditProbe`] through the lifecycle hooks below
//! (`on_job_submitted` … `on_job_completed`). Like the counters, the
//! lifecycle hooks default to empty `#[inline]` bodies, so the
//! `NoopProbe` simulation still monomorphizes to the pre-probe code.

pub mod audit;

use crate::cluster::Partition;
use audit::{SkipReason, StartKind};
use std::time::Instant;
use swf::Job;

/// A phase of one decision-point iteration, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Applying every event due at the current instant (arrivals and
    /// completions), including the jobs they start.
    ArrivalBatch,
    /// The decision-point re-routing (migration) pass over all queues.
    ReroutePass,
    /// One conservative plan-repair + start pass.
    ConservativePass,
    /// One EASY backfill scan over the active queue.
    BackfillScan,
}

impl Phase {
    /// The span name used in trace exports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::ArrivalBatch => "arrival_batch",
            Phase::ReroutePass => "reroute_pass",
            Phase::ConservativePass => "conservative_pass",
            Phase::BackfillScan => "backfill_scan",
        }
    }
}

/// Why a conservative reservation plan's suffix had to be repaired, in
/// ascending order of disruption (when several invalidations accumulate
/// between passes, the repair is attributed to the most disruptive one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RepairCause {
    /// New jobs extended the queue past the planned prefix.
    Arrival,
    /// A planned start drifted into the past (plan staleness at pass
    /// entry).
    Stale,
    /// A job started off its planned instant (backfilled ahead of plan).
    OffPlanStart,
    /// A migration removed or inserted a queued job.
    Migration,
    /// A job completed earlier than its planned release.
    EarlyCompletion,
    /// The queue order itself changed (time-dependent policy re-sort).
    Resort,
}

/// All repair causes, in the serialization order of
/// [`Telemetry::plan_repairs`].
pub const REPAIR_CAUSES: [RepairCause; 6] = [
    RepairCause::Arrival,
    RepairCause::Stale,
    RepairCause::OffPlanStart,
    RepairCause::Migration,
    RepairCause::EarlyCompletion,
    RepairCause::Resort,
];

impl RepairCause {
    /// Stable snake_case label (the serialized form).
    pub fn name(self) -> &'static str {
        match self {
            RepairCause::Arrival => "arrival",
            RepairCause::Stale => "stale",
            RepairCause::OffPlanStart => "off_plan_start",
            RepairCause::Migration => "migration",
            RepairCause::EarlyCompletion => "early_completion",
            RepairCause::Resort => "resort",
        }
    }

    fn index(self) -> usize {
        match self {
            RepairCause::Arrival => 0,
            RepairCause::Stale => 1,
            RepairCause::OffPlanStart => 2,
            RepairCause::Migration => 3,
            RepairCause::EarlyCompletion => 4,
            RepairCause::Resort => 5,
        }
    }
}

/// A log₂ histogram of non-negative integer samples: bucket 0 holds the
/// zeros, bucket *k* ≥ 1 holds values with bit length *k* (i.e. the range
/// `[2^(k-1), 2^k)`). Trailing empty buckets are trimmed, so two
/// histograms over the same data compare equal regardless of peak order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
}

impl Histogram {
    fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let b = Self::bucket_of(value);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
    }

    /// Bucket counts, lowest bucket first (empty if nothing was recorded).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += *theirs;
        }
    }
}

impl serde::Serialize for Histogram {
    fn to_value(&self) -> serde::Value {
        self.buckets.to_value()
    }
}

impl serde::Deserialize for Histogram {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Histogram {
            buckets: Vec::<u64>::from_value(v)?,
        })
    }
}

/// Passive counters of one [`crate::profile::AvailabilityProfile`]: edge
/// operations and `earliest_fit` bucket-walk lengths. Always on — each is
/// an integer add on a path that already splices vectors — and summed
/// across the simulation's persistent profiles at harvest time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileStats {
    /// Edge insertions (new or merged contributions).
    pub edge_inserts: u64,
    /// Edge removal operations (contribution retractions).
    pub edge_removes: u64,
    /// `earliest_fit` queries answered.
    pub fit_calls: u64,
    /// Bucket-summary steps taken across all `earliest_fit` queries.
    pub buckets_scanned: u64,
    /// Buckets scanned per `earliest_fit` query (log₂ buckets).
    pub scan_hist: Histogram,
}

impl ProfileStats {
    /// Adds `other` into `self`.
    pub fn absorb(&mut self, other: &ProfileStats) {
        self.edge_inserts += other.edge_inserts;
        self.edge_removes += other.edge_removes;
        self.fit_calls += other.fit_calls;
        self.buckets_scanned += other.buckets_scanned;
        self.scan_hist.merge(&other.scan_hist);
    }

    /// Resets every counter (used when a profile is cloned into a new
    /// role, so its history is not double-counted).
    pub fn clear(&mut self) {
        *self = ProfileStats::default();
    }
}

/// Passive counters of the conservative [`crate::plan::Planner`]:
/// suffix-repair passes broken down by dominant [`RepairCause`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Repair passes by cause (indexed like [`REPAIR_CAUSES`]).
    pub repairs: [u64; 6],
    /// Total plan entries (re)planned, by cause.
    pub repaired_entries: [u64; 6],
    /// Suffix length per repair pass (log₂ buckets).
    pub repair_len_hist: Histogram,
}

impl PlanStats {
    /// Records one repair pass of `len` entries attributed to `cause`.
    #[inline]
    pub fn record_repair(&mut self, cause: RepairCause, len: usize) {
        let i = cause.index();
        self.repairs[i] += 1;
        self.repaired_entries[i] += len as u64;
        self.repair_len_hist.record(len as u64);
    }

    /// Adds `other` into `self`.
    pub fn absorb(&mut self, other: &PlanStats) {
        for i in 0..REPAIR_CAUSES.len() {
            self.repairs[i] += other.repairs[i];
            self.repaired_entries[i] += other.repaired_entries[i];
        }
        self.repair_len_hist.merge(&other.repair_len_hist);
    }
}

/// Passive counters of the shared [`crate::cluster::RouterPlanCache`]:
/// how often the `EarliestStart` router reused, rebuilt, or abandoned its
/// per-partition reservation-chain plan, and how many candidate
/// placements it evaluated in total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Candidate `(job, partition)` placements evaluated.
    pub candidate_evals: u64,
    /// Evaluations answered from a current cached plan.
    pub plan_reuses: u64,
    /// Cached-plan rebuilds (stamp/now/estimator/policy drift).
    pub plan_rebuilds: u64,
    /// Evaluations that fell back to a from-scratch computation.
    pub scratch_fallbacks: u64,
}

impl RouterStats {
    /// Adds `other` into `self`.
    pub fn absorb(&mut self, other: &RouterStats) {
        self.candidate_evals += other.candidate_evals;
        self.plan_reuses += other.plan_reuses;
        self.plan_rebuilds += other.plan_rebuilds;
        self.scratch_fallbacks += other.scratch_fallbacks;
    }
}

/// Observer of the decision-point engine. Every hook defaults to an empty
/// `#[inline]` body; `ENABLED == false` additionally compiles out the
/// span bracketing and the end-of-run harvest at the call sites.
pub trait Probe: std::fmt::Debug + Clone {
    /// Whether the engine should execute probe-only code (span
    /// bracketing, passive-stat harvesting). `false` for [`NoopProbe`].
    const ENABLED: bool = true;

    /// One cluster event executed; `heap_depth` is the pending-event
    /// count after the pop.
    #[inline]
    fn on_event(&mut self, _heap_depth: usize) {}

    /// The active partition's queue depth at a reported backfill
    /// opportunity.
    #[inline]
    fn on_queue_depth(&mut self, _depth: usize) {}

    /// A backfill start was attempted; `hit` is whether the job started.
    #[inline]
    fn on_backfill(&mut self, _hit: bool) {}

    /// A backfill candidate was rejected because it would delay the
    /// reserved job.
    #[inline]
    fn on_backfill_would_delay(&mut self) {}

    /// The reroute pass considered one queued job for migration.
    #[inline]
    fn on_migration_candidate(&mut self) {}

    /// The router proposed a strictly-better placement for a candidate.
    #[inline]
    fn on_migration_proposed(&mut self) {}

    /// A proposed migration was executed.
    #[inline]
    fn on_migration_accepted(&mut self) {}

    /// A simulation phase begins.
    #[inline]
    fn span_begin(&mut self, _phase: Phase) {}

    /// The innermost open phase ends.
    #[inline]
    fn span_end(&mut self, _phase: Phase) {}

    /// The innermost open phase is abandoned without recording (the
    /// engine brackets speculatively and cancels empty batches).
    #[inline]
    fn span_cancel(&mut self, _phase: Phase) {}

    /// Whether the engine should pay for audit-only work (candidate-score
    /// collection at submission, backfill skip scans, settle passes).
    /// Separate from `ENABLED` so a telemetry [`Recorder`] does not drag
    /// the audit machinery along; only [`audit::AuditProbe`] returns true.
    #[inline]
    fn audit_on(&self) -> bool {
        false
    }

    /// A job was routed and enqueued at submission. `candidates` holds the
    /// router's estimated start per fitting partition (empty when the
    /// probe is not auditing); `chosen` is the partition it joined.
    #[inline]
    fn on_job_submitted(&mut self, _t: f64, _job: &Job, _chosen: usize, _cands: &[(usize, f64)]) {}

    /// A job fit no partition and was set aside before the run.
    #[inline]
    fn on_job_dropped(&mut self, _job: &Job) {}

    /// A queued job was passed over by a backfill scan for `reason`.
    #[inline]
    fn on_backfill_skipped(&mut self, _t: f64, _part: usize, _job_id: usize, _reason: SkipReason) {}

    /// A conservative pass repaired `entries` reservation-plan entries,
    /// attributed to the dominant invalidation `cause`.
    #[inline]
    fn on_plan_repaired(&mut self, _t: f64, _part: usize, _cause: RepairCause, _entries: usize) {}

    /// A queued job migrated between partitions with estimated `gain`.
    #[inline]
    fn on_migrated(&mut self, _t: f64, _job_id: usize, _from: usize, _to: usize, _gain: f64) {}

    /// A job left the queue and began executing.
    #[inline]
    fn on_job_started(&mut self, _t: f64, _part: usize, _job: &Job, _kind: StartKind) {}

    /// A running job released its processors.
    #[inline]
    fn on_job_completed(&mut self, _t: f64, _part: usize, _job: &Job, _start: f64) {}

    /// The event loop settled: all due events applied, ready jobs
    /// started. Audit probes reclassify waiting jobs here. Only called
    /// when [`Probe::audit_on`] is true.
    #[inline]
    fn on_settle(&mut self, _now: f64, _parts: &[Partition]) {}

    /// A platform event (node failure/repair, drain, resize) fired.
    #[inline]
    fn on_platform_event(&mut self, _t: f64, _event: &crate::platform::PlatformEvent) {}

    /// A running job was killed by a capacity retraction; `wasted` is the
    /// destroyed work in reference node-seconds.
    #[inline]
    fn on_job_killed(&mut self, _t: f64, _part: usize, _job: &Job, _wasted: f64) {}

    /// A killed or displaced job re-entered a queue on partition `to`.
    #[inline]
    fn on_job_resubmitted(&mut self, _t: f64, _job: &Job, _to: usize) {}

    /// A queued job escaped a draining partition via the reroute pass.
    #[inline]
    fn on_drain_evacuated(&mut self, _t: f64, _job_id: usize, _from: usize, _to: usize) {}

    /// End-of-run harvest of the summed persistent-profile stats.
    /// Idempotent set semantics: a later call replaces the value.
    #[inline]
    fn set_profile_stats(&mut self, _stats: ProfileStats) {}

    /// End-of-run harvest of the planner's repair stats (set semantics).
    #[inline]
    fn set_plan_stats(&mut self, _stats: PlanStats) {}

    /// End-of-run harvest of the router-cache stats (set semantics).
    #[inline]
    fn set_router_stats(&mut self, _stats: RouterStats) {}
}

/// The zero-cost default probe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    const ENABLED: bool = false;
}

/// One repair-cause row of [`Telemetry::plan_repairs`].
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RepairRow {
    /// [`RepairCause::name`] of this row.
    pub cause: String,
    /// Repair passes attributed to this cause.
    pub count: u64,
    /// Total plan entries (re)planned under this cause.
    pub entries: u64,
}

/// The deterministic half of a [`Recorder`]'s output: counters and
/// histograms that are a pure function of the schedule. Serialized into
/// `RunReport.telemetry` when a spec opts in, and pinnable byte-for-byte
/// (`results/telemetry_table3.json`).
///
/// Serde is hand-written: the original fields serialize unconditionally in
/// declaration order (byte-identical to the historical derive, so every
/// committed pin survives), while the platform counters appended for the
/// dynamic-machine layer are omit-when-zero — a run without platform
/// events serializes to exactly the pre-layer bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Telemetry {
    /// Cluster events executed (arrivals + completions).
    pub events: u64,
    /// Peak pending-event count after any pop.
    pub heap_depth_peak: u64,
    /// Sum of pending-event counts over all pops (mean = sum / events).
    pub heap_depth_sum: u64,
    /// Backfill starts attempted.
    pub backfill_attempts: u64,
    /// Backfill starts that succeeded.
    pub backfill_hits: u64,
    /// Backfill candidates rejected for delaying the reserved job.
    pub backfill_would_delay: u64,
    /// Queued jobs considered by the reroute pass.
    pub migration_candidates: u64,
    /// Migrations proposed by the router.
    pub migrations_proposed: u64,
    /// Migrations executed.
    pub migrations_accepted: u64,
    /// Router candidate placements evaluated.
    pub router_candidate_evals: u64,
    /// Router evaluations answered from the shared plan cache.
    pub router_plan_reuses: u64,
    /// Shared-plan rebuilds.
    pub router_plan_rebuilds: u64,
    /// Router evaluations that fell back to scratch computation.
    pub router_scratch_fallbacks: u64,
    /// Availability-profile edge insertions (persistent profiles).
    pub profile_edge_inserts: u64,
    /// Availability-profile edge removals (persistent profiles).
    pub profile_edge_removes: u64,
    /// `earliest_fit` queries on persistent profiles.
    pub earliest_fit_calls: u64,
    /// Bucket-summary steps across all `earliest_fit` queries.
    pub earliest_fit_buckets_scanned: u64,
    /// Conservative suffix repairs by dominant cause.
    pub plan_repairs: Vec<RepairRow>,
    /// Event-heap depth per executed event (log₂ buckets).
    pub heap_depth_hist: Histogram,
    /// Active-queue depth per backfill opportunity (log₂ buckets).
    pub queue_depth_hist: Histogram,
    /// Conservative repair suffix length per pass (log₂ buckets).
    pub repair_len_hist: Histogram,
    /// Buckets scanned per `earliest_fit` query (log₂ buckets).
    pub bucket_scan_hist: Histogram,
    /// Platform events applied (failures + repairs + drains + resizes).
    pub platform_events: u64,
    /// Running jobs killed by capacity retractions.
    pub platform_kills: u64,
    /// Killed/displaced jobs rerouted back into a queue.
    pub platform_resubmits: u64,
    /// Queued jobs evacuated from draining partitions.
    pub platform_drain_evacuations: u64,
}

impl Telemetry {
    /// Mean event-heap depth per executed event.
    pub fn heap_depth_mean(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.heap_depth_sum as f64 / self.events as f64
        }
    }

    /// Merges `other` into `self` (sums and histogram merges; the peak is
    /// the max of the peaks). Used by the windows protocol to aggregate
    /// per-window telemetry into one report section.
    pub fn merge(&mut self, other: &Telemetry) {
        self.events += other.events;
        self.heap_depth_peak = self.heap_depth_peak.max(other.heap_depth_peak);
        self.heap_depth_sum += other.heap_depth_sum;
        self.backfill_attempts += other.backfill_attempts;
        self.backfill_hits += other.backfill_hits;
        self.backfill_would_delay += other.backfill_would_delay;
        self.migration_candidates += other.migration_candidates;
        self.migrations_proposed += other.migrations_proposed;
        self.migrations_accepted += other.migrations_accepted;
        self.router_candidate_evals += other.router_candidate_evals;
        self.router_plan_reuses += other.router_plan_reuses;
        self.router_plan_rebuilds += other.router_plan_rebuilds;
        self.router_scratch_fallbacks += other.router_scratch_fallbacks;
        self.profile_edge_inserts += other.profile_edge_inserts;
        self.profile_edge_removes += other.profile_edge_removes;
        self.earliest_fit_calls += other.earliest_fit_calls;
        self.earliest_fit_buckets_scanned += other.earliest_fit_buckets_scanned;
        if self.plan_repairs.is_empty() {
            self.plan_repairs = other.plan_repairs.clone();
        } else {
            for (mine, theirs) in self.plan_repairs.iter_mut().zip(&other.plan_repairs) {
                debug_assert_eq!(mine.cause, theirs.cause);
                mine.count += theirs.count;
                mine.entries += theirs.entries;
            }
        }
        self.heap_depth_hist.merge(&other.heap_depth_hist);
        self.queue_depth_hist.merge(&other.queue_depth_hist);
        self.repair_len_hist.merge(&other.repair_len_hist);
        self.bucket_scan_hist.merge(&other.bucket_scan_hist);
        self.platform_events += other.platform_events;
        self.platform_kills += other.platform_kills;
        self.platform_resubmits += other.platform_resubmits;
        self.platform_drain_evacuations += other.platform_drain_evacuations;
    }

    /// Pretty JSON (the committed-snapshot format).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("telemetry serializes")
    }

    /// Parses the committed-snapshot format.
    pub fn from_json(json: &str) -> Result<Self, serde::Error> {
        serde_json::from_str(json)
    }
}

impl serde::Serialize for Telemetry {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("events".to_string(), self.events.to_value()),
            (
                "heap_depth_peak".to_string(),
                self.heap_depth_peak.to_value(),
            ),
            ("heap_depth_sum".to_string(), self.heap_depth_sum.to_value()),
            (
                "backfill_attempts".to_string(),
                self.backfill_attempts.to_value(),
            ),
            ("backfill_hits".to_string(), self.backfill_hits.to_value()),
            (
                "backfill_would_delay".to_string(),
                self.backfill_would_delay.to_value(),
            ),
            (
                "migration_candidates".to_string(),
                self.migration_candidates.to_value(),
            ),
            (
                "migrations_proposed".to_string(),
                self.migrations_proposed.to_value(),
            ),
            (
                "migrations_accepted".to_string(),
                self.migrations_accepted.to_value(),
            ),
            (
                "router_candidate_evals".to_string(),
                self.router_candidate_evals.to_value(),
            ),
            (
                "router_plan_reuses".to_string(),
                self.router_plan_reuses.to_value(),
            ),
            (
                "router_plan_rebuilds".to_string(),
                self.router_plan_rebuilds.to_value(),
            ),
            (
                "router_scratch_fallbacks".to_string(),
                self.router_scratch_fallbacks.to_value(),
            ),
            (
                "profile_edge_inserts".to_string(),
                self.profile_edge_inserts.to_value(),
            ),
            (
                "profile_edge_removes".to_string(),
                self.profile_edge_removes.to_value(),
            ),
            (
                "earliest_fit_calls".to_string(),
                self.earliest_fit_calls.to_value(),
            ),
            (
                "earliest_fit_buckets_scanned".to_string(),
                self.earliest_fit_buckets_scanned.to_value(),
            ),
            ("plan_repairs".to_string(), self.plan_repairs.to_value()),
            (
                "heap_depth_hist".to_string(),
                self.heap_depth_hist.to_value(),
            ),
            (
                "queue_depth_hist".to_string(),
                self.queue_depth_hist.to_value(),
            ),
            (
                "repair_len_hist".to_string(),
                self.repair_len_hist.to_value(),
            ),
            (
                "bucket_scan_hist".to_string(),
                self.bucket_scan_hist.to_value(),
            ),
        ];
        // Dynamic-platform counters: appended omit-when-zero so pre-layer
        // snapshots (and every run without platform events) keep their
        // exact committed bytes.
        if self.platform_events != 0 {
            entries.push((
                "platform_events".to_string(),
                self.platform_events.to_value(),
            ));
        }
        if self.platform_kills != 0 {
            entries.push(("platform_kills".to_string(), self.platform_kills.to_value()));
        }
        if self.platform_resubmits != 0 {
            entries.push((
                "platform_resubmits".to_string(),
                self.platform_resubmits.to_value(),
            ));
        }
        if self.platform_drain_evacuations != 0 {
            entries.push((
                "platform_drain_evacuations".to_string(),
                self.platform_drain_evacuations.to_value(),
            ));
        }
        serde::Value::Object(entries)
    }
}

impl serde::Deserialize for Telemetry {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let has = |name: &str| matches!(v, serde::Value::Object(entries) if entries.iter().any(|(k, _)| k == name));
        let opt_u64 = |name: &str| -> Result<u64, serde::Error> {
            if has(name) {
                serde::field(v, name)
            } else {
                Ok(0)
            }
        };
        Ok(Telemetry {
            events: serde::field(v, "events")?,
            heap_depth_peak: serde::field(v, "heap_depth_peak")?,
            heap_depth_sum: serde::field(v, "heap_depth_sum")?,
            backfill_attempts: serde::field(v, "backfill_attempts")?,
            backfill_hits: serde::field(v, "backfill_hits")?,
            backfill_would_delay: serde::field(v, "backfill_would_delay")?,
            migration_candidates: serde::field(v, "migration_candidates")?,
            migrations_proposed: serde::field(v, "migrations_proposed")?,
            migrations_accepted: serde::field(v, "migrations_accepted")?,
            router_candidate_evals: serde::field(v, "router_candidate_evals")?,
            router_plan_reuses: serde::field(v, "router_plan_reuses")?,
            router_plan_rebuilds: serde::field(v, "router_plan_rebuilds")?,
            router_scratch_fallbacks: serde::field(v, "router_scratch_fallbacks")?,
            profile_edge_inserts: serde::field(v, "profile_edge_inserts")?,
            profile_edge_removes: serde::field(v, "profile_edge_removes")?,
            earliest_fit_calls: serde::field(v, "earliest_fit_calls")?,
            earliest_fit_buckets_scanned: serde::field(v, "earliest_fit_buckets_scanned")?,
            plan_repairs: serde::field(v, "plan_repairs")?,
            heap_depth_hist: serde::field(v, "heap_depth_hist")?,
            queue_depth_hist: serde::field(v, "queue_depth_hist")?,
            repair_len_hist: serde::field(v, "repair_len_hist")?,
            bucket_scan_hist: serde::field(v, "bucket_scan_hist")?,
            platform_events: opt_u64("platform_events")?,
            platform_kills: opt_u64("platform_kills")?,
            platform_resubmits: opt_u64("platform_resubmits")?,
            platform_drain_evacuations: opt_u64("platform_drain_evacuations")?,
        })
    }
}

/// One recorded wall-clock phase span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Which phase this span covers.
    pub phase: Phase,
    /// Microseconds since the recorder's origin.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// The collecting [`Probe`]: deterministic counters/histograms plus
/// (optionally) wall-clock phase spans.
///
/// [`Recorder::default`] records counters only — span vectors grow with
/// the number of decision points, which is unbounded on 1M-job traces.
/// Use [`Recorder::with_spans`] for trace export.
#[derive(Debug, Clone)]
pub struct Recorder {
    origin: Instant,
    record_spans: bool,
    telemetry: Telemetry,
    spans: Vec<Span>,
    open: Vec<(Phase, Instant)>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new(false)
    }
}

impl Recorder {
    /// A recorder; `record_spans` additionally keeps wall-clock spans.
    // The observe layer is the sanctioned wall-clock boundary: it measures
    // the simulator from outside and never feeds time back into it (the
    // per-crate clippy.toml disallows Instant::now everywhere else).
    #[allow(clippy::disallowed_methods)]
    pub fn new(record_spans: bool) -> Self {
        Recorder {
            origin: Instant::now(),
            record_spans,
            telemetry: Telemetry::default(),
            spans: Vec::new(),
            open: Vec::new(),
        }
    }

    /// A recorder that keeps phase spans for trace export.
    pub fn with_spans() -> Self {
        Self::new(true)
    }

    /// The deterministic counters/histograms recorded so far.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Consumes the recorder, returning its [`Telemetry`].
    pub fn into_telemetry(self) -> Telemetry {
        self.telemetry
    }

    /// The recorded spans (empty unless built via [`Recorder::with_spans`]).
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Serializes the recorded spans as Chrome-trace JSON (the
    /// `traceEvents` "X" complete-event format, loadable in
    /// `chrome://tracing` and Perfetto).
    pub fn chrome_trace_json(&self) -> String {
        use serde::Value;
        let events: Vec<Value> = self
            .spans
            .iter()
            .map(|s| {
                Value::Object(vec![
                    ("name".into(), Value::String(s.phase.name().into())),
                    ("cat".into(), Value::String("sim".into())),
                    ("ph".into(), Value::String("X".into())),
                    ("ts".into(), s.start_us.to_value()),
                    ("dur".into(), s.dur_us.to_value()),
                    ("pid".into(), 1u32.to_value()),
                    ("tid".into(), 1u32.to_value()),
                ])
            })
            .collect();
        let root = Value::Object(vec![
            ("displayTimeUnit".into(), Value::String("ms".into())),
            ("traceEvents".into(), Value::Array(events)),
        ]);
        serde_json::to_string_pretty(&root).expect("trace serializes")
    }
}

use serde::Serialize as _;

impl Probe for Recorder {
    #[inline]
    fn on_event(&mut self, heap_depth: usize) {
        let d = heap_depth as u64;
        self.telemetry.events += 1;
        self.telemetry.heap_depth_peak = self.telemetry.heap_depth_peak.max(d);
        self.telemetry.heap_depth_sum += d;
        self.telemetry.heap_depth_hist.record(d);
    }

    #[inline]
    fn on_queue_depth(&mut self, depth: usize) {
        self.telemetry.queue_depth_hist.record(depth as u64);
    }

    #[inline]
    fn on_backfill(&mut self, hit: bool) {
        self.telemetry.backfill_attempts += 1;
        self.telemetry.backfill_hits += hit as u64;
    }

    #[inline]
    fn on_backfill_would_delay(&mut self) {
        self.telemetry.backfill_would_delay += 1;
    }

    #[inline]
    fn on_migration_candidate(&mut self) {
        self.telemetry.migration_candidates += 1;
    }

    #[inline]
    fn on_migration_proposed(&mut self) {
        self.telemetry.migrations_proposed += 1;
    }

    #[inline]
    fn on_migration_accepted(&mut self) {
        self.telemetry.migrations_accepted += 1;
    }

    #[inline]
    fn on_platform_event(&mut self, _t: f64, _event: &crate::platform::PlatformEvent) {
        self.telemetry.platform_events += 1;
    }

    #[inline]
    fn on_job_killed(&mut self, _t: f64, _part: usize, _job: &Job, _wasted: f64) {
        self.telemetry.platform_kills += 1;
    }

    #[inline]
    fn on_job_resubmitted(&mut self, _t: f64, _job: &Job, _to: usize) {
        self.telemetry.platform_resubmits += 1;
    }

    #[inline]
    fn on_drain_evacuated(&mut self, _t: f64, _job_id: usize, _from: usize, _to: usize) {
        self.telemetry.platform_drain_evacuations += 1;
    }

    // Sanctioned wall-clock read: span timing measures the simulator from
    // outside (see clippy.toml / ARCHITECTURE.md "static analysis").
    #[allow(clippy::disallowed_methods)]
    fn span_begin(&mut self, phase: Phase) {
        if self.record_spans {
            self.open.push((phase, Instant::now()));
        }
    }

    fn span_end(&mut self, phase: Phase) {
        if !self.record_spans {
            return;
        }
        let Some((opened, start)) = self.open.pop() else {
            return;
        };
        debug_assert_eq!(opened, phase, "mismatched span nesting");
        self.spans.push(Span {
            phase,
            start_us: start.duration_since(self.origin).as_micros() as u64, // simlint: allow(time-cast) — wall-clock span duration for the profiling report; observability only, never feeds sim state
            dur_us: start.elapsed().as_micros() as u64, // simlint: allow(time-cast) — wall-clock span duration for the profiling report; observability only, never feeds sim state
        });
    }

    fn span_cancel(&mut self, phase: Phase) {
        if self.record_spans {
            let popped = self.open.pop();
            debug_assert_eq!(popped.map(|(p, _)| p), Some(phase));
        }
    }

    fn set_profile_stats(&mut self, stats: ProfileStats) {
        self.telemetry.profile_edge_inserts = stats.edge_inserts;
        self.telemetry.profile_edge_removes = stats.edge_removes;
        self.telemetry.earliest_fit_calls = stats.fit_calls;
        self.telemetry.earliest_fit_buckets_scanned = stats.buckets_scanned;
        self.telemetry.bucket_scan_hist = stats.scan_hist;
    }

    fn set_plan_stats(&mut self, stats: PlanStats) {
        self.telemetry.plan_repairs = REPAIR_CAUSES
            .iter()
            .map(|&cause| RepairRow {
                cause: cause.name().to_string(),
                count: stats.repairs[cause.index()],
                entries: stats.repaired_entries[cause.index()],
            })
            .collect();
        self.telemetry.repair_len_hist = stats.repair_len_hist.clone();
    }

    fn set_router_stats(&mut self, stats: RouterStats) {
        self.telemetry.router_candidate_evals = stats.candidate_evals;
        self.telemetry.router_plan_reuses = stats.plan_reuses;
        self.telemetry.router_plan_rebuilds = stats.plan_rebuilds;
        self.telemetry.router_scratch_fallbacks = stats.scratch_fallbacks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::default();
        for v in [0, 0, 1, 2, 3, 4, 7, 8, 1023, 1024] {
            h.record(v);
        }
        // zeros → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 4..8 → bucket 3;
        // 8..16 → bucket 4; 1023 → bucket 10; 1024 → bucket 11.
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 2);
        assert_eq!(h.buckets()[3], 2);
        assert_eq!(h.buckets()[4], 1);
        assert_eq!(h.buckets()[10], 1);
        assert_eq!(h.buckets()[11], 1);
        assert_eq!(h.total(), 10);
    }

    #[test]
    fn histogram_merge_is_elementwise() {
        let mut a = Histogram::default();
        a.record(1);
        let mut b = Histogram::default();
        b.record(1);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.buckets()[1], 2);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn telemetry_round_trips_through_json() {
        let mut rec = Recorder::default();
        rec.on_event(3);
        rec.on_event(5);
        rec.on_queue_depth(7);
        rec.on_backfill(true);
        rec.on_backfill(false);
        rec.set_plan_stats({
            let mut p = PlanStats::default();
            p.record_repair(RepairCause::Arrival, 4);
            p.record_repair(RepairCause::Resort, 9);
            p
        });
        rec.set_router_stats(RouterStats {
            candidate_evals: 10,
            plan_reuses: 8,
            plan_rebuilds: 1,
            scratch_fallbacks: 1,
        });
        let t = rec.into_telemetry();
        let back = Telemetry::from_json(&t.to_json_pretty()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.events, 2);
        assert_eq!(back.heap_depth_peak, 5);
        assert_eq!(back.heap_depth_mean(), 4.0);
        assert_eq!(back.backfill_attempts, 2);
        assert_eq!(back.backfill_hits, 1);
        let arrival = &back.plan_repairs[0];
        assert_eq!((arrival.cause.as_str(), arrival.count), ("arrival", 1));
    }

    #[test]
    fn telemetry_merge_sums_and_maxes() {
        let mut rec1 = Recorder::default();
        rec1.on_event(10);
        let mut rec2 = Recorder::default();
        rec2.on_event(2);
        rec2.on_event(2);
        let mut t = rec1.into_telemetry();
        t.merge(&rec2.into_telemetry());
        assert_eq!(t.events, 3);
        assert_eq!(t.heap_depth_peak, 10);
        assert_eq!(t.heap_depth_sum, 14);
        assert_eq!(t.heap_depth_hist.total(), 3);
    }

    #[test]
    fn spans_export_as_chrome_trace() {
        let mut rec = Recorder::with_spans();
        rec.span_begin(Phase::ArrivalBatch);
        rec.span_end(Phase::ArrivalBatch);
        rec.span_begin(Phase::ReroutePass);
        rec.span_cancel(Phase::ReroutePass);
        assert_eq!(rec.spans().len(), 1, "cancelled spans are dropped");
        let json = rec.chrome_trace_json();
        let v: serde::Value = serde_json::from_str(&json).unwrap();
        let serde::Value::Object(entries) = &v else {
            panic!("trace root must be an object");
        };
        let events = entries
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .unwrap();
        let serde::Value::Array(items) = events else {
            panic!("traceEvents must be an array");
        };
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn default_recorder_skips_spans() {
        let mut rec = Recorder::default();
        rec.span_begin(Phase::BackfillScan);
        rec.span_end(Phase::BackfillScan);
        assert!(rec.spans().is_empty());
    }
}
