//! The seed stepping simulator, kept as a differential-testing oracle.
//!
//! This is the original linear-scan implementation of the simulation state
//! machine: time advances by scanning the running set for the minimum
//! completion and the arrival list for the next submission (`O(running)`
//! per event, `O(events × running)` per schedule). The production
//! [`crate::state::Simulation`] replaced these scans with the `desim`
//! event kernel; this module preserves the old engine byte-for-byte so
//!
//! * the equivalence property suite (`tests/event_equivalence.rs`) can
//!   assert the kernel port produces *identical* schedules, and
//! * the `kernel` criterion bench can quantify the speedup.
//!
//! The decision-point protocol is the same as [`crate::state::Simulation`];
//! see that module's docs. Do not grow features here — it exists to stay
//! equal to the seed behavior.

use crate::policy::Policy;
use crate::state::{BackfillError, BackfillOutcome, CompletedJob, RunningJob, SimEvent};
use swf::{Job, Trace};

/// Time-comparison slack for completion processing (same as the kernel's).
const EPS: f64 = 1e-9;

/// The seed (pre-kernel) simulation state machine.
#[derive(Debug, Clone)]
pub struct ReferenceSimulation {
    policy: Policy,
    cluster_procs: u32,
    free: u32,
    now: f64,
    arrivals: Vec<Job>,
    next_arrival: usize,
    queue: Vec<Job>,
    running: Vec<RunningJob>,
    completed: Vec<CompletedJob>,
    opportunity_armed: bool,
}

impl ReferenceSimulation {
    /// Starts a fresh simulation of `trace` under `policy`.
    pub fn new(trace: &Trace, policy: Policy) -> Self {
        Self {
            policy,
            cluster_procs: trace.cluster_procs(),
            free: trace.cluster_procs(),
            now: 0.0,
            arrivals: trace.jobs().to_vec(),
            next_arrival: 0,
            queue: Vec::new(),
            running: Vec::new(),
            completed: Vec::new(),
            opportunity_armed: true,
        }
    }

    /// Current simulation time, seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Free processors right now.
    pub fn free_procs(&self) -> u32 {
        self.free
    }

    /// Total processors in the cluster.
    pub fn cluster_procs(&self) -> u32 {
        self.cluster_procs
    }

    /// The base policy driving head-of-queue selection.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The waiting queue, sorted by the policy as of the last pass.
    pub fn queue(&self) -> &[Job] {
        &self.queue
    }

    /// Jobs currently executing.
    pub fn running(&self) -> &[RunningJob] {
        &self.running
    }

    /// Jobs that finished, in completion order.
    pub fn completed(&self) -> &[CompletedJob] {
        &self.completed
    }

    /// Unroutable jobs: always 0 — the seed engine models the flat
    /// machine, where [`swf::Trace::new`] already sanitized the trace.
    pub fn dropped_jobs(&self) -> usize {
        0
    }

    /// Queue migrations: always 0 — the seed engine has a single queue.
    pub fn migrations(&self) -> usize {
        0
    }

    /// The reserved job (head of the sorted queue), if any.
    pub fn reserved_job(&self) -> Option<&Job> {
        self.queue.first()
    }

    /// Advances to the next backfilling opportunity or completion.
    pub fn advance(&mut self) -> SimEvent {
        loop {
            self.ingest_arrivals();
            self.start_ready_jobs();
            if self.opportunity_armed && !self.queue.is_empty() && self.has_backfill_candidate() {
                self.opportunity_armed = false;
                return SimEvent::BackfillOpportunity;
            }
            if !self.advance_time() {
                debug_assert!(self.queue.is_empty() && self.running.is_empty());
                return SimEvent::Done;
            }
        }
    }

    /// Queue indices (excluding the reserved head) of fitting jobs.
    pub fn backfill_candidates(&self) -> Vec<usize> {
        self.queue
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, j)| j.procs <= self.free)
            .map(|(i, _)| i)
            .collect()
    }

    /// Starts the queued job at `queue_idx` immediately (a backfill).
    pub fn backfill(&mut self, queue_idx: usize) -> Result<BackfillOutcome, BackfillError> {
        if queue_idx >= self.queue.len() {
            return Err(BackfillError::BadIndex);
        }
        if queue_idx == 0 {
            return Err(BackfillError::ReservedJob);
        }
        let job = self.queue[queue_idx];
        if job.procs > self.free {
            return Err(BackfillError::DoesNotFit);
        }
        let delays_reserved = self.would_delay_reserved(&job);
        self.queue.remove(queue_idx);
        self.start_job(job);
        self.opportunity_armed = true;
        Ok(BackfillOutcome { delays_reserved })
    }

    fn actual_profile(&self) -> crate::profile::AvailabilityProfile {
        let mut prof = crate::profile::AvailabilityProfile::new(self.now, self.free);
        for r in &self.running {
            prof.add_release(r.end().max(self.now), r.job.procs);
        }
        prof
    }

    fn would_delay_reserved(&self, job: &Job) -> bool {
        let Some(reserved) = self.reserved_job() else {
            return false;
        };
        let prof = self.actual_profile();
        let shadow_before = prof.earliest_avail(reserved.procs);
        let mut after = prof;
        after.add_usage(self.now, self.now + job.runtime, job.procs);
        let shadow_after = after.earliest_avail(reserved.procs);
        shadow_after > shadow_before + EPS
    }

    fn ingest_arrivals(&mut self) {
        while self
            .arrivals
            .get(self.next_arrival)
            .is_some_and(|j| j.submit <= self.now + EPS)
        {
            self.queue.push(self.arrivals[self.next_arrival]);
            self.next_arrival += 1;
        }
    }

    fn start_ready_jobs(&mut self) {
        while !self.queue.is_empty() {
            self.policy.sort_queue(&mut self.queue, self.now);
            if self.queue[0].procs <= self.free {
                let job = self.queue.remove(0);
                self.start_job(job);
                self.opportunity_armed = true;
            } else {
                break;
            }
        }
    }

    fn start_job(&mut self, job: Job) {
        debug_assert!(job.procs <= self.free, "start_job overcommits the cluster");
        self.free -= job.procs;
        self.running.push(RunningJob {
            job,
            start: self.now,
        });
    }

    fn has_backfill_candidate(&self) -> bool {
        self.queue.iter().skip(1).any(|j| j.procs <= self.free)
    }

    /// Moves time to the next arrival or completion by linear scan.
    fn advance_time(&mut self) -> bool {
        let next_arrival = self.arrivals.get(self.next_arrival).map(|j| j.submit);
        let next_completion = self
            .running
            .iter()
            .map(RunningJob::end)
            .min_by(f64::total_cmp);
        let target = match (next_arrival, next_completion) {
            (Some(a), Some(c)) => a.min(c),
            (Some(a), None) => a,
            (None, Some(c)) => c,
            (None, None) => return false,
        };
        debug_assert!(
            target >= self.now - EPS,
            "time must not go backwards: {} -> {target}",
            self.now
        );
        self.now = target.max(self.now);
        self.process_completions();
        self.opportunity_armed = true;
        true
    }

    fn process_completions(&mut self) {
        let now = self.now;
        let mut freed = 0u32;
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].end() <= now + EPS {
                let r = self.running.swap_remove(i);
                freed += r.job.procs;
                self.completed.push(CompletedJob {
                    job: r.job,
                    start: r.start,
                });
            } else {
                i += 1;
            }
        }
        self.free += freed;
        debug_assert!(
            self.free <= self.cluster_procs,
            "released more than claimed"
        );
    }
}

/// Schedules `trace` to completion with the reference engine — the seed's
/// `run_scheduler` for the `None` backfill case, used by benches and the
/// equivalence suite. Heuristic passes work on the reference engine through
/// [`crate::runner::run_scheduler_reference`].
pub fn run_reference_no_backfill(trace: &Trace, policy: Policy) -> Vec<CompletedJob> {
    let mut sim = ReferenceSimulation::new(trace, policy);
    while sim.advance() != SimEvent::Done {}
    sim.completed
}

/// The seed's availability profile: an *unsorted* `(time, delta)` list that
/// re-sums itself on every query — `O(n)` per `avail_at`, `O(n²)` per
/// `earliest_fit`. Preserved (together with [`naive_easy_pass`] /
/// [`naive_conservative_pass`]) so the `kernel` bench measures the true
/// seed cost model, not just the engine loop. The production replacement
/// is the sorted sweep in [`crate::profile::AvailabilityProfile`].
#[derive(Debug, Clone)]
pub struct NaiveAvailabilityProfile {
    now: f64,
    free: i64,
    events: Vec<(f64, i64)>,
}

impl NaiveAvailabilityProfile {
    /// A profile with `free` processors available from `now` on.
    pub fn new(now: f64, free: u32) -> Self {
        Self {
            now,
            free: free as i64,
            events: Vec::new(),
        }
    }

    /// Records a release of `procs` processors at `time`.
    pub fn add_release(&mut self, time: f64, procs: u32) {
        self.events.push((time.max(self.now), procs as i64));
    }

    /// Records a planned occupation of `procs` on `[start, end)`.
    pub fn add_usage(&mut self, start: f64, end: f64, procs: u32) {
        let start = start.max(self.now);
        if end <= start {
            return;
        }
        self.events.push((start, -(procs as i64)));
        self.events.push((end, procs as i64));
    }

    /// Availability just after `time`, by full rescan.
    pub fn avail_at(&self, time: f64) -> i64 {
        let mut avail = self.free;
        for &(t, d) in &self.events {
            if t <= time {
                avail += d;
            }
        }
        avail
    }

    /// Seed `earliest_fit`: candidate scan with an inner rescan per
    /// breakpoint.
    pub fn earliest_fit(&self, procs: u32, duration: f64, not_before: f64) -> f64 {
        let not_before = not_before.max(self.now);
        let mut times: Vec<f64> = self
            .events
            .iter()
            .map(|&(t, _)| t)
            .filter(|&t| t > not_before)
            .collect();
        times.push(not_before);
        times.sort_by(f64::total_cmp);
        times.dedup();

        'candidate: for &start in &times {
            if self.avail_at(start) < procs as i64 {
                continue;
            }
            let end = start + duration;
            for &(t, _) in &self.events {
                if t > start && t < end && self.avail_at(t) < procs as i64 {
                    continue 'candidate;
                }
            }
            return start;
        }
        f64::INFINITY
    }

    /// Seed shadow-time query.
    pub fn earliest_avail(&self, procs: u32) -> f64 {
        self.earliest_fit(procs, 0.0, self.now)
    }
}

/// The seed EASY pass, verbatim logic over [`NaiveAvailabilityProfile`].
/// Kept only as the benchmark baseline; production code uses
/// [`crate::easy::easy_pass`]. Equivalence of the two is pinned by
/// `tests/event_equivalence.rs`.
pub fn naive_easy_pass(
    sim: &mut ReferenceSimulation,
    estimator: crate::estimator::RuntimeEstimator,
) -> usize {
    let order = sim.policy();
    let Some(&reserved) = sim.reserved_job() else {
        return 0;
    };
    let now = sim.now();

    let mut prof = NaiveAvailabilityProfile::new(now, sim.free_procs());
    for r in sim.running() {
        let est_end = (r.start + estimator.estimate(&r.job)).max(now);
        prof.add_release(est_end, r.job.procs);
    }
    let shadow = prof.earliest_avail(reserved.procs);
    let mut extra = (prof.avail_at(shadow) - reserved.procs as i64).max(0) as u32;

    let mut backfilled = 0;
    loop {
        let pick = sim
            .queue()
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, j)| {
                if j.procs > sim.free_procs() {
                    return false;
                }
                let est_end = now + estimator.estimate(j);
                est_end <= shadow || j.procs <= extra
            })
            .min_by(|(_, a), (_, b)| {
                order
                    .score(a, now)
                    .total_cmp(&order.score(b, now))
                    .then(a.submit.total_cmp(&b.submit))
                    .then(a.id.cmp(&b.id))
            })
            .map(|(i, j)| (i, *j));
        let Some((idx, job)) = pick else { break };
        let uses_extra = now + estimator.estimate(&job) > shadow;
        sim.backfill(idx)
            .expect("candidate was validated against free procs");
        if uses_extra {
            extra -= job.procs;
        }
        backfilled += 1;
    }
    backfilled
}

/// The seed conservative pass over [`NaiveAvailabilityProfile`]; benchmark
/// baseline for [`crate::conservative::conservative_pass`].
pub fn naive_conservative_pass(
    sim: &mut ReferenceSimulation,
    estimator: crate::estimator::RuntimeEstimator,
) -> usize {
    let now = sim.now();
    let mut prof = NaiveAvailabilityProfile::new(now, sim.free_procs());
    for r in sim.running() {
        let est_end = (r.start + estimator.estimate(&r.job)).max(now);
        prof.add_release(est_end, r.job.procs);
    }

    let mut start_now = Vec::new();
    for (i, job) in sim.queue().iter().enumerate() {
        let est = estimator.estimate(job);
        let t = prof.earliest_fit(job.procs, est, now);
        debug_assert!(t.is_finite(), "every queued job fits an empty cluster");
        prof.add_usage(t, t + est, job.procs);
        if i > 0 && t <= now + EPS {
            start_now.push(job.id);
        }
    }

    let mut started = 0;
    for id in start_now {
        if let Some(idx) = sim.queue().iter().position(|j| j.id == id) {
            if idx > 0 && sim.backfill(idx).is_ok() {
                started += 1;
            }
        }
    }
    started
}

/// The full seed cost model: reference engine + naive profile + seed pass
/// logic. This is what "the seed implementation" means in the `kernel`
/// bench and the committed speedup numbers.
pub fn run_seed_scheduler(
    trace: &Trace,
    policy: Policy,
    backfill: crate::runner::Backfill,
) -> crate::runner::ScheduleResult {
    use crate::runner::Backfill;
    let mut sim = ReferenceSimulation::new(trace, policy);
    while sim.advance() == SimEvent::BackfillOpportunity {
        match backfill {
            Backfill::None => {}
            Backfill::Easy(est) => {
                naive_easy_pass(&mut sim, est);
            }
            Backfill::EasyOrdered(est, order) => {
                // The seed had no naive variant with explicit order beyond
                // the shared pass; order only changes the scan key, not the
                // profile cost, so reuse the shared pass here.
                crate::easy::easy_pass_with_order(&mut sim, est, order);
            }
            Backfill::Conservative(est) => {
                naive_conservative_pass(&mut sim, est);
            }
        }
    }
    let metrics = crate::metrics::Metrics::of(sim.completed(), trace.cluster_procs());
    crate::runner::ScheduleResult {
        completed: sim.completed().to_vec(),
        metrics,
        dropped_jobs: 0,
        migrations: 0,
        kills: 0,
        resubmits: 0,
        wasted_node_seconds: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_schedules_every_job() {
        let t = swf::TracePreset::Lublin1.generate(300, 3);
        let completed = run_reference_no_backfill(&t, Policy::Fcfs);
        assert_eq!(completed.len(), t.len());
    }

    #[test]
    fn reference_decision_protocol_matches_docs() {
        let t = Trace::new(
            "s",
            4,
            vec![
                Job::new(0, 0.0, 3, 100.0, 100.0),
                Job::new(1, 10.0, 4, 100.0, 100.0),
                Job::new(2, 20.0, 1, 10.0, 10.0),
            ],
        );
        let mut sim = ReferenceSimulation::new(&t, Policy::Fcfs);
        assert_eq!(sim.advance(), SimEvent::BackfillOpportunity);
        assert_eq!(sim.reserved_job().unwrap().id, 1);
        assert_eq!(sim.backfill_candidates(), vec![1]);
        assert!(sim.backfill(1).is_ok());
        while sim.advance() != SimEvent::Done {}
        assert_eq!(sim.completed().len(), 3);
    }
}
