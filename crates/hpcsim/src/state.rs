//! The event-driven simulation state machine.
//!
//! [`Simulation`] advances a trace through submission, queueing, start and
//! completion events under a base [`Policy`]. Whenever the policy-selected
//! head job cannot start (insufficient free processors) **and** at least one
//! other queued job would fit, the machine pauses and reports a
//! [`SimEvent::BackfillOpportunity`] — the decision points at which EASY,
//! conservative, or the RL agent act. The driver then calls
//! [`Simulation::backfill`] zero or more times and resumes with
//! [`Simulation::advance`].
//!
//! The machine never takes backfilling decisions itself, which is what lets
//! heuristics and the learning agent share one simulator (paper §3.4: "RL
//! decision points occur at specific, distinct moments").
//!
//! # Event-kernel internals
//!
//! Time no longer advances by scanning job vectors for minima (the seed
//! implementation, preserved as [`crate::reference::ReferenceSimulation`]).
//! Job arrivals and completions are events on a [`desim::EventQueue`]: the
//! next instant is a heap peek, arrivals are a chained event stream (one
//! pending arrival event at a time, so the heap stays `O(running)` deep),
//! and a completion carries its job id. Decision points remain *derived*
//! conditions checked between events — they depend on the mutable queue
//! state, so scheduling them as heap events would go stale the moment a
//! driver backfills.
//!
//! Equivalence with the reference engine (identical realized schedules for
//! every policy × backfill combination) is pinned by
//! `tests/event_equivalence.rs`; throughput is compared by the `kernel`
//! criterion bench.

use crate::cluster::{
    ClusterSpec, ClusterView, Partition, ReroutePolicy, Router, RouterPlanCache, StaticAffinity,
};
use crate::estimator::RuntimeEstimator;
use crate::observe::audit::{SkipReason, StartKind};
use crate::observe::{NoopProbe, Phase, Probe};
use crate::plan::Planner;
use crate::platform::{FailurePolicy, PlatformEvent, PlatformEventSpec};
use crate::policy::Policy;
use desim::{EventQueue, SimTime};
use std::collections::BTreeMap;
use std::sync::Arc;
use swf::{Job, Trace};

/// Time-comparison slack for completion processing.
const EPS: f64 = 1e-9;

/// A job currently executing on the cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningJob {
    /// The job being executed.
    pub job: Job,
    /// Absolute start time.
    pub start: f64,
}

impl RunningJob {
    /// Actual completion time (known to the simulator, not the scheduler).
    pub fn end(&self) -> f64 {
        self.start + self.job.runtime
    }
}

/// A finished job together with its realized start time.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CompletedJob {
    /// The job that ran.
    pub job: Job,
    /// Absolute start time.
    pub start: f64,
}

impl CompletedJob {
    /// Time spent waiting in the queue.
    pub fn wait(&self) -> f64 {
        (self.start - self.job.submit).max(0.0)
    }

    /// Absolute completion time.
    pub fn end(&self) -> f64 {
        self.start + self.job.runtime
    }
}

/// What the simulation paused on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// The head job cannot start and at least one other queued job fits the
    /// free processors: a backfilling decision is required.
    BackfillOpportunity,
    /// Every job in the trace has completed.
    Done,
}

/// Outcome of a single backfill action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackfillOutcome {
    /// Whether starting this job pushed back the reserved (head) job's
    /// ground-truth earliest start time — the violation the paper punishes
    /// with a large negative reward (§3.4).
    pub delays_reserved: bool,
}

/// Errors from misusing the backfill API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackfillError {
    /// Index out of range of the waiting queue.
    BadIndex,
    /// Attempted to backfill the reserved head job (always masked, §3.2).
    ReservedJob,
    /// The job does not fit the currently free processors.
    DoesNotFit,
}

impl std::fmt::Display for BackfillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackfillError::BadIndex => write!(f, "queue index out of range"),
            BackfillError::ReservedJob => write!(f, "the reserved job cannot be backfilled"),
            BackfillError::DoesNotFit => write!(f, "job does not fit the free processors"),
        }
    }
}

impl std::error::Error for BackfillError {}

/// The decision-point protocol shared by the kernel [`Simulation`] and the
/// seed [`crate::reference::ReferenceSimulation`].
///
/// The EASY and conservative passes are generic over this trait, so the
/// same backfilling logic drives both engines — which is what makes the
/// differential tests in `tests/event_equivalence.rs` meaningful: any
/// schedule difference is attributable to the engine, not the heuristic.
pub trait BackfillSim {
    /// Current simulation time, seconds.
    fn now(&self) -> f64;
    /// Free processors right now.
    fn free_procs(&self) -> u32;
    /// The base policy driving head-of-queue selection.
    fn policy(&self) -> Policy;
    /// The waiting queue, priority-sorted; index 0 is the reserved job.
    fn queue(&self) -> &[Job];
    /// Jobs currently executing.
    fn running(&self) -> &[RunningJob];
    /// Advances to the next decision point or to completion.
    fn advance(&mut self) -> SimEvent;
    /// Starts the queued job at `queue_idx` immediately.
    fn backfill(&mut self, queue_idx: usize) -> Result<BackfillOutcome, BackfillError>;
    /// Jobs that finished, in completion order.
    fn completed(&self) -> &[CompletedJob];

    /// Jobs set aside as unroutable before the run started (always 0 on
    /// flat machines — [`swf::Trace::new`] sanitizes against them).
    fn dropped_jobs(&self) -> usize {
        0
    }

    /// Queue migrations performed so far (always 0 without
    /// [`ReroutePolicy::AtDecisionPoints`]).
    fn migrations(&self) -> usize {
        0
    }

    /// Running jobs killed by platform events so far (always 0 without a
    /// [`crate::platform::PlatformEventSpec`]).
    fn kills(&self) -> usize {
        0
    }

    /// Killed or displaced jobs rerouted back into a queue by platform
    /// events (always 0 without a platform-event stream).
    fn resubmits(&self) -> usize {
        0
    }

    /// Node-seconds of work destroyed by platform-event kills, in
    /// reference-hardware units: the elapsed run under kill-and-resubmit,
    /// or the restart overhead under checkpoint-restart.
    fn wasted_node_seconds(&self) -> f64 {
        0.0
    }

    /// The reserved job (head of the sorted queue), if any.
    fn reserved_job(&self) -> Option<&Job> {
        self.queue().first()
    }

    /// Runs one conservative *planning* pass: (re-)derives the reservation
    /// plan for the current queue and returns the queue positions
    /// (ascending, head excluded) whose planned start is "now" — the jobs
    /// the conservative pass should backfill.
    ///
    /// The default derivation is from scratch (the seed-pinned semantics);
    /// engines with a persistent planner override it with incremental
    /// suffix repair — bitwise the same plan, checked by the planner's
    /// debug oracle and `tests/proptest_plan.rs`.
    fn plan_conservative_starts(&mut self, estimator: RuntimeEstimator) -> Vec<usize> {
        crate::plan::from_scratch_conservative_starts(self, estimator)
    }

    /// The EASY shadow time and extra-processor count for the reserved
    /// job under `estimator`, or `None` with an empty queue. Default:
    /// from scratch; the kernel engine serves it from its persistent
    /// release profile.
    fn shadow_extra(&mut self, estimator: RuntimeEstimator) -> Option<(f64, u32)> {
        crate::plan::from_scratch_shadow_extra(self, estimator)
    }

    /// Marks the start of an instrumentable scheduling phase. Engines
    /// without a probe ignore it; [`ProbedSimulation`] forwards to its
    /// [`Probe`] so the conservative/EASY passes show up in span traces.
    fn phase_begin(&mut self, _phase: crate::observe::Phase) {}

    /// Marks the end of the phase opened by [`BackfillSim::phase_begin`].
    fn phase_end(&mut self, _phase: crate::observe::Phase) {}

    /// Whether decision forensics are being collected — the EASY and
    /// conservative passes only pay for their skip-reason scans when this
    /// is true. Default (and [`NoopProbe`]): no.
    fn audit_enabled(&self) -> bool {
        false
    }

    /// Reports that the current backfill scan passed over the queued job
    /// at `queue_idx` for `reason`. No-op without an auditing probe.
    fn audit_backfill_skip(&mut self, _queue_idx: usize, _reason: SkipReason) {}

    /// Marks the next successful [`BackfillSim::backfill`] call as the
    /// start of a planned conservative reservation, so the audit log
    /// distinguishes on-plan starts from opportunistic backfills.
    fn audit_mark_reservation_start(&mut self) {}
}

macro_rules! forward_backfill_sim {
    ($ty:ty) => {
        fn now(&self) -> f64 {
            <$ty>::now(self)
        }
        fn free_procs(&self) -> u32 {
            <$ty>::free_procs(self)
        }
        fn policy(&self) -> Policy {
            <$ty>::policy(self)
        }
        fn queue(&self) -> &[Job] {
            <$ty>::queue(self)
        }
        fn running(&self) -> &[RunningJob] {
            <$ty>::running(self)
        }
        fn advance(&mut self) -> SimEvent {
            <$ty>::advance(self)
        }
        fn backfill(&mut self, queue_idx: usize) -> Result<BackfillOutcome, BackfillError> {
            <$ty>::backfill(self, queue_idx)
        }
        fn completed(&self) -> &[CompletedJob] {
            <$ty>::completed(self)
        }
        fn dropped_jobs(&self) -> usize {
            <$ty>::dropped_jobs(self)
        }
        fn migrations(&self) -> usize {
            <$ty>::migrations(self)
        }
    };
}

impl<P: Probe> BackfillSim for ProbedSimulation<P> {
    forward_backfill_sim!(Self);

    fn kills(&self) -> usize {
        Self::kills(self)
    }

    fn resubmits(&self) -> usize {
        Self::resubmits(self)
    }

    fn wasted_node_seconds(&self) -> f64 {
        Self::wasted_node_seconds(self)
    }

    fn plan_conservative_starts(&mut self, estimator: RuntimeEstimator) -> Vec<usize> {
        let p = self.active;
        let starts = self
            .planner
            .conservative_starts(&self.parts, p, estimator, self.now);
        if P::ENABLED {
            if let Some((cause, entries)) = self.planner.take_last_repair() {
                self.probe.on_plan_repaired(self.now, p, cause, entries);
            }
        }
        starts
    }

    fn shadow_extra(&mut self, estimator: RuntimeEstimator) -> Option<(f64, u32)> {
        let reserved = *self.parts[self.active].queue.first()?; // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
        Some(
            self.planner
                .shadow_extra(&self.parts, self.active, estimator, self.now, &reserved),
        )
    }

    fn phase_begin(&mut self, phase: Phase) {
        if P::ENABLED {
            self.probe.span_begin(phase);
        }
    }

    fn phase_end(&mut self, phase: Phase) {
        if P::ENABLED {
            self.probe.span_end(phase);
        }
    }

    fn audit_enabled(&self) -> bool {
        P::ENABLED && self.probe.audit_on()
    }

    fn audit_backfill_skip(&mut self, queue_idx: usize, reason: SkipReason) {
        if P::ENABLED {
            // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
            if let Some(job) = self.parts[self.active].queue.get(queue_idx) {
                let id = job.id;
                self.probe
                    .on_backfill_skipped(self.now, self.active, id, reason);
            }
        }
    }

    fn audit_mark_reservation_start(&mut self) {
        self.audit_next_reservation = true;
    }
}

// The seed engine keeps the default from-scratch planning paths: it exists
// to stay byte-equal to the seed behavior, and the kernel engine's
// incremental planner is differentially tested against it.
impl BackfillSim for crate::reference::ReferenceSimulation {
    forward_backfill_sim!(crate::reference::ReferenceSimulation);
}

/// A kernel event: what happens at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClusterEvent {
    /// The job at this index of the arrival list is routed to a partition
    /// and enters its waiting queue (and schedules the next arrival,
    /// keeping one pending at a time).
    Arrival(usize),
    /// The job with this id releases its processors on partition `part`.
    /// `generation` is the job's incarnation stamp at start time: a
    /// platform-event kill bumps the live incarnation, turning the
    /// already-scheduled completion of the dead run into a stale event
    /// that is skipped when it pops (always 0 without platform events).
    Completion {
        part: usize,
        job: usize,
        generation: u32,
    },
    /// The platform event at this index of the materialized
    /// [`PlatformEventSpec`] stream fires (node failure/repair, drain
    /// boundary, or resize). Never scheduled when the stream is empty.
    Platform(usize),
}

/// The simulation state machine. See the module docs for the protocol.
///
/// Since the cluster subsystem landed, the machine schedules a
/// [`ClusterSpec`] — a list of partitions, each with its own free-processor
/// count, priority queue and running set. A [`Router`] assigns every
/// arriving job to a partition before it queues there; a backfilling
/// opportunity names an **active partition**, and the decision-point
/// accessors (`queue()`, `free_procs()`, `running()`, `backfill()`) operate
/// on it, so EASY, conservative and the RL agent drive partitioned machines
/// through the unchanged [`BackfillSim`] protocol. [`Simulation::new`]
/// builds the degenerate one-partition spec, which realizes
/// bitwise-identical schedules to the pre-cluster flat engine.
///
/// The engine is generic over a [`Probe`] — the observability hook of
/// [`crate::observe`]. [`Simulation`] is the [`NoopProbe`] instantiation:
/// every hook monomorphizes to an empty inline body, so the
/// uninstrumented engine compiles to exactly the pre-probe code. A
/// [`crate::observe::Recorder`] (via [`ProbedSimulation::with_probe`] or
/// the runner's `*_recorded` entry points) collects counters, histograms
/// and span traces instead.
#[derive(Debug, Clone)]
pub struct ProbedSimulation<P: Probe = NoopProbe> {
    policy: Policy,
    spec: ClusterSpec,
    router: Arc<dyn Router>, // simlint: allow(sync-audit) — Arc shares immutable scenario inputs (workload/spec/estimator); read-only after construction
    reroute: ReroutePolicy,
    parts: Vec<Partition>,
    /// The partition the current backfilling opportunity is in (always 0
    /// between opportunities on a one-partition cluster).
    active: usize,
    now: f64,
    arrivals: Vec<Job>,
    completed: Vec<CompletedJob>,
    /// Jobs wider than every partition, set aside before the run (the
    /// trace jobs `Metrics` would otherwise silently under-count).
    dropped: Vec<Job>,
    /// Per-job migration counts under [`ReroutePolicy::AtDecisionPoints`]
    /// (empty under the default at-submission routing). A `BTreeMap` so
    /// the container is order-deterministic by construction — access is
    /// keyed today, but the re-route pass must stay bitwise reproducible
    /// even if someone iterates it tomorrow.
    moves: BTreeMap<usize, u32>,
    /// Total queue migrations performed.
    migrations: usize,
    /// Reusable per-partition freeze flags for [`Self::reroute_pass`] —
    /// taken at pass entry, returned at exit, so the pass allocates only
    /// on first use (hot-path/alloc discipline).
    frozen_scratch: Vec<bool>,
    events: EventQueue<ClusterEvent>,
    /// The persistent per-partition planning layer (see [`crate::plan`]):
    /// long-lived availability profiles and reservation plans, updated
    /// incrementally on every arrival/start/completion/migration instead
    /// of rebuilt from `running()` at every decision point.
    planner: Planner,
    /// Shared scratch for router planning (see
    /// [`crate::cluster::RouterPlanCache`]): per-partition release
    /// profiles + policy-sorted reservation chains reused across the
    /// candidates of a routing/re-routing batch.
    router_cache: RouterPlanCache,
    /// The observability hook; [`NoopProbe`] costs nothing.
    probe: P,
    /// Set by [`BackfillSim::audit_mark_reservation_start`]; the next
    /// successful [`Self::backfill`] consumes it to label its start
    /// [`StartKind::Reservation`] instead of [`StartKind::Backfill`].
    audit_next_reservation: bool,
    /// The materialized platform-event stream (empty unless
    /// [`Self::install_platform_events`] installed a non-empty spec —
    /// and then the engine is bitwise the pre-platform one).
    pevents: Vec<PlatformEvent>,
    /// Fate of jobs running on failed processors.
    failure_policy: FailurePolicy,
    /// Per-job incarnation stamps, bumped on every platform-event kill so
    /// the dead run's scheduled completion is recognized as stale. Empty
    /// (never consulted) without platform events.
    incarnations: BTreeMap<usize, u32>,
    /// Jobs killed by platform events (failures / shrinking resizes).
    kills: usize,
    /// Killed jobs resubmitted (the remainder joined `dropped`).
    resubmits: usize,
    /// Node-seconds of work lost to kills, in reference-hardware units.
    wasted_node_seconds: f64,
}

/// The uninstrumented simulation — the [`NoopProbe`] instantiation of
/// [`ProbedSimulation`], bitwise-equal in behavior and (after
/// monomorphization) in machine code to the pre-probe engine.
pub type Simulation = ProbedSimulation<NoopProbe>;

impl<P: Probe + Default> ProbedSimulation<P> {
    /// Starts a fresh simulation of `trace` under `policy` on the
    /// degenerate homogeneous cluster (one partition, reference speed).
    pub fn new(trace: &Trace, policy: Policy) -> Self {
        Self::with_cluster(
            trace,
            policy,
            ClusterSpec::homogeneous(trace.cluster_procs()),
            Arc::new(StaticAffinity), // simlint: allow(sync-audit) — Arc shares immutable scenario inputs (workload/spec/estimator); read-only after construction
        )
    }

    /// Starts a simulation of `trace` on an explicit cluster shape, with
    /// `router` assigning each arriving job to a partition **once, at
    /// submission** ([`ReroutePolicy::AtSubmission`]). Jobs wider than the
    /// widest partition are unroutable: they are set aside up front (the
    /// same sanitation [`Trace::new`] applies against a homogeneous
    /// machine) and counted in [`Simulation::dropped_jobs`].
    pub fn with_cluster(
        trace: &Trace,
        policy: Policy,
        spec: ClusterSpec,
        router: Arc<dyn Router>, // simlint: allow(sync-audit) — Arc shares immutable scenario inputs (workload/spec/estimator); read-only after construction
    ) -> Self {
        Self::with_cluster_rerouted(trace, policy, spec, router, ReroutePolicy::AtSubmission)
    }

    /// [`Simulation::with_cluster`] with an explicit [`ReroutePolicy`]:
    /// under [`ReroutePolicy::AtDecisionPoints`], still-waiting jobs are
    /// re-evaluated whenever an arrival/completion batch settles and
    /// migrated to a partition with a strictly earlier estimated start
    /// (see [`Router::reroute`]). `AtSubmission` realizes
    /// bitwise-identical schedules to [`Simulation::with_cluster`].
    pub fn with_cluster_rerouted(
        trace: &Trace,
        policy: Policy,
        spec: ClusterSpec,
        router: Arc<dyn Router>, // simlint: allow(sync-audit) — Arc shares immutable scenario inputs (workload/spec/estimator); read-only after construction
        reroute: ReroutePolicy,
    ) -> Self {
        Self::with_cluster_rerouted_probed(trace, policy, spec, router, reroute, P::default())
    }
}

impl<P: Probe> ProbedSimulation<P> {
    /// [`Simulation::with_cluster_rerouted`] with an explicit probe
    /// instance — the fully general constructor every other one funnels
    /// into.
    pub fn with_cluster_rerouted_probed(
        trace: &Trace,
        policy: Policy,
        spec: ClusterSpec,
        router: Arc<dyn Router>, // simlint: allow(sync-audit) — Arc shares immutable scenario inputs (workload/spec/estimator); read-only after construction
        reroute: ReroutePolicy,
        probe: P,
    ) -> Self {
        let widest = spec.max_partition_procs();
        let (arrivals, dropped): (Vec<Job>, Vec<Job>) = trace
            .jobs()
            .iter()
            .copied()
            .partition(|j| j.procs <= widest);
        let mut events = EventQueue::new();
        if !arrivals.is_empty() {
            events.schedule(
                SimTime::new(arrivals[0].submit.max(0.0)),
                ClusterEvent::Arrival(0),
            );
        }
        let parts = spec
            .partitions()
            .iter()
            .map(|p| Partition::new(p.clone()))
            .collect();
        let mut sim = Self {
            policy,
            spec,
            router,
            reroute,
            parts,
            active: 0,
            now: 0.0,
            arrivals,
            completed: Vec::new(),
            dropped,
            moves: BTreeMap::new(),
            frozen_scratch: Vec::new(),
            migrations: 0,
            events,
            planner: Planner::new(),
            router_cache: RouterPlanCache::new(),
            probe,
            audit_next_reservation: false,
            pevents: Vec::new(),
            failure_policy: FailurePolicy::default(),
            incarnations: BTreeMap::new(),
            kills: 0,
            resubmits: 0,
            wasted_node_seconds: 0.0,
        };
        if P::ENABLED && sim.probe.audit_on() {
            for i in 0..sim.dropped.len() {
                let j = sim.dropped[i];
                sim.probe.on_job_dropped(&j);
            }
        }
        sim
    }

    /// Starts a probed simulation on the degenerate homogeneous cluster —
    /// [`Simulation::new`] with an explicit probe instance.
    pub fn with_probe(trace: &Trace, policy: Policy, probe: P) -> Self {
        Self::with_cluster_rerouted_probed(
            trace,
            policy,
            ClusterSpec::homogeneous(trace.cluster_procs()),
            Arc::new(StaticAffinity), // simlint: allow(sync-audit) — Arc shares immutable scenario inputs (workload/spec/estimator); read-only after construction
            ReroutePolicy::AtSubmission,
            probe,
        )
    }

    /// The probe, for reading collected telemetry mid-run.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Consumes the simulation and hands back its probe (the usual way to
    /// extract a [`crate::observe::Recorder`] after `Done`).
    pub fn into_probe(self) -> P {
        self.probe
    }

    /// Current simulation time, seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Free processors of the **active partition** right now (the whole
    /// machine on a one-partition cluster).
    pub fn free_procs(&self) -> u32 {
        self.parts[self.active].free // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
    }

    /// Total processors across every partition.
    pub fn cluster_procs(&self) -> u32 {
        self.spec.total_procs()
    }

    /// The cluster's shape.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Every partition's live state, in spec order.
    pub fn partitions(&self) -> &[Partition] {
        &self.parts
    }

    /// Index of the partition the current backfilling opportunity is in.
    /// Meaningful while paused at a [`SimEvent::BackfillOpportunity`].
    pub fn active_partition(&self) -> usize {
        self.active
    }

    /// The base policy driving head-of-queue selection.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The active partition's waiting queue, sorted by the policy as of the
    /// last scheduling pass; index 0 is the reserved job during a backfill
    /// opportunity.
    pub fn queue(&self) -> &[Job] {
        &self.parts[self.active].queue // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
    }

    /// Jobs currently executing on the active partition.
    pub fn running(&self) -> &[RunningJob] {
        &self.parts[self.active].running // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
    }

    /// Jobs that finished (across all partitions), in completion order.
    pub fn completed(&self) -> &[CompletedJob] {
        &self.completed
    }

    /// The active re-routing policy.
    pub fn reroute_policy(&self) -> ReroutePolicy {
        self.reroute
    }

    /// Trace jobs set aside as unroutable (wider than every partition) —
    /// the jobs a [`crate::metrics::Metrics`] over [`Self::completed`]
    /// does **not** describe. Always empty on a flat machine.
    pub fn dropped(&self) -> &[Job] {
        &self.dropped
    }

    /// Number of unroutable jobs set aside up front.
    pub fn dropped_jobs(&self) -> usize {
        self.dropped.len()
    }

    /// Total queue migrations performed so far (0 unless the simulation
    /// runs under [`ReroutePolicy::AtDecisionPoints`]).
    pub fn migrations(&self) -> usize {
        self.migrations
    }

    /// Installs a scenario's dynamic-platform events: materializes `spec`
    /// against this cluster shape and schedules every event on the kernel
    /// heap next to arrivals and completions. Call once, right after
    /// construction. An empty spec installs nothing and the run is
    /// bitwise identical to an engine without the layer (pinned by
    /// `scenario_equivalence`).
    pub fn install_platform_events(&mut self, spec: &PlatformEventSpec) -> Result<(), String> {
        if spec.is_empty() {
            return Ok(());
        }
        let events = spec.materialize(self.parts.len())?;
        self.failure_policy = spec.failure_policy;
        for (i, ev) in events.iter().enumerate() {
            self.events.schedule(
                SimTime::new(ev.at()).max(self.events.now()),
                ClusterEvent::Platform(i),
            );
        }
        self.pevents = events;
        Ok(())
    }

    /// Jobs killed by platform events so far (node failures and shrinking
    /// resizes; always 0 without platform events).
    pub fn kills(&self) -> usize {
        self.kills
    }

    /// Killed or displaced jobs successfully requeued after a platform
    /// event (the rest are counted through [`Self::dropped_jobs`]).
    pub fn resubmits(&self) -> usize {
        self.resubmits
    }

    /// Node-seconds of work lost to platform-event kills, in
    /// reference-hardware units (elapsed wall-clock × partition speed ×
    /// processors under kill-and-resubmit; restart overhead × processors
    /// under checkpoint-restart).
    pub fn wasted_node_seconds(&self) -> f64 {
        self.wasted_node_seconds
    }

    /// The reserved job (head of the active partition's queue), if any.
    pub fn reserved_job(&self) -> Option<&Job> {
        self.parts[self.active].queue.first() // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
    }

    /// Advances the simulation until the next backfilling opportunity (in
    /// any partition — the lowest-indexed armed one wins, and becomes the
    /// active partition) or completion of the whole trace.
    pub fn advance(&mut self) -> SimEvent {
        loop {
            if self.apply_due_events() > 0 {
                // A decision point: the arrival/completion batch settled
                // and the cluster state changed. Re-evaluate waiting jobs
                // before start decisions (a job that can start right here
                // has no strictly earlier start elsewhere, so the pass
                // never steals immediately-startable work).
                self.reroute_pass();
            }
            self.start_ready_jobs();
            if P::ENABLED && self.probe.audit_on() {
                // The instant is settled: every waiting job's wait-cause
                // class is re-derived from the queues as they now stand.
                self.probe.on_settle(self.now, &self.parts);
            }
            if let Some(p) = self.next_opportunity() {
                self.parts[p].opportunity_armed = false; // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                self.active = p;
                if P::ENABLED {
                    self.probe.on_queue_depth(self.parts[p].queue.len()); // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                }
                return SimEvent::BackfillOpportunity;
            }
            // Advance the clock to the next event; the loop head then
            // applies everything due within the epsilon window at once
            // (simultaneous completions and arrivals).
            let Some(next) = self.events.peek_time() else {
                debug_assert!(self
                    .parts
                    .iter()
                    .all(|p| p.queue.is_empty() && p.running.is_empty()));
                self.active = 0;
                self.harvest_stats();
                return SimEvent::Done;
            };
            debug_assert!(
                next.as_secs() >= self.now - EPS,
                "time must not go backwards: {} -> {next}",
                self.now
            );
            let advanced = next.as_secs() > self.now;
            self.now = next.as_secs().max(self.now);
            for part in &mut self.parts {
                if advanced && self.policy.time_dependent() {
                    part.needs_sort = true;
                }
                part.opportunity_armed = true;
            }
        }
    }

    /// Queue indices (excluding the reserved head) of active-partition jobs
    /// that fit its free processors — the raw action space at an
    /// opportunity.
    pub fn backfill_candidates(&self) -> Vec<usize> {
        let part = &self.parts[self.active]; // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
        part.queue
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, j)| j.procs <= part.free)
            .map(|(i, _)| i)
            .collect() // simlint: allow(hot-alloc) — RL action-space API returns an owned Vec once per opportunity
    }

    /// Starts the active partition's queued job at `queue_idx` immediately
    /// (a backfill).
    ///
    /// Reports whether the action delayed the reserved job's ground-truth
    /// earliest start (computed from *actual* runtimes — the simulator
    /// knows the truth even though schedulers only see estimates).
    pub fn backfill(&mut self, queue_idx: usize) -> Result<BackfillOutcome, BackfillError> {
        // The reservation mark applies to this call only, error or not.
        let next_reservation = std::mem::take(&mut self.audit_next_reservation);
        let part = &self.parts[self.active]; // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
        if queue_idx >= part.queue.len() {
            if P::ENABLED {
                self.probe.on_backfill(false);
            }
            return Err(BackfillError::BadIndex);
        }
        if queue_idx == 0 {
            if P::ENABLED {
                self.probe.on_backfill(false);
            }
            return Err(BackfillError::ReservedJob);
        }
        let job = part.queue[queue_idx]; // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
        if job.procs > part.free {
            if P::ENABLED {
                self.probe.on_backfill(false);
            }
            return Err(BackfillError::DoesNotFit);
        }
        let delays_reserved = self.would_delay_reserved(&job);
        if P::ENABLED {
            self.probe.on_backfill(true);
            if delays_reserved {
                self.probe.on_backfill_would_delay();
            }
        }
        let p = self.active;
        self.parts[p].queue.remove(queue_idx); // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
        self.parts[p].touch(); // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
        self.planner.on_start(p, queue_idx, &job, self.now);
        if P::ENABLED && self.probe.audit_on() {
            let kind = if next_reservation {
                StartKind::Reservation
            } else {
                StartKind::Backfill
            };
            self.probe.on_job_started(self.now, p, &job, kind);
        }
        self.start_job(p, job);
        self.parts[p].opportunity_armed = true; // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
        Ok(BackfillOutcome { delays_reserved })
    }

    /// Whether starting `job` now would push back the reserved job's
    /// earliest possible start under ground-truth runtimes — answered by
    /// the planner's persistent actual-runtime profile (a trial usage is
    /// applied and exactly retracted).
    fn would_delay_reserved(&mut self, job: &Job) -> bool {
        // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
        let Some(&reserved) = self.parts[self.active].queue.first() else {
            return false;
        };
        self.planner
            .would_delay(&self.parts, self.active, job, reserved.procs, self.now)
    }

    /// Pops and applies every event due at the current instant (within the
    /// epsilon window) — completions free processors on their partition,
    /// arrivals are routed and join a partition queue. Start decisions are
    /// *not* events; they follow in [`Self::start_ready_jobs`] once the
    /// instant's state is settled.
    ///
    /// Completions apply their freed processors **immediately**, so a
    /// router deciding later in the same batch sees a consistent partition
    /// view (a completed job is gone from `running` *and* its processors
    /// are back in `free` — `EarliestStart` profiles both). Nothing else
    /// reads `free` mid-batch, so the end-of-batch state (and the
    /// degenerate-path equivalence with the flat engine) is unchanged.
    ///
    /// Returns the number of events applied — the re-route pass only runs
    /// on settled batches that actually changed the cluster state.
    fn apply_due_events(&mut self) -> usize {
        let mut applied = 0;
        let deadline = SimTime::new(self.now + EPS);
        if P::ENABLED {
            self.probe.span_begin(Phase::ArrivalBatch);
        }
        while let Some((_, event)) = self.events.pop_until(deadline) {
            applied += 1;
            if P::ENABLED {
                self.probe.on_event(self.events.len());
            }
            match event {
                ClusterEvent::Arrival(idx) => {
                    let job = self.arrivals[idx]; // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                    if let Some(next) = self.arrivals.get(idx + 1) {
                        self.events.schedule(
                            SimTime::new(next.submit).max(self.events.now()),
                            ClusterEvent::Arrival(idx + 1),
                        );
                    }
                    // Static sanitation only filtered jobs wider than the
                    // widest partition; under platform events a job can
                    // also arrive into a machine whose *current* capacity
                    // (or drain state) admits it nowhere. Route only what
                    // fits now — the rest joins the dropped count.
                    if !self.pevents.is_empty() {
                        let view = ClusterView {
                            now: self.now,
                            policy: self.policy,
                            parts: &self.parts,
                            plans: Some(&self.router_cache),
                        };
                        if view.fitting(&job).next().is_none() {
                            if P::ENABLED && self.probe.audit_on() {
                                self.probe.on_job_dropped(&job);
                            }
                            self.dropped.push(job);
                            continue;
                        }
                    }
                    let router = Arc::clone(&self.router); // simlint: allow(sync-audit) — Arc shares immutable scenario inputs (workload/spec/estimator); read-only after construction
                    let p = router.route(
                        &job,
                        &ClusterView {
                            now: self.now,
                            policy: self.policy,
                            parts: &self.parts,
                            plans: Some(&self.router_cache),
                        },
                    );
                    debug_assert!(
                        job.procs <= self.parts[p].capacity(), // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                        "router sent a {}-proc job to partition {} ({} procs)",
                        job.procs,
                        p,
                        self.parts[p].capacity() // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                    );
                    if P::ENABLED && self.probe.audit_on() {
                        // The routing evidence: the same estimated-start
                        // geometry `EarliestStart` routes by, one estimate
                        // per fitting partition (shared-cache reads are
                        // schedule-neutral, so the realized schedule is
                        // unchanged by collecting them).
                        let est = crate::cluster::EarliestStart::default();
                        let view = ClusterView {
                            now: self.now,
                            policy: self.policy,
                            parts: &self.parts,
                            plans: Some(&self.router_cache),
                        };
                        let cands: Vec<(usize, f64)> = view
                            .fitting(&job)
                            .map(|i| (i, est.estimated_start(&job, &view, i)))
                            .collect(); // simlint: allow(hot-alloc) — audit-only routing candidates; gated on audit_on()
                        self.probe.on_job_submitted(self.now, &job, p, &cands);
                    }
                    let scaled = self.parts[p].scale_job(job); // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                    let pos = self.parts[p].enqueue(scaled, self.policy, self.now); // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                    self.planner.on_enqueue(p, pos);
                }
                ClusterEvent::Completion {
                    part: p,
                    job,
                    generation,
                } => {
                    if !self.incarnations.is_empty()
                        && self.incarnations.get(&job).copied().unwrap_or(0) != generation
                    {
                        // A platform event killed this incarnation after
                        // its completion was scheduled: the event is
                        // stale. (The map is only populated by kills, so
                        // the check costs one branch without them.)
                        continue;
                    }
                    let part = &mut self.parts[p]; // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                    let pos = part
                        .running
                        .iter()
                        .position(|r| r.job.id == job)
                        .expect("completion event for a job not running"); // simlint: allow(panic-path) — event-queue invariant: completions are scheduled only for running jobs
                    let r = part.running.swap_remove(pos);
                    part.free += r.job.procs;
                    part.touch();
                    debug_assert!(part.free <= part.capacity, "released more than claimed");
                    self.planner.on_complete(p, &r, self.now);
                    if P::ENABLED && self.probe.audit_on() {
                        self.probe.on_job_completed(self.now, p, &r.job, r.start);
                    }
                    self.completed.push(CompletedJob {
                        job: r.job,
                        start: r.start,
                    });
                }
                ClusterEvent::Platform(i) => self.apply_platform_event(i),
            }
        }
        if P::ENABLED {
            if applied > 0 {
                self.probe.span_end(Phase::ArrivalBatch);
            } else {
                // Nothing was due: don't clutter the trace with
                // zero-length batches.
                self.probe.span_cancel(Phase::ArrivalBatch);
            }
        }
        applied
    }

    /// The decision-point migration pass ([`ReroutePolicy::AtDecisionPoints`]).
    ///
    /// Runs once per settled arrival/completion batch, before start
    /// decisions. Every still-waiting job is offered to
    /// [`Router::reroute`] and moved when the router names a partition
    /// with a strictly earlier estimated start and the gain clears
    /// `min_gain_secs`, except:
    ///
    /// * **policy heads** (queue index 0) — the reserved job anchors the
    ///   partition's backfilling protocol and EASY/conservative shadow
    ///   geometry, so it never migrates;
    /// * jobs in, or moving into, **partitions holding an armed
    ///   backfilling opportunity** — those queues are about to be handed
    ///   to the decision-point driver, and migrating them would change
    ///   the action space between arming and acting (the `BackfillSim`
    ///   protocol stays untouched);
    /// * jobs whose **move budget** (`max_moves_per_job`) is spent.
    ///
    /// The scan order is deterministic: partitions by index, queues in
    /// policy order; a moved job re-enters its target queue at its policy
    /// position with durations re-scaled to the target's speed.
    fn reroute_pass(&mut self) {
        let ReroutePolicy::AtDecisionPoints {
            max_moves_per_job,
            min_gain_secs,
        } = self.reroute
        else {
            return;
        };
        if self.parts.len() < 2 || max_moves_per_job == 0 {
            return;
        }
        if P::ENABLED {
            self.probe.span_begin(Phase::ReroutePass);
        }
        // Establish policy order everywhere first, so "queue index 0" is
        // the policy head (the same sort `start_ready_jobs` would apply at
        // this instant — doing it here changes nothing downstream).
        for (p, part) in self.parts.iter_mut().enumerate() {
            if part.needs_sort {
                self.policy.sort_queue(&mut part.queue, self.now);
                part.needs_sort = false;
                part.touch();
                self.planner.on_resort(p);
            }
        }
        let mut frozen = std::mem::take(&mut self.frozen_scratch);
        frozen.clear();
        frozen.extend(self.parts.iter().map(Self::has_opportunity));
        let router = Arc::clone(&self.router); // simlint: allow(sync-audit) — Arc shares immutable scenario inputs (workload/spec/estimator); read-only after construction
                                               // Drain evacuation: queued jobs on a draining partition can never
                                               // start there, so they escape unconditionally — no gain threshold,
                                               // no per-job move budget, head included. (Without platform events
                                               // no partition drains and this loop is a no-op.)
        for p in 0..self.parts.len() {
            // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
            if !self.parts[p].draining {
                continue;
            }
            let mut pos = 0;
            // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
            while pos < self.parts[p].queue.len() {
                let stored = self.parts[p].queue[pos]; // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                let reference = self.parts[p].unscale_job(stored); // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                let view = ClusterView {
                    now: self.now,
                    policy: self.policy,
                    parts: &self.parts,
                    plans: Some(&self.router_cache),
                };
                // `fitting` excludes every draining partition (including
                // this one), so `route` lands on a live target when any
                // admits the job; otherwise it stays put until the drain
                // ends or capacity returns.
                if view.fitting(&reference).next().is_none() {
                    pos += 1;
                    continue;
                }
                let to = router.route(&reference, &view);
                // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                if frozen[to] || to == p {
                    pos += 1;
                    continue;
                }
                let job = self.parts[p].queue.remove(pos); // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                self.parts[p].touch(); // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                self.planner.on_dequeue(p, pos);
                let moved = self.parts[to].scale_job(self.parts[p].unscale_job(job)); // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                let to_pos = self.parts[to].enqueue(moved, self.policy, self.now); // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                self.planner.on_enqueue(to, to_pos);
                self.parts[p].opportunity_armed = true; // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                self.parts[to].opportunity_armed = true; // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                self.migrations += 1;
                if P::ENABLED {
                    self.probe.on_migration_accepted();
                    self.probe.on_drain_evacuated(self.now, job.id, p, to);
                    if self.probe.audit_on() {
                        self.probe.on_migrated(self.now, job.id, p, to, 0.0);
                    }
                }
                // The vec shifted left — re-examine this position.
            }
        }
        for p in 0..self.parts.len() {
            // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
            if frozen[p] {
                continue;
            }
            let mut pos = 1;
            // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
            while pos < self.parts[p].queue.len() {
                let stored = self.parts[p].queue[pos]; // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                if self.moves.get(&stored.id).copied().unwrap_or(0) >= max_moves_per_job {
                    pos += 1;
                    continue;
                }
                // The router reasons in reference-hardware durations; the
                // queued copy is scaled to its current partition.
                let reference = self.parts[p].unscale_job(stored); // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                let view = ClusterView {
                    now: self.now,
                    policy: self.policy,
                    parts: &self.parts,
                    plans: Some(&self.router_cache),
                };
                let decision = router.reroute(&reference, &view, p);
                if P::ENABLED {
                    self.probe.on_migration_candidate();
                    if decision.is_some() {
                        self.probe.on_migration_proposed();
                    }
                }
                match decision {
                    // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                    Some(d) if d.gain >= min_gain_secs && !frozen[d.to] && d.to != p => {
                        debug_assert!(
                            reference.procs <= self.parts[d.to].capacity(), // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                            "router migrated a {}-proc job to partition {} ({} procs)",
                            reference.procs,
                            d.to,
                            self.parts[d.to].capacity() // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                        );
                        let job = self.parts[p].queue.remove(pos); // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                        self.parts[p].touch(); // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                        self.planner.on_dequeue(p, pos);
                        let moved = self.parts[d.to].scale_job(self.parts[p].unscale_job(job)); // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                        let to_pos = self.parts[d.to].enqueue(moved, self.policy, self.now); // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                        self.planner.on_enqueue(d.to, to_pos);
                        // Both queues changed: re-arm their opportunities
                        // (state-change semantics, same as a job start).
                        self.parts[p].opportunity_armed = true; // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                        self.parts[d.to].opportunity_armed = true; // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                        *self.moves.entry(job.id).or_insert(0) += 1;
                        self.migrations += 1;
                        if P::ENABLED {
                            self.probe.on_migration_accepted();
                            if self.probe.audit_on() {
                                self.probe.on_migrated(self.now, job.id, p, d.to, d.gain);
                            }
                        }
                        // The vec shifted left — re-examine this position.
                    }
                    _ => pos += 1,
                }
            }
        }
        self.frozen_scratch = frozen;
        if P::ENABLED {
            self.probe.span_end(Phase::ReroutePass);
        }
    }

    /// Whether this partition currently holds an (armed) backfilling
    /// opportunity — the exact predicate [`Self::next_opportunity`] scans
    /// for. Draining partitions never do: they admit no starts, so there
    /// is nothing for a backfilling driver to decide there.
    fn has_opportunity(part: &Partition) -> bool {
        !part.draining
            && part.opportunity_armed
            && !part.queue.is_empty()
            && part.queue.iter().skip(1).any(|j| j.procs <= part.free)
    }

    /// Applies the materialized platform event at index `i` — the
    /// dynamic-machine counterpart of a completion: capacity moves, the
    /// planner's baselines shift via its exact-removal ops, and displaced
    /// jobs are requeued or dropped, never silently lost. Runs inside the
    /// settled-batch machinery, so the reroute pass and start decisions
    /// follow at the same instant.
    fn apply_platform_event(&mut self, i: usize) {
        let ev = self.pevents[i]; // simlint: allow(panic-path) — platform events are scheduled from the materialized stream; index in-bounds by construction
        if P::ENABLED {
            self.probe.on_platform_event(self.now, &ev);
        }
        match ev {
            PlatformEvent::NodeFail { part, procs, .. } => self.shrink_capacity(part, procs),
            PlatformEvent::NodeRepair { part, procs, .. } => self.grow_capacity(part, procs),
            PlatformEvent::DrainStart { part, .. } => {
                let p = &mut self.parts[part]; // simlint: allow(panic-path) — materialize() validated partition indices against parts.len()
                if !p.draining {
                    p.draining = true;
                    p.touch();
                }
            }
            PlatformEvent::DrainEnd { part, .. } => {
                let p = &mut self.parts[part]; // simlint: allow(panic-path) — materialize() validated partition indices against parts.len()
                if p.draining {
                    p.draining = false;
                    p.touch();
                }
            }
            PlatformEvent::Resize { part, procs, .. } => {
                let cap = self.parts[part].capacity; // simlint: allow(panic-path) — materialize() validated partition indices against parts.len()
                if procs < cap {
                    self.shrink_capacity(part, cap - procs);
                } else if procs > cap {
                    self.grow_capacity(part, procs - cap);
                }
            }
        }
    }

    /// Returns `delta` processors to partition `p` (a repair or a growing
    /// resize): capacity and the free pool grow together and the planner
    /// shifts every baseline to match.
    fn grow_capacity(&mut self, p: usize, delta: u32) {
        if delta == 0 {
            return;
        }
        let part = &mut self.parts[p]; // simlint: allow(panic-path) — materialize() validated partition indices against parts.len()
        part.capacity += delta;
        part.free += delta;
        part.touch();
        self.planner.on_capacity(p, delta as i64);
    }

    /// Removes `delta` processors from partition `p` (a failure or a
    /// shrinking resize). The free pool absorbs as much of the loss as it
    /// can; the remainder kills running jobs — latest start first, ties
    /// to the higher id, so the least-finished work dies first — whose
    /// fate follows the scenario's [`FailurePolicy`]. Queued jobs wider
    /// than the surviving capacity are displaced. Killed and displaced
    /// jobs are rerouted through the live cluster view; jobs no partition
    /// admits any more take the existing dropped path.
    fn shrink_capacity(&mut self, p: usize, delta: u32) {
        let take = delta.min(self.parts[p].capacity); // simlint: allow(panic-path) — materialize() validated partition indices against parts.len()
        if take == 0 {
            return;
        }
        // Phase 1: kill running jobs until the free pool covers the loss.
        // Each kill releases processors exactly like an early completion,
        // so the planner's baselines track `free` at every step.
        let mut requeue: Vec<Job> = Vec::new(); // simlint: allow(hot-alloc) — platform-event path: runs per capacity event, not per job event
                                                // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
        while self.parts[p].free < take {
            let part = &mut self.parts[p]; // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
            let victim = part
                .running
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a.start.total_cmp(&b.start).then(a.job.id.cmp(&b.job.id)))
                .map(|(i, _)| i)
                .expect("capacity deficit with no running jobs"); // simlint: allow(panic-path) — invariant free + Σ running == capacity: a deficit implies a running job
            let r = part.running.swap_remove(victim);
            part.free += r.job.procs;
            part.touch();
            // The dead run's scheduled completion is now stale.
            *self.incarnations.entry(r.job.id).or_insert(0) += 1;
            self.planner.on_complete(p, &r, self.now);
            let speed = self.parts[p].speed(); // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
            let elapsed = (self.now - r.start).max(0.0);
            let reference = self.parts[p].unscale_job(r.job); // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
            let (resubmitted, wasted) = match self.failure_policy {
                FailurePolicy::KillResubmit => {
                    // From scratch: original submit, full runtime — the
                    // elapsed run is lost entirely.
                    (reference, elapsed * speed * r.job.procs as f64)
                }
                FailurePolicy::CheckpointRestart { overhead_secs } => {
                    let overhead = overhead_secs.max(0.0);
                    let remaining = (reference.runtime - elapsed * speed).max(0.0) + overhead;
                    (
                        Job {
                            runtime: remaining,
                            ..reference
                        },
                        overhead * r.job.procs as f64,
                    )
                }
            };
            self.kills += 1;
            self.wasted_node_seconds += wasted;
            if P::ENABLED {
                self.probe.on_job_killed(self.now, p, &r.job, wasted);
            }
            requeue.push(resubmitted);
        }
        // Phase 2: retract the capacity itself; the planner shifts every
        // baseline by the same delta (PR-5 exact removal, so the repaired
        // plan suffix sees the shrunken availability at every instant).
        {
            let part = &mut self.parts[p]; // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
            part.free -= take;
            part.capacity -= take;
            part.touch();
        }
        self.planner.on_capacity(p, -(take as i64));
        // Phase 3: displace queued jobs wider than the surviving capacity
        // — they could never start here again (until a repair, which may
        // never come), so they reroute now instead of deadlocking the
        // queue head.
        let cap = self.parts[p].capacity; // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
        let mut pos = 0;
        // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
        while pos < self.parts[p].queue.len() {
            // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
            if self.parts[p].queue[pos].procs > cap {
                let job = self.parts[p].queue.remove(pos); // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                self.parts[p].touch(); // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                self.planner.on_dequeue(p, pos);
                requeue.push(self.parts[p].unscale_job(job)); // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
            } else {
                pos += 1;
            }
        }
        // Phase 4: reroute the fallout against the post-shrink cluster.
        for job in requeue {
            self.requeue_job(job);
        }
    }

    /// Requeues a killed or displaced job (reference-hardware durations)
    /// through the router against the live cluster view, or — when no
    /// partition admits it any more — through the existing dropped path,
    /// so platform events never silently lose work.
    fn requeue_job(&mut self, job: Job) {
        let admitted = self.parts.iter().any(|part| part.admits(job.procs));
        if !admitted {
            if P::ENABLED && self.probe.audit_on() {
                self.probe.on_job_dropped(&job);
            }
            self.dropped.push(job);
            return;
        }
        let router = Arc::clone(&self.router); // simlint: allow(sync-audit) — Arc shares immutable scenario inputs (workload/spec/estimator); read-only after construction
        let p = router.route(
            &job,
            &ClusterView {
                now: self.now,
                policy: self.policy,
                parts: &self.parts,
                plans: Some(&self.router_cache),
            },
        );
        self.resubmits += 1;
        if P::ENABLED {
            self.probe.on_job_resubmitted(self.now, &job, p);
            if self.probe.audit_on() {
                let est = crate::cluster::EarliestStart::default();
                let view = ClusterView {
                    now: self.now,
                    policy: self.policy,
                    parts: &self.parts,
                    plans: Some(&self.router_cache),
                };
                let cands: Vec<(usize, f64)> = view
                    .fitting(&job)
                    .map(|i| (i, est.estimated_start(&job, &view, i)))
                    .collect(); // simlint: allow(hot-alloc) — audit-only routing candidates; gated on audit_on()
                self.probe.on_job_submitted(self.now, &job, p, &cands);
            }
        }
        let scaled = self.parts[p].scale_job(job); // simlint: allow(panic-path) — router contract: route() returns indices of admitting partitions
        let pos = self.parts[p].enqueue(scaled, self.policy, self.now); // simlint: allow(panic-path) — router contract: route() returns indices of admitting partitions
        self.planner.on_enqueue(p, pos);
    }

    /// Starts policy-selected head jobs in every partition while they fit.
    ///
    /// Each partition's queue is sorted at most once per call: removals
    /// preserve order, so (unlike the seed engine's sort-per-start) nothing
    /// changes between iterations at a fixed instant. The realized order is
    /// identical.
    fn start_ready_jobs(&mut self) {
        for p in 0..self.parts.len() {
            let part = &mut self.parts[p]; // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
            if part.draining || part.queue.is_empty() {
                continue;
            }
            if part.needs_sort {
                self.policy.sort_queue(&mut part.queue, self.now);
                part.needs_sort = false;
                part.touch();
                self.planner.on_resort(p);
            }
            while !self.parts[p].queue.is_empty() // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                && self.parts[p].queue[0].procs <= self.parts[p].free
            {
                let job = self.parts[p].queue.remove(0); // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
                self.planner.on_start(p, 0, &job, self.now);
                if P::ENABLED && self.probe.audit_on() {
                    self.probe
                        .on_job_started(self.now, p, &job, StartKind::Head);
                }
                self.start_job(p, job);
                self.parts[p].opportunity_armed = true; // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
            }
        }
    }

    fn start_job(&mut self, p: usize, job: Job) {
        let part = &mut self.parts[p]; // simlint: allow(panic-path) — partition index tracked against parts.len(); OOB is corrupted sim state — fail fast
        debug_assert!(
            job.procs <= part.free,
            "start_job overcommits the partition"
        );
        part.free -= job.procs;
        part.touch();
        part.running.push(RunningJob {
            job,
            start: self.now,
        });
        // The incarnation stamp only matters (and the map is only
        // populated) when platform events can kill this run.
        let generation = if self.pevents.is_empty() {
            0
        } else {
            self.incarnations.get(&job.id).copied().unwrap_or(0)
        };
        self.events.schedule(
            SimTime::new(self.now + job.runtime).max(self.events.now()),
            ClusterEvent::Completion {
                part: p,
                job: job.id,
                generation,
            },
        );
    }

    /// The lowest-indexed partition with an armed backfilling opportunity:
    /// a non-empty queue whose head is blocked while some other queued job
    /// fits the partition's free processors.
    fn next_opportunity(&self) -> Option<usize> {
        self.parts.iter().position(Self::has_opportunity)
    }

    /// Hands the passive counters of the deep layers (planner profiles,
    /// suffix-repair accounting, router plan cache) to the probe. Runs at
    /// `Done`; the set-semantics hooks make repeated harvests idempotent.
    fn harvest_stats(&mut self) {
        if !P::ENABLED {
            return;
        }
        let mut prof = self.planner.profile_stats();
        prof.absorb(&self.router_cache.profile_stats());
        self.probe.set_profile_stats(prof);
        self.probe.set_plan_stats(self.planner.stats());
        self.probe.set_router_stats(self.router_cache.stats());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(cluster: u32, jobs: Vec<Job>) -> Trace {
        Trace::new("test", cluster, jobs)
    }

    /// Drives a simulation to completion without ever backfilling.
    fn run_no_backfill(mut sim: Simulation) -> Simulation {
        while sim.advance() != SimEvent::Done {}
        sim
    }

    #[test]
    fn single_job_runs_at_submission() {
        let t = trace(4, vec![Job::new(0, 100.0, 4, 50.0, 50.0)]);
        let sim = run_no_backfill(Simulation::new(&t, Policy::Fcfs));
        assert_eq!(sim.completed().len(), 1);
        assert_eq!(sim.completed()[0].start, 100.0);
        assert_eq!(sim.free_procs(), 4);
    }

    #[test]
    fn jobs_queue_when_cluster_full() {
        let t = trace(
            4,
            vec![
                Job::new(0, 0.0, 4, 100.0, 100.0),
                Job::new(1, 10.0, 4, 100.0, 100.0),
            ],
        );
        let sim = run_no_backfill(Simulation::new(&t, Policy::Fcfs));
        let second = sim.completed().iter().find(|c| c.job.id == 1).unwrap();
        assert_eq!(second.start, 100.0);
        assert_eq!(second.wait(), 90.0);
    }

    #[test]
    fn parallel_jobs_share_the_cluster() {
        let t = trace(
            8,
            vec![
                Job::new(0, 0.0, 4, 100.0, 100.0),
                Job::new(1, 0.0, 4, 100.0, 100.0),
            ],
        );
        let sim = run_no_backfill(Simulation::new(&t, Policy::Fcfs));
        assert!(sim.completed().iter().all(|c| c.start == 0.0));
    }

    #[test]
    fn opportunity_fires_when_head_blocked_and_candidate_fits() {
        // Job 0 occupies 3 of 4 procs; job 1 (4 procs) blocks; job 2 (1 proc) fits.
        let t = trace(
            4,
            vec![
                Job::new(0, 0.0, 3, 100.0, 100.0),
                Job::new(1, 10.0, 4, 100.0, 100.0),
                Job::new(2, 20.0, 1, 10.0, 10.0),
            ],
        );
        let mut sim = Simulation::new(&t, Policy::Fcfs);
        assert_eq!(sim.advance(), SimEvent::BackfillOpportunity);
        assert_eq!(sim.reserved_job().unwrap().id, 1);
        assert_eq!(sim.backfill_candidates(), vec![1]);
        assert_eq!(sim.queue()[1].id, 2);
    }

    #[test]
    fn declining_an_opportunity_does_not_loop() {
        let t = trace(
            4,
            vec![
                Job::new(0, 0.0, 3, 100.0, 100.0),
                Job::new(1, 10.0, 4, 100.0, 100.0),
                Job::new(2, 20.0, 1, 10.0, 10.0),
            ],
        );
        let mut sim = Simulation::new(&t, Policy::Fcfs);
        assert_eq!(sim.advance(), SimEvent::BackfillOpportunity);
        // Decline: simply advance again; the sim must make progress and
        // eventually finish with everyone scheduled.
        let mut guard = 0;
        while sim.advance() != SimEvent::Done {
            guard += 1;
            assert!(guard < 100, "simulation failed to make progress");
        }
        assert_eq!(sim.completed().len(), 3);
    }

    #[test]
    fn backfill_starts_job_immediately() {
        let t = trace(
            4,
            vec![
                Job::new(0, 0.0, 3, 100.0, 100.0),
                Job::new(1, 10.0, 4, 100.0, 100.0),
                Job::new(2, 20.0, 1, 10.0, 10.0),
            ],
        );
        let mut sim = Simulation::new(&t, Policy::Fcfs);
        assert_eq!(sim.advance(), SimEvent::BackfillOpportunity);
        let out = sim.backfill(1).unwrap();
        // Job 2 ends at now+10 = 30 < 100 (when job 0 releases), so the
        // reserved 4-proc job is not delayed.
        assert!(!out.delays_reserved);
        while sim.advance() != SimEvent::Done {}
        let c2 = sim.completed().iter().find(|c| c.job.id == 2).unwrap();
        assert_eq!(c2.start, 20.0);
        // Reserved job still starts at 100.
        let c1 = sim.completed().iter().find(|c| c.job.id == 1).unwrap();
        assert_eq!(c1.start, 100.0);
    }

    #[test]
    fn backfill_detects_delaying_the_reserved_job() {
        // Cluster 4. Job 0: 3 procs until t=100. Reserved job 1 needs 4.
        // Job 2: 1 proc, runtime 500 — backfilling it at t=20 delays job 1
        // from 100 to 520.
        let t = trace(
            4,
            vec![
                Job::new(0, 0.0, 3, 100.0, 100.0),
                Job::new(1, 10.0, 4, 100.0, 100.0),
                Job::new(2, 20.0, 1, 500.0, 500.0),
            ],
        );
        let mut sim = Simulation::new(&t, Policy::Fcfs);
        assert_eq!(sim.advance(), SimEvent::BackfillOpportunity);
        let out = sim.backfill(1).unwrap();
        assert!(out.delays_reserved);
        while sim.advance() != SimEvent::Done {}
        let c1 = sim.completed().iter().find(|c| c.job.id == 1).unwrap();
        assert_eq!(c1.start, 520.0);
    }

    #[test]
    fn backfill_error_cases() {
        let t = trace(
            4,
            vec![
                Job::new(0, 0.0, 3, 100.0, 100.0),
                Job::new(1, 10.0, 4, 100.0, 100.0),
                Job::new(2, 20.0, 2, 10.0, 10.0),
                Job::new(3, 21.0, 1, 10.0, 10.0),
            ],
        );
        let mut sim = Simulation::new(&t, Policy::Fcfs);
        assert_eq!(sim.advance(), SimEvent::BackfillOpportunity);
        assert_eq!(sim.backfill(0), Err(BackfillError::ReservedJob));
        assert_eq!(sim.backfill(9), Err(BackfillError::BadIndex));
        // Job 2 (queue index 1) needs 2 procs but only 1 is free; job 3
        // (queue index 2) is the fitting candidate that armed the event.
        assert_eq!(sim.backfill_candidates(), vec![2]);
        assert_eq!(sim.backfill(1), Err(BackfillError::DoesNotFit));
        assert!(sim.backfill(2).is_ok());
    }

    #[test]
    fn sjf_reorders_the_queue() {
        // Long job submitted first, short second; SJF runs the short one
        // first once the blocker finishes.
        let t = trace(
            4,
            vec![
                Job::new(0, 0.0, 4, 100.0, 100.0),
                Job::new(1, 1.0, 4, 900.0, 900.0),
                Job::new(2, 2.0, 4, 10.0, 10.0),
            ],
        );
        let sim = run_no_backfill(Simulation::new(&t, Policy::Sjf));
        let short = sim.completed().iter().find(|c| c.job.id == 2).unwrap();
        let long = sim.completed().iter().find(|c| c.job.id == 1).unwrap();
        assert!(short.start < long.start);
    }

    #[test]
    fn every_job_completes_exactly_once() {
        let t = swf::TracePreset::Lublin1.generate(300, 3);
        let sim = run_no_backfill(Simulation::new(&t, Policy::Fcfs));
        assert_eq!(sim.completed().len(), t.len());
        let mut ids: Vec<usize> = sim.completed().iter().map(|c| c.job.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), t.len());
        assert_eq!(sim.free_procs(), t.cluster_procs());
    }

    #[test]
    fn no_job_starts_before_submission() {
        let t = swf::TracePreset::Lublin2.generate(300, 4);
        let sim = run_no_backfill(Simulation::new(&t, Policy::F1));
        for c in sim.completed() {
            assert!(c.start + EPS >= c.job.submit);
        }
    }

    #[test]
    fn multi_partition_schedules_independently() {
        use crate::cluster::{ClusterSpec, LeastLoaded, PartitionSpec};
        // Two 4-proc partitions. Two 4-proc jobs at t=0: least-loaded must
        // spread them so both start immediately (a single 4-proc machine
        // would serialize them).
        let t = trace(
            8,
            vec![
                Job::new(0, 0.0, 4, 100.0, 100.0),
                Job::new(1, 0.0, 4, 100.0, 100.0),
            ],
        );
        let spec = ClusterSpec::new(vec![
            PartitionSpec::new("a", 4, 1.0),
            PartitionSpec::new("b", 4, 1.0),
        ]);
        let mut sim =
            Simulation::with_cluster(&t, Policy::Fcfs, spec, std::sync::Arc::new(LeastLoaded));
        while sim.advance() != SimEvent::Done {}
        assert_eq!(sim.completed().len(), 2);
        assert!(sim.completed().iter().all(|c| c.start == 0.0));
    }

    #[test]
    fn faster_partition_shrinks_runtimes() {
        use crate::cluster::{ClusterSpec, PartitionSpec, StaticAffinity};
        // One partition at double speed: the job's wall-clock runtime (and
        // request) halves.
        let t = trace(4, vec![Job::new(0, 0.0, 4, 100.0, 100.0)]);
        let spec = ClusterSpec::new(vec![PartitionSpec::new("turbo", 4, 2.0)]);
        let mut sim =
            Simulation::with_cluster(&t, Policy::Fcfs, spec, std::sync::Arc::new(StaticAffinity));
        while sim.advance() != SimEvent::Done {}
        assert_eq!(sim.completed()[0].end(), 50.0);
    }

    #[test]
    fn unroutable_jobs_are_dropped_up_front() {
        use crate::cluster::{ClusterSpec, PartitionSpec, StaticAffinity};
        let t = trace(
            8,
            vec![
                Job::new(0, 0.0, 8, 10.0, 10.0), // wider than any partition
                Job::new(1, 0.0, 4, 10.0, 10.0),
            ],
        );
        let spec = ClusterSpec::new(vec![
            PartitionSpec::new("a", 4, 1.0),
            PartitionSpec::new("b", 4, 1.0),
        ]);
        let mut sim =
            Simulation::with_cluster(&t, Policy::Fcfs, spec, std::sync::Arc::new(StaticAffinity));
        while sim.advance() != SimEvent::Done {}
        assert_eq!(sim.completed().len(), 1);
        assert_eq!(sim.completed()[0].job.id, 1);
        // The dropped job is counted, not silently lost.
        assert_eq!(sim.dropped_jobs(), 1);
        assert_eq!(sim.dropped()[0].id, 0);
        assert_eq!(sim.completed().len() + sim.dropped_jobs(), t.len());
    }

    mod reroute {
        use super::*;
        use crate::cluster::{ClusterSpec, PartitionSpec, ReroutePolicy, StaticAffinity};
        use std::sync::Arc;

        fn two_partitions(speed_b: f64) -> ClusterSpec {
            ClusterSpec::new(vec![
                PartitionSpec::new("a", 4, 1.0),
                PartitionSpec::new("b", 4, speed_b),
            ])
        }

        fn decision_points(max_moves: u32, min_gain: f64) -> ReroutePolicy {
            ReroutePolicy::AtDecisionPoints {
                max_moves_per_job: max_moves,
                min_gain_secs: min_gain,
            }
        }

        /// Affinity sends every 4-proc job to partition "a" (ties to the
        /// earlier partition), leaving "b" idle — the canonical misrouting
        /// migration repairs.
        fn congested_trace() -> Trace {
            trace(
                8,
                vec![
                    Job::new(0, 0.0, 4, 1000.0, 1000.0), // runs on a
                    Job::new(1, 1.0, 4, 1000.0, 1000.0), // head of a's queue
                    Job::new(2, 2.0, 4, 10.0, 10.0),     // queued behind it
                ],
            )
        }

        fn run(reroute: ReroutePolicy) -> Simulation {
            let mut sim = Simulation::with_cluster_rerouted(
                &congested_trace(),
                Policy::Fcfs,
                two_partitions(1.0),
                Arc::new(StaticAffinity),
                reroute,
            );
            while sim.advance() != SimEvent::Done {}
            sim
        }

        #[test]
        fn migration_moves_queued_job_to_the_idle_partition() {
            // At submission, job 2 queues on "a" behind jobs 0 and 1; the
            // settle of its own arrival batch re-evaluates it and moves it
            // to the idle "b", where it starts immediately.
            let sim = run(decision_points(3, 0.0));
            let c2 = sim.completed().iter().find(|c| c.job.id == 2).unwrap();
            assert_eq!(c2.start, 2.0);
            assert_eq!(sim.migrations(), 1);
            // The reserved chain on "a" is untouched.
            let c1 = sim.completed().iter().find(|c| c.job.id == 1).unwrap();
            assert_eq!(c1.start, 1000.0);
            assert_eq!(sim.completed().len(), 3);
        }

        #[test]
        fn at_submission_never_migrates() {
            let sim = run(ReroutePolicy::AtSubmission);
            assert_eq!(sim.migrations(), 0);
            // Job 2 serializes behind both 1000s jobs on "a".
            let c2 = sim.completed().iter().find(|c| c.job.id == 2).unwrap();
            assert_eq!(c2.start, 2000.0);
        }

        #[test]
        fn zero_move_budget_disables_migration() {
            let sim = run(decision_points(0, 0.0));
            assert_eq!(sim.migrations(), 0);
            let c2 = sim.completed().iter().find(|c| c.job.id == 2).unwrap();
            assert_eq!(c2.start, 2000.0);
        }

        #[test]
        fn moves_below_the_gain_threshold_are_not_taken() {
            // The move would gain 1998s; a 10000s threshold rejects it.
            let sim = run(decision_points(3, 10_000.0));
            assert_eq!(sim.migrations(), 0);
            let c2 = sim.completed().iter().find(|c| c.job.id == 2).unwrap();
            assert_eq!(c2.start, 2000.0);
        }

        #[test]
        fn policy_heads_never_migrate() {
            // Only jobs 0 and 1: job 1 is the head of "a"'s queue — it
            // holds the next reservation and must stay even though "b"
            // idles.
            let t = trace(
                8,
                vec![
                    Job::new(0, 0.0, 4, 1000.0, 1000.0),
                    Job::new(1, 1.0, 4, 1000.0, 1000.0),
                ],
            );
            let mut sim = Simulation::with_cluster_rerouted(
                &t,
                Policy::Fcfs,
                two_partitions(1.0),
                Arc::new(StaticAffinity),
                decision_points(3, 0.0),
            );
            while sim.advance() != SimEvent::Done {}
            assert_eq!(sim.migrations(), 0);
            let c1 = sim.completed().iter().find(|c| c.job.id == 1).unwrap();
            assert_eq!(c1.start, 1000.0);
        }

        #[test]
        fn armed_opportunity_partitions_are_frozen() {
            // Partition "a": 3-proc blocker leaves 1 free, a blocked
            // 4-proc head, and a fitting 1-proc candidate — an armed
            // backfilling opportunity. The candidate must NOT migrate to
            // the idle "b" at the settle that armed the opportunity: the
            // driver is about to act on this exact queue.
            let t = trace(
                8,
                vec![
                    Job::new(0, 0.0, 3, 1000.0, 1000.0),
                    Job::new(1, 1.0, 4, 1000.0, 1000.0),
                    Job::new(2, 2.0, 1, 50.0, 50.0),
                ],
            );
            let mut sim = Simulation::with_cluster_rerouted(
                &t,
                Policy::Fcfs,
                two_partitions(1.0),
                Arc::new(StaticAffinity),
                decision_points(3, 0.0),
            );
            assert_eq!(sim.advance(), SimEvent::BackfillOpportunity);
            assert_eq!(sim.active_partition(), 0);
            assert_eq!(sim.migrations(), 0, "frozen partition must keep its queue");
            assert_eq!(sim.queue().iter().map(|j| j.id).collect::<Vec<_>>(), [1, 2]);
            assert!(sim.backfill(1).is_ok());
            while sim.advance() != SimEvent::Done {}
            assert_eq!(sim.completed().len(), 3);
        }

        #[test]
        fn migration_rescales_durations_to_the_target_partition() {
            // "b" runs at double speed: the migrated 10s job executes in
            // 5 wall-clock seconds there.
            let mut sim = Simulation::with_cluster_rerouted(
                &congested_trace(),
                Policy::Fcfs,
                two_partitions(2.0),
                Arc::new(StaticAffinity),
                decision_points(3, 0.0),
            );
            while sim.advance() != SimEvent::Done {}
            assert_eq!(sim.migrations(), 1);
            let c2 = sim.completed().iter().find(|c| c.job.id == 2).unwrap();
            assert_eq!(c2.start, 2.0);
            assert_eq!(c2.end(), 7.0, "runtime must rescale to b's speed");
        }

        #[test]
        fn move_budget_bounds_total_migrations() {
            // A synthetic churn workload cannot migrate any job more than
            // the per-job budget allows.
            let t = swf::TracePreset::Lublin1.generate(300, 11);
            let spec = ClusterSpec::new(vec![
                PartitionSpec::new("a", 128, 1.0),
                PartitionSpec::new("b", 128, 1.0),
                PartitionSpec::new("c", 64, 1.35),
            ]);
            let budget = 2;
            let mut sim = Simulation::with_cluster_rerouted(
                &t,
                Policy::Fcfs,
                spec,
                Arc::new(crate::cluster::LeastLoaded),
                decision_points(budget, 0.0),
            );
            while sim.advance() != SimEvent::Done {}
            assert_eq!(
                sim.completed().len() + sim.dropped_jobs(),
                t.len(),
                "migration must conserve jobs"
            );
            assert!(
                sim.migrations() <= t.len() * budget as usize,
                "total moves exceed the per-job budget"
            );
        }
    }

    #[test]
    fn opportunity_names_the_active_partition() {
        use crate::cluster::{ClusterSpec, PartitionSpec, StaticAffinity};
        // Partition "small" (4p): blocker 3p, head 4p blocked, 1p fits —
        // an opportunity in partition index 1. Partition "big" (8p) idles.
        let t = trace(
            12,
            vec![
                Job::new(0, 0.0, 3, 100.0, 100.0),
                Job::new(1, 10.0, 4, 100.0, 100.0),
                Job::new(2, 20.0, 1, 10.0, 10.0),
            ],
        );
        let spec = ClusterSpec::new(vec![
            PartitionSpec::new("big", 8, 1.0),
            PartitionSpec::new("small", 4, 1.0),
        ]);
        let mut sim =
            Simulation::with_cluster(&t, Policy::Fcfs, spec, std::sync::Arc::new(StaticAffinity));
        assert_eq!(sim.advance(), SimEvent::BackfillOpportunity);
        assert_eq!(sim.active_partition(), 1);
        assert_eq!(sim.partitions()[1].name(), "small");
        assert_eq!(sim.reserved_job().unwrap().id, 1);
        assert_eq!(sim.backfill_candidates(), vec![1]);
        assert!(sim.backfill(1).is_ok());
        while sim.advance() != SimEvent::Done {}
        assert_eq!(sim.completed().len(), 3);
    }

    #[test]
    fn matches_reference_engine_without_backfilling() {
        // Spot-check against the preserved seed engine (the full sweep
        // lives in tests/event_equivalence.rs).
        let t = swf::TracePreset::SdscSp2.generate(400, 17);
        let kernel = run_no_backfill(Simulation::new(&t, Policy::Fcfs));
        let seed = crate::reference::run_reference_no_backfill(&t, Policy::Fcfs);
        let mut a: Vec<(usize, f64)> = kernel
            .completed()
            .iter()
            .map(|c| (c.job.id, c.start))
            .collect();
        let mut b: Vec<(usize, f64)> = seed.iter().map(|c| (c.job.id, c.start)).collect();
        a.sort_by_key(|x| x.0);
        b.sort_by_key(|x| x.0);
        assert_eq!(a, b);
    }
}
