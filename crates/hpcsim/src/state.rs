//! The event-driven simulation state machine.
//!
//! [`Simulation`] advances a trace through submission, queueing, start and
//! completion events under a base [`Policy`]. Whenever the policy-selected
//! head job cannot start (insufficient free processors) **and** at least one
//! other queued job would fit, the machine pauses and reports a
//! [`SimEvent::BackfillOpportunity`] — the decision points at which EASY,
//! conservative, or the RL agent act. The driver then calls
//! [`Simulation::backfill`] zero or more times and resumes with
//! [`Simulation::advance`].
//!
//! The machine never takes backfilling decisions itself, which is what lets
//! heuristics and the learning agent share one simulator (paper §3.4: "RL
//! decision points occur at specific, distinct moments").
//!
//! # Event-kernel internals
//!
//! Time no longer advances by scanning job vectors for minima (the seed
//! implementation, preserved as [`crate::reference::ReferenceSimulation`]).
//! Job arrivals and completions are events on a [`desim::EventQueue`]: the
//! next instant is a heap peek, arrivals are a chained event stream (one
//! pending arrival event at a time, so the heap stays `O(running)` deep),
//! and a completion carries its job id. Decision points remain *derived*
//! conditions checked between events — they depend on the mutable queue
//! state, so scheduling them as heap events would go stale the moment a
//! driver backfills.
//!
//! Equivalence with the reference engine (identical realized schedules for
//! every policy × backfill combination) is pinned by
//! `tests/event_equivalence.rs`; throughput is compared by the `kernel`
//! criterion bench.

use crate::policy::Policy;
use crate::profile::AvailabilityProfile;
use desim::{EventQueue, SimTime};
use swf::{Job, Trace};

/// Time-comparison slack for completion processing.
const EPS: f64 = 1e-9;

/// A job currently executing on the cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningJob {
    /// The job being executed.
    pub job: Job,
    /// Absolute start time.
    pub start: f64,
}

impl RunningJob {
    /// Actual completion time (known to the simulator, not the scheduler).
    pub fn end(&self) -> f64 {
        self.start + self.job.runtime
    }
}

/// A finished job together with its realized start time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedJob {
    /// The job that ran.
    pub job: Job,
    /// Absolute start time.
    pub start: f64,
}

impl CompletedJob {
    /// Time spent waiting in the queue.
    pub fn wait(&self) -> f64 {
        (self.start - self.job.submit).max(0.0)
    }

    /// Absolute completion time.
    pub fn end(&self) -> f64 {
        self.start + self.job.runtime
    }
}

/// What the simulation paused on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// The head job cannot start and at least one other queued job fits the
    /// free processors: a backfilling decision is required.
    BackfillOpportunity,
    /// Every job in the trace has completed.
    Done,
}

/// Outcome of a single backfill action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackfillOutcome {
    /// Whether starting this job pushed back the reserved (head) job's
    /// ground-truth earliest start time — the violation the paper punishes
    /// with a large negative reward (§3.4).
    pub delays_reserved: bool,
}

/// Errors from misusing the backfill API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackfillError {
    /// Index out of range of the waiting queue.
    BadIndex,
    /// Attempted to backfill the reserved head job (always masked, §3.2).
    ReservedJob,
    /// The job does not fit the currently free processors.
    DoesNotFit,
}

impl std::fmt::Display for BackfillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackfillError::BadIndex => write!(f, "queue index out of range"),
            BackfillError::ReservedJob => write!(f, "the reserved job cannot be backfilled"),
            BackfillError::DoesNotFit => write!(f, "job does not fit the free processors"),
        }
    }
}

impl std::error::Error for BackfillError {}

/// The decision-point protocol shared by the kernel [`Simulation`] and the
/// seed [`crate::reference::ReferenceSimulation`].
///
/// The EASY and conservative passes are generic over this trait, so the
/// same backfilling logic drives both engines — which is what makes the
/// differential tests in `tests/event_equivalence.rs` meaningful: any
/// schedule difference is attributable to the engine, not the heuristic.
pub trait BackfillSim {
    /// Current simulation time, seconds.
    fn now(&self) -> f64;
    /// Free processors right now.
    fn free_procs(&self) -> u32;
    /// The base policy driving head-of-queue selection.
    fn policy(&self) -> Policy;
    /// The waiting queue, priority-sorted; index 0 is the reserved job.
    fn queue(&self) -> &[Job];
    /// Jobs currently executing.
    fn running(&self) -> &[RunningJob];
    /// Advances to the next decision point or to completion.
    fn advance(&mut self) -> SimEvent;
    /// Starts the queued job at `queue_idx` immediately.
    fn backfill(&mut self, queue_idx: usize) -> Result<BackfillOutcome, BackfillError>;
    /// Jobs that finished, in completion order.
    fn completed(&self) -> &[CompletedJob];

    /// The reserved job (head of the sorted queue), if any.
    fn reserved_job(&self) -> Option<&Job> {
        self.queue().first()
    }
}

macro_rules! impl_backfill_sim {
    ($ty:ty) => {
        impl BackfillSim for $ty {
            fn now(&self) -> f64 {
                <$ty>::now(self)
            }
            fn free_procs(&self) -> u32 {
                <$ty>::free_procs(self)
            }
            fn policy(&self) -> Policy {
                <$ty>::policy(self)
            }
            fn queue(&self) -> &[Job] {
                <$ty>::queue(self)
            }
            fn running(&self) -> &[RunningJob] {
                <$ty>::running(self)
            }
            fn advance(&mut self) -> SimEvent {
                <$ty>::advance(self)
            }
            fn backfill(&mut self, queue_idx: usize) -> Result<BackfillOutcome, BackfillError> {
                <$ty>::backfill(self, queue_idx)
            }
            fn completed(&self) -> &[CompletedJob] {
                <$ty>::completed(self)
            }
        }
    };
}

impl_backfill_sim!(Simulation);
impl_backfill_sim!(crate::reference::ReferenceSimulation);

/// A kernel event: what happens at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClusterEvent {
    /// The job at this index of the arrival list enters the waiting queue
    /// (and schedules the next arrival, keeping one pending at a time).
    Arrival(usize),
    /// The running job with this id releases its processors.
    Completion(usize),
}

/// The simulation state machine. See the module docs for the protocol.
#[derive(Debug, Clone)]
pub struct Simulation {
    policy: Policy,
    cluster_procs: u32,
    free: u32,
    now: f64,
    arrivals: Vec<Job>,
    queue: Vec<Job>,
    running: Vec<RunningJob>,
    completed: Vec<CompletedJob>,
    events: EventQueue<ClusterEvent>,
    /// Re-arm flag: an opportunity is only reported after the state changed
    /// (time advanced or a job started), so a driver that declines to
    /// backfill is never asked twice about the identical state.
    opportunity_armed: bool,
    /// Whether the queue's policy order may be stale. Arrivals always
    /// dirty it; time advancement dirties it only for time-dependent
    /// policies (see [`Policy::time_dependent`]). Head/backfill removals
    /// preserve order, so re-sorting after them is skipped — the order the
    /// seed engine would recompute is identical, just not recomputed.
    needs_sort: bool,
}

impl Simulation {
    /// Starts a fresh simulation of `trace` under `policy`.
    pub fn new(trace: &Trace, policy: Policy) -> Self {
        let arrivals = trace.jobs().to_vec();
        let mut events = EventQueue::new();
        if !arrivals.is_empty() {
            events.schedule(
                SimTime::new(arrivals[0].submit.max(0.0)),
                ClusterEvent::Arrival(0),
            );
        }
        Self {
            policy,
            cluster_procs: trace.cluster_procs(),
            free: trace.cluster_procs(),
            now: 0.0,
            arrivals,
            queue: Vec::new(),
            running: Vec::new(),
            completed: Vec::new(),
            events,
            opportunity_armed: true,
            needs_sort: false,
        }
    }

    /// Current simulation time, seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Free processors right now.
    pub fn free_procs(&self) -> u32 {
        self.free
    }

    /// Total processors in the cluster.
    pub fn cluster_procs(&self) -> u32 {
        self.cluster_procs
    }

    /// The base policy driving head-of-queue selection.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The waiting queue, sorted by the policy as of the last scheduling
    /// pass; index 0 is the reserved job during a backfill opportunity.
    pub fn queue(&self) -> &[Job] {
        &self.queue
    }

    /// Jobs currently executing.
    pub fn running(&self) -> &[RunningJob] {
        &self.running
    }

    /// Jobs that finished, in completion order.
    pub fn completed(&self) -> &[CompletedJob] {
        &self.completed
    }

    /// The reserved job (head of the sorted queue), if any.
    pub fn reserved_job(&self) -> Option<&Job> {
        self.queue.first()
    }

    /// Advances the simulation until the next backfilling opportunity or
    /// completion of the whole trace.
    pub fn advance(&mut self) -> SimEvent {
        loop {
            self.apply_due_events();
            self.start_ready_jobs();
            if self.opportunity_armed && !self.queue.is_empty() && self.has_backfill_candidate() {
                self.opportunity_armed = false;
                return SimEvent::BackfillOpportunity;
            }
            // Advance the clock to the next event; the loop head then
            // applies everything due within the epsilon window at once
            // (simultaneous completions and arrivals).
            let Some(next) = self.events.peek_time() else {
                debug_assert!(self.queue.is_empty() && self.running.is_empty());
                return SimEvent::Done;
            };
            debug_assert!(
                next.as_secs() >= self.now - EPS,
                "time must not go backwards: {} -> {next}",
                self.now
            );
            let advanced = next.as_secs() > self.now;
            self.now = next.as_secs().max(self.now);
            if advanced && self.policy.time_dependent() {
                self.needs_sort = true;
            }
            self.opportunity_armed = true;
        }
    }

    /// Queue indices (excluding the reserved head) of jobs that fit the
    /// currently free processors — the raw action space at an opportunity.
    pub fn backfill_candidates(&self) -> Vec<usize> {
        self.queue
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, j)| j.procs <= self.free)
            .map(|(i, _)| i)
            .collect()
    }

    /// Starts the queued job at `queue_idx` immediately (a backfill).
    ///
    /// Reports whether the action delayed the reserved job's ground-truth
    /// earliest start (computed from *actual* runtimes — the simulator
    /// knows the truth even though schedulers only see estimates).
    pub fn backfill(&mut self, queue_idx: usize) -> Result<BackfillOutcome, BackfillError> {
        if queue_idx >= self.queue.len() {
            return Err(BackfillError::BadIndex);
        }
        if queue_idx == 0 {
            return Err(BackfillError::ReservedJob);
        }
        let job = self.queue[queue_idx];
        if job.procs > self.free {
            return Err(BackfillError::DoesNotFit);
        }
        let delays_reserved = self.would_delay_reserved(&job);
        self.queue.remove(queue_idx);
        self.start_job(job);
        self.opportunity_armed = true;
        Ok(BackfillOutcome { delays_reserved })
    }

    /// Ground-truth availability profile (actual runtimes of running jobs).
    fn actual_profile(&self) -> AvailabilityProfile {
        let mut prof = AvailabilityProfile::new(self.now, self.free);
        for r in &self.running {
            prof.add_release(r.end().max(self.now), r.job.procs);
        }
        prof
    }

    /// Whether starting `job` now would push back the reserved job's
    /// earliest possible start under ground-truth runtimes.
    fn would_delay_reserved(&self, job: &Job) -> bool {
        let Some(reserved) = self.reserved_job() else {
            return false;
        };
        let prof = self.actual_profile();
        let shadow_before = prof.earliest_avail(reserved.procs);
        let mut after = prof;
        after.add_usage(self.now, self.now + job.runtime, job.procs);
        let shadow_after = after.earliest_avail(reserved.procs);
        shadow_after > shadow_before + EPS
    }

    /// Pops and applies every event due at the current instant (within the
    /// epsilon window) — completions free processors, arrivals join the
    /// queue. Start decisions are *not* events; they follow in
    /// [`Self::start_ready_jobs`] once the instant's state is settled.
    fn apply_due_events(&mut self) {
        let deadline = SimTime::new(self.now + EPS);
        let mut freed = 0u32;
        while let Some((_, event)) = self.events.pop_until(deadline) {
            match event {
                ClusterEvent::Arrival(idx) => {
                    self.queue.push(self.arrivals[idx]);
                    self.needs_sort = true;
                    if let Some(next) = self.arrivals.get(idx + 1) {
                        self.events.schedule(
                            SimTime::new(next.submit).max(self.events.now()),
                            ClusterEvent::Arrival(idx + 1),
                        );
                    }
                }
                ClusterEvent::Completion(job_id) => {
                    let pos = self
                        .running
                        .iter()
                        .position(|r| r.job.id == job_id)
                        .expect("completion event for a job not running");
                    let r = self.running.swap_remove(pos);
                    freed += r.job.procs;
                    self.completed.push(CompletedJob {
                        job: r.job,
                        start: r.start,
                    });
                }
            }
        }
        self.free += freed;
        debug_assert!(
            self.free <= self.cluster_procs,
            "released more than claimed"
        );
    }

    /// Starts policy-selected head jobs while they fit.
    ///
    /// The queue is sorted at most once per call: removals preserve order,
    /// so (unlike the seed engine's sort-per-start) nothing changes between
    /// iterations at a fixed instant. The realized order is identical.
    fn start_ready_jobs(&mut self) {
        if self.queue.is_empty() {
            return;
        }
        if self.needs_sort {
            self.policy.sort_queue(&mut self.queue, self.now);
            self.needs_sort = false;
        }
        while !self.queue.is_empty() && self.queue[0].procs <= self.free {
            let job = self.queue.remove(0);
            self.start_job(job);
            self.opportunity_armed = true;
        }
    }

    fn start_job(&mut self, job: Job) {
        debug_assert!(job.procs <= self.free, "start_job overcommits the cluster");
        self.free -= job.procs;
        self.events.schedule(
            SimTime::new(self.now + job.runtime).max(self.events.now()),
            ClusterEvent::Completion(job.id),
        );
        self.running.push(RunningJob {
            job,
            start: self.now,
        });
    }

    fn has_backfill_candidate(&self) -> bool {
        self.queue.iter().skip(1).any(|j| j.procs <= self.free)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(cluster: u32, jobs: Vec<Job>) -> Trace {
        Trace::new("test", cluster, jobs)
    }

    /// Drives a simulation to completion without ever backfilling.
    fn run_no_backfill(mut sim: Simulation) -> Simulation {
        while sim.advance() != SimEvent::Done {}
        sim
    }

    #[test]
    fn single_job_runs_at_submission() {
        let t = trace(4, vec![Job::new(0, 100.0, 4, 50.0, 50.0)]);
        let sim = run_no_backfill(Simulation::new(&t, Policy::Fcfs));
        assert_eq!(sim.completed().len(), 1);
        assert_eq!(sim.completed()[0].start, 100.0);
        assert_eq!(sim.free_procs(), 4);
    }

    #[test]
    fn jobs_queue_when_cluster_full() {
        let t = trace(
            4,
            vec![
                Job::new(0, 0.0, 4, 100.0, 100.0),
                Job::new(1, 10.0, 4, 100.0, 100.0),
            ],
        );
        let sim = run_no_backfill(Simulation::new(&t, Policy::Fcfs));
        let second = sim.completed().iter().find(|c| c.job.id == 1).unwrap();
        assert_eq!(second.start, 100.0);
        assert_eq!(second.wait(), 90.0);
    }

    #[test]
    fn parallel_jobs_share_the_cluster() {
        let t = trace(
            8,
            vec![
                Job::new(0, 0.0, 4, 100.0, 100.0),
                Job::new(1, 0.0, 4, 100.0, 100.0),
            ],
        );
        let sim = run_no_backfill(Simulation::new(&t, Policy::Fcfs));
        assert!(sim.completed().iter().all(|c| c.start == 0.0));
    }

    #[test]
    fn opportunity_fires_when_head_blocked_and_candidate_fits() {
        // Job 0 occupies 3 of 4 procs; job 1 (4 procs) blocks; job 2 (1 proc) fits.
        let t = trace(
            4,
            vec![
                Job::new(0, 0.0, 3, 100.0, 100.0),
                Job::new(1, 10.0, 4, 100.0, 100.0),
                Job::new(2, 20.0, 1, 10.0, 10.0),
            ],
        );
        let mut sim = Simulation::new(&t, Policy::Fcfs);
        assert_eq!(sim.advance(), SimEvent::BackfillOpportunity);
        assert_eq!(sim.reserved_job().unwrap().id, 1);
        assert_eq!(sim.backfill_candidates(), vec![1]);
        assert_eq!(sim.queue()[1].id, 2);
    }

    #[test]
    fn declining_an_opportunity_does_not_loop() {
        let t = trace(
            4,
            vec![
                Job::new(0, 0.0, 3, 100.0, 100.0),
                Job::new(1, 10.0, 4, 100.0, 100.0),
                Job::new(2, 20.0, 1, 10.0, 10.0),
            ],
        );
        let mut sim = Simulation::new(&t, Policy::Fcfs);
        assert_eq!(sim.advance(), SimEvent::BackfillOpportunity);
        // Decline: simply advance again; the sim must make progress and
        // eventually finish with everyone scheduled.
        let mut guard = 0;
        while sim.advance() != SimEvent::Done {
            guard += 1;
            assert!(guard < 100, "simulation failed to make progress");
        }
        assert_eq!(sim.completed().len(), 3);
    }

    #[test]
    fn backfill_starts_job_immediately() {
        let t = trace(
            4,
            vec![
                Job::new(0, 0.0, 3, 100.0, 100.0),
                Job::new(1, 10.0, 4, 100.0, 100.0),
                Job::new(2, 20.0, 1, 10.0, 10.0),
            ],
        );
        let mut sim = Simulation::new(&t, Policy::Fcfs);
        assert_eq!(sim.advance(), SimEvent::BackfillOpportunity);
        let out = sim.backfill(1).unwrap();
        // Job 2 ends at now+10 = 30 < 100 (when job 0 releases), so the
        // reserved 4-proc job is not delayed.
        assert!(!out.delays_reserved);
        while sim.advance() != SimEvent::Done {}
        let c2 = sim.completed().iter().find(|c| c.job.id == 2).unwrap();
        assert_eq!(c2.start, 20.0);
        // Reserved job still starts at 100.
        let c1 = sim.completed().iter().find(|c| c.job.id == 1).unwrap();
        assert_eq!(c1.start, 100.0);
    }

    #[test]
    fn backfill_detects_delaying_the_reserved_job() {
        // Cluster 4. Job 0: 3 procs until t=100. Reserved job 1 needs 4.
        // Job 2: 1 proc, runtime 500 — backfilling it at t=20 delays job 1
        // from 100 to 520.
        let t = trace(
            4,
            vec![
                Job::new(0, 0.0, 3, 100.0, 100.0),
                Job::new(1, 10.0, 4, 100.0, 100.0),
                Job::new(2, 20.0, 1, 500.0, 500.0),
            ],
        );
        let mut sim = Simulation::new(&t, Policy::Fcfs);
        assert_eq!(sim.advance(), SimEvent::BackfillOpportunity);
        let out = sim.backfill(1).unwrap();
        assert!(out.delays_reserved);
        while sim.advance() != SimEvent::Done {}
        let c1 = sim.completed().iter().find(|c| c.job.id == 1).unwrap();
        assert_eq!(c1.start, 520.0);
    }

    #[test]
    fn backfill_error_cases() {
        let t = trace(
            4,
            vec![
                Job::new(0, 0.0, 3, 100.0, 100.0),
                Job::new(1, 10.0, 4, 100.0, 100.0),
                Job::new(2, 20.0, 2, 10.0, 10.0),
                Job::new(3, 21.0, 1, 10.0, 10.0),
            ],
        );
        let mut sim = Simulation::new(&t, Policy::Fcfs);
        assert_eq!(sim.advance(), SimEvent::BackfillOpportunity);
        assert_eq!(sim.backfill(0), Err(BackfillError::ReservedJob));
        assert_eq!(sim.backfill(9), Err(BackfillError::BadIndex));
        // Job 2 (queue index 1) needs 2 procs but only 1 is free; job 3
        // (queue index 2) is the fitting candidate that armed the event.
        assert_eq!(sim.backfill_candidates(), vec![2]);
        assert_eq!(sim.backfill(1), Err(BackfillError::DoesNotFit));
        assert!(sim.backfill(2).is_ok());
    }

    #[test]
    fn sjf_reorders_the_queue() {
        // Long job submitted first, short second; SJF runs the short one
        // first once the blocker finishes.
        let t = trace(
            4,
            vec![
                Job::new(0, 0.0, 4, 100.0, 100.0),
                Job::new(1, 1.0, 4, 900.0, 900.0),
                Job::new(2, 2.0, 4, 10.0, 10.0),
            ],
        );
        let sim = run_no_backfill(Simulation::new(&t, Policy::Sjf));
        let short = sim.completed().iter().find(|c| c.job.id == 2).unwrap();
        let long = sim.completed().iter().find(|c| c.job.id == 1).unwrap();
        assert!(short.start < long.start);
    }

    #[test]
    fn every_job_completes_exactly_once() {
        let t = swf::TracePreset::Lublin1.generate(300, 3);
        let sim = run_no_backfill(Simulation::new(&t, Policy::Fcfs));
        assert_eq!(sim.completed().len(), t.len());
        let mut ids: Vec<usize> = sim.completed().iter().map(|c| c.job.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), t.len());
        assert_eq!(sim.free_procs(), t.cluster_procs());
    }

    #[test]
    fn no_job_starts_before_submission() {
        let t = swf::TracePreset::Lublin2.generate(300, 4);
        let sim = run_no_backfill(Simulation::new(&t, Policy::F1));
        for c in sim.completed() {
            assert!(c.start + EPS >= c.job.submit);
        }
    }

    #[test]
    fn matches_reference_engine_without_backfilling() {
        // Spot-check against the preserved seed engine (the full sweep
        // lives in tests/event_equivalence.rs).
        let t = swf::TracePreset::SdscSp2.generate(400, 17);
        let kernel = run_no_backfill(Simulation::new(&t, Policy::Fcfs));
        let seed = crate::reference::run_reference_no_backfill(&t, Policy::Fcfs);
        let mut a: Vec<(usize, f64)> = kernel
            .completed()
            .iter()
            .map(|c| (c.job.id, c.start))
            .collect();
        let mut b: Vec<(usize, f64)> = seed.iter().map(|c| (c.job.id, c.start)).collect();
        a.sort_by_key(|x| x.0);
        b.sort_by_key(|x| x.0);
        assert_eq!(a, b);
    }
}
