//! Decision forensics: a typed, per-job audit log of every scheduling
//! decision, with wait-cause attribution.
//!
//! [`AuditProbe`] implements [`Probe`](super::Probe) and collects
//! [`AuditRecord`]s through the lifecycle hooks the engine fires at each
//! decision: submission (with the router's candidate estimates), backfill
//! skips (with the reason a scan passed a job over), conservative plan
//! repairs, migrations, starts (with their kind), and completions. The
//! log is **deterministic and wall-clock-free** — a pure function of the
//! realized schedule — so two logs of the same spec compare equal and the
//! *first divergent record* pinpoints where two engine variants part ways
//! (the debugging tool the sharded/calendar-queue roadmap items need).
//!
//! On top of the raw log, the probe maintains a per-job wait decomposition
//! ([`WaitBreakdown`]): every waiting job's time is classified at each
//! event-loop settle into one of four causes, and the per-cause segments
//! telescope to exactly the job's total wait (enforced by the audit
//! property suite):
//!
//! * **capacity** — the job heads its queue; nothing outranks it, the
//!   machine simply lacks free processors.
//! * **head-of-line** — the job fits the free processors *right now* but
//!   sits behind the queue head (FCFS order or the head's reservation
//!   blocks it).
//! * **policy position** — the job neither fits nor heads the queue: it
//!   waits where the policy ranked it.
//! * **shadow** — an EASY scan explicitly rejected it for running past
//!   the shadow time (it fit by width but not by length).
//!
//! Aggregates land in [`WaitAttribution`] (serialized into
//! `RunReport.attribution` when a spec opts in); [`AuditLog::explain`]
//! renders the human narrative behind `scenario explain`.

use super::{Phase, PlanStats, Probe, ProfileStats, Recorder, RepairCause, RouterStats, Telemetry};
use crate::cluster::Partition;
use serde::Serialize as _;
use std::collections::BTreeMap;
use swf::Job;

/// Why a backfill scan passed over a queued job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SkipReason {
    /// Starting the job now would delay the reserved (head) job.
    WouldDelayReserved,
    /// The job requests more processors than are currently free.
    InsufficientProcs,
    /// EASY only: the job fits by width but would run past the shadow
    /// time and does not fit the extra processors.
    ShadowViolation,
}

impl SkipReason {
    /// Stable snake_case label (the serialized form).
    pub fn name(self) -> &'static str {
        match self {
            SkipReason::WouldDelayReserved => "would_delay_reserved",
            SkipReason::InsufficientProcs => "insufficient_procs",
            SkipReason::ShadowViolation => "shadow_violation",
        }
    }
}

/// How a job left the queue and began executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StartKind {
    /// Started from the queue head with enough free processors.
    Head,
    /// Started out of order by a backfill scan.
    Backfill,
    /// Started on its conservative reservation (the planner placed it;
    /// the start is on-plan rather than opportunistic).
    Reservation,
}

impl StartKind {
    /// Stable snake_case label (the serialized form).
    pub fn name(self) -> &'static str {
        match self {
            StartKind::Head => "head",
            StartKind::Backfill => "backfill",
            StartKind::Reservation => "reservation",
        }
    }
}

/// One wait-cause class of the four-way decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WaitCause {
    /// Queue head, insufficient free processors.
    Capacity,
    /// Fits now, blocked behind the queue head.
    HeadOfLine,
    /// Neither fits nor heads the queue.
    PolicyPosition,
    /// Rejected by an EASY scan for crossing the shadow time.
    Shadow,
}

/// All wait causes, in the order of [`WaitBreakdown::components`].
pub const WAIT_CAUSES: [WaitCause; 4] = [
    WaitCause::Capacity,
    WaitCause::HeadOfLine,
    WaitCause::PolicyPosition,
    WaitCause::Shadow,
];

impl WaitCause {
    /// Stable snake_case label (the serialized form).
    pub fn name(self) -> &'static str {
        match self {
            WaitCause::Capacity => "capacity",
            WaitCause::HeadOfLine => "head_of_line",
            WaitCause::PolicyPosition => "policy_position",
            WaitCause::Shadow => "shadow",
        }
    }

    fn index(self) -> usize {
        match self {
            WaitCause::Capacity => 0,
            WaitCause::HeadOfLine => 1,
            WaitCause::PolicyPosition => 2,
            WaitCause::Shadow => 3,
        }
    }
}

/// One typed decision record. All times are simulation seconds; records
/// are appended in engine order, so the log sequence is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditRecord {
    /// A job arrived, was routed, and joined a partition queue.
    Submitted {
        /// Submission time.
        t: f64,
        /// Job id.
        job: usize,
        /// The partition the router chose.
        part: usize,
        /// Estimated start per fitting partition, `(partition, start)` —
        /// the evidence behind the routing decision.
        candidates: Vec<(usize, f64)>,
    },
    /// A job fit no partition and was set aside before the run.
    Dropped {
        /// Submission time.
        t: f64,
        /// Job id.
        job: usize,
        /// Requested processors (wider than every partition).
        procs: u32,
    },
    /// A backfill scan passed over a queued job.
    BackfillSkipped {
        /// Scan time.
        t: f64,
        /// Partition scanned.
        part: usize,
        /// Job id.
        job: usize,
        /// Why the scan rejected it.
        reason: SkipReason,
    },
    /// A conservative pass repaired part of its reservation plan.
    PlanRepaired {
        /// Pass time.
        t: f64,
        /// Partition whose plan was repaired.
        part: usize,
        /// Dominant invalidation cause.
        cause: RepairCause,
        /// Plan entries (re)planned.
        entries: usize,
    },
    /// A queued job migrated between partitions.
    Migrated {
        /// Decision-point time.
        t: f64,
        /// Job id.
        job: usize,
        /// Source partition.
        from: usize,
        /// Target partition.
        to: usize,
        /// The router's estimated start-time gain, seconds.
        gain: f64,
    },
    /// A job left the queue and began executing.
    Started {
        /// Start time.
        t: f64,
        /// Partition it runs on.
        part: usize,
        /// Job id.
        job: usize,
        /// How it started.
        kind: StartKind,
        /// Processors it occupies.
        procs: u32,
        /// Realized wait, `t - submit`.
        wait: f64,
    },
    /// A running job released its processors.
    Completed {
        /// Completion time.
        t: f64,
        /// Partition it ran on.
        part: usize,
        /// Job id.
        job: usize,
    },
    /// The RL agent picked a queue slot at a decision point.
    AgentPicked {
        /// Decision-point time.
        t: f64,
        /// Job id behind the picked slot.
        job: usize,
        /// The picked observation slot.
        slot: usize,
        /// The policy network's logit for the slot.
        score: f64,
    },
    /// A platform event shrank a partition: `procs` processors failed.
    NodeFailed {
        /// Failure time.
        t: f64,
        /// Partition that lost capacity.
        part: usize,
        /// Processors lost.
        procs: u32,
    },
    /// A platform event returned `procs` processors to service.
    NodeRepaired {
        /// Repair time.
        t: f64,
        /// Partition that regained capacity.
        part: usize,
        /// Processors restored.
        procs: u32,
    },
    /// A partition entered a maintenance drain (stopped admitting jobs).
    DrainStarted {
        /// Drain start time.
        t: f64,
        /// Partition draining.
        part: usize,
    },
    /// A maintenance drain ended (the partition admits jobs again).
    DrainEnded {
        /// Drain end time.
        t: f64,
        /// Partition back in service.
        part: usize,
    },
    /// A platform event set a partition's capacity to an absolute target.
    Resized {
        /// Resize time.
        t: f64,
        /// Partition resized.
        part: usize,
        /// New capacity.
        procs: u32,
    },
    /// A running job was killed by a capacity retraction.
    Killed {
        /// Kill time.
        t: f64,
        /// Partition it was running on.
        part: usize,
        /// Job id.
        job: usize,
        /// Destroyed work in reference node-seconds (elapsed run under
        /// kill-and-resubmit; restart overhead under checkpoint-restart).
        wasted: f64,
    },
    /// A killed or displaced job re-entered a partition queue.
    Resubmitted {
        /// Resubmission time.
        t: f64,
        /// Job id.
        job: usize,
        /// The partition the router chose for the retry.
        part: usize,
    },
}

impl AuditRecord {
    /// Stable snake_case tag of the record kind.
    pub fn kind(&self) -> &'static str {
        match self {
            AuditRecord::Submitted { .. } => "submitted",
            AuditRecord::Dropped { .. } => "dropped",
            AuditRecord::BackfillSkipped { .. } => "backfill_skipped",
            AuditRecord::PlanRepaired { .. } => "plan_repaired",
            AuditRecord::Migrated { .. } => "migrated",
            AuditRecord::Started { .. } => "started",
            AuditRecord::Completed { .. } => "completed",
            AuditRecord::AgentPicked { .. } => "agent_picked",
            AuditRecord::NodeFailed { .. } => "node_failed",
            AuditRecord::NodeRepaired { .. } => "node_repaired",
            AuditRecord::DrainStarted { .. } => "drain_started",
            AuditRecord::DrainEnded { .. } => "drain_ended",
            AuditRecord::Resized { .. } => "resized",
            AuditRecord::Killed { .. } => "killed",
            AuditRecord::Resubmitted { .. } => "resubmitted",
        }
    }

    /// The job id this record concerns, if it concerns exactly one.
    pub fn job(&self) -> Option<usize> {
        match *self {
            AuditRecord::Submitted { job, .. }
            | AuditRecord::Dropped { job, .. }
            | AuditRecord::BackfillSkipped { job, .. }
            | AuditRecord::Migrated { job, .. }
            | AuditRecord::Started { job, .. }
            | AuditRecord::Completed { job, .. }
            | AuditRecord::AgentPicked { job, .. }
            | AuditRecord::Killed { job, .. }
            | AuditRecord::Resubmitted { job, .. } => Some(job),
            AuditRecord::PlanRepaired { .. }
            | AuditRecord::NodeFailed { .. }
            | AuditRecord::NodeRepaired { .. }
            | AuditRecord::DrainStarted { .. }
            | AuditRecord::DrainEnded { .. }
            | AuditRecord::Resized { .. } => None,
        }
    }

    /// The record's simulation time.
    pub fn time(&self) -> f64 {
        match *self {
            AuditRecord::Submitted { t, .. }
            | AuditRecord::Dropped { t, .. }
            | AuditRecord::BackfillSkipped { t, .. }
            | AuditRecord::PlanRepaired { t, .. }
            | AuditRecord::Migrated { t, .. }
            | AuditRecord::Started { t, .. }
            | AuditRecord::Completed { t, .. }
            | AuditRecord::AgentPicked { t, .. }
            | AuditRecord::NodeFailed { t, .. }
            | AuditRecord::NodeRepaired { t, .. }
            | AuditRecord::DrainStarted { t, .. }
            | AuditRecord::DrainEnded { t, .. }
            | AuditRecord::Resized { t, .. }
            | AuditRecord::Killed { t, .. }
            | AuditRecord::Resubmitted { t, .. } => t,
        }
    }
}

impl serde::Serialize for AuditRecord {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        let kind = ("kind".to_string(), Value::String(self.kind().into()));
        let entries = match self {
            AuditRecord::Submitted {
                t,
                job,
                part,
                candidates,
            } => {
                let cands: Vec<Value> = candidates
                    .iter()
                    .map(|&(p, s)| {
                        Value::Object(vec![
                            ("part".into(), p.to_value()),
                            ("start".into(), s.to_value()),
                        ])
                    })
                    .collect();
                vec![
                    kind,
                    ("t".into(), t.to_value()),
                    ("job".into(), job.to_value()),
                    ("part".into(), part.to_value()),
                    ("candidates".into(), Value::Array(cands)),
                ]
            }
            AuditRecord::Dropped { t, job, procs } => vec![
                kind,
                ("t".into(), t.to_value()),
                ("job".into(), job.to_value()),
                ("procs".into(), procs.to_value()),
            ],
            AuditRecord::BackfillSkipped {
                t,
                part,
                job,
                reason,
            } => vec![
                kind,
                ("t".into(), t.to_value()),
                ("part".into(), part.to_value()),
                ("job".into(), job.to_value()),
                ("reason".into(), Value::String(reason.name().into())),
            ],
            AuditRecord::PlanRepaired {
                t,
                part,
                cause,
                entries,
            } => vec![
                kind,
                ("t".into(), t.to_value()),
                ("part".into(), part.to_value()),
                ("cause".into(), Value::String(cause.name().into())),
                ("entries".into(), entries.to_value()),
            ],
            AuditRecord::Migrated {
                t,
                job,
                from,
                to,
                gain,
            } => vec![
                kind,
                ("t".into(), t.to_value()),
                ("job".into(), job.to_value()),
                ("from".into(), from.to_value()),
                ("to".into(), to.to_value()),
                ("gain".into(), gain.to_value()),
            ],
            AuditRecord::Started {
                t,
                part,
                job,
                kind: k,
                procs,
                wait,
            } => vec![
                kind,
                ("t".into(), t.to_value()),
                ("part".into(), part.to_value()),
                ("job".into(), job.to_value()),
                ("start_kind".into(), Value::String(k.name().into())),
                ("procs".into(), procs.to_value()),
                ("wait".into(), wait.to_value()),
            ],
            AuditRecord::Completed { t, part, job } => vec![
                kind,
                ("t".into(), t.to_value()),
                ("part".into(), part.to_value()),
                ("job".into(), job.to_value()),
            ],
            AuditRecord::AgentPicked {
                t,
                job,
                slot,
                score,
            } => vec![
                kind,
                ("t".into(), t.to_value()),
                ("job".into(), job.to_value()),
                ("slot".into(), slot.to_value()),
                ("score".into(), score.to_value()),
            ],
            AuditRecord::NodeFailed { t, part, procs }
            | AuditRecord::NodeRepaired { t, part, procs }
            | AuditRecord::Resized { t, part, procs } => vec![
                kind,
                ("t".into(), t.to_value()),
                ("part".into(), part.to_value()),
                ("procs".into(), procs.to_value()),
            ],
            AuditRecord::DrainStarted { t, part } | AuditRecord::DrainEnded { t, part } => vec![
                kind,
                ("t".into(), t.to_value()),
                ("part".into(), part.to_value()),
            ],
            AuditRecord::Killed {
                t,
                part,
                job,
                wasted,
            } => vec![
                kind,
                ("t".into(), t.to_value()),
                ("part".into(), part.to_value()),
                ("job".into(), job.to_value()),
                ("wasted".into(), wasted.to_value()),
            ],
            AuditRecord::Resubmitted { t, job, part } => vec![
                kind,
                ("t".into(), t.to_value()),
                ("job".into(), job.to_value()),
                ("part".into(), part.to_value()),
            ],
        };
        Value::Object(entries)
    }
}

/// One job's wait decomposed by cause. Components are indexed like
/// [`WAIT_CAUSES`] and sum to `wait` (up to floating-point association).
#[derive(Debug, Clone, PartialEq)]
pub struct WaitBreakdown {
    /// Job id.
    pub job: usize,
    /// Total realized wait, seconds.
    pub wait: f64,
    /// Seconds attributed per cause, indexed like [`WAIT_CAUSES`].
    pub components: [f64; 4],
}

impl serde::Serialize for WaitBreakdown {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("job".to_string(), self.job.to_value()),
            ("wait".to_string(), self.wait.to_value()),
        ];
        for (cause, v) in WAIT_CAUSES.iter().zip(&self.components) {
            entries.push((cause.name().to_string(), v.to_value()));
        }
        serde::Value::Object(entries)
    }
}

/// The aggregate wait-cause table across all started jobs — the section
/// `RunReport.attribution` carries when a spec opts into auditing.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WaitAttribution {
    /// Jobs the table aggregates (jobs that started).
    pub jobs: u64,
    /// Summed wait across those jobs, seconds.
    pub total_wait: f64,
    /// Seconds the queue head lacked free processors.
    pub capacity: f64,
    /// Seconds jobs that fit sat behind the queue head.
    pub head_of_line: f64,
    /// Seconds jobs waited at their policy-ranked position.
    pub policy_position: f64,
    /// Seconds jobs were explicitly shadow-constrained by EASY scans.
    pub shadow: f64,
}

impl WaitAttribution {
    /// Adds `other` into `self` (the windows protocol would aggregate
    /// per-window tables this way).
    pub fn merge(&mut self, other: &WaitAttribution) {
        self.jobs += other.jobs;
        self.total_wait += other.total_wait;
        self.capacity += other.capacity;
        self.head_of_line += other.head_of_line;
        self.policy_position += other.policy_position;
        self.shadow += other.shadow;
    }

    /// Sum of the four components (≈ `total_wait`).
    pub fn components_sum(&self) -> f64 {
        self.capacity + self.head_of_line + self.policy_position + self.shadow
    }
}

/// Static facts about one partition, captured for the export header.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionMeta {
    /// Partition name.
    pub name: String,
    /// Processor count.
    pub procs: u32,
    /// Relative speed factor.
    pub speed: f64,
}

impl serde::Serialize for PartitionMeta {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("name".to_string(), self.name.to_value()),
            ("procs".to_string(), self.procs.to_value()),
            ("speed".to_string(), self.speed.to_value()),
        ])
    }
}

/// A Gantt entry of the timeline export: one job's execution window.
#[derive(Debug, Clone, PartialEq)]
struct GanttEntry {
    job: usize,
    start: f64,
    end: f64,
    procs: u32,
}

/// The complete forensic output of one audited run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditLog {
    /// The cluster layout the run executed on.
    pub partitions: Vec<PartitionMeta>,
    /// Every decision record, in engine order.
    pub records: Vec<AuditRecord>,
    /// Per-job wait decompositions, ordered by job id.
    pub job_waits: Vec<WaitBreakdown>,
}

/// Utilization samples per partition timeline in the JSON export.
const TIMELINE_SAMPLES: usize = 64;

impl AuditLog {
    /// Records concerning one job, in order.
    pub fn records_for(&self, job: usize) -> Vec<&AuditRecord> {
        self.records
            .iter()
            .filter(|r| r.job() == Some(job))
            .collect()
    }

    /// The wait decomposition of one job, if it started.
    pub fn breakdown(&self, job: usize) -> Option<&WaitBreakdown> {
        self.job_waits.iter().find(|w| w.job == job)
    }

    /// Aggregates every per-job decomposition into one table.
    pub fn attribution(&self) -> WaitAttribution {
        let mut table = WaitAttribution::default();
        for w in &self.job_waits {
            table.jobs += 1;
            table.total_wait += w.wait;
            table.capacity += w.components[WaitCause::Capacity.index()];
            table.head_of_line += w.components[WaitCause::HeadOfLine.index()];
            table.policy_position += w.components[WaitCause::PolicyPosition.index()];
            table.shadow += w.components[WaitCause::Shadow.index()];
        }
        table
    }

    /// The index of the first record where `self` and `other` disagree
    /// (or one log ends), `None` when the logs are identical.
    pub fn first_divergence(&self, other: &AuditLog) -> Option<usize> {
        let n = self.records.len().min(other.records.len());
        (0..n)
            .find(|&i| self.records[i] != other.records[i])
            .or((self.records.len() != other.records.len()).then_some(n))
    }

    /// Counts records by kind, in a stable (kind-name) order.
    pub fn kind_counts(&self) -> Vec<(&'static str, usize)> {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for r in &self.records {
            *counts.entry(r.kind()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Per-job execution windows per partition, reconstructed from the
    /// `Started`/`Completed` record pairs.
    fn gantt(&self) -> Vec<Vec<GanttEntry>> {
        let mut open: BTreeMap<usize, (usize, f64, u32)> = BTreeMap::new();
        let mut parts: Vec<Vec<GanttEntry>> = vec![Vec::new(); self.partitions.len().max(1)];
        for r in &self.records {
            match *r {
                AuditRecord::Started {
                    t,
                    part,
                    job,
                    procs,
                    ..
                } => {
                    open.insert(job, (part, t, procs));
                }
                AuditRecord::Completed { t, part, job } => {
                    if let Some((p0, start, procs)) = open.remove(&job) {
                        debug_assert_eq!(p0, part, "job {job} completed off its start partition");
                        if part >= parts.len() {
                            parts.resize(part + 1, Vec::new());
                        }
                        parts[part].push(GanttEntry {
                            job,
                            start,
                            end: t,
                            procs,
                        });
                    }
                }
                _ => {}
            }
        }
        for entries in &mut parts {
            entries.sort_by(|a, b| a.start.total_cmp(&b.start).then(a.job.cmp(&b.job)));
        }
        parts
    }

    /// The per-partition timeline section of the export: Gantt entries
    /// plus a sampled busy-processor curve (edge sweep, like
    /// [`crate::timeline::utilization_timeline`] but per partition and
    /// derived from audit records rather than `CompletedJob`s).
    fn timeline_value(&self) -> serde::Value {
        use serde::Value;
        let parts = self.gantt();
        let sections: Vec<Value> = parts
            .iter()
            .enumerate()
            .map(|(pi, entries)| {
                let gantt: Vec<Value> = entries
                    .iter()
                    .map(|e| {
                        Value::Object(vec![
                            ("job".into(), e.job.to_value()),
                            ("start".into(), e.start.to_value()),
                            ("end".into(), e.end.to_value()),
                            ("procs".into(), e.procs.to_value()),
                        ])
                    })
                    .collect();
                let util: Vec<Value> = sample_busy(entries, TIMELINE_SAMPLES)
                    .into_iter()
                    .map(|(t, busy)| {
                        Value::Object(vec![
                            ("time".into(), t.to_value()),
                            ("busy".into(), busy.to_value()),
                        ])
                    })
                    .collect();
                let mut section = vec![("part".to_string(), pi.to_value())];
                if let Some(meta) = self.partitions.get(pi) {
                    section.push(("name".into(), meta.name.to_value()));
                    section.push(("procs".into(), meta.procs.to_value()));
                }
                section.push(("gantt".into(), Value::Array(gantt)));
                section.push(("utilization".into(), Value::Array(util)));
                Value::Object(section)
            })
            .collect();
        Value::Array(sections)
    }

    /// The full export: partitions, records, per-job waits, the aggregate
    /// attribution table, and per-partition timelines — pretty JSON, the
    /// `scenario audit` output format.
    pub fn to_json_pretty(&self) -> String {
        use serde::Value;
        let root = Value::Object(vec![
            ("partitions".into(), self.partitions.to_value()),
            ("records".into(), self.records.to_value()),
            ("attribution".into(), self.attribution().to_value()),
            ("job_waits".into(), self.job_waits.to_value()),
            ("timeline".into(), self.timeline_value()),
        ]);
        serde_json::to_string_pretty(&root).expect("audit log serializes")
    }

    /// The human decision narrative behind `scenario explain`: a whole-run
    /// summary, or (with `job`) one job's full decision history.
    pub fn explain(&self, job: Option<usize>) -> String {
        match job {
            Some(id) => self.explain_job(id),
            None => self.explain_run(),
        }
    }

    fn explain_job(&self, id: usize) -> String {
        let records = self.records_for(id);
        if records.is_empty() {
            return format!("job {id}: no audit records (not in this trace?)\n");
        }
        let mut out = format!("job {id}:\n");
        for r in records {
            let line = match r {
                AuditRecord::Submitted {
                    t,
                    part,
                    candidates,
                    ..
                } => {
                    let cands = if candidates.is_empty() {
                        String::new()
                    } else {
                        let list: Vec<String> = candidates
                            .iter()
                            .map(|(p, s)| format!("p{p}@{s:.0}s"))
                            .collect();
                        format!(" (candidates: {})", list.join(", "))
                    };
                    format!("  t={t:<12.1} submitted -> partition {part}{cands}")
                }
                AuditRecord::Dropped { t, procs, .. } => {
                    format!("  t={t:<12.1} dropped: {procs} procs fit no partition")
                }
                AuditRecord::BackfillSkipped {
                    t, part, reason, ..
                } => {
                    format!(
                        "  t={t:<12.1} skipped by backfill scan on p{part}: {}",
                        reason.name()
                    )
                }
                AuditRecord::Migrated {
                    t, from, to, gain, ..
                } => {
                    format!("  t={t:<12.1} migrated p{from} -> p{to} (est. gain {gain:.0}s)")
                }
                AuditRecord::Started {
                    t,
                    part,
                    kind,
                    procs,
                    wait,
                    ..
                } => format!(
                    "  t={t:<12.1} started on p{part} ({}, {procs} procs) after {wait:.0}s wait",
                    kind.name()
                ),
                AuditRecord::Completed { t, part, .. } => {
                    format!("  t={t:<12.1} completed on p{part}")
                }
                AuditRecord::AgentPicked { t, slot, score, .. } => {
                    format!("  t={t:<12.1} picked by agent (slot {slot}, score {score:.3})")
                }
                AuditRecord::Killed {
                    t, part, wasted, ..
                } => {
                    format!(
                        "  t={t:<12.1} killed by capacity loss on p{part} ({wasted:.0} node-s wasted)"
                    )
                }
                AuditRecord::Resubmitted { t, part, .. } => {
                    format!("  t={t:<12.1} resubmitted -> partition {part}")
                }
                AuditRecord::PlanRepaired { .. }
                | AuditRecord::NodeFailed { .. }
                | AuditRecord::NodeRepaired { .. }
                | AuditRecord::DrainStarted { .. }
                | AuditRecord::DrainEnded { .. }
                | AuditRecord::Resized { .. } => {
                    unreachable!("records without a job id are filtered by records_for")
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        if let Some(w) = self.breakdown(id) {
            out.push_str(&format!("  wait breakdown ({:.0}s total):\n", w.wait));
            for (cause, v) in WAIT_CAUSES.iter().zip(&w.components) {
                if *v > 0.0 {
                    out.push_str(&format!("    {:<16} {v:.0}s\n", cause.name()));
                }
            }
        }
        out
    }

    fn explain_run(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "audit: {} records across {} partition(s)\n",
            self.records.len(),
            self.partitions.len()
        ));
        for (kind, n) in self.kind_counts() {
            out.push_str(&format!("  {kind:<18} {n}\n"));
        }
        let table = self.attribution();
        if table.jobs > 0 {
            out.push_str(&format!(
                "wait attribution over {} started jobs ({:.0}s total wait):\n",
                table.jobs, table.total_wait
            ));
            let rows = [
                ("capacity", table.capacity),
                ("head_of_line", table.head_of_line),
                ("policy_position", table.policy_position),
                ("shadow", table.shadow),
            ];
            for (name, secs) in rows {
                let pct = if table.total_wait > 0.0 {
                    100.0 * secs / table.total_wait
                } else {
                    0.0
                };
                out.push_str(&format!("  {name:<16} {secs:>14.0}s  {pct:>5.1}%\n"));
            }
            let mut longest: Vec<&WaitBreakdown> = self.job_waits.iter().collect();
            longest.sort_by(|a, b| b.wait.total_cmp(&a.wait).then(a.job.cmp(&b.job)));
            out.push_str("longest waits:\n");
            for w in longest.iter().take(5) {
                let dominant = WAIT_CAUSES
                    .iter()
                    .zip(&w.components)
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(c, _)| c.name())
                    .unwrap_or("-");
                out.push_str(&format!(
                    "  job {:<8} waited {:>12.0}s  (mostly {dominant})\n",
                    w.job, w.wait
                ));
            }
        }
        out
    }
}

/// Samples the busy-processor count of one partition's Gantt entries at
/// `samples` midpoints of its span — one edge sweep.
fn sample_busy(entries: &[GanttEntry], samples: usize) -> Vec<(f64, u32)> {
    if entries.is_empty() || samples == 0 {
        return Vec::new();
    }
    let start = entries
        .iter()
        .map(|e| e.start)
        .fold(f64::INFINITY, f64::min);
    let end = entries.iter().map(|e| e.end).fold(0.0f64, f64::max);
    let span = (end - start).max(1e-9);
    let mut edges: Vec<(f64, i64)> = Vec::with_capacity(2 * entries.len());
    for e in entries {
        edges.push((e.start, e.procs as i64));
        edges.push((e.end, -(e.procs as i64)));
    }
    edges.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut busy = 0i64;
    let mut next = 0;
    (0..samples)
        .map(|i| {
            let t = start + span * (i as f64 + 0.5) / samples as f64;
            while edges.get(next).is_some_and(|&(et, _)| et <= t) {
                busy += edges[next].1;
                next += 1;
            }
            debug_assert!(busy >= 0, "negative occupancy at t={t}");
            (t, busy as u32)
        })
        .collect()
}

/// One waiting job's live attribution state.
#[derive(Debug, Clone)]
struct WaitState {
    submit: f64,
    marked_at: f64,
    class: WaitCause,
    components: [f64; 4],
}

/// The collecting audit [`Probe`]: an embedded [`Recorder`] (counters
/// only, no spans — the log must stay wall-clock-free) plus the record
/// stream and the per-job wait state machine.
#[derive(Debug, Clone, Default)]
pub struct AuditProbe {
    recorder: Recorder,
    records: Vec<AuditRecord>,
    partitions: Vec<PartitionMeta>,
    waiting: BTreeMap<usize, WaitState>,
    finished: BTreeMap<usize, WaitBreakdown>,
}

impl AuditProbe {
    /// A fresh audit probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// The records collected so far.
    pub fn records(&self) -> &[AuditRecord] {
        &self.records
    }

    /// Consumes the probe into its [`AuditLog`].
    pub fn into_log(self) -> AuditLog {
        self.into_log_and_telemetry().0
    }

    /// Consumes the probe into its log plus the telemetry the embedded
    /// recorder accumulated along the way.
    pub fn into_log_and_telemetry(self) -> (AuditLog, Telemetry) {
        debug_assert!(
            self.waiting.is_empty(),
            "jobs still waiting at harvest: {:?}",
            self.waiting.keys().collect::<Vec<_>>()
        );
        let log = AuditLog {
            partitions: self.partitions,
            records: self.records,
            job_waits: self.finished.into_values().collect(),
        };
        (log, self.recorder.into_telemetry())
    }
}

impl Probe for AuditProbe {
    #[inline]
    fn audit_on(&self) -> bool {
        true
    }

    fn on_event(&mut self, heap_depth: usize) {
        self.recorder.on_event(heap_depth);
    }

    fn on_queue_depth(&mut self, depth: usize) {
        self.recorder.on_queue_depth(depth);
    }

    fn on_backfill(&mut self, hit: bool) {
        self.recorder.on_backfill(hit);
    }

    fn on_backfill_would_delay(&mut self) {
        self.recorder.on_backfill_would_delay();
    }

    fn on_migration_candidate(&mut self) {
        self.recorder.on_migration_candidate();
    }

    fn on_migration_proposed(&mut self) {
        self.recorder.on_migration_proposed();
    }

    fn on_migration_accepted(&mut self) {
        self.recorder.on_migration_accepted();
    }

    fn span_begin(&mut self, phase: Phase) {
        self.recorder.span_begin(phase);
    }

    fn span_end(&mut self, phase: Phase) {
        self.recorder.span_end(phase);
    }

    fn span_cancel(&mut self, phase: Phase) {
        self.recorder.span_cancel(phase);
    }

    fn set_profile_stats(&mut self, stats: ProfileStats) {
        self.recorder.set_profile_stats(stats);
    }

    fn set_plan_stats(&mut self, stats: PlanStats) {
        self.recorder.set_plan_stats(stats);
    }

    fn set_router_stats(&mut self, stats: RouterStats) {
        self.recorder.set_router_stats(stats);
    }

    fn on_job_submitted(&mut self, t: f64, job: &Job, chosen: usize, cands: &[(usize, f64)]) {
        self.records.push(AuditRecord::Submitted {
            t,
            job: job.id,
            part: chosen,
            candidates: cands.to_vec(),
        });
        self.waiting.insert(
            job.id,
            WaitState {
                // Anchored at the *enqueue* instant (== submit except for
                // pathological unsorted traces), so the settle segments
                // telescope to exactly `start - enqueue`.
                submit: t,
                marked_at: t,
                // Placeholder until the first settle classifies the job —
                // which happens at the submission instant, so the segment
                // it could mislabel has zero length.
                class: WaitCause::PolicyPosition,
                components: [0.0; 4],
            },
        );
    }

    fn on_job_dropped(&mut self, job: &Job) {
        self.records.push(AuditRecord::Dropped {
            t: job.submit,
            job: job.id,
            procs: job.procs,
        });
        // A job displaced by a capacity shrink may have been waiting in a
        // queue when it was dropped — its wait story ends here.
        self.waiting.remove(&job.id);
    }

    fn on_backfill_skipped(&mut self, t: f64, part: usize, job_id: usize, reason: SkipReason) {
        self.records.push(AuditRecord::BackfillSkipped {
            t,
            part,
            job: job_id,
            reason,
        });
        // A shadow rejection is positive evidence the job is length- not
        // width-constrained: it overrides the queue-shape class until the
        // next settle reclassifies.
        if reason == SkipReason::ShadowViolation {
            if let Some(st) = self.waiting.get_mut(&job_id) {
                st.class = WaitCause::Shadow;
            }
        }
    }

    fn on_plan_repaired(&mut self, t: f64, part: usize, cause: RepairCause, entries: usize) {
        self.records.push(AuditRecord::PlanRepaired {
            t,
            part,
            cause,
            entries,
        });
    }

    fn on_migrated(&mut self, t: f64, job_id: usize, from: usize, to: usize, gain: f64) {
        self.records.push(AuditRecord::Migrated {
            t,
            job: job_id,
            from,
            to,
            gain,
        });
    }

    fn on_job_started(&mut self, t: f64, part: usize, job: &Job, kind: StartKind) {
        self.records.push(AuditRecord::Started {
            t,
            part,
            job: job.id,
            kind,
            procs: job.procs,
            wait: (t - job.submit).max(0.0),
        });
        if let Some(mut st) = self.waiting.remove(&job.id) {
            st.components[st.class.index()] += t - st.marked_at;
            self.finished.insert(
                job.id,
                WaitBreakdown {
                    job: job.id,
                    wait: (t - st.submit).max(0.0),
                    components: st.components,
                },
            );
        }
    }

    fn on_job_completed(&mut self, t: f64, part: usize, job: &Job, _start: f64) {
        self.records.push(AuditRecord::Completed {
            t,
            part,
            job: job.id,
        });
    }

    fn on_platform_event(&mut self, t: f64, event: &crate::platform::PlatformEvent) {
        use crate::platform::PlatformEvent as Pe;
        self.recorder.on_platform_event(t, event);
        self.records.push(match *event {
            Pe::NodeFail { part, procs, .. } => AuditRecord::NodeFailed { t, part, procs },
            Pe::NodeRepair { part, procs, .. } => AuditRecord::NodeRepaired { t, part, procs },
            Pe::DrainStart { part, .. } => AuditRecord::DrainStarted { t, part },
            Pe::DrainEnd { part, .. } => AuditRecord::DrainEnded { t, part },
            Pe::Resize { part, procs, .. } => AuditRecord::Resized { t, part, procs },
        });
    }

    fn on_job_killed(&mut self, t: f64, part: usize, job: &Job, wasted: f64) {
        self.recorder.on_job_killed(t, part, job, wasted);
        self.records.push(AuditRecord::Killed {
            t,
            part,
            job: job.id,
            wasted,
        });
    }

    fn on_job_resubmitted(&mut self, t: f64, job: &Job, to: usize) {
        self.recorder.on_job_resubmitted(t, job, to);
        self.records.push(AuditRecord::Resubmitted {
            t,
            job: job.id,
            part: to,
        });
    }

    fn on_drain_evacuated(&mut self, t: f64, job_id: usize, from: usize, to: usize) {
        self.recorder.on_drain_evacuated(t, job_id, from, to);
        // The paired on_migrated hook records the move itself; the counter
        // is all the forensics this hook adds.
    }

    fn on_settle(&mut self, now: f64, parts: &[Partition]) {
        if self.partitions.is_empty() {
            self.partitions = parts
                .iter()
                .map(|p| PartitionMeta {
                    name: p.name().to_string(),
                    procs: p.procs(),
                    speed: p.speed(),
                })
                .collect();
        }
        // Close the segment since the previous settle under each job's
        // standing class, then reclassify from the settled queue shape.
        for st in self.waiting.values_mut() {
            st.components[st.class.index()] += now - st.marked_at;
            st.marked_at = now;
        }
        for part in parts {
            let free = part.free();
            for (pos, job) in part.queue().iter().enumerate() {
                if let Some(st) = self.waiting.get_mut(&job.id) {
                    st.class = if pos == 0 {
                        WaitCause::Capacity
                    } else if job.procs <= free {
                        WaitCause::HeadOfLine
                    } else {
                        WaitCause::PolicyPosition
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> AuditLog {
        AuditLog {
            partitions: vec![PartitionMeta {
                name: "p0".into(),
                procs: 8,
                speed: 1.0,
            }],
            records: vec![
                AuditRecord::Submitted {
                    t: 0.0,
                    job: 1,
                    part: 0,
                    candidates: vec![(0, 0.0)],
                },
                AuditRecord::BackfillSkipped {
                    t: 5.0,
                    part: 0,
                    job: 1,
                    reason: SkipReason::ShadowViolation,
                },
                AuditRecord::Started {
                    t: 10.0,
                    part: 0,
                    job: 1,
                    kind: StartKind::Backfill,
                    procs: 4,
                    wait: 10.0,
                },
                AuditRecord::Completed {
                    t: 30.0,
                    part: 0,
                    job: 1,
                },
            ],
            job_waits: vec![WaitBreakdown {
                job: 1,
                wait: 10.0,
                components: [5.0, 0.0, 0.0, 5.0],
            }],
        }
    }

    #[test]
    fn attribution_aggregates_components() {
        let log = sample_log();
        let table = log.attribution();
        assert_eq!(table.jobs, 1);
        assert_eq!(table.total_wait, 10.0);
        assert_eq!(table.capacity, 5.0);
        assert_eq!(table.shadow, 5.0);
        assert!((table.components_sum() - table.total_wait).abs() < 1e-9);
    }

    #[test]
    fn first_divergence_finds_the_edit() {
        let a = sample_log();
        let mut b = sample_log();
        assert_eq!(a.first_divergence(&b), None);
        b.records[2] = AuditRecord::Started {
            t: 12.0,
            part: 0,
            job: 1,
            kind: StartKind::Head,
            procs: 4,
            wait: 12.0,
        };
        assert_eq!(a.first_divergence(&b), Some(2));
        b.records.truncate(2);
        assert_eq!(a.first_divergence(&b), Some(2));
    }

    #[test]
    fn export_is_valid_json_with_all_sections() {
        let json = sample_log().to_json_pretty();
        let v: serde::Value = serde_json::from_str(&json).unwrap();
        let serde::Value::Object(entries) = &v else {
            panic!("export root must be an object");
        };
        for key in [
            "partitions",
            "records",
            "attribution",
            "job_waits",
            "timeline",
        ] {
            assert!(entries.iter().any(|(k, _)| k == key), "missing {key}");
        }
        assert!(json.contains("shadow_violation"));
        assert!(json.contains("\"start_kind\": \"backfill\""));
    }

    #[test]
    fn explain_narrates_job_and_run() {
        let log = sample_log();
        let run = log.explain(None);
        assert!(run.contains("wait attribution"), "{run}");
        assert!(run.contains("submitted"), "{run}");
        let job = log.explain(Some(1));
        assert!(job.contains("started on p0 (backfill"), "{job}");
        assert!(job.contains("wait breakdown"), "{job}");
        let missing = log.explain(Some(99));
        assert!(missing.contains("no audit records"), "{missing}");
    }

    #[test]
    fn probe_state_machine_attributes_wait() {
        // Drive the probe by hand: job 1 submits at t=0, settles once as
        // queue head (capacity), is shadow-skipped at t=4, starts at t=10.
        let mut probe = AuditProbe::new();
        let job = Job::new(1, 0.0, 4, 100.0, 100.0);
        probe.on_job_submitted(0.0, &job, 0, &[(0, 0.0)]);
        // No partitions to scan: classes stay as set below.
        probe.on_settle(0.0, &[]);
        probe.on_backfill_skipped(4.0, 0, 1, SkipReason::ShadowViolation);
        probe.on_job_started(10.0, 0, &job, StartKind::Backfill);
        let (log, _tel) = probe.into_log_and_telemetry();
        let w = log.breakdown(1).unwrap();
        assert_eq!(w.wait, 10.0);
        let sum: f64 = w.components.iter().sum();
        assert!((sum - w.wait).abs() < 1e-9, "components {:?}", w.components);
        // The shadow override governs the whole post-settle segment.
        assert_eq!(w.components[WaitCause::Shadow.index()], 10.0);
    }

    #[test]
    fn dropped_jobs_get_exactly_one_record_and_no_breakdown() {
        let mut probe = AuditProbe::new();
        let wide = Job::new(7, 3.0, 4096, 10.0, 10.0);
        probe.on_job_dropped(&wide);
        let (log, _tel) = probe.into_log_and_telemetry();
        assert_eq!(log.records.len(), 1);
        assert_eq!(log.records[0].kind(), "dropped");
        assert_eq!(log.records[0].job(), Some(7));
        assert!(log.breakdown(7).is_none());
    }
}
