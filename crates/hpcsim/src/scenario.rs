//! The declarative experiment API: one serializable spec per run.
//!
//! The paper's results are an experiment *grid* — tables and figures over
//! (trace × cluster shape × router × policy × backfilling × seeds) — and
//! before this module every cell of that grid was hand-rolled plumbing in
//! a bench binary. A [`ScenarioSpec`] names one cell as serde-round-trip
//! JSON **data**:
//!
//! * a [`swf::TraceSource`] (Table 2 preset, partitioned preset, raw or
//!   partitioned Lublin model, SWF archive file);
//! * a [`Platform`] — optional [`ClusterSpec`] plus a [`RouterSpec`]
//!   (homogeneous machine when absent);
//! * a base [`Policy`] and a [`SchedulerSpec`] — either a heuristic
//!   [`Backfill`] or an [`AgentSlot`] naming an RL decision-maker (the
//!   `rlbf` crate interprets that slot; this crate only carries it);
//! * an [`Engine`] (the `desim` kernel, or the preserved seed engines for
//!   differential baselines);
//! * an evaluation [`Protocol`] — the whole trace, or the paper's §4.3
//!   sampled-windows protocol;
//! * replication `seeds` and a [`MetricKind`] selection.
//!
//! [`run`] executes one spec into a uniform [`RunReport`] (canonical
//! label derived from the spec, aggregate [`Metrics`], optional per-job
//! schedule, the spec embedded for provenance), and [`run_replicated`]
//! fans the spec's seeds out across threads with [`desim::Replicator`].
//! The old free functions [`run_scheduler`] / [`run_scheduler_on`] remain
//! as the seed-pinned execution engines underneath; the equivalence suite
//! (`tests/scenario_equivalence.rs`) pins `scenario::run` bitwise to them
//! so the redesign cannot drift.
//!
//! ```
//! use hpcsim::scenario::{self, ScenarioSpec};
//! use hpcsim::{Backfill, Policy, RuntimeEstimator};
//! use swf::{TracePreset, TraceSource};
//!
//! let spec = ScenarioSpec::builder(TraceSource::Preset {
//!     preset: TracePreset::Lublin1,
//!     jobs: 300,
//!     seed: 21,
//! })
//! .policy(Policy::Fcfs)
//! .backfill(Backfill::Easy(RuntimeEstimator::RequestTime))
//! .build();
//! let report = scenario::run(&spec).unwrap();
//! assert_eq!(report.label, "Lublin-1 · FCFS+EASY");
//! assert!(report.metrics.mean_bounded_slowdown >= 1.0);
//! // The spec round-trips through JSON, so the run is reproducible from
//! // a committed config file.
//! let json = spec.to_json_pretty();
//! assert_eq!(ScenarioSpec::from_json(&json).unwrap(), spec);
//! ```

use crate::cluster::{
    ClusterSpec, EarliestStart, LeastLoaded, ReroutePolicy, Router, StaticAffinity,
};
use crate::estimator::RuntimeEstimator;
use crate::metrics::Metrics;
use crate::observe::audit::{AuditLog, AuditProbe, WaitAttribution};
use crate::observe::{Recorder, Telemetry};
use crate::policy::Policy;
use crate::runner::{
    run_scheduler, run_scheduler_on_rerouted_probed, run_scheduler_on_rerouted_probed_perturbed,
    run_scheduler_on_rerouted_recorded, run_scheduler_recorded, run_scheduler_reference, Backfill,
    ScheduleResult,
};
use crate::state::CompletedJob;
use desim::Replicator;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use swf::{Trace, TraceSource};

/// Serializable selection of a [`Router`] implementation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum RouterSpec {
    /// [`StaticAffinity`]: narrowest fitting partition.
    #[default]
    Affinity,
    /// [`LeastLoaded`]: lowest committed load.
    LeastLoaded,
    /// [`EarliestStart`] under the given runtime estimator.
    EarliestStart(RuntimeEstimator),
}

impl RouterSpec {
    /// The three routers at their experiment-default configurations.
    pub const ALL: [RouterSpec; 3] = [
        RouterSpec::Affinity,
        RouterSpec::LeastLoaded,
        RouterSpec::EarliestStart(RuntimeEstimator::RequestTime),
    ];

    /// Instantiates the router.
    // simlint: allow(sync-audit) — Arc shares immutable scenario inputs (workload/spec/estimator); read-only after construction
    pub fn build(&self) -> Arc<dyn Router> {
        match self {
            RouterSpec::Affinity => Arc::new(StaticAffinity), // simlint: allow(sync-audit) — Arc shares immutable scenario inputs (workload/spec/estimator); read-only after construction
            RouterSpec::LeastLoaded => Arc::new(LeastLoaded), // simlint: allow(sync-audit) — Arc shares immutable scenario inputs (workload/spec/estimator); read-only after construction
            RouterSpec::EarliestStart(est) => Arc::new(EarliestStart { estimator: *est }), // simlint: allow(sync-audit) — Arc shares immutable scenario inputs (workload/spec/estimator); read-only after construction
        }
    }

    /// The router's table label (matches [`Router::name`]).
    pub fn label(&self) -> &'static str {
        match self {
            RouterSpec::Affinity => "affinity",
            RouterSpec::LeastLoaded => "least-loaded",
            RouterSpec::EarliestStart(_) => "earliest-start",
        }
    }
}

/// The machine a scenario runs on: an optional explicit cluster shape plus
/// the router that assigns arriving jobs to partitions and the
/// [`ReroutePolicy`] governing whether that assignment is ever revisited.
///
/// `cluster: None` means "the homogeneous machine the trace targets" —
/// the degenerate shape that realizes bitwise-identical schedules to the
/// flat engine regardless of the router (and of the reroute policy, which
/// is inert with a single partition).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Platform {
    /// Explicit cluster shape, or `None` for the trace's flat machine.
    pub cluster: Option<ClusterSpec>,
    /// Partition router (irrelevant on a flat machine).
    pub router: RouterSpec,
    /// When the meta-scheduler revisits waiting jobs' partitions
    /// ([`ReroutePolicy::AtSubmission`], the default, never does).
    pub reroute: ReroutePolicy,
}

// Hand-written serde (instead of the derive) so the `reroute` field is
// **omitted when default** and **defaulted when absent**: every spec and
// report file committed before migration landed keeps parsing, and
// at-submission specs keep serializing to the identical bytes the
// reproduce pins (`tests/scenario_reproduce.rs`) compare against.
impl Serialize for Platform {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("cluster".to_string(), self.cluster.to_value()),
            ("router".to_string(), self.router.to_value()),
        ];
        if self.reroute != ReroutePolicy::default() {
            entries.push(("reroute".to_string(), self.reroute.to_value()));
        }
        serde::Value::Object(entries)
    }
}

impl Deserialize for Platform {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let has_reroute = matches!(v, serde::Value::Object(entries) if entries.iter().any(|(k, _)| k == "reroute"));
        Ok(Platform {
            cluster: serde::field(v, "cluster")?,
            router: serde::field(v, "router")?,
            reroute: if has_reroute {
                serde::field(v, "reroute")?
            } else {
                ReroutePolicy::default()
            },
        })
    }
}

impl Platform {
    /// The homogeneous machine the trace targets.
    pub fn flat() -> Self {
        Self::default()
    }

    /// An explicit cluster shape under the given router (at-submission
    /// routing; see [`Platform::rerouted`]).
    pub fn clustered(cluster: ClusterSpec, router: RouterSpec) -> Self {
        Self {
            cluster: Some(cluster),
            router,
            reroute: ReroutePolicy::AtSubmission,
        }
    }

    /// A platform from a workload-side partition layout.
    pub fn from_layout(layout: &[swf::PartitionLayout], router: RouterSpec) -> Self {
        Self::clustered(ClusterSpec::from_layout(layout), router)
    }

    /// This platform under a different [`ReroutePolicy`].
    pub fn rerouted(mut self, reroute: ReroutePolicy) -> Self {
        self.reroute = reroute;
        self
    }

    /// The concrete (cluster, router) pair for a given trace: the explicit
    /// shape when present, otherwise the trace's homogeneous machine.
    // simlint: allow(sync-audit) — Arc shares immutable scenario inputs (workload/spec/estimator); read-only after construction
    pub fn realize(&self, trace: &Trace) -> (ClusterSpec, Arc<dyn Router>) {
        let cluster = self
            .cluster
            .clone()
            .unwrap_or_else(|| ClusterSpec::homogeneous(trace.cluster_procs()));
        (cluster, self.router.build())
    }

    /// Short label: `"flat"`, or `"<parts>p/<router>"`, with `"+mig"`
    /// appended when decision-point migration is on.
    pub fn label(&self) -> String {
        match &self.cluster {
            None => "flat".into(),
            Some(c) => {
                let mut label = format!("{}p/{}", c.len(), self.router.label());
                if matches!(self.reroute, ReroutePolicy::AtDecisionPoints { .. }) {
                    label.push_str("+mig");
                }
                label
            }
        }
    }
}

/// Which simulation engine executes the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Engine {
    /// The production `desim` event-kernel engine (the default).
    #[default]
    Kernel,
    /// The preserved seed stepping engine with the shared backfilling
    /// passes ([`run_scheduler_reference`]); flat platforms only.
    Reference,
    /// The full seed cost model (seed engine with the naive availability
    /// profile and seed pass logic,
    /// [`crate::reference::run_seed_scheduler`]): the benchmark baseline;
    /// flat platforms only.
    SeedNaive,
}

/// The decision-maker slot of a scenario: either a heuristic backfilling
/// strategy this crate executes directly, or an external agent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SchedulerSpec {
    /// A heuristic [`Backfill`] strategy.
    Heuristic(Backfill),
    /// An external (learned) decision-maker. `hpcsim` cannot execute this
    /// variant — [`run`] returns [`ScenarioError::NeedsAgent`]; the `rlbf`
    /// crate's scenario bridge interprets the slot.
    Agent(AgentSlot),
}

impl SchedulerSpec {
    /// The scheduler's table label (`"EASY"`, `"CONS(req)"`, `"RLBF"`, …).
    pub fn label(&self) -> String {
        match self {
            SchedulerSpec::Heuristic(b) => b.label(),
            SchedulerSpec::Agent(_) => "RLBF".into(),
        }
    }
}

/// Names an external RL decision-maker plus its experiment configuration.
///
/// The `env` / `train` fields carry the owning crate's config structs
/// (`rlbf::EnvConfig` / `rlbf::TrainConfig`) as opaque JSON values, so one
/// committed spec file holds the *entire* experiment — workload, machine,
/// scheduler and RL hyper-parameters — without `hpcsim` depending on the
/// RL crate.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AgentSlot {
    /// Path to a trained agent checkpoint (`rlbf::RlbfAgent` JSON), when
    /// the scenario deploys an existing agent.
    pub checkpoint: Option<String>,
    /// Environment configuration (`rlbf::EnvConfig`), verbatim.
    pub env: Option<serde_json::Value>,
    /// Training configuration (`rlbf::TrainConfig`), verbatim, for
    /// scenarios that train before evaluating.
    pub train: Option<serde_json::Value>,
}

/// How the trace is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum Protocol {
    /// Schedule the whole materialized trace once.
    #[default]
    FullTrace,
    /// The paper's §4.3 protocol: sample `samples` random windows of
    /// `window_len` jobs (seeded, so competing schedulers see identical
    /// sequences), schedule each, report field-wise mean metrics.
    Windows {
        /// Number of sampled windows (paper: 10).
        samples: usize,
        /// Jobs per window (paper: 1024).
        window_len: usize,
        /// Window-sampling seed.
        seed: u64,
    },
}

/// A selectable scalar metric of a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Average bounded slowdown (the paper's headline metric).
    BoundedSlowdown,
    /// Average plain slowdown.
    Slowdown,
    /// Average queue wait, seconds.
    Wait,
    /// Maximum queue wait, seconds.
    MaxWait,
    /// Average turnaround, seconds.
    Turnaround,
    /// Machine utilization over the makespan.
    Utilization,
    /// Makespan, seconds.
    Makespan,
}

impl MetricKind {
    /// Every selectable metric.
    pub const ALL: [MetricKind; 7] = [
        MetricKind::BoundedSlowdown,
        MetricKind::Slowdown,
        MetricKind::Wait,
        MetricKind::MaxWait,
        MetricKind::Turnaround,
        MetricKind::Utilization,
        MetricKind::Makespan,
    ];

    /// Column name in reports.
    pub fn name(&self) -> &'static str {
        match self {
            MetricKind::BoundedSlowdown => "bsld",
            MetricKind::Slowdown => "slowdown",
            MetricKind::Wait => "wait",
            MetricKind::MaxWait => "max_wait",
            MetricKind::Turnaround => "turnaround",
            MetricKind::Utilization => "utilization",
            MetricKind::Makespan => "makespan",
        }
    }

    /// Extracts the metric from aggregate [`Metrics`].
    pub fn of(&self, m: &Metrics) -> f64 {
        match self {
            MetricKind::BoundedSlowdown => m.mean_bounded_slowdown,
            MetricKind::Slowdown => m.mean_slowdown,
            MetricKind::Wait => m.mean_wait,
            MetricKind::MaxWait => m.max_wait,
            MetricKind::Turnaround => m.mean_turnaround,
            MetricKind::Utilization => m.utilization,
            MetricKind::Makespan => m.makespan,
        }
    }
}

/// One cell of the experiment grid, as serializable data.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Optional label override; [`Self::label`] derives one when absent.
    pub name: Option<String>,
    /// Where the workload comes from.
    pub trace: TraceSource,
    /// The machine it runs on.
    pub platform: Platform,
    /// The base scheduling policy.
    pub policy: Policy,
    /// The backfilling decision-maker.
    pub scheduler: SchedulerSpec,
    /// Which simulation engine executes the run.
    pub engine: Engine,
    /// Whole-trace or sampled-windows evaluation.
    pub protocol: Protocol,
    /// Replication seeds for [`run_replicated`] (empty = single-shot).
    pub seeds: Vec<u64>,
    /// Metrics surfaced in [`RunReport::selected`] (empty = bsld only).
    pub metrics: Vec<MetricKind>,
    /// Whether the report carries the full per-job schedule
    /// (whole-trace heuristic runs only).
    pub record_schedule: bool,
    /// Whether the run collects deterministic telemetry counters (see
    /// [`crate::observe`]) into [`RunReport::telemetry`]. Kernel engine
    /// only; the schedule itself is bitwise unaffected.
    pub telemetry: bool,
    /// Whether the run collects the decision-forensics audit log (see
    /// [`crate::observe::audit`]) and attaches its aggregate wait-cause
    /// attribution to [`RunReport::attribution`]. Kernel engine only; the
    /// schedule itself is bitwise unaffected.
    pub audit: bool,
    /// Dynamic-machine platform events (node failures/repairs, drains,
    /// resizes) applied during the run — see [`crate::platform`]. The
    /// empty default is inert: nothing is scheduled and the run is bitwise
    /// identical to a spec without the field. Kernel engine only when
    /// non-empty.
    pub events: crate::platform::PlatformEventSpec,
}

// Hand-written serde (like [`Platform`]'s): `telemetry` and `audit` are
// omitted when false and defaulted when absent, so every spec file
// committed before the observability layers landed keeps parsing, and
// telemetry-/audit-off specs keep serializing to the identical bytes the
// reproduce pins compare against.
impl Serialize for ScenarioSpec {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("name".to_string(), self.name.to_value()),
            ("trace".to_string(), self.trace.to_value()),
            ("platform".to_string(), self.platform.to_value()),
            ("policy".to_string(), self.policy.to_value()),
            ("scheduler".to_string(), self.scheduler.to_value()),
            ("engine".to_string(), self.engine.to_value()),
            ("protocol".to_string(), self.protocol.to_value()),
            ("seeds".to_string(), self.seeds.to_value()),
            ("metrics".to_string(), self.metrics.to_value()),
            (
                "record_schedule".to_string(),
                self.record_schedule.to_value(),
            ),
        ];
        if self.telemetry {
            entries.push(("telemetry".to_string(), self.telemetry.to_value()));
        }
        if self.audit {
            entries.push(("audit".to_string(), self.audit.to_value()));
        }
        if self.events != crate::platform::PlatformEventSpec::default() {
            entries.push(("events".to_string(), self.events.to_value()));
        }
        serde::Value::Object(entries)
    }
}

impl Deserialize for ScenarioSpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let has_telemetry = matches!(
            v,
            serde::Value::Object(entries) if entries.iter().any(|(k, _)| k == "telemetry")
        );
        let has_audit = matches!(
            v,
            serde::Value::Object(entries) if entries.iter().any(|(k, _)| k == "audit")
        );
        let has_events = matches!(
            v,
            serde::Value::Object(entries) if entries.iter().any(|(k, _)| k == "events")
        );
        Ok(ScenarioSpec {
            name: serde::field(v, "name")?,
            trace: serde::field(v, "trace")?,
            platform: serde::field(v, "platform")?,
            policy: serde::field(v, "policy")?,
            scheduler: serde::field(v, "scheduler")?,
            engine: serde::field(v, "engine")?,
            protocol: serde::field(v, "protocol")?,
            seeds: serde::field(v, "seeds")?,
            metrics: serde::field(v, "metrics")?,
            record_schedule: serde::field(v, "record_schedule")?,
            telemetry: if has_telemetry {
                serde::field(v, "telemetry")?
            } else {
                false
            },
            audit: if has_audit {
                serde::field(v, "audit")?
            } else {
                false
            },
            events: if has_events {
                serde::field(v, "events")?
            } else {
                crate::platform::PlatformEventSpec::default()
            },
        })
    }
}

impl ScenarioSpec {
    /// Starts a builder over the given trace source with experiment
    /// defaults: flat platform, FCFS, EASY(request time), kernel engine,
    /// whole-trace protocol.
    pub fn builder(trace: TraceSource) -> ScenarioBuilder {
        ScenarioBuilder {
            spec: ScenarioSpec {
                name: None,
                trace,
                platform: Platform::flat(),
                policy: Policy::Fcfs,
                scheduler: SchedulerSpec::Heuristic(Backfill::Easy(RuntimeEstimator::RequestTime)),
                engine: Engine::Kernel,
                protocol: Protocol::FullTrace,
                seeds: Vec::new(),
                metrics: Vec::new(),
                record_schedule: false,
                telemetry: false,
                audit: false,
                events: crate::platform::PlatformEventSpec::default(),
            },
        }
    }

    /// The canonical row label derived from the spec:
    /// `trace · policy+scheduler[ · platform][ · protocol]`, or the
    /// explicit `name` override. Every [`RunReport`] carries this, so
    /// experiment binaries never format their own row names.
    pub fn label(&self) -> String {
        if let Some(name) = &self.name {
            return name.clone();
        }
        let mut label = format!(
            "{} · {}+{}",
            self.trace.label(),
            self.policy.name(),
            self.scheduler.label()
        );
        if self.platform.cluster.is_some() {
            label.push_str(&format!(" · {}", self.platform.label()));
        }
        if let Protocol::Windows {
            samples,
            window_len,
            ..
        } = self.protocol
        {
            label.push_str(&format!(" · {samples}x{window_len}w"));
        }
        label
    }

    /// The metric selection, defaulting to bounded slowdown.
    pub fn selected_metrics(&self) -> Vec<MetricKind> {
        if self.metrics.is_empty() {
            vec![MetricKind::BoundedSlowdown]
        } else {
            self.metrics.clone()
        }
    }

    /// Pretty JSON for committing under `examples/scenarios/`.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serializes")
    }

    /// Parses a spec from JSON.
    pub fn from_json(json: &str) -> Result<Self, ScenarioError> {
        serde_json::from_str(json).map_err(|e| ScenarioError::Spec(e.to_string()))
    }

    /// Loads a spec from a JSON file. Both failure modes — an unreadable
    /// file and a malformed spec — name the offending path (and, for
    /// parse failures, the offending field) so `scenario run` can report
    /// them instead of panicking.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, ScenarioError> {
        let path = path.as_ref();
        let json = std::fs::read_to_string(path)
            .map_err(|e| ScenarioError::Spec(format!("cannot read {}: {e}", path.display())))?;
        Self::from_json(&json).map_err(|e| match e {
            ScenarioError::Spec(msg) => {
                ScenarioError::Spec(format!("cannot parse {}: {msg}", path.display()))
            }
            other => other,
        })
    }

    /// Writes the spec as pretty JSON.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json_pretty())
    }
}

/// Fluent construction of a [`ScenarioSpec`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    spec: ScenarioSpec,
}

impl ScenarioBuilder {
    /// Overrides the derived label.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.spec.name = Some(name.into());
        self
    }

    /// Sets the machine.
    pub fn platform(mut self, platform: Platform) -> Self {
        self.spec.platform = platform;
        self
    }

    /// Shorthand: explicit cluster + router.
    pub fn cluster(self, cluster: ClusterSpec, router: RouterSpec) -> Self {
        self.platform(Platform::clustered(cluster, router))
    }

    /// Sets the platform's [`ReroutePolicy`] (decision-point migration).
    pub fn reroute(mut self, reroute: ReroutePolicy) -> Self {
        self.spec.platform.reroute = reroute;
        self
    }

    /// Sets the base policy.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.spec.policy = policy;
        self
    }

    /// Uses a heuristic backfilling strategy.
    pub fn backfill(mut self, backfill: Backfill) -> Self {
        self.spec.scheduler = SchedulerSpec::Heuristic(backfill);
        self
    }

    /// Uses an external agent slot.
    pub fn agent(mut self, slot: AgentSlot) -> Self {
        self.spec.scheduler = SchedulerSpec::Agent(slot);
        self
    }

    /// Selects the simulation engine.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.spec.engine = engine;
        self
    }

    /// Uses the sampled-windows evaluation protocol.
    pub fn windows(mut self, samples: usize, window_len: usize, seed: u64) -> Self {
        self.spec.protocol = Protocol::Windows {
            samples,
            window_len,
            seed,
        };
        self
    }

    /// Sets the replication seeds.
    pub fn seeds(mut self, seeds: Vec<u64>) -> Self {
        self.spec.seeds = seeds;
        self
    }

    /// Selects the reported metrics.
    pub fn metrics(mut self, metrics: Vec<MetricKind>) -> Self {
        self.spec.metrics = metrics;
        self
    }

    /// Records the full per-job schedule in the report.
    pub fn record_schedule(mut self, record: bool) -> Self {
        self.spec.record_schedule = record;
        self
    }

    /// Collects deterministic telemetry counters into the report (kernel
    /// engine only).
    pub fn telemetry(mut self, telemetry: bool) -> Self {
        self.spec.telemetry = telemetry;
        self
    }

    /// Collects the decision-forensics audit log and attaches its
    /// aggregate wait-cause attribution to the report (kernel engine
    /// only).
    pub fn audit(mut self, audit: bool) -> Self {
        self.spec.audit = audit;
        self
    }

    /// Applies a dynamic-machine platform-event stream to the run (node
    /// failures/repairs, drains, resizes — kernel engine only when
    /// non-empty).
    pub fn events(mut self, events: crate::platform::PlatformEventSpec) -> Self {
        self.spec.events = events;
        self
    }

    /// Finishes the spec.
    pub fn build(self) -> ScenarioSpec {
        self.spec
    }
}

/// One selected metric value in a report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectedMetric {
    /// [`MetricKind::name`] of the metric.
    pub metric: String,
    /// Its value.
    pub value: f64,
}

/// The uniform outcome of executing one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Canonical label derived from the spec ([`ScenarioSpec::label`]).
    pub label: String,
    /// The replication seed, when run through [`run_replicated`] /
    /// [`run_seeded`]; `None` for a single-shot [`run`].
    pub seed: Option<u64>,
    /// Jobs scheduled (summed across windows under
    /// [`Protocol::Windows`]).
    pub jobs: usize,
    /// Trace jobs that fit no partition of the platform and were never
    /// scheduled: `metrics` describes `jobs` completions, **not** the
    /// whole trace, whenever this is nonzero (summed across windows under
    /// [`Protocol::Windows`]; always 0 on flat platforms).
    pub dropped_jobs: usize,
    /// Aggregate metrics (field-wise mean across windows).
    pub metrics: Metrics,
    /// The spec's selected metrics, extracted for table rendering.
    pub selected: Vec<SelectedMetric>,
    /// The realized per-job schedule, when the spec asked for it.
    pub schedule: Option<Vec<CompletedJob>>,
    /// The spec that produced this report, embedded for provenance: the
    /// report file alone regenerates the run.
    pub spec: ScenarioSpec,
    /// Deterministic run telemetry (counters + histograms), present only
    /// when the spec asked for it ([`ScenarioSpec::telemetry`]).
    pub telemetry: Option<Telemetry>,
    /// Aggregate wait-cause attribution from the decision-forensics audit
    /// log, present only when the spec asked for it
    /// ([`ScenarioSpec::audit`]). Summed across windows under
    /// [`Protocol::Windows`].
    pub attribution: Option<WaitAttribution>,
    /// Robustness accounting, present only when the spec carries platform
    /// events ([`ScenarioSpec::events`]). Summed across windows under
    /// [`Protocol::Windows`].
    pub robustness: Option<RobustnessReport>,
}

/// Robustness accounting for a run perturbed by platform events: what the
/// failures/drains/resizes cost the schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessReport {
    /// Running jobs killed by capacity loss.
    pub kills: usize,
    /// Jobs re-entered into a queue after a kill or displacement.
    pub resubmits: usize,
    /// Reference node-seconds of work discarded by kills (checkpoint
    /// overhead under [`crate::platform::FailurePolicy::CheckpointRestart`]).
    pub wasted_node_seconds: f64,
    /// Mean bounded slowdown of this run minus the same spec run with the
    /// event stream stripped — how much the perturbation degraded the
    /// schedule. Mean of per-window deltas under [`Protocol::Windows`].
    pub bsld_degradation: Option<f64>,
}

// Hand-written serde (the [`RunReport`] pattern): `bsld_degradation` is
// omitted when `None` so reports without a baseline comparison carry no
// null placeholder.
impl Serialize for RobustnessReport {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("kills".to_string(), self.kills.to_value()),
            ("resubmits".to_string(), self.resubmits.to_value()),
            (
                "wasted_node_seconds".to_string(),
                self.wasted_node_seconds.to_value(),
            ),
        ];
        if let Some(d) = self.bsld_degradation {
            entries.push(("bsld_degradation".to_string(), d.to_value()));
        }
        serde::Value::Object(entries)
    }
}

impl Deserialize for RobustnessReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let has_degradation = matches!(
            v,
            serde::Value::Object(entries) if entries.iter().any(|(k, _)| k == "bsld_degradation")
        );
        Ok(RobustnessReport {
            kills: serde::field(v, "kills")?,
            resubmits: serde::field(v, "resubmits")?,
            wasted_node_seconds: serde::field(v, "wasted_node_seconds")?,
            bsld_degradation: if has_degradation {
                Some(serde::field(v, "bsld_degradation")?)
            } else {
                None
            },
        })
    }
}

// Hand-written serde (like [`Platform`]'s): `dropped_jobs` is omitted
// when 0 and defaulted when absent, and `telemetry` / `attribution` are
// omitted when `None`, so reports written before these fields existed
// keep parsing and telemetry-/audit-free reports keep their committed
// bytes.
impl Serialize for RunReport {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("label".to_string(), self.label.to_value()),
            ("seed".to_string(), self.seed.to_value()),
            ("jobs".to_string(), self.jobs.to_value()),
        ];
        if self.dropped_jobs > 0 {
            entries.push(("dropped_jobs".to_string(), self.dropped_jobs.to_value()));
        }
        entries.push(("metrics".to_string(), self.metrics.to_value()));
        entries.push(("selected".to_string(), self.selected.to_value()));
        entries.push(("schedule".to_string(), self.schedule.to_value()));
        entries.push(("spec".to_string(), self.spec.to_value()));
        if let Some(t) = &self.telemetry {
            entries.push(("telemetry".to_string(), t.to_value()));
        }
        if let Some(a) = &self.attribution {
            entries.push(("attribution".to_string(), a.to_value()));
        }
        if let Some(r) = &self.robustness {
            entries.push(("robustness".to_string(), r.to_value()));
        }
        serde::Value::Object(entries)
    }
}

impl Deserialize for RunReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let has = |name: &str| {
            matches!(
                v,
                serde::Value::Object(entries) if entries.iter().any(|(k, _)| k == name)
            )
        };
        Ok(RunReport {
            label: serde::field(v, "label")?,
            seed: serde::field(v, "seed")?,
            jobs: serde::field(v, "jobs")?,
            dropped_jobs: if has("dropped_jobs") {
                serde::field(v, "dropped_jobs")?
            } else {
                0
            },
            metrics: serde::field(v, "metrics")?,
            selected: serde::field(v, "selected")?,
            schedule: serde::field(v, "schedule")?,
            spec: serde::field(v, "spec")?,
            telemetry: if has("telemetry") {
                Some(serde::field(v, "telemetry")?)
            } else {
                None
            },
            attribution: if has("attribution") {
                Some(serde::field(v, "attribution")?)
            } else {
                None
            },
            robustness: if has("robustness") {
                Some(serde::field(v, "robustness")?)
            } else {
                None
            },
        })
    }
}

impl RunReport {
    /// Pretty JSON (the committed-results format).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Parses a report from JSON.
    pub fn from_json(json: &str) -> Result<Self, ScenarioError> {
        serde_json::from_str(json).map_err(|e| ScenarioError::Spec(e.to_string()))
    }

    /// The value of a selected metric by name.
    pub fn value(&self, metric: MetricKind) -> Option<f64> {
        self.selected
            .iter()
            .find(|s| s.metric == metric.name())
            .map(|s| s.value)
    }
}

/// Why a scenario could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The trace source failed to materialize.
    Trace(String),
    /// The spec (or a report) failed to parse.
    Spec(String),
    /// The spec names an external agent; execute it through the crate
    /// that owns the decision logic (`rlbf::scenario::run_spec`).
    NeedsAgent,
    /// The seed engines only model flat machines.
    ReferenceNeedsFlat,
    /// Telemetry collection is only instrumented on the kernel engine.
    TelemetryNeedsKernel,
    /// The decision-forensics audit hooks are only threaded through the
    /// kernel engine.
    AuditNeedsKernel,
    /// Dynamic-machine platform events are only applied by the kernel
    /// engine.
    PlatformEventsNeedKernel,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Trace(e) => write!(f, "trace source: {e}"),
            ScenarioError::Spec(e) => write!(f, "scenario spec: {e}"),
            ScenarioError::NeedsAgent => write!(
                f,
                "spec schedules with an external agent; run it through the RL crate's \
                 scenario bridge (rlbf::scenario::run_spec)"
            ),
            ScenarioError::ReferenceNeedsFlat => write!(
                f,
                "the seed reference engines only model flat (single-partition, speed-1) machines"
            ),
            ScenarioError::TelemetryNeedsKernel => write!(
                f,
                "telemetry collection requires the kernel engine (the probe hooks are not \
                 threaded through the preserved seed engines)"
            ),
            ScenarioError::AuditNeedsKernel => write!(
                f,
                "audit collection requires the kernel engine (the decision-forensics hooks \
                 are not threaded through the preserved seed engines)"
            ),
            ScenarioError::PlatformEventsNeedKernel => write!(
                f,
                "platform events (failures/drains/resizes) require the kernel engine (the \
                 preserved seed engines model a static machine)"
            ),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// The §4.3 evaluation windows for a seed: `samples` random windows of
/// `window_len` jobs, re-based to time 0. This is the **canonical** window
/// stream — `rlbf::sample_windows` delegates here, so heuristics, agents
/// and scenario runs all see identical sequences for the same seed.
pub fn sample_windows(trace: &Trace, samples: usize, window_len: usize, seed: u64) -> Vec<Trace> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..samples)
        .map(|_| trace.sample_window(window_len, &mut rng))
        .collect()
}

/// Field-wise mean of per-window metrics (jobs are summed) — the paper
/// reports the mean of per-window bsld values, not a pooled bsld.
pub fn mean_metrics(per: &[Metrics]) -> Metrics {
    if per.is_empty() {
        return Metrics::of(&[], 1);
    }
    let n = per.len() as f64;
    Metrics {
        jobs: per.iter().map(|m| m.jobs).sum(),
        mean_bounded_slowdown: per.iter().map(|m| m.mean_bounded_slowdown).sum::<f64>() / n,
        mean_slowdown: per.iter().map(|m| m.mean_slowdown).sum::<f64>() / n,
        mean_wait: per.iter().map(|m| m.mean_wait).sum::<f64>() / n,
        max_wait: per.iter().map(|m| m.max_wait).fold(0.0, f64::max),
        mean_turnaround: per.iter().map(|m| m.mean_turnaround).sum::<f64>() / n,
        utilization: per.iter().map(|m| m.utilization).sum::<f64>() / n,
        makespan: per.iter().map(|m| m.makespan).sum::<f64>() / n,
    }
}

/// Assembles the uniform report for a spec run. `dropped_jobs` counts the
/// trace jobs the platform could not route (0 on flat platforms). Public
/// so external executors of the [`SchedulerSpec::Agent`] slot (the RL
/// crate) produce byte-compatible reports.
pub fn make_report(
    spec: &ScenarioSpec,
    seed: Option<u64>,
    metrics: Metrics,
    dropped_jobs: usize,
    schedule: Option<Vec<CompletedJob>>,
) -> RunReport {
    let selected = spec
        .selected_metrics()
        .iter()
        .map(|k| SelectedMetric {
            metric: k.name().into(),
            value: k.of(&metrics),
        })
        .collect();
    RunReport {
        label: spec.label(),
        seed,
        jobs: metrics.jobs,
        dropped_jobs,
        metrics,
        selected,
        schedule,
        spec: spec.clone(),
        telemetry: None,
        attribution: None,
        robustness: None,
    }
}

/// Materializes a spec's trace and protocol under an optional replication
/// seed. The seed re-seeds the *stochastic element of the protocol*: the
/// window sampling under [`Protocol::Windows`], the trace generator under
/// [`Protocol::FullTrace`]. Public so the RL scenario bridge shares the
/// exact semantics.
pub fn materialize(
    spec: &ScenarioSpec,
    seed: Option<u64>,
) -> Result<(Trace, Protocol), ScenarioError> {
    let mut protocol = spec.protocol;
    let source = match (seed, &mut protocol) {
        (Some(s), Protocol::Windows { seed, .. }) => {
            *seed = s;
            spec.trace.clone()
        }
        (Some(s), Protocol::FullTrace) => {
            if spec.trace.seed().is_none() {
                // Without this, N "replications" of a seedless source
                // (an SWF file) would be N bit-identical runs dressed up
                // as independent samples.
                return Err(ScenarioError::Trace(format!(
                    "trace source {:?} cannot be re-seeded for full-trace replication; \
                     use the Windows protocol or a generator-backed source",
                    spec.trace.label()
                )));
            }
            spec.trace.clone().with_seed(s)
        }
        (None, _) => spec.trace.clone(),
    };
    let trace = source.materialize().map_err(ScenarioError::Trace)?;
    Ok((trace, protocol))
}

/// Executes one already-materialized trace (or window) on the spec's
/// engine and platform — the engine step alone, with no trace
/// generation, window sampling or report assembly. Public for callers
/// that need to time or drive the engines over a shared trace (the
/// `speed_probe` binary) without hand-rolled dispatch.
pub fn execute(trace: &Trace, spec: &ScenarioSpec) -> Result<ScheduleResult, ScenarioError> {
    let backfill = match &spec.scheduler {
        SchedulerSpec::Heuristic(b) => *b,
        SchedulerSpec::Agent(_) => return Err(ScenarioError::NeedsAgent),
    };
    run_once(trace, spec, backfill)
}

/// [`execute`] with a [`Recorder`] probe threaded through the run: same
/// schedule bitwise, plus the collected telemetry. Kernel engine only
/// (the reference engines are not instrumented) — this is what
/// `speed_probe --telemetry` times, so the probe's overhead is measured
/// on exactly the path `execute` takes.
pub fn execute_recorded(
    trace: &Trace,
    spec: &ScenarioSpec,
    recorder: Recorder,
) -> Result<(ScheduleResult, Recorder), ScenarioError> {
    let backfill = match &spec.scheduler {
        SchedulerSpec::Heuristic(b) => *b,
        SchedulerSpec::Agent(_) => return Err(ScenarioError::NeedsAgent),
    };
    run_once_recorded(trace, spec, backfill, recorder)
}

/// Resolves the platform a perturbed (platform-event-carrying) run
/// executes on: the explicit cluster, or the degenerate homogeneous one
/// for flat specs — which realizes the identical schedule (pinned by the
/// equivalence suite), so the event layer has one machine model to act
/// on.
fn perturbed_platform(
    trace: &Trace,
    spec: &ScenarioSpec,
    // simlint: allow(sync-audit) — Arc shares immutable scenario inputs (workload/spec/estimator); read-only after construction
) -> (ClusterSpec, Arc<dyn Router>, ReroutePolicy) {
    match &spec.platform.cluster {
        Some(cluster) => (
            cluster.clone(),
            spec.platform.router.build(),
            spec.platform.reroute,
        ),
        None => (
            ClusterSpec::homogeneous(trace.cluster_procs()),
            Arc::new(StaticAffinity), // simlint: allow(sync-audit) — Arc shares immutable scenario inputs (workload/spec/estimator); read-only after construction
            ReroutePolicy::AtSubmission,
        ),
    }
}

/// Executes one trace (or window) on the spec's engine and platform.
fn run_once(
    trace: &Trace,
    spec: &ScenarioSpec,
    backfill: Backfill,
) -> Result<ScheduleResult, ScenarioError> {
    if !spec.events.is_empty() {
        if spec.engine != Engine::Kernel {
            return Err(ScenarioError::PlatformEventsNeedKernel);
        }
        let (cluster, router, reroute) = perturbed_platform(trace, spec);
        let (r, _) = run_scheduler_on_rerouted_probed_perturbed(
            trace,
            spec.policy,
            backfill,
            &cluster,
            router,
            reroute,
            &spec.events,
            crate::observe::NoopProbe,
        )
        .map_err(|e| ScenarioError::Spec(format!("platform events: {e}")))?;
        return Ok(r);
    }
    match (spec.engine, &spec.platform.cluster) {
        (Engine::Kernel, None) => Ok(run_scheduler(trace, spec.policy, backfill)),
        (Engine::Kernel, Some(cluster)) => Ok(crate::runner::run_scheduler_on_rerouted(
            trace,
            spec.policy,
            backfill,
            cluster,
            spec.platform.router.build(),
            spec.platform.reroute,
        )),
        (Engine::Reference, None) => Ok(run_scheduler_reference(trace, spec.policy, backfill)),
        (Engine::SeedNaive, None) => Ok(crate::reference::run_seed_scheduler(
            trace,
            spec.policy,
            backfill,
        )),
        (Engine::Reference | Engine::SeedNaive, Some(_)) => Err(ScenarioError::ReferenceNeedsFlat),
    }
}

/// [`run_once`] with a [`Recorder`] probe threaded through the kernel
/// engine: same schedule bitwise, plus the run's telemetry. Only the
/// kernel engine is instrumented.
fn run_once_recorded(
    trace: &Trace,
    spec: &ScenarioSpec,
    backfill: Backfill,
    recorder: Recorder,
) -> Result<(ScheduleResult, Recorder), ScenarioError> {
    if !spec.events.is_empty() {
        if spec.engine != Engine::Kernel {
            return Err(ScenarioError::PlatformEventsNeedKernel);
        }
        let (cluster, router, reroute) = perturbed_platform(trace, spec);
        return run_scheduler_on_rerouted_probed_perturbed(
            trace,
            spec.policy,
            backfill,
            &cluster,
            router,
            reroute,
            &spec.events,
            recorder,
        )
        .map_err(|e| ScenarioError::Spec(format!("platform events: {e}")));
    }
    match (spec.engine, &spec.platform.cluster) {
        (Engine::Kernel, None) => Ok(run_scheduler_recorded(
            trace,
            spec.policy,
            backfill,
            recorder,
        )),
        (Engine::Kernel, Some(cluster)) => Ok(run_scheduler_on_rerouted_recorded(
            trace,
            spec.policy,
            backfill,
            cluster,
            spec.platform.router.build(),
            spec.platform.reroute,
            recorder,
        )),
        (Engine::Reference | Engine::SeedNaive, _) => Err(ScenarioError::TelemetryNeedsKernel),
    }
}

/// [`run_once`] with an [`AuditProbe`] threaded through the kernel
/// engine: same schedule bitwise, plus the run's decision-forensics log
/// (and the probe's embedded telemetry). Only the kernel engine is
/// instrumented. Flat platforms run through the degenerate homogeneous
/// cluster, which realizes the identical schedule (pinned by the
/// equivalence suite).
fn run_once_audited(
    trace: &Trace,
    spec: &ScenarioSpec,
    backfill: Backfill,
) -> Result<(ScheduleResult, AuditProbe), ScenarioError> {
    if !spec.events.is_empty() {
        if spec.engine != Engine::Kernel {
            return Err(ScenarioError::PlatformEventsNeedKernel);
        }
        let (cluster, router, reroute) = perturbed_platform(trace, spec);
        return run_scheduler_on_rerouted_probed_perturbed(
            trace,
            spec.policy,
            backfill,
            &cluster,
            router,
            reroute,
            &spec.events,
            AuditProbe::new(),
        )
        .map_err(|e| ScenarioError::Spec(format!("platform events: {e}")));
    }
    match (spec.engine, &spec.platform.cluster) {
        (Engine::Kernel, None) => Ok(run_scheduler_on_rerouted_probed(
            trace,
            spec.policy,
            backfill,
            &ClusterSpec::homogeneous(trace.cluster_procs()),
            Arc::new(StaticAffinity), // simlint: allow(sync-audit) — Arc shares immutable scenario inputs (workload/spec/estimator); read-only after construction
            ReroutePolicy::AtSubmission,
            AuditProbe::new(),
        )),
        (Engine::Kernel, Some(cluster)) => Ok(run_scheduler_on_rerouted_probed(
            trace,
            spec.policy,
            backfill,
            cluster,
            spec.platform.router.build(),
            spec.platform.reroute,
            AuditProbe::new(),
        )),
        (Engine::Reference | Engine::SeedNaive, _) => Err(ScenarioError::AuditNeedsKernel),
    }
}

/// Robustness section for a whole-trace perturbed result: the kill /
/// resubmit / wasted-work counters plus the bsld delta against the same
/// spec with the event stream stripped — one extra unperturbed run
/// prices the perturbation. `None` when the spec carries no events.
fn robustness_of(
    trace: &Trace,
    spec: &ScenarioSpec,
    backfill: Backfill,
    r: &ScheduleResult,
) -> Result<Option<RobustnessReport>, ScenarioError> {
    if spec.events.is_empty() {
        return Ok(None);
    }
    let mut base_spec = spec.clone();
    base_spec.events = crate::platform::PlatformEventSpec::default();
    let base = run_once(trace, &base_spec, backfill)?;
    Ok(Some(RobustnessReport {
        kills: r.kills,
        resubmits: r.resubmits,
        wasted_node_seconds: r.wasted_node_seconds,
        bsld_degradation: Some(
            r.metrics.mean_bounded_slowdown - base.metrics.mean_bounded_slowdown,
        ),
    }))
}

fn run_with_seed(spec: &ScenarioSpec, seed: Option<u64>) -> Result<RunReport, ScenarioError> {
    let (trace, protocol) = materialize(spec, seed)?;
    run_protocol(spec, &trace, protocol, seed)
}

/// Runs the (already re-seeded) protocol over a materialized trace.
fn run_protocol(
    spec: &ScenarioSpec,
    trace: &Trace,
    protocol: Protocol,
    seed: Option<u64>,
) -> Result<RunReport, ScenarioError> {
    let backfill = match &spec.scheduler {
        SchedulerSpec::Heuristic(b) => *b,
        SchedulerSpec::Agent(_) => return Err(ScenarioError::NeedsAgent),
    };
    match protocol {
        Protocol::FullTrace => {
            let (r, telemetry, attribution) = if spec.audit {
                // The audit probe embeds a telemetry recorder, so one
                // instrumented run serves both report fields.
                let (r, probe) = run_once_audited(trace, spec, backfill)?;
                let (log, tel) = probe.into_log_and_telemetry();
                (r, spec.telemetry.then_some(tel), Some(log.attribution()))
            } else if spec.telemetry {
                let (r, rec) = run_once_recorded(trace, spec, backfill, Recorder::default())?;
                (r, Some(rec.into_telemetry()), None)
            } else {
                (run_once(trace, spec, backfill)?, None, None)
            };
            let robustness = robustness_of(trace, spec, backfill, &r)?;
            let schedule = spec.record_schedule.then_some(r.completed);
            let mut report = make_report(spec, seed, r.metrics, r.dropped_jobs, schedule);
            report.telemetry = telemetry;
            report.attribution = attribution;
            report.robustness = robustness;
            Ok(report)
        }
        Protocol::Windows {
            samples,
            window_len,
            seed: wseed,
        } => {
            let windows = sample_windows(trace, samples, window_len, wseed);
            let mut telemetry = spec.telemetry.then(Telemetry::default);
            let mut attribution = spec.audit.then(WaitAttribution::default);
            let mut robustness = (!spec.events.is_empty()).then_some(RobustnessReport {
                kills: 0,
                resubmits: 0,
                wasted_node_seconds: 0.0,
                bsld_degradation: None,
            });
            let base_spec = robustness.is_some().then(|| {
                let mut base = spec.clone();
                base.events = crate::platform::PlatformEventSpec::default();
                base
            });
            let mut degradation = 0.0;
            let per = windows
                .iter()
                .map(|w| {
                    let r = if let Some(attr) = &mut attribution {
                        let (r, probe) = run_once_audited(w, spec, backfill)?;
                        let (log, tel) = probe.into_log_and_telemetry();
                        attr.merge(&log.attribution());
                        if let Some(total) = &mut telemetry {
                            total.merge(&tel);
                        }
                        r
                    } else if let Some(total) = &mut telemetry {
                        let (r, rec) = run_once_recorded(w, spec, backfill, Recorder::default())?;
                        total.merge(rec.telemetry());
                        r
                    } else {
                        run_once(w, spec, backfill)?
                    };
                    if let Some(rob) = &mut robustness {
                        rob.kills += r.kills;
                        rob.resubmits += r.resubmits;
                        rob.wasted_node_seconds += r.wasted_node_seconds;
                    }
                    if let Some(base) = &base_spec {
                        let b = run_once(w, base, backfill)?;
                        degradation +=
                            r.metrics.mean_bounded_slowdown - b.metrics.mean_bounded_slowdown;
                    }
                    Ok((r.metrics, r.dropped_jobs))
                })
                .collect::<Result<Vec<_>, ScenarioError>>()?;
            if let Some(rob) = &mut robustness {
                rob.bsld_degradation = Some(degradation / (windows.len().max(1)) as f64);
            }
            let dropped = per.iter().map(|(_, d)| d).sum();
            let metrics: Vec<Metrics> = per.into_iter().map(|(m, _)| m).collect();
            let mut report = make_report(spec, seed, mean_metrics(&metrics), dropped, None);
            report.telemetry = telemetry;
            report.attribution = attribution;
            report.robustness = robustness;
            Ok(report)
        }
    }
}

/// Executes one spec single-shot (heuristic schedulers; agent specs go
/// through the RL crate's bridge).
pub fn run(spec: &ScenarioSpec) -> Result<RunReport, ScenarioError> {
    run_with_seed(spec, None)
}

/// [`run`] under an explicit replication seed (see [`materialize`] for
/// what the seed re-seeds).
pub fn run_seeded(spec: &ScenarioSpec, seed: u64) -> Result<RunReport, ScenarioError> {
    run_with_seed(spec, Some(seed))
}

/// Executes one spec with a span-tracing [`Recorder`] and returns both
/// the report (telemetry attached regardless of the spec's `telemetry`
/// flag) and the recorder, whose wall-clock spans export as Chrome-trace
/// JSON ([`Recorder::chrome_trace_json`]) — the `scenario trace`
/// subcommand. Kernel engine, whole-trace protocol only: span streams
/// from independently-clocked window runs would not compose into one
/// coherent timeline.
pub fn run_recorded(spec: &ScenarioSpec) -> Result<(RunReport, Recorder), ScenarioError> {
    let (trace, protocol) = materialize(spec, None)?;
    if protocol != Protocol::FullTrace {
        return Err(ScenarioError::Spec(
            "span tracing requires the whole-trace protocol (Windows runs have \
             independently-clocked samples)"
                .into(),
        ));
    }
    let backfill = match &spec.scheduler {
        SchedulerSpec::Heuristic(b) => *b,
        SchedulerSpec::Agent(_) => return Err(ScenarioError::NeedsAgent),
    };
    let (r, rec) = run_once_recorded(&trace, spec, backfill, Recorder::with_spans())?;
    let robustness = robustness_of(&trace, spec, backfill, &r)?;
    let schedule = spec.record_schedule.then_some(r.completed);
    let mut report = make_report(spec, None, r.metrics, r.dropped_jobs, schedule);
    report.telemetry = Some(rec.telemetry().clone());
    report.robustness = robustness;
    Ok((report, rec))
}

/// Executes one spec with an [`AuditProbe`] and returns both the report
/// (attribution attached regardless of the spec's `audit` flag) and the
/// full decision-forensics [`AuditLog`] — the `scenario explain` /
/// `scenario audit` subcommands. Kernel engine, whole-trace protocol
/// only: record streams from independently-clocked window runs would not
/// compose into one coherent log.
pub fn run_audited(spec: &ScenarioSpec) -> Result<(RunReport, AuditLog), ScenarioError> {
    let (trace, protocol) = materialize(spec, None)?;
    if protocol != Protocol::FullTrace {
        return Err(ScenarioError::Spec(
            "audit export requires the whole-trace protocol (Windows runs have \
             independently-clocked samples)"
                .into(),
        ));
    }
    let backfill = match &spec.scheduler {
        SchedulerSpec::Heuristic(b) => *b,
        SchedulerSpec::Agent(_) => return Err(ScenarioError::NeedsAgent),
    };
    let (r, probe) = run_once_audited(&trace, spec, backfill)?;
    let (log, telemetry) = probe.into_log_and_telemetry();
    let robustness = robustness_of(&trace, spec, backfill, &r)?;
    let schedule = spec.record_schedule.then_some(r.completed);
    let mut report = make_report(spec, None, r.metrics, r.dropped_jobs, schedule);
    report.telemetry = spec.telemetry.then_some(telemetry);
    report.attribution = Some(log.attribution());
    report.robustness = robustness;
    Ok((report, log))
}

/// Fans the spec's `seeds` out across threads with [`desim::Replicator`]
/// and returns one report per seed, in seed order. An empty seed list
/// degenerates to a single [`run`]. Deterministic and
/// thread-count-independent.
pub fn run_replicated(spec: &ScenarioSpec) -> Result<Vec<RunReport>, ScenarioError> {
    run_replicated_threads(spec, 0)
}

/// [`run_replicated`] with a worker-thread cap (`0` = all cores, `1` =
/// sequential; used by benchmarks to time the fan-out win).
pub fn run_replicated_threads(
    spec: &ScenarioSpec,
    threads: usize,
) -> Result<Vec<RunReport>, ScenarioError> {
    if spec.seeds.is_empty() {
        return Ok(vec![run(spec)?]);
    }
    let mut replicator = Replicator::new(spec.seeds[0]);
    if threads > 0 {
        replicator = replicator.threads(threads);
    }
    if let Protocol::Windows {
        samples,
        window_len,
        ..
    } = spec.protocol
    {
        // Under the windows protocol the replication seed only re-seeds
        // the window sampler — materialize the (invariant) trace once
        // and share it across all replications.
        let (trace, _) = materialize(spec, None)?;
        return replicator
            .run(spec.seeds.len(), |i, _| {
                let protocol = Protocol::Windows {
                    samples,
                    window_len,
                    seed: spec.seeds[i],
                };
                run_protocol(spec, &trace, protocol, Some(spec.seeds[i]))
            })
            .into_iter()
            .collect();
    }
    replicator
        .run(spec.seeds.len(), |i, _| run_seeded(spec, spec.seeds[i]))
        .into_iter()
        .collect()
}

/// A deterministic replication seed stream for spec authors:
/// `n` SplitMix64-decorrelated seeds derived from `master` (the same
/// stream [`desim::Replicator`] hands its bodies).
pub fn replication_seeds(master: u64, n: usize) -> Vec<u64> {
    (0..n)
        .map(|i| desim::replication_seed(master, i as u64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformEvent;
    use swf::TracePreset;

    fn lublin_spec(jobs: usize) -> ScenarioBuilder {
        ScenarioSpec::builder(TraceSource::Preset {
            preset: TracePreset::Lublin1,
            jobs,
            seed: 21,
        })
    }

    #[test]
    fn run_matches_run_scheduler_bitwise() {
        let spec = lublin_spec(300).build();
        let report = run(&spec).unwrap();
        let trace = TracePreset::Lublin1.generate(300, 21);
        let direct = run_scheduler(
            &trace,
            Policy::Fcfs,
            Backfill::Easy(RuntimeEstimator::RequestTime),
        );
        assert_eq!(report.metrics, direct.metrics);
        assert_eq!(report.jobs, direct.completed.len());
    }

    #[test]
    fn labels_are_canonical() {
        let spec = lublin_spec(100).build();
        assert_eq!(spec.label(), "Lublin-1 · FCFS+EASY");
        let clustered = lublin_spec(100)
            .policy(Policy::Sjf)
            .backfill(Backfill::Conservative(RuntimeEstimator::RequestTime))
            .cluster(ClusterSpec::homogeneous(256), RouterSpec::LeastLoaded)
            .build();
        assert_eq!(
            clustered.label(),
            "Lublin-1 · SJF+CONS(request) · 1p/least-loaded"
        );
        let windows = lublin_spec(100).windows(10, 64, 3).build();
        assert_eq!(windows.label(), "Lublin-1 · FCFS+EASY · 10x64w");
        let named = lublin_spec(100).name("row 7").build();
        assert_eq!(named.label(), "row 7");
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = lublin_spec(50)
            .cluster(ClusterSpec::homogeneous(64), RouterSpec::ALL[2])
            .windows(4, 32, 9)
            .seeds(vec![1, 2, 3])
            .metrics(vec![MetricKind::BoundedSlowdown, MetricKind::Utilization])
            .record_schedule(true)
            .build();
        let json = spec.to_json_pretty();
        assert_eq!(ScenarioSpec::from_json(&json).unwrap(), spec);
    }

    #[test]
    fn report_embeds_spec_and_selected_metrics() {
        let spec = lublin_spec(200)
            .metrics(vec![MetricKind::BoundedSlowdown, MetricKind::Wait])
            .record_schedule(true)
            .build();
        let report = run(&spec).unwrap();
        assert_eq!(report.spec, spec);
        assert_eq!(report.selected.len(), 2);
        assert_eq!(
            report.value(MetricKind::BoundedSlowdown),
            Some(report.metrics.mean_bounded_slowdown)
        );
        assert_eq!(report.value(MetricKind::Makespan), None);
        let sched = report.schedule.as_ref().expect("schedule recorded");
        assert_eq!(sched.len(), report.jobs);
        let back = RunReport::from_json(&report.to_json_pretty()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn windows_protocol_averages_per_window_metrics() {
        let spec = lublin_spec(400).windows(3, 64, 11).build();
        let report = run(&spec).unwrap();
        let trace = TracePreset::Lublin1.generate(400, 21);
        let windows = sample_windows(&trace, 3, 64, 11);
        let per: Vec<Metrics> = windows
            .iter()
            .map(|w| {
                run_scheduler(
                    w,
                    Policy::Fcfs,
                    Backfill::Easy(RuntimeEstimator::RequestTime),
                )
                .metrics
            })
            .collect();
        assert_eq!(report.metrics, mean_metrics(&per));
        assert_eq!(report.jobs, per.iter().map(|m| m.jobs).sum::<usize>());
    }

    #[test]
    fn seeded_full_trace_reseeds_the_generator() {
        let spec = lublin_spec(200).build();
        let a = run_seeded(&spec, 5).unwrap();
        let b = run_seeded(&spec, 6).unwrap();
        assert_ne!(
            a.metrics.mean_bounded_slowdown,
            b.metrics.mean_bounded_slowdown
        );
        assert_eq!(a.seed, Some(5));
        // The label stays canonical; the seed lives in its own field.
        assert_eq!(a.label, b.label);
    }

    #[test]
    fn seeded_windows_reseed_the_sampler_not_the_trace() {
        let spec = lublin_spec(400).windows(2, 64, 1).build();
        let a = run_seeded(&spec, 5).unwrap();
        let direct = run(&lublin_spec(400).windows(2, 64, 5).build()).unwrap();
        assert_eq!(a.metrics, direct.metrics);
    }

    #[test]
    fn replication_is_thread_count_independent() {
        let spec = lublin_spec(300)
            .windows(2, 64, 1)
            .seeds(replication_seeds(7, 6))
            .build();
        let par = run_replicated(&spec).unwrap();
        let seq = run_replicated_threads(&spec, 1).unwrap();
        assert_eq!(par, seq);
        assert_eq!(par.len(), 6);
        for (r, s) in par.iter().zip(&spec.seeds) {
            assert_eq!(r.seed, Some(*s));
            // The shared-trace fast path must equal the one-off path.
            assert_eq!(r, &run_seeded(&spec, *s).unwrap());
        }
    }

    #[test]
    fn full_trace_replication_of_a_seedless_source_is_rejected() {
        let spec = ScenarioSpec::builder(TraceSource::SwfFile {
            path: "archive.swf".into(),
        })
        .seeds(vec![1, 2])
        .build();
        let err = run_replicated(&spec).unwrap_err();
        assert!(
            matches!(&err, ScenarioError::Trace(m) if m.contains("cannot be re-seeded")),
            "{err}"
        );
    }

    #[test]
    fn empty_seed_list_degenerates_to_single_run() {
        let spec = lublin_spec(150).build();
        let reports = run_replicated(&spec).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0], run(&spec).unwrap());
    }

    #[test]
    fn unroutable_jobs_are_counted_not_silently_dropped() {
        // Lublin-1 targets a 256-proc machine; on a cluster whose widest
        // partition is 128 procs, the trace's capability jobs fit no
        // partition — the report must count them instead of quietly
        // describing a smaller trace.
        let spec = lublin_spec(400)
            .cluster(
                ClusterSpec::new(vec![
                    crate::cluster::PartitionSpec::new("a", 128, 1.0),
                    crate::cluster::PartitionSpec::new("b", 128, 1.0),
                ]),
                RouterSpec::LeastLoaded,
            )
            .build();
        let report = run(&spec).unwrap();
        let trace = TracePreset::Lublin1.generate(400, 21);
        let wide = trace.jobs().iter().filter(|j| j.procs > 128).count();
        assert!(wide > 0, "the scenario needs at least one over-wide job");
        assert_eq!(report.dropped_jobs, wide);
        assert_eq!(report.jobs + report.dropped_jobs, trace.len());
        // The count survives the committed-report round trip.
        let back = RunReport::from_json(&report.to_json_pretty()).unwrap();
        assert_eq!(back, report);
        // And a pre-migration report without the field parses as 0.
        let legacy = make_report(&lublin_spec(10).build(), None, Metrics::of(&[], 4), 0, None);
        let json = legacy.to_json_pretty();
        assert!(!json.contains("dropped_jobs"), "0 must serialize omitted");
        assert_eq!(RunReport::from_json(&json).unwrap().dropped_jobs, 0);
    }

    #[test]
    fn audit_flag_round_trips_and_is_omitted_when_off() {
        let spec = lublin_spec(50).audit(true).build();
        let json = spec.to_json_pretty();
        assert!(json.contains("\"audit\": true"));
        assert_eq!(ScenarioSpec::from_json(&json).unwrap(), spec);
        // Audit-off specs keep their committed bytes: the field vanishes.
        let off = lublin_spec(50).build();
        assert!(!off.to_json_pretty().contains("audit"));
        assert!(!run(&off).unwrap().to_json_pretty().contains("attribution"));
    }

    #[test]
    fn audited_run_realizes_the_same_schedule_and_attribution_sums() {
        let audited = run(&lublin_spec(300).audit(true).build()).unwrap();
        let plain = run(&lublin_spec(300).build()).unwrap();
        assert_eq!(audited.metrics, plain.metrics);
        let attr = audited.attribution.as_ref().expect("attribution attached");
        assert_eq!(attr.jobs as usize, audited.jobs);
        assert!(
            (attr.components_sum() - attr.total_wait).abs() <= 1e-6 * attr.total_wait.max(1.0),
            "components {} vs total {}",
            attr.components_sum(),
            attr.total_wait
        );
        // The attribution table survives the committed-report round trip.
        let back = RunReport::from_json(&audited.to_json_pretty()).unwrap();
        assert_eq!(back, audited);
    }

    #[test]
    fn windows_protocol_merges_attribution_across_windows() {
        let report = run(&lublin_spec(400).windows(3, 64, 11).audit(true).build()).unwrap();
        let attr = report.attribution.as_ref().expect("attribution attached");
        assert_eq!(attr.jobs as usize, report.jobs);
        assert!((attr.components_sum() - attr.total_wait).abs() <= 1e-6 * attr.total_wait.max(1.0));
    }

    #[test]
    fn audit_requires_the_kernel_engine() {
        let spec = lublin_spec(50)
            .engine(Engine::Reference)
            .audit(true)
            .build();
        assert_eq!(run(&spec), Err(ScenarioError::AuditNeedsKernel));
    }

    #[test]
    fn run_audited_returns_a_log_consistent_with_the_report() {
        let spec = lublin_spec(200).build();
        let (report, log) = run_audited(&spec).unwrap();
        assert_eq!(report.attribution, Some(log.attribution()));
        assert_eq!(log.job_waits.len(), report.jobs);
        // Same spec, same log, bitwise: the forensics layer is
        // deterministic.
        let (_, log2) = run_audited(&spec).unwrap();
        assert_eq!(log.first_divergence(&log2), None);
        assert_eq!(log, log2);
    }

    #[test]
    fn agent_specs_are_refused_here() {
        let spec = lublin_spec(50).agent(AgentSlot::default()).build();
        assert_eq!(run(&spec), Err(ScenarioError::NeedsAgent));
        assert_eq!(spec.label(), "Lublin-1 · FCFS+RLBF");
    }

    #[test]
    fn reference_engines_require_flat_platforms() {
        let flat_ref = lublin_spec(120).engine(Engine::Reference).build();
        let kernel = lublin_spec(120).build();
        assert_eq!(
            run(&flat_ref).unwrap().metrics,
            run(&kernel).unwrap().metrics
        );
        let clustered = lublin_spec(120)
            .engine(Engine::SeedNaive)
            .cluster(ClusterSpec::homogeneous(256), RouterSpec::Affinity)
            .build();
        assert_eq!(run(&clustered), Err(ScenarioError::ReferenceNeedsFlat));
    }

    #[test]
    fn mean_metrics_of_empty_is_zeroed() {
        let m = mean_metrics(&[]);
        assert_eq!(m.jobs, 0);
        assert_eq!(m.mean_bounded_slowdown, 0.0);
    }

    fn outage(fail_at: f64, procs: u32, repair_at: f64) -> crate::platform::PlatformEventSpec {
        crate::platform::PlatformEventSpec {
            trace: vec![
                PlatformEvent::NodeFail {
                    at: fail_at,
                    part: 0,
                    procs,
                },
                PlatformEvent::NodeRepair {
                    at: repair_at,
                    part: 0,
                    procs,
                },
            ],
            ..Default::default()
        }
    }

    #[test]
    fn platform_events_round_trip_and_are_omitted_when_empty() {
        let spec = lublin_spec(50).events(outage(100.0, 32, 5000.0)).build();
        let json = spec.to_json_pretty();
        assert!(json.contains("\"events\""));
        assert_eq!(ScenarioSpec::from_json(&json).unwrap(), spec);
        // Event-free specs keep their committed bytes: the field vanishes,
        // and so does the report's robustness section.
        let off = lublin_spec(50).build();
        assert!(!off.to_json_pretty().contains("\"events\""));
        assert!(!run(&off).unwrap().to_json_pretty().contains("robustness"));
    }

    #[test]
    fn platform_events_require_the_kernel_engine() {
        let spec = lublin_spec(50)
            .engine(Engine::Reference)
            .events(outage(100.0, 32, 5000.0))
            .build();
        assert_eq!(run(&spec), Err(ScenarioError::PlatformEventsNeedKernel));
    }

    #[test]
    fn perturbed_run_reports_robustness_and_conserves_jobs() {
        // Fail 200 of Lublin-1's 256 procs mid-run: jobs must be killed,
        // resubmitted (or dropped if they no longer fit), and accounted.
        let spec = lublin_spec(300)
            .events(outage(100_000.0, 200, 180_000.0))
            .build();
        let report = run(&spec).unwrap();
        let rob = report.robustness.as_ref().expect("robustness attached");
        assert!(rob.kills >= 1, "a 200-proc outage must kill something");
        assert!(rob.resubmits >= 1);
        assert!(rob.wasted_node_seconds > 0.0);
        // The delta can be negative when the outage drops wide jobs from
        // the completed population — only require that it was computed.
        assert!(rob
            .bsld_degradation
            .expect("baseline delta computed")
            .is_finite());
        let trace = TracePreset::Lublin1.generate(300, 21);
        assert_eq!(report.jobs + report.dropped_jobs, trace.len());
        // The robustness section survives the committed-report round trip.
        let back = RunReport::from_json(&report.to_json_pretty()).unwrap();
        assert_eq!(back, report);
        // And the perturbed run is deterministic.
        assert_eq!(run(&spec).unwrap(), report);
    }

    #[test]
    fn empty_event_stream_is_bitwise_inert() {
        let plain = run(&lublin_spec(200).build()).unwrap();
        let with_default = run(&lublin_spec(200)
            .events(crate::platform::PlatformEventSpec::default())
            .build())
        .unwrap();
        assert_eq!(plain.to_json_pretty(), with_default.to_json_pretty());
    }

    #[test]
    fn perturbed_windows_runs_sum_counters_and_average_degradation() {
        let spec = lublin_spec(400)
            .windows(3, 64, 11)
            .events(outage(1_000.0, 200, 50_000.0))
            .build();
        let report = run(&spec).unwrap();
        let rob = report.robustness.as_ref().expect("robustness attached");
        assert!(rob.bsld_degradation.is_some());
        let trace = TracePreset::Lublin1.generate(400, 21);
        let windows = sample_windows(&trace, 3, 64, 11);
        assert_eq!(
            report.jobs + report.dropped_jobs,
            windows.iter().map(|w| w.len()).sum::<usize>()
        );
    }
}
