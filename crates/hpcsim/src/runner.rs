//! High-level one-call scheduling runs: trace × policy × backfilling.

use crate::cluster::{ClusterSpec, ReroutePolicy, Router, StaticAffinity};
use crate::conservative::conservative_pass;
use crate::easy::easy_pass;
use crate::estimator::RuntimeEstimator;
use crate::metrics::Metrics;
use crate::observe::Recorder;
use crate::policy::Policy;
use crate::state::{CompletedJob, ProbedSimulation, SimEvent, Simulation};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use swf::Trace;

/// A backfilling strategy selection for [`run_scheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Backfill {
    /// No backfilling: strict priority order (the pre-EASY baseline).
    None,
    /// EASY backfilling with the given runtime estimator. The paper's
    /// "EASY" columns use [`RuntimeEstimator::RequestTime`], the "EASY-AR"
    /// columns [`RuntimeEstimator::ActualRuntime`].
    Easy(RuntimeEstimator),
    /// EASY backfilling scanning candidates in an explicit policy order
    /// instead of the base policy's. `EasyOrdered(RequestTime, Sjf)` under
    /// an FCFS base is the paper's reward baseline (§3.4).
    EasyOrdered(RuntimeEstimator, Policy),
    /// Conservative backfilling with the given runtime estimator.
    Conservative(RuntimeEstimator),
}

impl Backfill {
    /// Label used in experiment tables.
    pub fn label(&self) -> String {
        match self {
            Backfill::None => "none".into(),
            Backfill::Easy(RuntimeEstimator::RequestTime) => "EASY".into(),
            Backfill::Easy(RuntimeEstimator::ActualRuntime) => "EASY-AR".into(),
            Backfill::Easy(e) => format!("EASY({})", e.label()),
            Backfill::EasyOrdered(e, p) => format!("EASY({}, {p}-order)", e.label()),
            Backfill::Conservative(e) => format!("CONS({})", e.label()),
        }
    }
}

/// The full outcome of a scheduling run.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    /// Every job with its realized start time, in completion order.
    pub completed: Vec<CompletedJob>,
    /// Aggregate quality metrics (over `completed` only — see
    /// `dropped_jobs`).
    pub metrics: Metrics,
    /// Trace jobs that fit no partition and were set aside before the run
    /// (always 0 on flat machines): `completed.len() + dropped_jobs`
    /// accounts for the whole trace.
    pub dropped_jobs: usize,
    /// Queue migrations performed (0 unless the run used
    /// [`ReroutePolicy::AtDecisionPoints`]).
    pub migrations: usize,
    /// Running jobs killed by platform events (0 without a
    /// [`crate::platform::PlatformEventSpec`]).
    pub kills: usize,
    /// Killed or displaced jobs rerouted back into a queue by platform
    /// events (0 without a platform-event stream).
    pub resubmits: usize,
    /// Work destroyed by platform-event kills, reference node-seconds.
    pub wasted_node_seconds: f64,
}

/// Schedules `trace` to completion under `policy` + `backfill` and returns
/// the realized schedule. Deterministic. Runs on the `desim` event kernel.
pub fn run_scheduler(trace: &Trace, policy: Policy, backfill: Backfill) -> ScheduleResult {
    let mut sim = Simulation::new(trace, policy);
    drive_to_completion(&mut sim, trace.cluster_procs(), backfill)
}

/// [`run_scheduler`] with a [`Recorder`] probe threaded through the run:
/// same schedule bitwise, plus the collected telemetry (counters,
/// histograms, and — if the recorder was built with
/// [`Recorder::with_spans`] — a span trace of the simulation phases).
pub fn run_scheduler_recorded(
    trace: &Trace,
    policy: Policy,
    backfill: Backfill,
    recorder: Recorder,
) -> (ScheduleResult, Recorder) {
    run_scheduler_on_rerouted_recorded(
        trace,
        policy,
        backfill,
        &ClusterSpec::homogeneous(trace.cluster_procs()),
        Arc::new(StaticAffinity), // simlint: allow(sync-audit) — Arc shares immutable scenario inputs (workload/spec/estimator); read-only after construction
        ReroutePolicy::AtSubmission,
        recorder,
    )
}

/// [`run_scheduler`] on an explicit cluster shape: `router` assigns each
/// arriving job to a partition of `spec`, and the backfilling heuristic
/// acts per-partition at every decision point. With
/// [`ClusterSpec::homogeneous`]`(trace.cluster_procs())` this realizes the
/// identical schedule as [`run_scheduler`] (pinned by the equivalence
/// suite), regardless of the router.
pub fn run_scheduler_on(
    trace: &Trace,
    policy: Policy,
    backfill: Backfill,
    spec: &ClusterSpec,
    router: Arc<dyn Router>, // simlint: allow(sync-audit) — Arc shares immutable scenario inputs (workload/spec/estimator); read-only after construction
) -> ScheduleResult {
    run_scheduler_on_rerouted(
        trace,
        policy,
        backfill,
        spec,
        router,
        ReroutePolicy::AtSubmission,
    )
}

/// [`run_scheduler_on`] under an explicit [`ReroutePolicy`]: with
/// [`ReroutePolicy::AtDecisionPoints`] the router revisits still-waiting
/// jobs at every settled event batch and migrates them to partitions with
/// strictly earlier estimated starts. `AtSubmission` is exactly
/// [`run_scheduler_on`] (bitwise).
pub fn run_scheduler_on_rerouted(
    trace: &Trace,
    policy: Policy,
    backfill: Backfill,
    spec: &ClusterSpec,
    router: Arc<dyn Router>, // simlint: allow(sync-audit) — Arc shares immutable scenario inputs (workload/spec/estimator); read-only after construction
    reroute: ReroutePolicy,
) -> ScheduleResult {
    let total = spec.total_procs();
    let mut sim = Simulation::with_cluster_rerouted(trace, policy, spec.clone(), router, reroute);
    drive_to_completion(&mut sim, total, backfill)
}

/// [`run_scheduler_on_rerouted`] with a [`Recorder`] probe — the fully
/// general recorded run every telemetry consumer funnels into.
#[allow(clippy::too_many_arguments)]
pub fn run_scheduler_on_rerouted_recorded(
    trace: &Trace,
    policy: Policy,
    backfill: Backfill,
    spec: &ClusterSpec,
    router: Arc<dyn Router>, // simlint: allow(sync-audit) — Arc shares immutable scenario inputs (workload/spec/estimator); read-only after construction
    reroute: ReroutePolicy,
    recorder: Recorder,
) -> (ScheduleResult, Recorder) {
    run_scheduler_on_rerouted_probed(trace, policy, backfill, spec, router, reroute, recorder)
}

/// [`run_scheduler_on_rerouted`] threaded through an arbitrary
/// [`crate::observe::Probe`] — the fully general instrumented run. With a
/// [`Recorder`] this is telemetry collection; with an
/// [`crate::observe::audit::AuditProbe`] it is decision forensics. The
/// realized schedule is bitwise identical to the unprobed run either way.
#[allow(clippy::too_many_arguments)]
pub fn run_scheduler_on_rerouted_probed<P: crate::observe::Probe>(
    trace: &Trace,
    policy: Policy,
    backfill: Backfill,
    spec: &ClusterSpec,
    router: Arc<dyn Router>, // simlint: allow(sync-audit) — Arc shares immutable scenario inputs (workload/spec/estimator); read-only after construction
    reroute: ReroutePolicy,
    probe: P,
) -> (ScheduleResult, P) {
    let total = spec.total_procs();
    let mut sim = ProbedSimulation::with_cluster_rerouted_probed(
        trace,
        policy,
        spec.clone(),
        router,
        reroute,
        probe,
    );
    let result = drive_to_completion(&mut sim, total, backfill);
    (result, sim.into_probe())
}

/// [`run_scheduler_on_rerouted_probed`] under a dynamic machine: `events`
/// is installed on the simulation before the drive, so node failures,
/// drains, and resizes fire alongside arrivals and completions. With an
/// empty [`crate::platform::PlatformEventSpec`] this is bitwise
/// [`run_scheduler_on_rerouted_probed`] (nothing is scheduled or checked).
/// Errors only on an invalid spec (bad rates, out-of-range partitions).
#[allow(clippy::too_many_arguments)]
pub fn run_scheduler_on_rerouted_probed_perturbed<P: crate::observe::Probe>(
    trace: &Trace,
    policy: Policy,
    backfill: Backfill,
    spec: &ClusterSpec,
    router: Arc<dyn Router>, // simlint: allow(sync-audit) — Arc shares immutable scenario inputs (workload/spec/estimator); read-only after construction
    reroute: ReroutePolicy,
    events: &crate::platform::PlatformEventSpec,
    probe: P,
) -> Result<(ScheduleResult, P), String> {
    let total = spec.total_procs();
    let mut sim = ProbedSimulation::with_cluster_rerouted_probed(
        trace,
        policy,
        spec.clone(),
        router,
        reroute,
        probe,
    );
    sim.install_platform_events(events)?;
    let result = drive_to_completion(&mut sim, total, backfill);
    Ok((result, sim.into_probe()))
}

/// [`run_scheduler`] on the preserved seed stepping engine
/// ([`crate::reference::ReferenceSimulation`]) — the differential-testing
/// oracle and the benchmark baseline. Same inputs, same schedule (pinned
/// by `tests/event_equivalence.rs`), linear-scan time advancement.
pub fn run_scheduler_reference(
    trace: &Trace,
    policy: Policy,
    backfill: Backfill,
) -> ScheduleResult {
    let mut sim = crate::reference::ReferenceSimulation::new(trace, policy);
    drive_to_completion(&mut sim, trace.cluster_procs(), backfill)
}

/// The shared driver loop: run any [`BackfillSim`] to completion, applying
/// the selected heuristic at every decision point.
fn drive_to_completion<S: crate::state::BackfillSim>(
    sim: &mut S,
    cluster_procs: u32,
    backfill: Backfill,
) -> ScheduleResult {
    while sim.advance() == SimEvent::BackfillOpportunity {
        match backfill {
            Backfill::None => {}
            Backfill::Easy(est) => {
                easy_pass(sim, est);
            }
            Backfill::EasyOrdered(est, order) => {
                crate::easy::easy_pass_with_order(sim, est, order);
            }
            Backfill::Conservative(est) => {
                conservative_pass(sim, est);
            }
        }
    }
    let metrics = Metrics::of(sim.completed(), cluster_procs);
    ScheduleResult {
        completed: sim.completed().to_vec(),
        metrics,
        dropped_jobs: sim.dropped_jobs(),
        migrations: sim.migrations(),
        kills: sim.kills(),
        resubmits: sim.resubmits(),
        wasted_node_seconds: sim.wasted_node_seconds(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf::TracePreset;

    #[test]
    fn all_strategies_schedule_every_job() {
        let trace = TracePreset::Lublin1.generate(300, 21);
        for backfill in [
            Backfill::None,
            Backfill::Easy(RuntimeEstimator::RequestTime),
            Backfill::Easy(RuntimeEstimator::ActualRuntime),
            Backfill::Conservative(RuntimeEstimator::RequestTime),
        ] {
            for policy in Policy::ALL {
                let r = run_scheduler(&trace, policy, backfill);
                assert_eq!(r.completed.len(), trace.len(), "{policy} {backfill:?}");
            }
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let trace = TracePreset::SdscSp2.generate(300, 22);
        let a = run_scheduler(
            &trace,
            Policy::Fcfs,
            Backfill::Easy(RuntimeEstimator::RequestTime),
        );
        let b = run_scheduler(
            &trace,
            Policy::Fcfs,
            Backfill::Easy(RuntimeEstimator::RequestTime),
        );
        assert_eq!(a.completed, b.completed);
    }

    #[test]
    fn easy_ar_differs_from_easy_on_overestimated_traces() {
        // On a trace with real overestimation the two estimators must
        // produce different schedules (this is the premise of the paper).
        let trace = TracePreset::SdscSp2.generate(800, 23);
        let easy = run_scheduler(
            &trace,
            Policy::Fcfs,
            Backfill::Easy(RuntimeEstimator::RequestTime),
        );
        let ar = run_scheduler(
            &trace,
            Policy::Fcfs,
            Backfill::Easy(RuntimeEstimator::ActualRuntime),
        );
        assert_ne!(
            easy.metrics.mean_bounded_slowdown,
            ar.metrics.mean_bounded_slowdown
        );
    }

    #[test]
    fn labels_are_paper_style() {
        assert_eq!(
            Backfill::Easy(RuntimeEstimator::RequestTime).label(),
            "EASY"
        );
        assert_eq!(
            Backfill::Easy(RuntimeEstimator::ActualRuntime).label(),
            "EASY-AR"
        );
        let noisy = Backfill::Easy(RuntimeEstimator::NoisyActual {
            max_over_frac: 0.2,
            seed: 0,
        });
        assert_eq!(noisy.label(), "EASY(+20%)");
    }
}
