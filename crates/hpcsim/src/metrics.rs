//! Scheduling-quality metrics.
//!
//! The paper's headline metric is the **average bounded job slowdown**
//! (`bsld`, Feitelson & Rudolph 1998) with a 10-second interactive
//! threshold; we also report the auxiliary metrics commonly used alongside
//! it (wait, turnaround, utilization) for the extended experiments.

use crate::state::CompletedJob;
use serde::{Deserialize, Serialize};
use swf::job::BSLD_BOUND_SECS;

/// Aggregate metrics over one simulated schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Number of completed jobs.
    pub jobs: usize,
    /// Average bounded slowdown (the paper's `bsld`).
    pub mean_bounded_slowdown: f64,
    /// Average plain slowdown.
    pub mean_slowdown: f64,
    /// Average queue wait, seconds.
    pub mean_wait: f64,
    /// Maximum queue wait, seconds.
    pub max_wait: f64,
    /// Average turnaround (wait + runtime), seconds.
    pub mean_turnaround: f64,
    /// Machine utilization over the schedule's makespan: busy
    /// processor-seconds divided by `cluster × makespan`.
    pub utilization: f64,
    /// Time from first submission to last completion, seconds.
    pub makespan: f64,
}

impl Metrics {
    /// Computes metrics over completed jobs on a cluster of `cluster_procs`.
    pub fn of(completed: &[CompletedJob], cluster_procs: u32) -> Self {
        let n = completed.len();
        if n == 0 {
            return Self {
                jobs: 0,
                mean_bounded_slowdown: 0.0,
                mean_slowdown: 0.0,
                mean_wait: 0.0,
                max_wait: 0.0,
                mean_turnaround: 0.0,
                utilization: 0.0,
                makespan: 0.0,
            };
        }
        let mut bsld = 0.0;
        let mut sld = 0.0;
        let mut wait = 0.0;
        let mut max_wait: f64 = 0.0;
        let mut turnaround = 0.0;
        let mut busy = 0.0;
        let mut first_submit = f64::INFINITY;
        let mut last_end = f64::NEG_INFINITY;
        for c in completed {
            bsld += c.job.bounded_slowdown(c.start, BSLD_BOUND_SECS);
            sld += c.job.slowdown(c.start);
            let w = c.wait();
            wait += w;
            max_wait = max_wait.max(w);
            turnaround += w + c.job.runtime;
            busy += c.job.procs as f64 * c.job.runtime;
            first_submit = first_submit.min(c.job.submit);
            last_end = last_end.max(c.end());
        }
        let nf = n as f64;
        let makespan = (last_end - first_submit).max(0.0);
        Self {
            jobs: n,
            mean_bounded_slowdown: bsld / nf,
            mean_slowdown: sld / nf,
            mean_wait: wait / nf,
            max_wait,
            mean_turnaround: turnaround / nf,
            utilization: if makespan > 0.0 {
                busy / (cluster_procs as f64 * makespan)
            } else {
                0.0
            },
            makespan,
        }
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bsld={:.2} wait={:.0}s util={:.1}% jobs={}",
            self.mean_bounded_slowdown,
            self.mean_wait,
            self.utilization * 100.0,
            self.jobs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf::Job;

    fn completed(job: Job, start: f64) -> CompletedJob {
        CompletedJob { job, start }
    }

    #[test]
    fn empty_schedule_is_all_zero() {
        let m = Metrics::of(&[], 16);
        assert_eq!(m.jobs, 0);
        assert_eq!(m.mean_bounded_slowdown, 0.0);
    }

    #[test]
    fn metrics_match_hand_computation() {
        let jobs = [
            completed(Job::new(0, 0.0, 2, 100.0, 100.0), 0.0), // bsld 1, wait 0
            completed(Job::new(1, 0.0, 2, 100.0, 100.0), 100.0), // bsld 2, wait 100
        ];
        let m = Metrics::of(&jobs, 2);
        assert!((m.mean_bounded_slowdown - 1.5).abs() < 1e-12);
        assert!((m.mean_wait - 50.0).abs() < 1e-12);
        assert_eq!(m.max_wait, 100.0);
        assert!((m.mean_turnaround - 150.0).abs() < 1e-12);
        // busy = 2*100 + 2*100 = 400; makespan 200; cluster 2 -> util 1.0
        assert!((m.utilization - 1.0).abs() < 1e-12);
        assert_eq!(m.makespan, 200.0);
    }

    #[test]
    fn bounded_slowdown_uses_ten_second_bound() {
        // 1-second job waiting 99s: bsld contribution 10, not 100.
        let jobs = [completed(Job::new(0, 0.0, 1, 1.0, 1.0), 99.0)];
        let m = Metrics::of(&jobs, 1);
        assert!((m.mean_bounded_slowdown - 10.0).abs() < 1e-12);
        assert!((m.mean_slowdown - 100.0).abs() < 1e-12);
    }
}
