//! Resource-availability profiles over future time.
//!
//! A profile answers "how many processors will be free at time t, given the
//! currently running jobs (under some runtime estimate) and any future
//! reservations already granted?". It is the planning structure behind both
//! EASY (computing the reserved job's shadow time) and conservative
//! backfilling (granting every queued job a reservation).

/// A piecewise-constant availability timeline starting at `now`.
///
/// Internally a sorted list of `(time, delta)` events over a baseline of
/// `free` processors; queries assemble prefix sums on demand. Queue depths
/// in HPC scheduling are small (≤ a few hundred), so the O(n²) worst case
/// of the fit search is irrelevant in practice.
#[derive(Debug, Clone)]
pub struct AvailabilityProfile {
    now: f64,
    free: i64,
    /// `(time, processor delta)`; positive = release, negative = claim.
    events: Vec<(f64, i64)>,
}

impl AvailabilityProfile {
    /// A profile with `free` processors available from `now` on.
    pub fn new(now: f64, free: u32) -> Self {
        Self {
            now,
            free: free as i64,
            events: Vec::new(),
        }
    }

    /// Records that `procs` processors are released at `time` (a running
    /// job's estimated completion).
    pub fn add_release(&mut self, time: f64, procs: u32) {
        self.events.push((time.max(self.now), procs as i64));
    }

    /// Records a planned occupation of `procs` processors on
    /// `[start, end)` (a granted reservation).
    pub fn add_usage(&mut self, start: f64, end: f64, procs: u32) {
        let start = start.max(self.now);
        if end <= start {
            return;
        }
        self.events.push((start, -(procs as i64)));
        self.events.push((end, procs as i64));
    }

    /// Availability just after `time` (events at exactly `time` included).
    pub fn avail_at(&self, time: f64) -> i64 {
        let mut avail = self.free;
        for &(t, d) in &self.events {
            if t <= time {
                avail += d;
            }
        }
        avail
    }

    /// The earliest time ≥ `not_before` at which `procs` processors are
    /// continuously available for `duration` seconds.
    ///
    /// Candidate start times are `not_before` itself and every event time
    /// after it; between events availability is constant, so these are the
    /// only minima. Returns `f64::INFINITY` if the demand can never be met
    /// (caller bug: demand exceeds the cluster).
    pub fn earliest_fit(&self, procs: u32, duration: f64, not_before: f64) -> f64 {
        let not_before = not_before.max(self.now);
        let mut times: Vec<f64> = self
            .events
            .iter()
            .map(|&(t, _)| t)
            .filter(|&t| t > not_before)
            .collect();
        times.push(not_before);
        times.sort_by(f64::total_cmp);
        times.dedup();

        'candidate: for &start in &times {
            if self.avail_at(start) < procs as i64 {
                continue;
            }
            let end = start + duration;
            for &(t, _) in &self.events {
                if t > start && t < end && self.avail_at(t) < procs as i64 {
                    continue 'candidate;
                }
            }
            return start;
        }
        f64::INFINITY
    }

    /// The earliest time ≥ `now` at which `procs` processors are available
    /// (ignoring how long they stay available) — the EASY *shadow time* for
    /// the reserved job when the profile only contains releases.
    pub fn earliest_avail(&self, procs: u32) -> f64 {
        self.earliest_fit(procs, 0.0, self.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_profile_is_constant() {
        let p = AvailabilityProfile::new(10.0, 8);
        assert_eq!(p.avail_at(10.0), 8);
        assert_eq!(p.avail_at(1e9), 8);
        assert_eq!(p.earliest_fit(8, 100.0, 10.0), 10.0);
        assert_eq!(p.earliest_fit(9, 100.0, 10.0), f64::INFINITY);
    }

    #[test]
    fn releases_accumulate() {
        let mut p = AvailabilityProfile::new(0.0, 2);
        p.add_release(100.0, 4);
        p.add_release(200.0, 2);
        assert_eq!(p.avail_at(0.0), 2);
        assert_eq!(p.avail_at(100.0), 6);
        assert_eq!(p.avail_at(250.0), 8);
        assert_eq!(p.earliest_avail(6), 100.0);
        assert_eq!(p.earliest_avail(7), 200.0);
    }

    #[test]
    fn usage_blocks_an_interval() {
        let mut p = AvailabilityProfile::new(0.0, 8);
        p.add_usage(50.0, 150.0, 6);
        // 4 procs for 100s: fits immediately only if it ends by t=50.
        assert_eq!(p.earliest_fit(4, 40.0, 0.0), 0.0);
        assert_eq!(p.earliest_fit(4, 100.0, 0.0), 150.0);
        // 2 procs fit through the blocked window.
        assert_eq!(p.earliest_fit(2, 1000.0, 0.0), 0.0);
    }

    #[test]
    fn fit_respects_not_before() {
        let p = AvailabilityProfile::new(0.0, 8);
        assert_eq!(p.earliest_fit(4, 10.0, 500.0), 500.0);
    }

    #[test]
    fn usage_before_now_is_clamped() {
        let mut p = AvailabilityProfile::new(100.0, 4);
        p.add_usage(0.0, 200.0, 2);
        assert_eq!(p.avail_at(100.0), 2);
        assert_eq!(p.avail_at(200.0), 4);
    }

    #[test]
    fn zero_length_usage_is_ignored() {
        let mut p = AvailabilityProfile::new(0.0, 4);
        p.add_usage(10.0, 10.0, 4);
        assert_eq!(p.avail_at(10.0), 4);
    }

    #[test]
    fn reservation_chain_stacks_correctly() {
        // Conservative-backfilling shape: running job releases at t=100,
        // a reservation claims [100, 200), a second fit must land at 200.
        let mut p = AvailabilityProfile::new(0.0, 0);
        p.add_release(100.0, 4);
        p.add_usage(100.0, 200.0, 4);
        assert_eq!(p.earliest_fit(4, 50.0, 0.0), 200.0);
    }
}
