//! Resource-availability profiles over future time.
//!
//! A profile answers "how many processors will be free at time t, given the
//! currently running jobs (under some runtime estimate) and any future
//! reservations already granted?". It is the planning structure behind both
//! EASY (computing the reserved job's shadow time) and conservative
//! backfilling (granting every queued job a reservation).
//!
//! # Representation
//!
//! The seed implementation kept an unsorted `(time, delta)` list and
//! answered every query by re-summing it; PR 1 replaced it with a sorted
//! `Vec` of edges carrying a running prefix availability — `O(log n)`
//! point queries, but `O(n)` per insert (memmove plus a suffix update of
//! every later edge's stored availability) and an `O(n)` shortfall sweep
//! per `earliest_fit`, which kept a conservative pass quadratic in queue
//! depth.
//!
//! This version is an **edge timeline**: edges live in time-ordered
//! buckets of bounded width, each bucket carrying its delta sum and the
//! min/max of its internal prefix availability. That turns every
//! operation into "locate bucket + touch one bucket + scan bucket
//! summaries":
//!
//! * insert/remove — `O(log n)` bucket location plus an `O(B)` rewrite of
//!   one bucket (`B` = bucket width, a constant), with occasional bucket
//!   splits; no suffix updates ever;
//! * [`AvailabilityProfile::avail_at`] — one pass over bucket summaries
//!   plus a binary search in the boundary bucket;
//! * [`AvailabilityProfile::earliest_fit`] — a candidate/shortfall cursor
//!   walk that **skips whole buckets** whose prefix-availability range
//!   rules them out, instead of materializing a shortfall list per query.
//!
//! Edges are **reference-counted**: profiles now support exact removal
//! ([`AvailabilityProfile::remove_release`] /
//! [`AvailabilityProfile::remove_usage`]) so a long-lived profile can be
//! maintained incrementally as jobs start, finish and migrate (see
//! `crate::plan`), instead of being rebuilt from the running set at every
//! decision point. A merged edge whose contributions all went away is
//! dropped outright (it must stop being an `earliest_fit` candidate); a
//! merged edge that still has live contributions survives even when its
//! net delta is zero — exactly the edge set a from-scratch rebuild over
//! the live contributions would produce.
//!
//! Query *semantics* are identical to the seed (same candidate instants,
//! same strict/inclusive comparisons, same float arithmetic), which the
//! differential property suite (`tests/proptest_profile.rs`, pinning this
//! implementation against a retained naive reference) and the equivalence
//! suite pin down.

use crate::observe::ProfileStats;
use std::cell::RefCell;

/// Target bucket width. Buckets split once they reach `2 * BUCKET_WIDTH`
/// edges; they are never re-merged (a bucket that empties is removed).
const BUCKET_WIDTH: usize = 64;

/// A piecewise-constant availability timeline starting at `now`.
///
/// Internally a bucketed, time-sorted list of merged
/// `(time, delta, refs)` edges over a baseline of `free` processors.
/// Deltas are integers, so availability values are exact (no float
/// accumulation error) and independent of insertion order.
#[derive(Debug, Clone)]
pub struct AvailabilityProfile {
    now: f64,
    free: i64,
    /// Non-empty buckets, globally sorted by time.
    buckets: Vec<Bucket>,
    /// Retired edge storage, reused when a new bucket is needed — the
    /// allocation-reuse half of `reset`.
    spare: Vec<Edge>,
    /// Passive operation counters (see [`crate::observe`]). `RefCell`
    /// because `earliest_fit` takes `&self`; mutating paths use
    /// `get_mut`, so only queries pay a borrow flag.
    stats: RefCell<ProfileStats>, // simlint: allow(sync-audit) — single-threaded stats counters; become per-worker counters after the split
}

#[derive(Debug, Clone, Copy)]
struct Edge {
    time: f64,
    /// Net delta of all live contributions merged at this time.
    delta: i64,
    /// Prefix sum of deltas within the bucket, up to and including this
    /// edge. Availability at this edge = baseline + sum of earlier
    /// buckets' `sum` + `prefix`.
    prefix: i64,
    /// Live contributions merged at this time; the edge is dropped when
    /// it reaches zero.
    refs: u32,
}

#[derive(Debug, Clone, Default)]
struct Bucket {
    edges: Vec<Edge>,
    /// Sum of all deltas in this bucket.
    sum: i64,
    /// Minimum of `prefix` over the bucket's edges.
    min_prefix: i64,
    /// Maximum of `prefix` over the bucket's edges.
    max_prefix: i64,
}

impl Bucket {
    /// Recomputes `prefix` for every edge and the bucket summaries.
    fn refresh(&mut self) {
        let mut sum = 0;
        let mut min = i64::MAX;
        let mut max = i64::MIN;
        for e in &mut self.edges {
            sum += e.delta;
            e.prefix = sum;
            min = min.min(sum);
            max = max.max(sum);
        }
        self.sum = sum;
        self.min_prefix = min;
        self.max_prefix = max;
    }

    fn last_time(&self) -> f64 {
        self.edges.last().expect("buckets are never empty").time // simlint: allow(panic-path) — a profile always carries its terminal edge; empty means construction broke
    }
}

impl AvailabilityProfile {
    /// A profile with `free` processors available from `now` on.
    pub fn new(now: f64, free: u32) -> Self {
        Self {
            now,
            free: free as i64,
            buckets: Vec::new(), // simlint: allow(hot-alloc) — Vec::new allocates nothing; the buffer grows once and is reused
            spare: Vec::new(), // simlint: allow(hot-alloc) — Vec::new allocates nothing; the buffer grows once and is reused
            stats: RefCell::new(ProfileStats::default()), // simlint: allow(sync-audit) — single-threaded stats counters; become per-worker counters after the split
        }
    }

    /// A snapshot of the profile's passive operation counters. `reset`
    /// keeps them cumulative (a reused scratch profile reports its whole
    /// history); [`AvailabilityProfile::clear_stats`] zeroes them.
    pub fn stats(&self) -> ProfileStats {
        self.stats.borrow().clone() // simlint: allow(hot-alloc) — stats snapshot is probe-gated diagnostics, not the scheduling path
    }

    /// Zeroes the passive counters — called when a profile is cloned into
    /// a new role so the clone does not re-report its source's history.
    pub fn clear_stats(&mut self) {
        self.stats.get_mut().clear();
    }

    /// Empties the profile and rebases it at `now` with `free` baseline
    /// processors, keeping one bucket's allocation for reuse — the
    /// scratch-buffer path of the router's per-batch plan cache.
    pub fn reset(&mut self, now: f64, free: u32) {
        self.now = now;
        self.free = free as i64;
        if let Some(mut b) = self.buckets.pop() {
            b.edges.clear();
            self.spare = b.edges;
        }
        self.buckets.clear();
    }

    /// A fresh bucket backed by the spare allocation when available.
    fn fresh_bucket(&mut self) -> Bucket {
        let mut edges = std::mem::take(&mut self.spare);
        edges.clear();
        Bucket {
            edges,
            ..Bucket::default()
        }
    }

    /// The profile's time origin.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Moves the time origin forward without touching the edges. Edges
    /// now in the past keep contributing to availability at every
    /// queryable instant and stop being `earliest_fit` candidates —
    /// exactly the behavior of a from-scratch rebuild that clamps them
    /// to `now` (pinned by the differential property suite).
    pub fn advance_to(&mut self, now: f64) {
        debug_assert!(now >= self.now, "profiles only move forward in time");
        self.now = now;
    }

    /// Adjusts the baseline free-processor count by `delta` — how a
    /// persistent profile tracks jobs claiming and releasing processors
    /// *now* (future edges describe everything else).
    pub fn shift_baseline(&mut self, delta: i64) {
        self.free += delta;
    }

    /// The baseline free-processor count (availability before any edge).
    pub fn baseline(&self) -> i64 {
        self.free
    }

    /// Number of live (merged) edges.
    pub fn edge_count(&self) -> usize {
        self.buckets.iter().map(|b| b.edges.len()).sum()
    }

    /// The merged `(time, delta)` edges in time order — exposed for the
    /// differential tests and the planner's debug oracle.
    pub fn edges(&self) -> impl Iterator<Item = (f64, i64)> + '_ {
        self.buckets
            .iter()
            .flat_map(|b| b.edges.iter().map(|e| (e.time, e.delta)))
    }

    /// Records that `procs` processors are released at `time` (a running
    /// job's estimated completion). Times before `now` are clamped.
    pub fn add_release(&mut self, time: f64, procs: u32) {
        self.insert_contrib(time.max(self.now), procs as i64);
    }

    /// Records a release at exactly `time` without clamping to `now` — the
    /// persistent-planner insertion path: its removal recomputes the same
    /// time from the same operands and must match the stored edge bitwise
    /// even after the clock has passed it. Un-clamped past edges are
    /// query-equivalent to clamped ones for every `not_before ≥ now`.
    pub(crate) fn add_release_raw(&mut self, time: f64, procs: u32) {
        self.insert_contrib(time, procs as i64);
    }

    /// Retracts a release previously recorded at exactly `time` (bitwise)
    /// — the removal a persistent profile applies when the job actually
    /// finishes. The caller must pass the post-clamp time it was added at.
    pub fn remove_release(&mut self, time: f64, procs: u32) {
        self.remove_contrib(time, procs as i64);
    }

    /// Records a planned occupation of `procs` processors on
    /// `[start, end)` (a granted reservation).
    pub fn add_usage(&mut self, start: f64, end: f64, procs: u32) {
        let start = start.max(self.now);
        if end <= start {
            return;
        }
        self.insert_contrib(start, -(procs as i64));
        self.insert_contrib(end, procs as i64);
    }

    /// Retracts a usage previously recorded with exactly these (bitwise)
    /// post-clamp bounds — how a retired or invalidated reservation
    /// leaves a persistent plan profile.
    pub fn remove_usage(&mut self, start: f64, end: f64, procs: u32) {
        if end <= start {
            return;
        }
        self.remove_contrib(start, -(procs as i64));
        self.remove_contrib(end, procs as i64);
    }

    /// Index of the bucket an edge at `time` belongs in: the first bucket
    /// whose last edge is not before `time`, or the last bucket.
    fn bucket_for(&self, time: f64) -> usize {
        let idx = self
            .buckets
            .partition_point(|b| b.last_time().total_cmp(&time).is_lt());
        idx.min(self.buckets.len().saturating_sub(1))
    }

    /// Merges one contribution into the timeline.
    fn insert_contrib(&mut self, time: f64, delta: i64) {
        self.stats.get_mut().edge_inserts += 1;
        if self.buckets.is_empty() {
            let mut b = self.fresh_bucket();
            b.edges.push(Edge {
                time,
                delta,
                prefix: 0,
                refs: 1,
            });
            b.refresh();
            self.buckets.push(b);
            return;
        }
        let bi = self.bucket_for(time);
        let bucket = &mut self.buckets[bi]; // simlint: allow(panic-path) — bucket/edge indices come from this profile's own binary search; in-bounds by construction
        let idx = bucket
            .edges
            .partition_point(|e| e.time.total_cmp(&time).is_lt());
        if bucket.edges.get(idx).is_some_and(|e| e.time == time) {
            bucket.edges[idx].delta += delta; // simlint: allow(panic-path) — bucket/edge indices come from this profile's own binary search; in-bounds by construction
            bucket.edges[idx].refs += 1; // simlint: allow(panic-path) — bucket/edge indices come from this profile's own binary search; in-bounds by construction
        } else {
            bucket.edges.insert(
                idx,
                Edge {
                    time,
                    delta,
                    prefix: 0,
                    refs: 1,
                },
            );
        }
        bucket.refresh();
        if bucket.edges.len() >= 2 * BUCKET_WIDTH {
            let tail = bucket.edges.split_off(BUCKET_WIDTH);
            bucket.refresh();
            let mut next = Bucket {
                edges: tail,
                ..Bucket::default()
            };
            next.refresh();
            self.buckets.insert(bi + 1, next);
        }
    }

    /// Retracts one contribution; the matching edge must exist at exactly
    /// `time`. Edges with no remaining contributions are dropped (they
    /// must stop being fit candidates), empty buckets with them.
    fn remove_contrib(&mut self, time: f64, delta: i64) {
        self.stats.get_mut().edge_removes += 1;
        debug_assert!(!self.buckets.is_empty(), "removal from an empty profile");
        let bi = self.bucket_for(time);
        let bucket = &mut self.buckets[bi]; // simlint: allow(panic-path) — bucket/edge indices come from this profile's own binary search; in-bounds by construction
        let idx = bucket
            .edges
            .partition_point(|e| e.time.total_cmp(&time).is_lt());
        let Some(e) = bucket.edges.get_mut(idx).filter(|e| e.time == time) else {
            debug_assert!(false, "no edge at t={time} to remove");
            return;
        };
        e.delta -= delta;
        e.refs -= 1;
        if e.refs == 0 {
            debug_assert_eq!(e.delta, 0, "contribution accounting out of sync");
            bucket.edges.remove(idx);
        }
        if bucket.edges.is_empty() {
            let b = self.buckets.remove(bi);
            self.spare = b.edges;
        } else {
            bucket.refresh();
        }
    }

    /// Availability just after `time` (edges at exactly `time` included).
    pub fn avail_at(&self, time: f64) -> i64 {
        let mut base = self.free;
        for b in &self.buckets {
            if b.last_time().total_cmp(&time).is_le() {
                base += b.sum;
                continue;
            }
            let idx = b.edges.partition_point(|e| e.time.total_cmp(&time).is_le());
            if idx > 0 {
                base += b.edges[idx - 1].prefix; // simlint: allow(panic-path) — bucket/edge indices come from this profile's own binary search; in-bounds by construction
            }
            return base;
        }
        base
    }

    /// First edge strictly after `lower` whose availability meets
    /// `demand`, with that availability — the next `earliest_fit`
    /// candidate. Skips whole buckets whose availability range stays
    /// below demand.
    ///
    /// Like [`Self::avail_at`], each call accumulates `base` by walking
    /// the bucket summaries from the front — a tight scan over ~n/64
    /// two-word structs, deliberately preferred over maintaining global
    /// cumulative sums (which would put the suffix update back into
    /// every insert). A fit blocked by many shortfalls repeats that
    /// summary walk per shortfall; if that ever shows up in profiles,
    /// resume the walk from the previous bucket index instead.
    fn next_candidate_after(&self, lower: f64, demand: i64, steps: &mut u64) -> Option<f64> {
        let mut base = self.free;
        for b in &self.buckets {
            *steps += 1;
            if b.last_time().total_cmp(&lower).is_le() {
                base += b.sum;
                continue;
            }
            if base + b.max_prefix >= demand {
                let idx = b
                    .edges
                    .partition_point(|e| e.time.total_cmp(&lower).is_le());
                // simlint: allow(panic-path) — bucket/edge indices come from this profile's own binary search; in-bounds by construction
                for e in &b.edges[idx..] {
                    if base + e.prefix >= demand {
                        return Some(e.time);
                    }
                }
            }
            base += b.sum;
        }
        None
    }

    /// First edge strictly after `lower` whose availability falls below
    /// `demand` — the next shortfall that can block a fit window. Skips
    /// whole buckets whose availability range stays at or above demand.
    fn next_shortfall_after(&self, lower: f64, demand: i64, steps: &mut u64) -> Option<f64> {
        let mut base = self.free;
        for b in &self.buckets {
            *steps += 1;
            if b.last_time().total_cmp(&lower).is_le() {
                base += b.sum;
                continue;
            }
            if base + b.min_prefix < demand {
                let idx = b
                    .edges
                    .partition_point(|e| e.time.total_cmp(&lower).is_le());
                // simlint: allow(panic-path) — bucket/edge indices come from this profile's own binary search; in-bounds by construction
                for e in &b.edges[idx..] {
                    if base + e.prefix < demand {
                        return Some(e.time);
                    }
                }
            }
            base += b.sum;
        }
        None
    }

    /// The earliest time ≥ `not_before` at which `procs` processors are
    /// continuously available for `duration` seconds.
    ///
    /// Candidate start times are `not_before` itself and every edge time
    /// after it; between edges availability is constant, so these are the
    /// only minima. A candidate is feasible when availability at the start
    /// is sufficient and no *shortfall edge* (availability below demand)
    /// lies strictly inside `(start, start + duration)`. Returns
    /// `f64::INFINITY` if the demand can never be met (caller bug: demand
    /// exceeds the cluster).
    ///
    /// The walk advances two implicit cursors: a blocked candidate jumps
    /// the search past the shortfall that blocked it (every candidate in
    /// between is provably blocked by the same shortfall), so each query
    /// touches a bucket's interior at most once per blocking shortfall.
    pub fn earliest_fit(&self, procs: u32, duration: f64, not_before: f64) -> f64 {
        let not_before = not_before.max(self.now);
        let demand = procs as i64;

        let mut steps = 0u64;
        let mut cand = Some(not_before).filter(|&c| self.avail_at(c) >= demand);
        let mut lower = not_before;
        let fit = loop {
            let c = match cand.take() {
                Some(c) => c,
                None => match self.next_candidate_after(lower, demand, &mut steps) {
                    Some(c) => c,
                    None => break f64::INFINITY,
                },
            };
            match self.next_shortfall_after(c, demand, &mut steps) {
                None => break c,
                Some(s) if s >= c + duration => break c,
                Some(s) => lower = s,
            }
        };
        let mut stats = self.stats.borrow_mut();
        stats.fit_calls += 1;
        stats.buckets_scanned += steps;
        stats.scan_hist.record(steps);
        fit
    }

    /// The earliest time ≥ `now` at which `procs` processors are available
    /// (ignoring how long they stay available) — the EASY *shadow time* for
    /// the reserved job when the profile only contains releases.
    pub fn earliest_avail(&self, procs: u32) -> f64 {
        self.earliest_fit(procs, 0.0, self.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_profile_is_constant() {
        let p = AvailabilityProfile::new(10.0, 8);
        assert_eq!(p.avail_at(10.0), 8);
        assert_eq!(p.avail_at(1e9), 8);
        assert_eq!(p.earliest_fit(8, 100.0, 10.0), 10.0);
        assert_eq!(p.earliest_fit(9, 100.0, 10.0), f64::INFINITY);
    }

    #[test]
    fn releases_accumulate() {
        let mut p = AvailabilityProfile::new(0.0, 2);
        p.add_release(100.0, 4);
        p.add_release(200.0, 2);
        assert_eq!(p.avail_at(0.0), 2);
        assert_eq!(p.avail_at(100.0), 6);
        assert_eq!(p.avail_at(250.0), 8);
        assert_eq!(p.earliest_avail(6), 100.0);
        assert_eq!(p.earliest_avail(7), 200.0);
    }

    #[test]
    fn usage_blocks_an_interval() {
        let mut p = AvailabilityProfile::new(0.0, 8);
        p.add_usage(50.0, 150.0, 6);
        // 4 procs for 100s: fits immediately only if it ends by t=50.
        assert_eq!(p.earliest_fit(4, 40.0, 0.0), 0.0);
        assert_eq!(p.earliest_fit(4, 100.0, 0.0), 150.0);
        // 2 procs fit through the blocked window.
        assert_eq!(p.earliest_fit(2, 1000.0, 0.0), 0.0);
    }

    #[test]
    fn fit_respects_not_before() {
        let p = AvailabilityProfile::new(0.0, 8);
        assert_eq!(p.earliest_fit(4, 10.0, 500.0), 500.0);
    }

    #[test]
    fn usage_before_now_is_clamped() {
        let mut p = AvailabilityProfile::new(100.0, 4);
        p.add_usage(0.0, 200.0, 2);
        assert_eq!(p.avail_at(100.0), 2);
        assert_eq!(p.avail_at(200.0), 4);
    }

    #[test]
    fn zero_length_usage_is_ignored() {
        let mut p = AvailabilityProfile::new(0.0, 4);
        p.add_usage(10.0, 10.0, 4);
        assert_eq!(p.avail_at(10.0), 4);
        p.remove_usage(10.0, 10.0, 4);
        assert_eq!(p.edge_count(), 0);
    }

    #[test]
    fn reservation_chain_stacks_correctly() {
        // Conservative-backfilling shape: running job releases at t=100,
        // a reservation claims [100, 200), a second fit must land at 200.
        let mut p = AvailabilityProfile::new(0.0, 0);
        p.add_release(100.0, 4);
        p.add_usage(100.0, 200.0, 4);
        assert_eq!(p.earliest_fit(4, 50.0, 0.0), 200.0);
    }

    #[test]
    fn merged_edges_keep_their_breakpoint() {
        // A release and a usage-start at the same instant net to zero, but
        // the instant must remain a candidate/checkpoint time.
        let mut p = AvailabilityProfile::new(0.0, 4);
        p.add_release(100.0, 4);
        p.add_usage(100.0, 200.0, 4);
        assert_eq!(p.avail_at(100.0), 4);
        assert_eq!(p.avail_at(150.0), 4);
        assert_eq!(p.earliest_fit(8, 10.0, 0.0), 200.0);
    }

    #[test]
    fn interleaved_inserts_match_batch_semantics() {
        // Insert edges out of time order; the sorted timeline must agree
        // with a brute-force sum at every probe point.
        let spec: &[(f64, f64, u32)] = &[
            (300.0, 500.0, 3),
            (100.0, 400.0, 2),
            (50.0, 350.0, 1),
            (400.0, 410.0, 6),
        ];
        let mut p = AvailabilityProfile::new(0.0, 8);
        for &(s, e, c) in spec {
            p.add_usage(s, e, c);
        }
        let brute = |t: f64| -> i64 {
            8 - spec
                .iter()
                .filter(|&&(s, e, _)| s <= t && t < e)
                .map(|&(_, _, c)| c as i64)
                .sum::<i64>()
        };
        for t in [
            0.0, 50.0, 99.9, 100.0, 300.0, 349.0, 350.0, 400.0, 409.0, 410.0, 500.0,
        ] {
            assert_eq!(p.avail_at(t), brute(t), "at t={t}");
        }
    }

    #[test]
    fn removal_undoes_addition_exactly() {
        let mut p = AvailabilityProfile::new(0.0, 8);
        p.add_release(100.0, 4);
        p.add_usage(50.0, 150.0, 6);
        p.add_usage(50.0, 150.0, 2);
        p.remove_usage(50.0, 150.0, 6);
        assert_eq!(p.avail_at(50.0), 6);
        assert_eq!(p.avail_at(100.0), 10);
        p.remove_usage(50.0, 150.0, 2);
        p.remove_release(100.0, 4);
        assert_eq!(p.edge_count(), 0);
        for t in [0.0, 50.0, 100.0, 150.0] {
            assert_eq!(p.avail_at(t), 8, "at t={t}");
        }
    }

    #[test]
    fn removal_keeps_surviving_breakpoints() {
        // Release +4 and usage-start -4 merge to a zero-delta edge at
        // t=100. Removing the usage must leave the release's breakpoint;
        // removing the release too must drop the edge entirely.
        let mut p = AvailabilityProfile::new(0.0, 4);
        p.add_release(100.0, 4);
        p.add_usage(100.0, 200.0, 4);
        p.remove_usage(100.0, 200.0, 4);
        assert_eq!(p.avail_at(100.0), 8);
        assert_eq!(p.edge_count(), 1);
        p.remove_release(100.0, 4);
        assert_eq!(p.edge_count(), 0);
    }

    #[test]
    fn stale_edges_behave_like_a_clamped_rebuild() {
        // A release inserted in the future, then the clock moves past it:
        // queries at or after the new `now` must see it exactly as if the
        // profile had been rebuilt with the release clamped to `now`.
        let mut p = AvailabilityProfile::new(0.0, 2);
        p.add_release(100.0, 4);
        p.add_release(500.0, 2);
        p.advance_to(300.0);
        let mut rebuilt = AvailabilityProfile::new(300.0, 2);
        rebuilt.add_release(100.0, 4); // clamps to 300
        rebuilt.add_release(500.0, 2);
        for t in [300.0, 400.0, 500.0, 600.0] {
            assert_eq!(p.avail_at(t), rebuilt.avail_at(t), "at t={t}");
        }
        assert_eq!(
            p.earliest_fit(7, 10.0, 300.0),
            rebuilt.earliest_fit(7, 10.0, 300.0)
        );
        assert_eq!(p.earliest_fit(6, 10.0, 300.0), 300.0);
    }

    #[test]
    fn baseline_shift_tracks_starts_and_completions() {
        let mut p = AvailabilityProfile::new(0.0, 8);
        // A job claims 6 procs now, releasing at t=100.
        p.shift_baseline(-6);
        p.add_release(100.0, 6);
        assert_eq!(p.avail_at(0.0), 2);
        assert_eq!(p.avail_at(100.0), 8);
        // It completes exactly on time.
        p.advance_to(100.0);
        p.remove_release(100.0, 6);
        p.shift_baseline(6);
        assert_eq!(p.avail_at(100.0), 8);
        assert_eq!(p.edge_count(), 0);
    }

    #[test]
    fn reset_reuses_the_profile() {
        let mut p = AvailabilityProfile::new(0.0, 4);
        for i in 0..300 {
            p.add_usage(i as f64, i as f64 + 10.0, 1);
        }
        p.reset(50.0, 16);
        assert_eq!(p.edge_count(), 0);
        assert_eq!(p.avail_at(50.0), 16);
        assert_eq!(p.earliest_fit(16, 10.0, 0.0), 50.0);
    }

    #[test]
    fn passive_stats_count_ops_and_scans() {
        let mut p = AvailabilityProfile::new(0.0, 8);
        p.add_usage(50.0, 150.0, 6); // two edges
        p.earliest_fit(4, 100.0, 0.0);
        p.remove_usage(50.0, 150.0, 6);
        let s = p.stats();
        assert_eq!(s.edge_inserts, 2);
        assert_eq!(s.edge_removes, 2);
        assert_eq!(s.fit_calls, 1);
        assert_eq!(s.scan_hist.total(), 1);
        // Cloning copies the history; clearing starts a fresh role.
        let mut q = p.clone();
        q.clear_stats();
        assert_eq!(q.stats(), crate::observe::ProfileStats::default());
        assert_eq!(p.stats(), s);
    }

    #[test]
    fn bucket_splits_preserve_query_results() {
        // Enough distinct edges to force several splits; compare against
        // brute force at every edge time.
        let mut p = AvailabilityProfile::new(0.0, 64);
        let spec: Vec<(f64, f64, u32)> = (0..400)
            .map(|i| {
                let s = ((i * 37) % 1000) as f64;
                (s, s + 5.0 + (i % 13) as f64, 1 + (i % 5) as u32)
            })
            .collect();
        for &(s, e, c) in &spec {
            p.add_usage(s, e, c);
        }
        let brute = |t: f64| -> i64 {
            64 - spec
                .iter()
                .filter(|&&(s, e, _)| s <= t && t < e)
                .map(|&(_, _, c)| c as i64)
                .sum::<i64>()
        };
        for i in 0..1030 {
            let t = i as f64;
            assert_eq!(p.avail_at(t), brute(t), "at t={t}");
        }
    }
}
