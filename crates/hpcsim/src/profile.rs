//! Resource-availability profiles over future time.
//!
//! A profile answers "how many processors will be free at time t, given the
//! currently running jobs (under some runtime estimate) and any future
//! reservations already granted?". It is the planning structure behind both
//! EASY (computing the reserved job's shadow time) and conservative
//! backfilling (granting every queued job a reservation).
//!
//! # Representation
//!
//! The seed implementation kept an unsorted `(time, delta)` list and
//! answered every query by re-summing it — `O(n)` per `avail_at`, which
//! made `earliest_fit` quadratic and a conservative pass cubic. This
//! version maintains a **sorted interval timeline**: edges are merged into
//! a time-sorted list with running prefix availability, kept incrementally
//! on insert (`O(n)` memmove, cheap for scheduling queue depths). Queries
//! then run on the closed form:
//!
//! * [`AvailabilityProfile::avail_at`] — binary search, `O(log n)`;
//! * [`AvailabilityProfile::earliest_fit`] — one sweep over candidate
//!   start times with a precomputed "next shortfall" index, `O(n log n)`
//!   instead of `O(n²)`.
//!
//! Query *semantics* are identical to the seed (same candidate instants,
//! same strict/inclusive comparisons, same float arithmetic), which the
//! property suite (`tests/proptest_profile.rs`) and the equivalence suite
//! pin down.

/// A piecewise-constant availability timeline starting at `now`.
///
/// Internally a time-sorted list of merged `(time, delta, avail_after)`
/// edges over a baseline of `free` processors. Deltas are integers, so
/// availability values are exact (no float accumulation error) and
/// independent of insertion order.
#[derive(Debug, Clone)]
pub struct AvailabilityProfile {
    now: f64,
    free: i64,
    /// Sorted by time; `avail` is the availability at and after this edge
    /// (until the next edge).
    edges: Vec<Edge>,
}

#[derive(Debug, Clone, Copy)]
struct Edge {
    time: f64,
    delta: i64,
    avail: i64,
}

impl AvailabilityProfile {
    /// A profile with `free` processors available from `now` on.
    pub fn new(now: f64, free: u32) -> Self {
        Self {
            now,
            free: free as i64,
            edges: Vec::new(),
        }
    }

    /// Records that `procs` processors are released at `time` (a running
    /// job's estimated completion).
    pub fn add_release(&mut self, time: f64, procs: u32) {
        self.insert_edge(time.max(self.now), procs as i64);
    }

    /// Records a planned occupation of `procs` processors on
    /// `[start, end)` (a granted reservation).
    pub fn add_usage(&mut self, start: f64, end: f64, procs: u32) {
        let start = start.max(self.now);
        if end <= start {
            return;
        }
        self.insert_edge(start, -(procs as i64));
        self.insert_edge(end, procs as i64);
    }

    /// Merges a delta into the sorted edge list, updating the running
    /// availability of every later edge.
    fn insert_edge(&mut self, time: f64, delta: i64) {
        let idx = self
            .edges
            .partition_point(|e| e.time.total_cmp(&time).is_lt());
        let insert_at = if self.edges.get(idx).is_some_and(|e| e.time == time) {
            self.edges[idx].delta += delta;
            idx
        } else {
            let avail_before = if idx == 0 {
                self.free
            } else {
                self.edges[idx - 1].avail
            };
            self.edges.insert(
                idx,
                Edge {
                    time,
                    delta,
                    avail: avail_before,
                },
            );
            idx
        };
        for e in &mut self.edges[insert_at..] {
            e.avail += delta;
        }
    }

    /// Availability just after `time` (edges at exactly `time` included).
    pub fn avail_at(&self, time: f64) -> i64 {
        let idx = self
            .edges
            .partition_point(|e| e.time.total_cmp(&time).is_le());
        if idx == 0 {
            self.free
        } else {
            self.edges[idx - 1].avail
        }
    }

    /// The earliest time ≥ `not_before` at which `procs` processors are
    /// continuously available for `duration` seconds.
    ///
    /// Candidate start times are `not_before` itself and every edge time
    /// after it; between edges availability is constant, so these are the
    /// only minima. A candidate is feasible when availability at the start
    /// is sufficient and no *shortfall edge* (availability below demand)
    /// lies strictly inside `(start, start + duration)`. Returns
    /// `f64::INFINITY` if the demand can never be met (caller bug: demand
    /// exceeds the cluster).
    pub fn earliest_fit(&self, procs: u32, duration: f64, not_before: f64) -> f64 {
        let not_before = not_before.max(self.now);
        let demand = procs as i64;

        // Shortfall edge times, already sorted (subset of a sorted list).
        let shortfalls: Vec<f64> = self
            .edges
            .iter()
            .filter(|e| e.avail < demand)
            .map(|e| e.time)
            .collect();

        // Whether the window starting at `start` stays feasible: no
        // shortfall edge strictly inside (start, start + duration).
        let window_clear = |start: f64| -> bool {
            let end = start + duration;
            let next = shortfalls.partition_point(|&t| t.total_cmp(&start).is_le());
            shortfalls.get(next).is_none_or(|&t| t >= end)
        };

        if self.avail_at(not_before) >= demand && window_clear(not_before) {
            return not_before;
        }
        let first = self
            .edges
            .partition_point(|e| e.time.total_cmp(&not_before).is_le());
        for e in &self.edges[first..] {
            if e.avail >= demand && window_clear(e.time) {
                return e.time;
            }
        }
        f64::INFINITY
    }

    /// The earliest time ≥ `now` at which `procs` processors are available
    /// (ignoring how long they stay available) — the EASY *shadow time* for
    /// the reserved job when the profile only contains releases.
    pub fn earliest_avail(&self, procs: u32) -> f64 {
        self.earliest_fit(procs, 0.0, self.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_profile_is_constant() {
        let p = AvailabilityProfile::new(10.0, 8);
        assert_eq!(p.avail_at(10.0), 8);
        assert_eq!(p.avail_at(1e9), 8);
        assert_eq!(p.earliest_fit(8, 100.0, 10.0), 10.0);
        assert_eq!(p.earliest_fit(9, 100.0, 10.0), f64::INFINITY);
    }

    #[test]
    fn releases_accumulate() {
        let mut p = AvailabilityProfile::new(0.0, 2);
        p.add_release(100.0, 4);
        p.add_release(200.0, 2);
        assert_eq!(p.avail_at(0.0), 2);
        assert_eq!(p.avail_at(100.0), 6);
        assert_eq!(p.avail_at(250.0), 8);
        assert_eq!(p.earliest_avail(6), 100.0);
        assert_eq!(p.earliest_avail(7), 200.0);
    }

    #[test]
    fn usage_blocks_an_interval() {
        let mut p = AvailabilityProfile::new(0.0, 8);
        p.add_usage(50.0, 150.0, 6);
        // 4 procs for 100s: fits immediately only if it ends by t=50.
        assert_eq!(p.earliest_fit(4, 40.0, 0.0), 0.0);
        assert_eq!(p.earliest_fit(4, 100.0, 0.0), 150.0);
        // 2 procs fit through the blocked window.
        assert_eq!(p.earliest_fit(2, 1000.0, 0.0), 0.0);
    }

    #[test]
    fn fit_respects_not_before() {
        let p = AvailabilityProfile::new(0.0, 8);
        assert_eq!(p.earliest_fit(4, 10.0, 500.0), 500.0);
    }

    #[test]
    fn usage_before_now_is_clamped() {
        let mut p = AvailabilityProfile::new(100.0, 4);
        p.add_usage(0.0, 200.0, 2);
        assert_eq!(p.avail_at(100.0), 2);
        assert_eq!(p.avail_at(200.0), 4);
    }

    #[test]
    fn zero_length_usage_is_ignored() {
        let mut p = AvailabilityProfile::new(0.0, 4);
        p.add_usage(10.0, 10.0, 4);
        assert_eq!(p.avail_at(10.0), 4);
    }

    #[test]
    fn reservation_chain_stacks_correctly() {
        // Conservative-backfilling shape: running job releases at t=100,
        // a reservation claims [100, 200), a second fit must land at 200.
        let mut p = AvailabilityProfile::new(0.0, 0);
        p.add_release(100.0, 4);
        p.add_usage(100.0, 200.0, 4);
        assert_eq!(p.earliest_fit(4, 50.0, 0.0), 200.0);
    }

    #[test]
    fn merged_edges_keep_their_breakpoint() {
        // A release and a usage-start at the same instant net to zero, but
        // the instant must remain a candidate/checkpoint time.
        let mut p = AvailabilityProfile::new(0.0, 4);
        p.add_release(100.0, 4);
        p.add_usage(100.0, 200.0, 4);
        assert_eq!(p.avail_at(100.0), 4);
        assert_eq!(p.avail_at(150.0), 4);
        assert_eq!(p.earliest_fit(8, 10.0, 0.0), 200.0);
    }

    #[test]
    fn interleaved_inserts_match_batch_semantics() {
        // Insert edges out of time order; the sorted timeline must agree
        // with a brute-force sum at every probe point.
        let spec: &[(f64, f64, u32)] = &[
            (300.0, 500.0, 3),
            (100.0, 400.0, 2),
            (50.0, 350.0, 1),
            (400.0, 410.0, 6),
        ];
        let mut p = AvailabilityProfile::new(0.0, 8);
        for &(s, e, c) in spec {
            p.add_usage(s, e, c);
        }
        let brute = |t: f64| -> i64 {
            8 - spec
                .iter()
                .filter(|&&(s, e, _)| s <= t && t < e)
                .map(|&(_, _, c)| c as i64)
                .sum::<i64>()
        };
        for t in [
            0.0, 50.0, 99.9, 100.0, 300.0, 349.0, 350.0, 400.0, 409.0, 410.0, 500.0,
        ] {
            assert_eq!(p.avail_at(t), brute(t), "at t={t}");
        }
    }
}
